"""Setup shim for environments without the `wheel` package.

All metadata lives in pyproject.toml; this file only enables the legacy
editable-install path (`pip install -e .` without build isolation).
"""

from setuptools import setup

setup()
