"""Batch enrollment determinism and the batched OPRF wire round.

The load-bearing property for ``enroll_population``: with a ``seed``, the
per-profile randomness is a pure function of ``(seed, user_id)``, so the
output is payload-for-payload identical for any worker count, chunking, or
OPE cache configuration.
"""

import pytest

from repro.client.remote_keygen import RemoteKeygenClient
from repro.core.scheme import profile_enroll_seed
from repro.crypto.ope_cache import OpeNodeCache
from repro.datasets import INFOCOM06
from repro.errors import ParameterError, ProtocolError
from repro.experiments.common import build_population, build_scheme
from repro.net.channel import SecureChannel
from repro.net.oprf_messages import BatchedBlindEvalRequest
from repro.net.transport import InMemoryNetwork
from repro.parallel import ThreadBackend
from repro.server.keyservice import KeyGenService, RateLimitExceeded


@pytest.fixture(scope="module")
def population():
    pop = build_population(INFOCOM06, seed=41)
    users = pop.generate(10)
    return pop, [u.profile for u in users]


def _fresh_scheme(pop, **kwargs):
    return build_scheme(INFOCOM06, schema=pop.schema, seed=41, **kwargs)


def _assert_same_enrollment(result_a, result_b):
    uploads_a, keys_a = result_a
    uploads_b, keys_b = result_b
    assert set(uploads_a) == set(uploads_b)
    for uid in uploads_a:
        assert uploads_a[uid] == uploads_b[uid]
        assert keys_a[uid].key == keys_b[uid].key
        assert keys_a[uid].index == keys_b[uid].index


class TestSeededDeterminism:
    def test_workers_do_not_change_output(self, population):
        pop, profiles = population
        serial = _fresh_scheme(pop).enroll_population(
            profiles, backend="serial", seed=77
        )
        parallel = _fresh_scheme(pop).enroll_population(
            profiles, backend=ThreadBackend(4), seed=77
        )
        _assert_same_enrollment(serial, parallel)

    def test_chunking_does_not_change_output(self, population):
        pop, profiles = population
        baseline = _fresh_scheme(pop).enroll_population(
            profiles, backend="serial", seed=77
        )
        chunked = _fresh_scheme(pop).enroll_population(
            profiles, backend=ThreadBackend(3), seed=77, chunk_size=2
        )
        _assert_same_enrollment(baseline, chunked)

    def test_shared_ope_cache_does_not_change_output(self, population):
        pop, profiles = population
        cached = _fresh_scheme(
            pop,
            ope_expansion_bits=16,
            ope_cache=OpeNodeCache(capacity=512),
        ).enroll_population(profiles, backend=ThreadBackend(4), seed=77)
        uncached = _fresh_scheme(
            pop, ope_expansion_bits=16, ope_cache=False
        ).enroll_population(profiles, backend="serial", seed=77)
        _assert_same_enrollment(cached, uncached)

    def test_profile_order_is_irrelevant_when_seeded(self, population):
        pop, profiles = population
        forward = _fresh_scheme(pop).enroll_population(
            profiles, backend=ThreadBackend(2), seed=5
        )
        reversed_ = _fresh_scheme(pop).enroll_population(
            list(reversed(profiles)), backend=ThreadBackend(2), seed=5
        )
        _assert_same_enrollment(forward, reversed_)

    def test_different_seeds_differ(self, population):
        pop, profiles = population
        a, _ = _fresh_scheme(pop).enroll_population(profiles, seed=1)
        b, _ = _fresh_scheme(pop).enroll_population(profiles, seed=2)
        assert any(a[uid] != b[uid] for uid in a)

    def test_enroll_seed_is_a_pure_function(self):
        assert profile_enroll_seed(7, 3) == profile_enroll_seed(7, 3)
        assert profile_enroll_seed(7, 3) != profile_enroll_seed(7, 4)
        assert profile_enroll_seed(7, 3) != profile_enroll_seed(8, 3)

    def test_parameter_validation(self, population):
        pop, profiles = population
        scheme = _fresh_scheme(pop)
        with pytest.raises(ParameterError):
            scheme.enroll_population(profiles, workers=0)
        with pytest.raises(ParameterError):
            scheme.enroll_population(profiles, chunk_size=0)
        with pytest.raises(ParameterError):
            scheme.enroll_population(profiles, backend="vectorized")

    def test_workers_shim_warns_and_matches_backend_path(self, population):
        pop, profiles = population
        with pytest.warns(DeprecationWarning):
            legacy = _fresh_scheme(pop).enroll_population(
                profiles, workers=4, seed=77
            )
        modern = _fresh_scheme(pop).enroll_population(
            profiles, backend=ThreadBackend(4), seed=77
        )
        _assert_same_enrollment(legacy, modern)

    def test_workers_and_backend_are_mutually_exclusive(self, population):
        pop, profiles = population
        with pytest.warns(DeprecationWarning):
            with pytest.raises(ParameterError):
                _fresh_scheme(pop).enroll_population(
                    profiles, backend="serial", workers=2, seed=1
                )

    def test_legacy_sequential_path_unchanged(self, population):
        # workers=1 without a seed must keep drawing from the instance RNG
        # exactly as the pre-batching loop did
        pop, profiles = population
        batch = _fresh_scheme(pop).enroll_population(profiles)
        loop_scheme = _fresh_scheme(pop)
        loop = {}, {}
        for profile in profiles:
            payload, key = loop_scheme.enroll(profile)
            loop[0][profile.user_id] = payload
            loop[1][profile.user_id] = key
        _assert_same_enrollment(batch, loop)


class TestBatchedOprfWireRound:
    @pytest.fixture()
    def wire(self, population):
        pop, profiles = population
        scheme = _fresh_scheme(pop)
        service = KeyGenService(
            oprf_server=scheme.oprf_server, max_requests_per_window=8
        )
        network = InMemoryNetwork()
        client_ch = SecureChannel(
            network.endpoint("client"), "service", b"batch-test"
        )
        service_ch = SecureChannel(
            network.endpoint("service"), "client", b"batch-test"
        )
        remote = RemoteKeygenClient(scheme.params.fuzzy_params, client_ch)
        rid = remote.request_public_key()
        service_ch.send(service.handle_message("c1", service_ch.recv()))
        remote.receive_public_key(rid)
        return scheme, service, remote, service_ch, profiles

    def test_batch_round_matches_local_derivation(self, wire):
        scheme, service, remote, service_ch, profiles = wire
        batch = profiles[:4]
        state = remote.begin_batch_derivation(batch)
        service_ch.send(service.handle_message("c1", service_ch.recv()))
        keys = remote.finish_batch_derivation(state)
        assert len(keys) == len(batch)
        for profile, key in zip(batch, keys):
            assert key.key == scheme.keygen(profile).key
        # the whole batch crossed the wire as one message pair
        assert service.evaluations_served == len(batch)

    def test_over_budget_batch_rejected_whole(self, wire):
        scheme, service, remote, service_ch, profiles = wire
        oversized = profiles[:9]  # window allows 8
        state = remote.begin_batch_derivation(oversized)
        with pytest.raises(RateLimitExceeded):
            service.handle_message("c1", service_ch.recv())
        # all-or-nothing: the failed batch consumed no budget at all
        assert service.remaining_budget("c1") == 8
        state = remote.begin_batch_derivation(profiles[:8])
        service_ch.send(service.handle_message("c1", service_ch.recv()))
        assert len(remote.finish_batch_derivation(state)) == 8
        assert service.remaining_budget("c1") == 0

    def test_empty_batch_rejected_client_side(self, wire):
        _, _, remote, _, _ = wire
        with pytest.raises(ProtocolError):
            remote.begin_batch_derivation([])

    def test_empty_batch_rejected_on_the_wire(self):
        with pytest.raises(ProtocolError):
            BatchedBlindEvalRequest(request_id=1, blinded=())
