"""Tests for the per-module type-strictness ratchet (tools/type_ratchet.py).

The tool must work without mypy installed (annotation gaps are measured
from the AST), so everything here runs in ``--no-mypy`` mode and exercises
the ratchet semantics on a scratch repository: strict modules must be
gap-free, non-strict modules may not regress past their baseline, and
improvements never fail.
"""

from __future__ import annotations

import json
import textwrap
from pathlib import Path

import pytest

from tools import type_ratchet
from tools.type_ratchet import (
    annotation_gaps,
    check,
    is_strict,
    iter_modules,
    main,
    measure,
    strict_patterns,
    suggest,
)

REPO_ROOT = Path(__file__).resolve().parent.parent

PYPROJECT_STRICT = textwrap.dedent(
    """\
    [tool.mypy]
    ignore_errors = true

    [[tool.mypy.overrides]]
    module = [
        "repro.alpha",
        "repro.beta.*",
    ]
    ignore_errors = false
    disallow_untyped_defs = true
    """
)


@pytest.fixture()
def scratch_repo(tmp_path, monkeypatch):
    """A miniature repo the tool's CLI is pointed at via monkeypatching."""
    (tmp_path / "src" / "repro" / "beta").mkdir(parents=True)
    (tmp_path / "tools").mkdir()
    (tmp_path / "src" / "repro" / "alpha.py").write_text(
        "def f(x: int) -> int:\n    return x\n", encoding="utf-8"
    )
    (tmp_path / "src" / "repro" / "beta" / "__init__.py").write_text(
        "", encoding="utf-8"
    )
    (tmp_path / "src" / "repro" / "gamma.py").write_text(
        "def g(x):\n    return x\n", encoding="utf-8"
    )
    (tmp_path / "pyproject.toml").write_text(PYPROJECT_STRICT, encoding="utf-8")
    monkeypatch.setattr(type_ratchet, "REPO_ROOT", tmp_path)
    monkeypatch.setattr(type_ratchet, "PYPROJECT_PATH", tmp_path / "pyproject.toml")
    monkeypatch.setattr(
        type_ratchet, "BASELINE_PATH", tmp_path / "tools" / "baseline.json"
    )
    return tmp_path


class TestAnnotationGaps:
    def test_fully_annotated_is_clean(self):
        src = "def f(x: int, *, y: str = 'a') -> bool:\n    return True\n"
        assert annotation_gaps(src) == []

    def test_missing_return_counts(self):
        assert annotation_gaps("def f(x: int):\n    return x\n") == ["f:1"]

    def test_missing_param_counts(self):
        assert annotation_gaps("def f(x) -> int:\n    return x\n") == ["f:1"]

    def test_self_and_cls_exempt(self):
        src = textwrap.dedent(
            """\
            class C:
                def m(self) -> None:
                    pass

                @classmethod
                def k(cls) -> None:
                    pass
            """
        )
        assert annotation_gaps(src) == []

    def test_vararg_and_kwarg_need_annotations(self):
        assert annotation_gaps("def f(*args, **kw) -> None:\n    pass\n") == ["f:1"]

    def test_nested_functions_counted(self):
        src = "def outer() -> None:\n    def inner(x):\n        return x\n"
        assert annotation_gaps(src) == ["inner:2"]

    def test_syntax_error_counts_as_gap(self):
        assert annotation_gaps("def f(:\n") == ["<syntax error>:1"]


class TestStrictPatterns:
    def test_live_pyproject_has_promoted_modules(self):
        patterns = strict_patterns()
        assert "repro.errors" in patterns
        assert "repro.gf.*" in patterns
        assert "repro.ntheory.*" in patterns
        assert "repro.utils.*" in patterns
        assert "tools.type_ratchet" in patterns

    def test_glob_matching(self):
        patterns = ["repro.errors", "repro.gf.*"]
        assert is_strict("repro.errors", patterns)
        assert is_strict("repro.gf.tables", patterns)
        assert not is_strict("repro.server.matcher", patterns)

    def test_regex_fallback_matches_tomllib(self, tmp_path):
        path = tmp_path / "pyproject.toml"
        path.write_text(PYPROJECT_STRICT, encoding="utf-8")
        parsed = strict_patterns(path)
        assert parsed == ["repro.alpha", "repro.beta.*"]


class TestRatchetSemantics:
    def test_strict_module_with_gap_fails(self):
        report = {"repro.alpha": {"annotation_gaps": 1, "mypy_errors": None}}
        failures = check(report, {}, ["repro.alpha"])
        assert len(failures) == 1 and "strict" in failures[0]

    def test_regression_against_baseline_fails(self):
        report = {"repro.gamma": {"annotation_gaps": 3, "mypy_errors": None}}
        baseline = {"repro.gamma": {"annotation_gaps": 2, "mypy_errors": None}}
        failures = check(report, baseline, [])
        assert len(failures) == 1 and "went up 2 -> 3" in failures[0]

    def test_improvement_passes(self):
        report = {"repro.gamma": {"annotation_gaps": 1, "mypy_errors": None}}
        baseline = {"repro.gamma": {"annotation_gaps": 2, "mypy_errors": None}}
        assert check(report, baseline, []) == []

    def test_mypy_regression_fails(self):
        report = {"repro.gamma": {"annotation_gaps": 0, "mypy_errors": 4}}
        baseline = {"repro.gamma": {"annotation_gaps": 0, "mypy_errors": 1}}
        failures = check(report, baseline, [])
        assert len(failures) == 1 and "mypy errors" in failures[0]

    def test_unmeasured_mypy_never_fails(self):
        report = {"repro.gamma": {"annotation_gaps": 0, "mypy_errors": None}}
        baseline = {"repro.gamma": {"annotation_gaps": 0, "mypy_errors": 1}}
        assert check(report, baseline, []) == []

    def test_suggest_lists_clean_unpromoted_modules(self):
        report = {
            "repro.alpha": {"annotation_gaps": 0, "mypy_errors": None},
            "repro.gamma": {"annotation_gaps": 0, "mypy_errors": None},
            "repro.delta": {"annotation_gaps": 2, "mypy_errors": None},
        }
        assert suggest(report, ["repro.alpha"]) == ["repro.gamma"]


class TestCliOnScratchRepo:
    def test_update_then_check_passes(self, scratch_repo):
        assert main(["--update", "--no-mypy"]) == 0
        assert main(["--check", "--no-mypy"]) == 0

    def test_new_gap_in_strict_module_fails(self, scratch_repo, capsys):
        assert main(["--update", "--no-mypy"]) == 0
        strict_mod = scratch_repo / "src" / "repro" / "alpha.py"
        strict_mod.write_text("def f(x):\n    return x\n", encoding="utf-8")
        assert main(["--check", "--no-mypy"]) == 1
        assert "strict module" in capsys.readouterr().err

    def test_regression_in_lenient_module_fails(self, scratch_repo):
        assert main(["--update", "--no-mypy"]) == 0
        lenient = scratch_repo / "src" / "repro" / "gamma.py"
        lenient.write_text(
            "def g(x):\n    return x\ndef h(y):\n    return y\n", encoding="utf-8"
        )
        assert main(["--check", "--no-mypy"]) == 1

    def test_json_artifact_shape(self, scratch_repo, capsys):
        out = scratch_repo / "report.json"
        assert main(["--check", "--no-mypy", "--json-out", str(out), "--update"]) == 0
        report = json.loads(out.read_text(encoding="utf-8"))
        assert "strict_patterns" in report and "modules" in report
        assert "repro.gamma" in report["modules"]

    def test_no_action_is_usage_error(self):
        assert main([]) == 2


class TestLiveRepo:
    def test_modules_discovered(self):
        names = {name for name, _path in iter_modules(REPO_ROOT)}
        assert "repro.errors" in names
        assert "tools.type_ratchet" in names
        assert "tools.smatch_lint.taint" in names

    def test_live_check_passes(self):
        # the committed baseline must match the tree (CI gate stays green)
        assert main(["--check", "--no-mypy"]) == 0

    def test_strict_modules_have_no_gaps(self):
        report = measure(REPO_ROOT, with_mypy=False)
        patterns = strict_patterns()
        offenders = {
            name: entry
            for name, entry in report.items()
            if is_strict(name, patterns) and entry["annotation_gaps"]
        }
        assert offenders == {}
