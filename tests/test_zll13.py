"""Tests for the ZLL13 sealed-bottle baseline."""

import pytest

from repro.baselines.zll13 import (
    Zll13Initiator,
    Zll13Responder,
    run_pairwise,
)
from repro.errors import ParameterError
from repro.utils.rand import SystemRandomSource


@pytest.fixture
def prng():
    return SystemRandomSource(seed=601)


class TestProtocol:
    def test_identical_profiles_full_score(self, prng):
        score, _ = run_pairwise([3, 5, 7, 9], [3, 5, 7, 9], rng=prng)
        assert score == 4

    def test_partial_overlap_counts_equal_attributes(self, prng):
        score, _ = run_pairwise([3, 5, 7, 9], [3, 5, 0, 0], rng=prng)
        assert score == 2

    def test_disjoint_profiles_score_zero(self, prng):
        score, _ = run_pairwise([1, 2], [3, 4], rng=prng)
        assert score == 0

    def test_not_fuzzy(self, prng):
        """A one-off value does not open the bottle (Table I: no fuzz)."""
        score_exact, _ = run_pairwise([100, 200], [100, 200], rng=prng)
        score_near, _ = run_pairwise([100, 200], [100, 201], rng=prng)
        assert score_exact == 2
        assert score_near == 1

    def test_fine_grained(self, prng):
        """Value-level comparison: different values at the same attribute
        are distinguished (unlike attribute-level PSI)."""
        score_same, _ = run_pairwise([7], [7], rng=prng)
        score_diff, _ = run_pairwise([7], [8], rng=prng)
        assert score_same == 1 and score_diff == 0

    def test_position_binding(self, prng):
        """Equal values at different attribute positions do not match."""
        score, _ = run_pairwise([1, 2], [2, 1], rng=prng)
        assert score == 0


class TestVerifiability:
    def test_forged_witnesses_score_zero(self, prng):
        initiator = Zll13Initiator([1, 2, 3], rng=prng)
        initiator.seal()
        forged = {i: prng.randbytes(16) for i in range(3)}
        assert initiator.verify_response(forged) == 0

    def test_replayed_witness_wrong_position_rejected(self, prng):
        initiator = Zll13Initiator([9, 9], rng=prng)
        challenge = initiator.seal()
        responder = Zll13Responder([9, 0])  # opens only bottle 0
        claims = responder.open_bottles(challenge)
        assert set(claims) == {0}
        # replay bottle 0's witness as a claim for bottle 1
        cheat = {0: claims[0], 1: claims[0]}
        assert initiator.verify_response(cheat) == 1

    def test_verify_requires_seal_first(self, prng):
        initiator = Zll13Initiator([1], rng=prng)
        with pytest.raises(ParameterError):
            initiator.verify_response({0: b"x" * 16})

    def test_responder_cannot_open_without_value(self, prng):
        initiator = Zll13Initiator([42], rng=prng)
        challenge = initiator.seal()
        for wrong in (0, 41, 43, 1000):
            responder = Zll13Responder([wrong])
            assert responder.open_bottles(challenge) == {}


class TestWireAccounting:
    def test_challenge_size_linear_in_d(self, prng):
        small = Zll13Initiator([1] * 2, rng=prng).seal()
        large = Zll13Initiator([1] * 8, rng=prng).seal()
        assert large.wire_bits == 4 * small.wire_bits

    def test_response_size(self, prng):
        claims = {0: b"w" * 16, 3: b"v" * 16}
        assert Zll13Responder.response_wire_bits(claims) == 2 * (32 + 128)

    def test_empty_profile_rejected(self, prng):
        with pytest.raises(ParameterError):
            Zll13Initiator([], rng=prng)
        with pytest.raises(ParameterError):
            Zll13Responder([])
