"""Tests for the number-theory substrate."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.errors import ParameterError
from repro.ntheory.groups import SchnorrGroup
from repro.ntheory.modular import (
    crt_pair,
    egcd,
    lcm,
    modexp,
    modinv,
    modinv_batch,
)
from repro.ntheory.primes import (
    generate_prime,
    generate_safe_prime,
    is_probable_prime,
    next_prime,
)
from repro.utils.rand import SystemRandomSource


class TestModular:
    @given(st.integers(min_value=-10**9, max_value=10**9), st.integers(min_value=-10**9, max_value=10**9))
    def test_egcd_identity(self, a, b):
        g, x, y = egcd(a, b)
        assert a * x + b * y == g
        assert g == math.gcd(a, b) or g == -math.gcd(a, b)

    def test_modinv(self):
        assert modinv(3, 7) == 5
        assert (3 * modinv(3, 10**9 + 7)) % (10**9 + 7) == 1

    def test_modinv_not_invertible(self):
        with pytest.raises(ParameterError):
            modinv(4, 8)

    @given(
        st.lists(st.integers(min_value=1, max_value=2**61 - 2), max_size=12)
    )
    def test_modinv_batch_matches_modinv(self, values):
        m = 2**61 - 1  # prime, so every nonzero value is invertible
        assert modinv_batch(values, m) == [modinv(v, m) for v in values]

    def test_modinv_batch_names_the_offending_position(self):
        with pytest.raises(ParameterError, match="position 1"):
            modinv_batch([3, 10, 7], 20)
        with pytest.raises(ParameterError):
            modinv_batch([1], 0)

    def test_modinv_batch_empty(self):
        assert modinv_batch([], 7) == []

    def test_crt(self):
        x = crt_pair(2, 3, 3, 5)
        assert x % 3 == 2 and x % 5 == 3

    def test_crt_requires_coprime(self):
        with pytest.raises(ParameterError):
            crt_pair(1, 4, 3, 6)

    def test_lcm(self):
        assert lcm(4, 6) == 12
        assert lcm(0, 5) == 0

    def test_modexp_counts_op(self):
        from repro.utils.instrument import counting

        with counting() as c:
            assert modexp(2, 10, 1000) == 24
        assert c.get("modexp") == 1


class TestPrimes:
    def test_small_primes(self):
        assert is_probable_prime(2)
        assert is_probable_prime(3)
        assert is_probable_prime(97)
        assert not is_probable_prime(1)
        assert not is_probable_prime(0)
        assert not is_probable_prime(561)  # Carmichael number
        assert not is_probable_prime(2047)  # strong pseudoprime base 2

    def test_known_large_prime(self):
        assert is_probable_prime(2**127 - 1)  # Mersenne prime
        assert not is_probable_prime(2**128 + 1)

    def test_generate_prime_properties(self):
        rng = SystemRandomSource(seed=2)
        p = generate_prime(96, rng)
        assert p.bit_length() == 96
        assert is_probable_prime(p)

    def test_generate_prime_too_small(self):
        with pytest.raises(ParameterError):
            generate_prime(2)

    def test_safe_prime(self):
        rng = SystemRandomSource(seed=2)
        p = generate_safe_prime(64, rng)
        assert is_probable_prime(p)
        assert is_probable_prime((p - 1) // 2)

    def test_next_prime(self):
        assert next_prime(1) == 2
        assert next_prime(2) == 3
        assert next_prime(14) == 17
        assert next_prime(89) == 97


class TestSchnorrGroup:
    def test_default_group_valid(self):
        g = SchnorrGroup.default()
        assert pow(g.g, g.q, g.p) == 1

    def test_generated_group(self):
        g = SchnorrGroup.generate(bits=64, rng=SystemRandomSource(seed=3))
        assert pow(g.g, g.q, g.p) == 1
        assert g.g not in (1, g.p - 1)

    def test_exponent_arithmetic(self):
        g = SchnorrGroup.default()
        a, b = 12345, 67890
        lhs = g.exp(g.power_of_g(a), b)
        rhs = g.exp(g.power_of_g(b), a)
        assert lhs == rhs  # DH consistency

    def test_mul_inv(self):
        g = SchnorrGroup.default()
        x = g.power_of_g(777)
        assert g.mul(x, g.inv(x)) == 1

    def test_element_bytes_fixed_width(self):
        g = SchnorrGroup.default()
        assert len(g.element_bytes(1)) == g.element_size
        with pytest.raises(ParameterError):
            g.element_bytes(g.p)

    def test_rejects_non_safe_prime(self):
        with pytest.raises(ParameterError):
            SchnorrGroup(p=97, g=4)  # 97 is prime but (97-1)/2 is not

    def test_random_exponent_in_range(self):
        g = SchnorrGroup.default()
        rng = SystemRandomSource(seed=4)
        for _ in range(5):
            e = g.random_exponent(rng)
            assert 1 <= e < g.q
