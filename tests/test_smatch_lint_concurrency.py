"""Tests for the SML012–SML015 concurrency rules and the SARIF output.

Single-file fixtures run through :func:`lint_source` (hit / clean /
suppressed per rule); cross-module delegated-mutation, summary-cache
invalidation, and the CLI surfaces (``--lock-debug``, ``--format sarif``)
run through :func:`lint_paths` / ``main`` on mini-packages, mirroring the
split between ``test_smatch_lint.py`` and ``test_smatch_lint_xmodule.py``.
"""

from __future__ import annotations

import json
import textwrap
from pathlib import Path

import pytest

from tools.smatch_lint.cli import main
from tools.smatch_lint.engine import lint_paths, lint_source

REPO_ROOT = Path(__file__).resolve().parent.parent

OBS_PATH = "src/repro/obs/widget.py"
PARALLEL_PATH = "src/repro/parallel/widget.py"


def codes(violations) -> list:
    return [v.code for v in violations]


def check(source: str, path: str = OBS_PATH):
    return lint_source(textwrap.dedent(source), path)


def write_package(root: Path, files: dict) -> Path:
    for rel, source in files.items():
        target = root / rel
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(textwrap.dedent(source), encoding="utf-8")
        package_dir = target.parent
        while package_dir != root and package_dir.name != "src":
            init = package_dir / "__init__.py"
            if not init.exists():
                init.write_text("", encoding="utf-8")
            package_dir = package_dir.parent
    return root / "src"


LOCKED_CACHE = """
    import threading

    class Cache:
        def __init__(self):
            self._lock = threading.Lock()
            self._entries = {}

        def put(self, token, value):
            with self._lock:
                self._entries[token] = value
"""


class TestSml012LockDiscipline:
    def test_unguarded_read_flagged(self):
        found = check(
            LOCKED_CACHE
            + """
        def peek(self, token):
            return self._entries.get(token)
    """
        )
        assert codes(found) == ["SML012"]
        assert "_entries" in found[0].message
        assert "_lock" in found[0].message

    def test_unguarded_write_flagged(self):
        found = check(
            LOCKED_CACHE
            + """
        def wipe(self):
            self._entries = {}
    """
        )
        assert codes(found) == ["SML012"]

    def test_mutating_method_call_flagged(self):
        found = check(
            LOCKED_CACHE
            + """
        def wipe(self):
            self._entries.clear()
    """
        )
        assert codes(found) == ["SML012"]

    def test_locked_access_clean(self):
        assert (
            check(
                LOCKED_CACHE
                + """
        def peek(self, token):
            with self._lock:
                return self._entries.get(token)
    """
            )
            == []
        )

    def test_init_writes_are_exempt(self):
        # __init__ runs before the instance is published
        assert check(LOCKED_CACHE) == []

    def test_unlocked_fields_are_not_guarded(self):
        # a field never written under the lock carries no discipline
        assert (
            check(
                LOCKED_CACHE
                + """
        def bump(self):
            self.hits = 1
    """
            )
            == []
        )

    def test_helper_with_all_locked_callers_is_assumed_held(self):
        # the _flush_locked idiom: private helper, every call site locked
        assert (
            check(
                LOCKED_CACHE
                + """
        def drain(self):
            with self._lock:
                self._drain_locked()

        def _drain_locked(self):
            self._entries.clear()
    """
            )
            == []
        )

    def test_helper_with_an_unlocked_caller_is_not_assumed(self):
        found = check(
            LOCKED_CACHE
            + """
        def drain(self):
            with self._lock:
                self._drain_locked()

        def drain_fast(self):
            self._drain_locked()

        def _drain_locked(self):
            self._entries.clear()
    """
        )
        # one unlocked call site breaks the assumption, so the helper's
        # own guarded-state access is the race that gets reported
        assert codes(found) == ["SML012"]
        assert "_entries" in found[0].message

    def test_same_module_instance_mutation_flagged(self):
        found = check(
            LOCKED_CACHE
            + """

    def misuse():
        cache = Cache()
        cache._entries["k"] = 1
    """
        )
        assert codes(found) == ["SML012"]
        assert "cache._entries" in found[0].message

    def test_lockless_class_is_silent(self):
        assert (
            check(
                """
    class Bag:
        def __init__(self):
            self._items = {}

        def put(self, k, v):
            self._items[k] = v
    """
            )
            == []
        )

    def test_suppression(self):
        found = check(
            LOCKED_CACHE
            + """
        def peek(self, token):
            return self._entries.get(token)  # smatch-lint: disable=SML012
    """
        )
        assert found == []

    def test_out_of_scope_path_is_clean(self):
        source = (
            LOCKED_CACHE
            + """
        def peek(self, token):
            return self._entries.get(token)
    """
        )
        assert lint_source(textwrap.dedent(source), "experiments/widget.py") == []


class TestSml013TaskEscape:
    def test_unguarded_global_mutation_flagged(self):
        found = check(
            """
    _CACHE = {}

    def remember(k, v):
        _CACHE[k] = v
    """,
            PARALLEL_PATH,
        )
        assert codes(found) == ["SML013"]
        assert "_CACHE" in found[0].message

    def test_mutating_method_on_global_flagged(self):
        found = check(
            """
    _SEEN = set()

    def note(v):
        _SEEN.add(v)
    """,
            PARALLEL_PATH,
        )
        assert codes(found) == ["SML013"]

    def test_module_lock_guard_is_clean(self):
        assert (
            check(
                """
    import threading

    _CACHE = {}
    _CACHE_LOCK = threading.Lock()

    def remember(k, v):
        with _CACHE_LOCK:
            _CACHE[k] = v
    """,
                PARALLEL_PATH,
            )
            == []
        )

    def test_import_time_mutation_is_clean(self):
        # top-level registration runs under the import lock
        assert (
            check(
                """
    _TABLE = {}
    _TABLE["init"] = 1
    """,
                PARALLEL_PATH,
            )
            == []
        )

    def test_task_unit_global_rebind_flagged(self):
        found = check(
            """
    _CONTEXT = None

    def _initialize_worker(context):
        global _CONTEXT
        _CONTEXT = context
    """,
            PARALLEL_PATH,
        )
        assert codes(found) == ["SML013"]
        assert "_CONTEXT" in found[0].message

    def test_non_task_global_rebind_clean(self):
        # rebinding an immutable-valued global outside task units is the
        # set_default_backend idiom — not a worker-visible escape
        assert (
            check(
                """
    _DEFAULT = None

    def set_default(value):
        global _DEFAULT
        _DEFAULT = value
    """,
                PARALLEL_PATH,
            )
            == []
        )

    def test_only_parallel_scope(self):
        source = """
    _CACHE = {}

    def remember(k, v):
        _CACHE[k] = v
    """
        assert lint_source(textwrap.dedent(source), OBS_PATH) == []

    def test_suppression(self):
        found = check(
            """
    _CACHE = {}

    def remember(k, v):
        _CACHE[k] = v  # smatch-lint: disable=SML013
    """,
            PARALLEL_PATH,
        )
        assert found == []


class TestSml014ForkHazards:
    def test_lock_in_initargs_flagged(self):
        found = check(
            """
    import threading

    def start(pool_cls):
        lock = threading.Lock()
        return pool_cls(initargs=(lock,))
    """
        )
        assert codes(found) == ["SML014"]
        assert "initargs" in found[0].message

    def test_lock_named_attribute_in_initargs_flagged(self):
        found = check(
            """
    def start(self, pool_cls):
        return pool_cls(initargs=(self._lock,))
    """
        )
        assert codes(found) == ["SML014"]

    def test_plain_initargs_clean(self):
        assert (
            check(
                """
    def start(pool_cls, seed):
        return pool_cls(initargs=(seed, 3))
    """
            )
            == []
        )

    def test_blocking_call_under_lock_flagged(self):
        found = check(
            """
    def wait_all(pool, job, lock):
        with lock:
            return pool.submit(job)
    """
        )
        assert codes(found) == ["SML014"]
        assert "submit" in found[0].message

    def test_str_join_under_lock_clean(self):
        assert (
            check(
                """
    def fmt(items, lock):
        with lock:
            return ", ".join(items)
    """
            )
            == []
        )

    def test_blocking_call_after_lock_clean(self):
        assert (
            check(
                """
    def wait_all(pool, job, lock):
        with lock:
            payload = job
        return pool.submit(payload)
    """
            )
            == []
        )

    def test_suppression(self):
        found = check(
            """
    import threading

    def start(pool_cls):
        lock = threading.Lock()
        return pool_cls(initargs=(lock,))  # smatch-lint: disable=SML014
    """
        )
        assert found == []


class TestSml015ShmLifecycle:
    def test_leaked_segment_flagged(self):
        found = check(
            """
    from multiprocessing.shared_memory import SharedMemory

    def leak(n):
        shm = SharedMemory(create=True, size=n)
        shm.buf[0] = 1
    """,
            PARALLEL_PATH,
        )
        assert codes(found) == ["SML015"]
        assert "close" in found[0].message

    def test_try_finally_close_clean(self):
        assert (
            check(
                """
    from multiprocessing.shared_memory import SharedMemory

    def fine(n):
        shm = SharedMemory(create=True, size=n)
        try:
            shm.buf[0] = 1
        finally:
            shm.close()
    """,
                PARALLEL_PATH,
            )
            == []
        )

    def test_return_escape_is_ownership_transfer(self):
        assert (
            check(
                """
    from multiprocessing.shared_memory import SharedMemory

    def make(n):
        shm = SharedMemory(create=True, size=n)
        return shm
    """,
                PARALLEL_PATH,
            )
            == []
        )

    def test_early_return_path_leaks(self):
        found = check(
            """
    from multiprocessing.shared_memory import SharedMemory

    def sometimes(n, fast):
        shm = SharedMemory(create=True, size=n)
        if fast:
            return None
        shm.close()
        return None
    """,
            PARALLEL_PATH,
        )
        assert codes(found) == ["SML015"]

    def test_attach_without_create_untracked(self):
        assert (
            check(
                """
    from multiprocessing.shared_memory import SharedMemory

    def borrow(name):
        shm = SharedMemory(name=name)
        return bytes(shm.buf[:4])
    """,
                PARALLEL_PATH,
            )
            == []
        )

    def test_unsealed_writer_flagged(self):
        found = check(
            """
    from repro.parallel.arena import ArenaWriter

    def fill(desc, rows):
        writer = ArenaWriter(desc)
        for row in rows:
            writer.put_record(row)
    """,
            PARALLEL_PATH,
        )
        assert codes(found) == ["SML015"]
        assert "seal" in found[0].message

    def test_sealed_writer_clean(self):
        assert (
            check(
                """
    from repro.parallel.arena import ArenaWriter

    def fill(desc, rows):
        writer = ArenaWriter(desc)
        try:
            for row in rows:
                writer.put_record(row)
        finally:
            writer.seal()
    """,
                PARALLEL_PATH,
            )
            == []
        )

    def test_unlink_on_attached_segment_flagged(self):
        found = check(
            """
    from multiprocessing.shared_memory import SharedMemory

    def borrow(name):
        shm = SharedMemory(name=name)
        try:
            return bytes(shm.buf[:4])
        finally:
            shm.close()
            shm.unlink()
    """,
            PARALLEL_PATH,
        )
        assert codes(found) == ["SML015"]
        assert "unlink" in found[0].message

    def test_suppression(self):
        found = check(
            """
    from multiprocessing.shared_memory import SharedMemory

    def leak(n):
        shm = SharedMemory(create=True, size=n)  # smatch-lint: disable=SML015
        shm.buf[0] = 1
    """,
            PARALLEL_PATH,
        )
        assert found == []


# ---------------------------------------------------------------------------
# cross-module application (delegated mutation through the import graph)
# ---------------------------------------------------------------------------


STORE = """
    import threading

    class Store:
        def __init__(self):
            self._lock = threading.Lock()
            self._items = {}

        def add(self, k, v):
            with self._lock:
                self._items[k] = v

        def drain(self):
            with self._lock:
                self._drain_locked()

        def _drain_locked(self):
            self._items.clear()
"""

#: the lock-free twin: no lock fields, hence nothing to enforce
STORE_LOCKLESS = """
    class Store:
        def __init__(self):
            self._items = {}

        def add(self, k, v):
            self._items[k] = v

        def drain(self):
            self._drain_locked()

        def _drain_locked(self):
            self._items.clear()
"""

CONSUMER = """
    from repro.obs.store import Store


    def misuse():
        store = Store()
        store._items["k"] = 1
        return store
"""

HELPER_CONSUMER = """
    from repro.obs.store import Store


    def misuse():
        store = Store()
        store._drain_locked()
        return store
"""

LOCKED_CONSUMER = """
    from repro.obs.store import Store


    def proper():
        store = Store()
        with store._lock:
            store._items["k"] = 1
            store._drain_locked()
        return store
"""


def by_path(violations, fragment: str) -> list:
    return [v for v in violations if fragment in v.path]


class TestCrossModuleLockset:
    def test_delegated_mutation_flagged_at_the_caller(self, tmp_path):
        src = write_package(
            tmp_path,
            {
                "src/repro/obs/store.py": STORE,
                "src/repro/obs/user.py": CONSUMER,
            },
        )
        violations, _ = lint_paths([src])
        hits = by_path(violations, "user.py")
        assert codes(hits) == ["SML012"], "\n".join(v.render() for v in violations)
        assert "store._items" in hits[0].message
        assert "store._lock" in hits[0].message

    def test_locked_helper_call_flagged_at_the_caller(self, tmp_path):
        src = write_package(
            tmp_path,
            {
                "src/repro/obs/store.py": STORE,
                "src/repro/obs/user.py": HELPER_CONSUMER,
            },
        )
        violations, _ = lint_paths([src])
        hits = by_path(violations, "user.py")
        assert codes(hits) == ["SML012"]
        assert "_drain_locked" in hits[0].message

    def test_lock_held_caller_is_clean(self, tmp_path):
        src = write_package(
            tmp_path,
            {
                "src/repro/obs/store.py": STORE,
                "src/repro/obs/user.py": LOCKED_CONSUMER,
            },
        )
        violations, _ = lint_paths([src])
        assert violations == [], "\n".join(v.render() for v in violations)

    def test_cache_invalidation_on_concurrency_edit(self, tmp_path):
        # user.py never changes; toggling the *store's* lock must flip the
        # caller-side finding through the warm summary cache
        src = write_package(
            tmp_path,
            {
                "src/repro/obs/store.py": STORE,
                "src/repro/obs/user.py": CONSUMER,
            },
        )
        cache_dir = tmp_path / "cache"
        dirty, _ = lint_paths([src], cache_dir=cache_dir)
        assert codes(by_path(dirty, "user.py")) == ["SML012"]
        store_file = src / "repro" / "obs" / "store.py"
        store_file.write_text(textwrap.dedent(STORE_LOCKLESS), encoding="utf-8")
        clean, _ = lint_paths([src], cache_dir=cache_dir)
        assert clean == [], "\n".join(v.render() for v in clean)
        store_file.write_text(textwrap.dedent(STORE), encoding="utf-8")
        dirty_again, _ = lint_paths([src], cache_dir=cache_dir)
        assert codes(by_path(dirty_again, "user.py")) == ["SML012"]


# ---------------------------------------------------------------------------
# CLI surfaces: --lock-debug and --format sarif
# ---------------------------------------------------------------------------


class TestLockDebug:
    def test_dump_lists_facts_and_findings(self, tmp_path, capsys):
        target = tmp_path / "src" / "repro" / "obs" / "store.py"
        target.parent.mkdir(parents=True)
        target.write_text(
            textwrap.dedent(
                LOCKED_CACHE
                + """
        def peek(self, token):
            return self._entries.get(token)
    """
            ),
            encoding="utf-8",
        )
        assert main(["--lock-debug", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "class Cache" in out
        assert "locks[_lock]" in out
        assert "guarded[_entries]" in out
        assert "SML012@" in out


class TestSarifFormat:
    @pytest.fixture()
    def seeded_file(self, tmp_path):
        bad = tmp_path / "src" / "repro" / "crypto" / "bad.py"
        bad.parent.mkdir(parents=True)
        bad.write_text("import random\nx = 1 / 3\n", encoding="utf-8")
        return bad

    def test_sarif_shape(self, seeded_file, capsys):
        assert main(["--format", "sarif", str(seeded_file)]) == 1
        doc = json.loads(capsys.readouterr().out)
        assert doc["version"] == "2.1.0"
        run = doc["runs"][0]
        assert run["tool"]["driver"]["name"] == "smatch-lint"
        rule_ids = {rule["id"] for rule in run["tool"]["driver"]["rules"]}
        assert {"SML012", "SML013", "SML014", "SML015"} <= rule_ids
        assert all(result["level"] == "error" for result in run["results"])

    def test_round_trip_against_json_format(self, seeded_file, capsys):
        main(["--format", "json", str(seeded_file)])
        plain = json.loads(capsys.readouterr().out)
        main(["--format", "sarif", str(seeded_file)])
        sarif = json.loads(capsys.readouterr().out)
        expected = {
            (v["path"], v["line"], v["col"], v["code"], v["message"])
            for v in plain["violations"]
        }
        got = set()
        for result in sarif["runs"][0]["results"]:
            location = result["locations"][0]["physicalLocation"]
            got.add(
                (
                    location["artifactLocation"]["uri"],
                    location["region"]["startLine"],
                    location["region"]["startColumn"],
                    result["ruleId"],
                    result["message"]["text"],
                )
            )
        assert got == expected
        assert sarif["runs"][0]["properties"]["filesChecked"] == plain[
            "files_checked"
        ]

    def test_clean_tree_emits_empty_results(self, tmp_path, capsys):
        clean = tmp_path / "clean.py"
        clean.write_text("x = 1\n", encoding="utf-8")
        assert main(["--format", "sarif", str(clean)]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["runs"][0]["results"] == []


# ---------------------------------------------------------------------------
# live-tree gates for the new rules
# ---------------------------------------------------------------------------


class TestLiveTreeConcurrencyGates:
    def test_new_rules_are_listed(self, capsys):
        assert main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for code in ("SML012", "SML013", "SML014", "SML015"):
            assert code in out

    def test_no_file_wide_concurrency_waivers_in_runtime_packages(self):
        # acceptance bar: reviewed line-level waivers only in the packages
        # whose shared state the rules police
        for directory in ("parallel", "obs", "server"):
            for path in (REPO_ROOT / "src" / "repro" / directory).rglob("*.py"):
                text = path.read_text(encoding="utf-8")
                assert "disable-file" not in text, path

    def test_line_waivers_carry_a_rationale(self):
        # every concurrency waiver in src/ must say why (text after the
        # code list, set off so the directive parser does not eat it)
        for path in (REPO_ROOT / "src").rglob("*.py"):
            for line in path.read_text(encoding="utf-8").splitlines():
                if "smatch-lint: disable=SML01" not in line:
                    continue
                directive = line.split("smatch-lint: disable=", 1)[1]
                assert "—" in directive or " - " in directive, (path, line)


class TestSml015ShardLifecycle:
    """Shard-tier resources joined the SML015 creator/release pair set."""

    SHARD_PATH = "src/repro/server/sharding/widget.py"

    def test_leaked_wal_flagged(self):
        found = check(
            """
    def open_log(path):
        wal = ShardWal(path)
        wal.append_record(b"x")
        wal.commit()
    """,
            self.SHARD_PATH,
        )
        assert codes(found) == ["SML015"]
        assert "close" in found[0].message

    def test_closed_wal_clean(self):
        assert (
            check(
                """
    def open_log(path):
        wal = ShardWal(path)
        try:
            wal.append_record(b"x")
            wal.commit()
        finally:
            wal.close()
    """,
                self.SHARD_PATH,
            )
            == []
        )

    def test_returned_tier_is_ownership_transfer(self):
        assert (
            check(
                """
    def build(n):
        tier = ShardedTier(shards=n)
        return tier
    """,
                self.SHARD_PATH,
            )
            == []
        )

    def test_leaked_tier_and_state_flagged(self):
        found = check(
            """
    def probe(n, path, payloads):
        tier = ShardedTier(shards=n)
        state = ShardState(0, directory=path)
        tier.put_batch(payloads)
        state.apply_ops([("put", p) for p in payloads])
    """,
            self.SHARD_PATH,
        )
        assert codes(found) == ["SML015", "SML015"]

    def test_closed_process_shard_clean(self):
        assert (
            check(
                """
    def run(spec, ops):
        shard = ProcessShard(spec)
        try:
            return shard.apply(ops)
        finally:
            shard.close()
    """,
                self.SHARD_PATH,
            )
            == []
        )
