"""Tests for operation-count instrumentation."""

import threading

from repro.utils.instrument import (
    OpCounter,
    count_op,
    counting,
    current_counter,
    Stopwatch,
)


class TestCounting:
    def test_no_counter_outside_block(self):
        count_op("orphan")  # must not raise
        assert current_counter() is None

    def test_counts_inside_block(self):
        with counting() as c:
            count_op("x")
            count_op("x", 2)
            count_op("y")
        assert c.get("x") == 3
        assert c.get("y") == 1
        assert c.get("missing") == 0

    def test_nested_blocks_fold_into_parent(self):
        with counting() as outer:
            count_op("a")
            with counting() as inner:
                count_op("a", 5)
            assert inner.get("a") == 5
        assert outer.get("a") == 6

    def test_counter_restored_after_block(self):
        with counting() as outer:
            with counting():
                pass
            assert current_counter() is outer
        assert current_counter() is None

    def test_thread_isolation(self):
        seen = {}

        def worker():
            seen["thread"] = current_counter()

        with counting():
            t = threading.Thread(target=worker)
            t.start()
            t.join()
        assert seen["thread"] is None

    def test_as_dict_and_merge(self):
        a = OpCounter()
        a.add("x", 2)
        b = OpCounter()
        b.add("x")
        b.add("y")
        a.merge(b)
        assert a.as_dict() == {"x": 3, "y": 1}


class TestStopwatch:
    def test_accumulates(self):
        sw = Stopwatch()
        with sw.timing():
            pass
        first = sw.elapsed
        with sw.timing():
            pass
        assert sw.elapsed >= first

    def test_stop_without_start_raises(self):
        import pytest

        with pytest.raises(RuntimeError):
            Stopwatch().stop()

    def test_elapsed_ms(self):
        sw = Stopwatch()
        with sw.timing():
            pass
        assert sw.elapsed_ms == sw.elapsed * 1e3
