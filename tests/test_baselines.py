"""Tests for the baseline schemes: homoPM, PSI, naive OPE, Table-I rows."""

import pytest

from repro.baselines.base import SCHEME_CAPABILITIES
from repro.baselines.homopm import HomoPM
from repro.baselines.naive_ope import NaiveOpeScheme
from repro.baselines.psi import PsiMatcher, PsiParty
from repro.core.profile import Profile, ProfileSchema
from repro.crypto.fixtures import fixed_paillier_keypair
from repro.errors import ParameterError
from repro.utils.rand import SystemRandomSource


@pytest.fixture(scope="module")
def homo():
    rng = SystemRandomSource(seed=91)
    bits = HomoPM.default_modulus_bits(4, 16)
    return HomoPM(
        num_attributes=4,
        plaintext_bits=16,
        rng=rng,
        keypair=fixed_paillier_keypair(bits),
    )


class TestHomoPM:
    def test_distance_is_l2_squared(self, homo):
        a = [10, 20, 30, 40]
        b = [12, 20, 27, 40]
        query = homo.prepare_query(a)
        ct = homo.distance_ciphertext(query, b)
        expected = sum((x - y) ** 2 for x, y in zip(a, b))
        assert homo.keypair.decrypt(ct) == expected

    def test_zero_distance_for_identical(self, homo):
        a = [7, 8, 9, 10]
        query = homo.prepare_query(a)
        assert homo.keypair.decrypt(homo.distance_ciphertext(query, a)) == 0

    def test_top_k_ranks_by_distance(self, homo):
        a = [100, 100, 100, 100]
        candidates = {
            1: [100, 100, 100, 101],  # dist 1
            2: [100, 100, 100, 100],  # dist 0
            3: [200, 200, 200, 200],  # far
        }
        query = homo.prepare_query(a)
        encrypted = homo.match_all(query, candidates, blind=False)
        assert homo.top_k(encrypted, 2) == [2, 1]

    def test_blinding_preserves_ranking(self, homo):
        a = [5, 5, 5, 5]
        candidates = {1: [5, 5, 5, 6], 2: [5, 5, 5, 5], 3: [50, 5, 5, 5]}
        query = homo.prepare_query(a)
        encrypted = homo.match_all(query, candidates, blind=True)
        assert homo.top_k(encrypted, 3) == [2, 1, 3]

    def test_exclude_self(self, homo):
        a = [1, 1, 1, 1]
        query = homo.prepare_query(a)
        encrypted = homo.match_all(query, {1: a, 2: [2, 1, 1, 1]}, blind=False)
        assert homo.top_k(encrypted, 5, exclude=1) == [2]

    def test_modulus_sizing(self):
        assert HomoPM.default_modulus_bits(6, 64) == 256
        assert HomoPM.default_modulus_bits(6, 1024) == 2176
        assert HomoPM.default_modulus_bits(17, 2048) == 4224

    def test_value_range_enforced(self, homo):
        with pytest.raises(ParameterError):
            homo.prepare_query([1 << 16, 0, 0, 0])
        with pytest.raises(ParameterError):
            homo.prepare_query([1, 2, 3])

    def test_query_wire_bits(self, homo):
        query = homo.prepare_query([1, 2, 3, 4])
        n_bits = homo.keypair.public.n.bit_length()
        assert query.wire_bits == n_bits + 2 * 4 * 2 * n_bits


class TestPsi:
    def test_intersection_cardinality(self):
        rng = SystemRandomSource(seed=92)
        matcher = PsiMatcher()
        score = matcher.match_score([1, 2, 3, 4], [1, 2, 9, 4], rng=rng)
        assert score == 3  # positions 0, 1, 3 agree

    def test_disjoint_profiles(self):
        rng = SystemRandomSource(seed=93)
        matcher = PsiMatcher()
        assert matcher.match_score([1, 2], [3, 4], rng=rng) == 0

    def test_attribute_position_matters(self):
        """Same value at different positions is NOT a shared attribute."""
        rng = SystemRandomSource(seed=94)
        matcher = PsiMatcher()
        assert matcher.match_score([7, 8], [8, 7], rng=rng) == 0

    def test_not_fine_grained(self):
        """PSI cannot distinguish a near-miss from a far miss (Table I)."""
        rng = SystemRandomSource(seed=95)
        matcher = PsiMatcher()
        base = [10, 20, 30]
        near = [10, 20, 31]
        far = [10, 20, 3000]
        assert matcher.match_score(base, near, rng=rng) == matcher.match_score(
            base, far, rng=rng
        )

    def test_commutativity_of_encryption(self):
        rng = SystemRandomSource(seed=96)
        items = PsiMatcher.attribute_items([1, 2, 3])
        a = PsiParty(items, rng=rng)
        b = PsiParty(items, rng=rng)
        ab = set(b.second_pass(a.first_pass()))
        ba = set(a.second_pass(b.first_pass()))
        assert ab == ba

    def test_empty_set_rejected(self):
        with pytest.raises(ParameterError):
            PsiParty([])


class TestNaiveOpe:
    SCHEMA = ProfileSchema.uniform(["a", "b"], 256)

    def test_matching_works_functionally(self):
        rng = SystemRandomSource(seed=97)
        scheme = NaiveOpeScheme(plaintext_bits=8, rng=rng)
        profiles = [
            Profile(1, self.SCHEMA, (10, 10)),
            Profile(2, self.SCHEMA, (11, 11)),
            Profile(3, self.SCHEMA, (200, 200)),
        ]
        cts = scheme.encrypt_population(profiles)
        assert scheme.match(cts, 1, 1) == [2]

    def test_single_shared_key_exposure(self):
        """The key-sharing failure: one leak decrypts everyone."""
        rng = SystemRandomSource(seed=98)
        scheme = NaiveOpeScheme(plaintext_bits=8, rng=rng)
        profiles = [Profile(i, self.SCHEMA, (i, i)) for i in range(1, 6)]
        cts = scheme.encrypt_population(profiles)
        leaked = scheme.leak_key()
        for profile in profiles:
            recovered = [
                scheme.decrypt_with_key(leaked, ct)
                for ct in cts[profile.user_id]
            ]
            assert recovered == list(profile.values)

    def test_value_out_of_domain(self):
        rng = SystemRandomSource(seed=99)
        scheme = NaiveOpeScheme(plaintext_bits=4, rng=rng)
        with pytest.raises(ParameterError):
            scheme.encrypt_profile(Profile(1, self.SCHEMA, (100, 0)))

    def test_deterministic_ciphertexts_leak_equality(self):
        rng = SystemRandomSource(seed=100)
        scheme = NaiveOpeScheme(plaintext_bits=8, rng=rng)
        a = scheme.encrypt_profile(Profile(1, self.SCHEMA, (5, 9)))
        b = scheme.encrypt_profile(Profile(2, self.SCHEMA, (5, 9)))
        assert a == b  # the landmark-frequency leakage vector


class TestCapabilities:
    def test_table1_has_six_schemes(self):
        assert len(SCHEME_CAPABILITIES) == 6

    def test_smatch_row(self):
        row = SCHEME_CAPABILITIES["S-MATCH"].row()
        assert row["Category"] == "SE"
        assert row["Security"] == "M/HBC"
        assert row["Verification"] == "yes"
        assert row["Fine-grained Match"] == "yes"
        assert row["Fuzzy Match"] == "yes"

    def test_only_smatch_and_zll13_verifiable(self):
        verifiable = [
            name
            for name, cap in SCHEME_CAPABILITIES.items()
            if cap.verification
        ]
        assert sorted(verifiable) == ["S-MATCH", "ZLL13"]

    def test_implemented_schemes(self):
        implemented = {
            n for n, c in SCHEME_CAPABILITIES.items() if c.implemented
        }
        assert implemented == set(SCHEME_CAPABILITIES)  # every Table-I row

    def test_only_smatch_fuzzy(self):
        fuzzy = [n for n, c in SCHEME_CAPABILITIES.items() if c.fuzzy]
        assert fuzzy == ["S-MATCH"]
