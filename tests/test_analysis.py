"""Tests for growth-law fitting and crossover detection."""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis import crossover_point, loglog_slope, scaling_factor
from repro.errors import ParameterError


class TestLogLogSlope:
    def test_linear(self):
        xs = [1, 2, 4, 8]
        assert loglog_slope(xs, [3 * x for x in xs]) == pytest.approx(1.0)

    def test_quadratic(self):
        xs = [1, 2, 4, 8, 16]
        assert loglog_slope(xs, [x * x for x in xs]) == pytest.approx(2.0)

    def test_cubic_with_constant(self):
        xs = [64, 128, 256, 512]
        assert loglog_slope(xs, [0.001 * x**3 for x in xs]) == pytest.approx(3.0)

    def test_flat(self):
        assert loglog_slope([1, 2, 4], [5, 5, 5]) == pytest.approx(0.0)

    @given(
        st.floats(min_value=0.2, max_value=4.0),
        st.floats(min_value=0.01, max_value=100.0),
    )
    @settings(max_examples=30)
    def test_recovers_exponent(self, exponent, coeff):
        xs = [2.0**i for i in range(1, 7)]
        ys = [coeff * x**exponent for x in xs]
        assert loglog_slope(xs, ys) == pytest.approx(exponent, rel=1e-6)

    def test_validation(self):
        with pytest.raises(ParameterError):
            loglog_slope([1], [1])
        with pytest.raises(ParameterError):
            loglog_slope([1, 2], [0, 1])
        with pytest.raises(ParameterError):
            loglog_slope([1, 2], [1])
        with pytest.raises(ParameterError):
            loglog_slope([3, 3], [1, 2])


class TestCrossover:
    def test_crossing_detected(self):
        xs = [1, 2, 4, 8]
        flat = [10, 10, 10, 10]
        growing = [1, 5, 25, 125]
        x_star = crossover_point(xs, flat, growing)
        assert x_star is not None
        assert 2 < x_star < 4  # growing passes 10 between x=2 and x=4

    def test_no_crossing(self):
        xs = [1, 2, 4]
        assert crossover_point(xs, [1, 1, 1], [10, 20, 30]) is None
        assert crossover_point(xs, [10, 20, 30], [1, 1, 1]) is None

    def test_exact_tie_point(self):
        xs = [1, 2, 4]
        x_star = crossover_point(xs, [5, 10, 20], [1, 10, 100])
        assert x_star == pytest.approx(2.0)

    def test_interpolation_is_logspace(self):
        xs = [64, 2048]
        a = [100.0, 100.0]
        b = [10.0, 1000.0]
        x_star = crossover_point(xs, a, b)
        # the log-space interpolant of b crosses the flat line of a at the
        # geometric midpoint: sqrt(64 * 2048)
        assert x_star == pytest.approx(math.sqrt(64 * 2048), rel=0.01)


class TestScalingFactor:
    def test_constant_ratio(self):
        assert scaling_factor([1, 2, 4], [10, 20, 40]) == pytest.approx(10.0)

    def test_geometric_mean(self):
        assert scaling_factor([1, 1], [2, 8]) == pytest.approx(4.0)

    def test_validation(self):
        with pytest.raises(ParameterError):
            scaling_factor([], [])
        with pytest.raises(ParameterError):
            scaling_factor([1, -1], [1, 1])


class TestOnRealMeasurements:
    def test_homopm_growth_superquadratic(self):
        """homoPM's client cost grows with exponent > 1.5 in k (its modulus
        scales with k and modexp is superlinear in the modulus)."""
        from repro.experiments.fig4cde import client_costs_ms, DATASETS

        xs = [64, 256, 1024]
        ys = [
            client_costs_ms(DATASETS["Infocom06"], k, repeats=1)["homoPM"]
            for k in xs
        ]
        assert loglog_slope(xs, ys) > 1.5

    def test_pm_growth_sublinear_or_mild(self):
        from repro.experiments.fig4cde import client_costs_ms, DATASETS

        xs = [64, 256, 1024]
        ys = [
            client_costs_ms(DATASETS["Infocom06"], k, repeats=1)["PM"]
            for k in xs
        ]
        assert loglog_slope(xs, ys) < 1.2
