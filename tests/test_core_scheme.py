"""Tests for the S-MATCH scheme facade (Definition 5)."""

import pytest

from repro.core.scheme import EncryptedProfile, SMatchParams
from repro.errors import ParameterError


class TestParams:
    def test_fuzzy_and_ope_params(self, small_schema):
        params = SMatchParams(schema=small_schema, theta=8, plaintext_bits=64)
        assert params.fuzzy_params.num_attributes == 6
        assert params.fuzzy_params.theta == 8
        assert params.ope_params.plaintext_bits == 64
        assert params.ope_params.expansion_bits == 0

    def test_validation(self, small_schema):
        with pytest.raises(ParameterError):
            SMatchParams(schema=small_schema, query_k=0)
        with pytest.raises(ParameterError):
            SMatchParams(schema=small_schema, order_method="bogus")


class TestEncryptedProfile:
    def test_auth_binding_checked(self, enrolled):
        _, _, uploads, _ = enrolled
        payload = next(iter(uploads.values()))
        with pytest.raises(ParameterError):
            EncryptedProfile(
                user_id=payload.user_id + 1,
                key_index=payload.key_index,
                chain=payload.chain,
                auth=payload.auth,
            )

    def test_wire_bits_formula(self, enrolled):
        _, _, uploads, _ = enrolled
        payload = next(iter(uploads.values()))
        bits = payload.wire_bits(id_bits=32, ciphertext_bits=64)
        expected = 32 + 256 + payload.auth.wire_size * 8 + 64 * len(payload.chain)
        assert bits == expected


class TestPipeline:
    def test_chain_length_matches_schema(self, enrolled):
        scheme, users, uploads, _ = enrolled
        for payload in uploads.values():
            assert len(payload.chain) == len(scheme.params.schema)

    def test_ciphertexts_in_ope_range(self, enrolled):
        scheme, _, uploads, _ = enrolled
        limit = 1 << scheme.params.ope_params.ciphertext_bits
        for payload in uploads.values():
            assert all(0 <= ct < limit for ct in payload.chain)

    def test_same_cluster_same_group(self, enrolled):
        _, users, uploads, _ = enrolled
        by_cat = {}
        for u in users:
            by_cat.setdefault(u.categorical, []).append(u.profile.user_id)
        multi = [ids for ids in by_cat.values() if len(ids) > 1]
        assert multi, "population must contain clusters"
        agreements = 0
        total = 0
        for ids in multi:
            indexes = {uploads[i].key_index for i in ids}
            total += 1
            if len(indexes) == 1:
                agreements += 1
        assert agreements / total > 0.6

    def test_distinct_clusters_distinct_groups(self, enrolled):
        _, users, uploads, _ = enrolled
        reps = {}
        for u in users:
            reps.setdefault(u.categorical, u.profile.user_id)
        indexes = [uploads[uid].key_index for uid in reps.values()]
        # distinct categorical profiles should rarely share a key index
        assert len(set(indexes)) > len(indexes) // 2

    def test_match_in_group_returns_cluster_members(self, enrolled):
        scheme, users, uploads, _ = enrolled
        by_index = {}
        for uid, payload in uploads.items():
            by_index.setdefault(payload.key_index, {})[uid] = payload
        group = max(by_index.values(), key=len)
        if len(group) < 3:
            pytest.skip("population produced no group of size >= 3")
        query_user = next(iter(group))
        result = scheme.match_in_group(group, query_user, k=2)
        assert len(result) == 2
        assert query_user not in result
        assert set(result) <= set(group)

    def test_match_within_distance(self, enrolled):
        scheme, _, uploads, _ = enrolled
        by_index = {}
        for uid, payload in uploads.items():
            by_index.setdefault(payload.key_index, {})[uid] = payload
        group = max(by_index.values(), key=len)
        if len(group) < 2:
            pytest.skip("no non-trivial group")
        query_user = next(iter(group))
        huge = scheme.match_within_distance(group, query_user, 10**9)
        assert set(huge) == set(group) - {query_user}

    def test_verification_within_group(self, enrolled):
        scheme, _, uploads, keys = enrolled
        by_index = {}
        for uid, payload in uploads.items():
            by_index.setdefault(payload.key_index, []).append(uid)
        group = max(by_index.values(), key=len)
        if len(group) < 2:
            pytest.skip("no non-trivial group")
        a, b = group[0], group[1]
        assert scheme.verify(uploads[b].auth, keys[a])

    def test_verification_across_groups_fails(self, enrolled):
        scheme, _, uploads, keys = enrolled
        indexes = {}
        for uid, payload in uploads.items():
            indexes.setdefault(payload.key_index, []).append(uid)
        if len(indexes) < 2:
            pytest.skip("population collapsed to one group")
        groups = list(indexes.values())
        a = groups[0][0]
        b = groups[1][0]
        assert not scheme.verify(uploads[b].auth, keys[a])

    def test_encrypt_consistent_for_same_mapped_values(self, enrolled, population):
        scheme, users, _, keys = enrolled
        profile = users[0].profile
        key = keys[profile.user_id]
        mapped = scheme.init_data(profile)
        assert scheme.encrypt(profile, key, mapped) == scheme.encrypt(
            profile, key, mapped
        )

    def test_init_data_one_to_n(self, enrolled):
        scheme, users, _, _ = enrolled
        profile = users[0].profile
        outputs = {tuple(scheme.init_data(profile)) for _ in range(5)}
        assert len(outputs) > 1  # one-to-N mapping is randomized

    def test_order_preserved_through_pipeline(self, enrolled):
        """Raw value order survives mapping + OPE within one key group."""
        scheme, users, _, keys = enrolled
        profile = users[0].profile
        key = keys[profile.user_id]
        lo = profile.with_values(tuple(0 for _ in profile.values))
        hi = profile.with_values(
            tuple(s.cardinality - 1 for s in profile.schema.attributes)
        )
        lo_chain = scheme.encrypt(lo, key)
        hi_chain = scheme.encrypt(hi, key)
        assert sum(lo_chain) < sum(hi_chain)
