"""Tests for the Definition-4 matching algorithms."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.matching import (
    knn_match,
    max_distance_match,
    rank_sum,
    score_table,
    value_sum,
)
from repro.errors import MatchingError, ParameterError


class TestRankSum:
    def test_empty(self):
        assert rank_sum({}) == {}

    def test_single_user(self):
        assert rank_sum({1: [10, 20]}) == {1: 0}

    def test_dense_ranks(self):
        chains = {1: [10, 10], 2: [20, 20], 3: [10, 20]}
        scores = rank_sum(chains)
        assert scores == {1: 0, 2: 2, 3: 1}

    def test_ties_share_rank(self):
        chains = {1: [5], 2: [5], 3: [9]}
        scores = rank_sum(chains)
        assert scores[1] == scores[2] == 0
        assert scores[3] == 1

    def test_inconsistent_lengths(self):
        with pytest.raises(ParameterError):
            rank_sum({1: [1, 2], 2: [1]})

    @given(
        st.dictionaries(
            st.integers(min_value=1, max_value=50),
            st.lists(st.integers(min_value=0, max_value=1000), min_size=3, max_size=3),
            min_size=2,
            max_size=10,
        )
    )
    @settings(max_examples=30)
    def test_rank_invariant_under_monotone_map(self, chains):
        """Ranks depend only on order — the OPE-replaceability property."""
        mapped = {
            u: [v * 7 + 13 for v in chain] for u, chain in chains.items()
        }
        assert rank_sum(chains) == rank_sum(mapped)


class TestWeightedMatching:
    def test_uniform_weights_match_unweighted_order(self):
        chains = {1: [10, 0], 2: [20, 5], 3: [30, 9]}
        plain = rank_sum(chains)
        weighted = rank_sum(chains, weights=[1.0, 1.0])
        # same ordering (weighted values are scaled by the fixed point)
        assert sorted(plain, key=plain.get) == sorted(
            weighted, key=weighted.get
        )

    def test_zero_weight_ignores_attribute(self):
        chains = {1: [10, 999], 2: [20, 0], 3: [30, 500]}
        scores = rank_sum(chains, weights=[1.0, 0.0])
        assert scores[1] < scores[2] < scores[3]

    def test_heavy_weight_dominates(self):
        # attribute 1 disagrees with attribute 0; weighting decides
        chains = {"q": [0, 0], "a": [1, 9], "b": [9, 1]}
        by_first = knn_match(chains, "q", 1, weights=[10.0, 0.1])
        by_second = knn_match(chains, "q", 1, weights=[0.1, 10.0])
        assert by_first == ["a"]
        assert by_second == ["b"]

    def test_weighted_value_sum(self):
        chains = {1: [2, 3]}
        scores = value_sum(chains, weights=[1.0, 2.0])
        assert scores[1] == 1000 * 2 + 2000 * 3

    def test_weight_validation(self):
        chains = {1: [1, 2], 2: [3, 4]}
        with pytest.raises(ParameterError):
            rank_sum(chains, weights=[1.0])
        with pytest.raises(ParameterError):
            rank_sum(chains, weights=[-1.0, 1.0])
        with pytest.raises(ParameterError):
            rank_sum(chains, weights=[0.0, 0.0])

    def test_weighted_max_distance(self):
        chains = {1: [0, 0], 2: [1, 50], 3: [50, 1]}
        near = max_distance_match(
            chains, 1, 1500, method="rank", weights=[1.0, 0.1]
        )
        assert 2 in near and 3 not in near


class TestValueSum:
    def test_paper_example(self):
        """User A 12|8 -> 20, B 34|2 -> 36, C 50|48 -> 98; A matches B."""
        chains = {"A": [12, 8], "B": [34, 2], "C": [50, 48]}
        scores = value_sum(chains)
        assert scores == {"A": 20, "B": 36, "C": 98}
        assert knn_match(chains, "A", 1, method="value") == ["B"]

    def test_dispatch(self):
        chains = {1: [1], 2: [5]}
        assert score_table(chains, "value") == value_sum(chains)
        assert score_table(chains, "rank") == rank_sum(chains)
        with pytest.raises(ParameterError):
            score_table(chains, "nope")


class TestKnn:
    CHAINS = {i: [i * 10, i * 10] for i in range(1, 8)}

    def test_returns_k_nearest(self):
        result = knn_match(self.CHAINS, 4, 2)
        assert set(result) == {3, 5}

    def test_excludes_query_user(self):
        assert 4 not in knn_match(self.CHAINS, 4, 6)

    def test_k_larger_than_group(self):
        assert len(knn_match(self.CHAINS, 4, 100)) == 6

    def test_unknown_user(self):
        with pytest.raises(MatchingError):
            knn_match(self.CHAINS, 99, 2)

    def test_invalid_k(self):
        with pytest.raises(ParameterError):
            knn_match(self.CHAINS, 4, 0)

    def test_deterministic_tie_break(self):
        chains = {1: [10], 2: [20], 3: [20], 4: [30]}
        assert knn_match(chains, 1, 2) == knn_match(chains, 1, 2)


class TestMaxDistance:
    CHAINS = {i: [i * 10] for i in range(1, 6)}

    def test_radius_zero(self):
        chains = {1: [5], 2: [5], 3: [9]}
        assert max_distance_match(chains, 1, 0) == [2]

    def test_radius_includes_near(self):
        result = max_distance_match(self.CHAINS, 3, 1)
        assert set(result) == {2, 4}

    def test_negative_radius(self):
        with pytest.raises(ParameterError):
            max_distance_match(self.CHAINS, 3, -1)

    def test_sorted_by_distance(self):
        chains = {1: [0], 2: [3], 3: [1], 4: [10]}
        result = max_distance_match(chains, 1, 5, method="value")
        assert result == [3, 2]
