"""Tests for the fuzzy-vector extractor (RSD step of Keygen)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ParameterError
from repro.rs.fuzzy import FuzzyExtractor, FuzzyParams
from repro.utils.rand import SystemRandomSource

PARAMS = FuzzyParams(num_attributes=6, theta=8)


@pytest.fixture(scope="module")
def fx():
    return FuzzyExtractor(PARAMS)


@pytest.fixture(scope="module")
def anchored(fx):
    """(codeword, center_values) with the center quantizing to the codeword."""
    rng = SystemRandomSource(seed=21)
    cw = fx.random_codeword(rng)
    values = fx.codeword_center_values(cw, 1 << 16)
    return cw, values


class TestParams:
    def test_defaults(self):
        assert PARAMS.resolved_step == 9
        assert PARAMS.resolved_parity == 4
        assert PARAMS.tolerated_errors == 2

    def test_explicit_parity(self):
        p = FuzzyParams(num_attributes=17, theta=8, parity_symbols=10)
        assert p.tolerated_errors == 5

    def test_odd_parity_rejected(self):
        with pytest.raises(ParameterError):
            FuzzyParams(num_attributes=6, theta=8, parity_symbols=3)

    def test_parity_leaves_message_symbols(self):
        with pytest.raises(ParameterError):
            FuzzyParams(num_attributes=3, theta=8, parity_symbols=4)

    def test_quant_step_override(self):
        p = FuzzyParams(num_attributes=6, theta=8, quant_step=4)
        assert p.resolved_step == 4


class TestQuantize:
    def test_bucketing(self, fx):
        step = PARAMS.resolved_step
        assert fx.quantize([0] * 6) == [0] * 6
        assert fx.quantize([step] * 6) == [1] * 6
        assert fx.quantize([step - 1] * 6) == [0] * 6

    def test_wraps_at_field_size(self, fx):
        big = PARAMS.resolved_step * 1024
        assert fx.quantize([big] * 6) == [0] * 6

    def test_negative_rejected(self, fx):
        with pytest.raises(ParameterError):
            fx.quantize([-1, 0, 0, 0, 0, 0])

    def test_wrong_length_rejected(self, fx):
        with pytest.raises(ParameterError):
            fx.quantize([1, 2, 3])


class TestFuzzyVector:
    def test_center_decodes_to_codeword(self, fx, anchored):
        cw, values = anchored
        assert fx.fuzzy_vector(values) == tuple(cw)

    def test_within_theta_same_vector(self, fx, anchored):
        cw, values = anchored
        shifted = [v + 4 for v in values]
        assert fx.fuzzy_vector(shifted) == tuple(cw)

    def test_up_to_t_boundary_flips_corrected(self, fx, anchored):
        cw, values = anchored
        # push two attributes across their bucket boundary
        perturbed = list(values)
        perturbed[0] += PARAMS.resolved_step
        perturbed[3] -= PARAMS.resolved_step
        assert fx.fuzzy_vector(perturbed) == tuple(cw)

    def test_more_than_t_flips_diverge(self, fx, anchored):
        cw, values = anchored
        perturbed = [v + PARAMS.resolved_step for v in values[:3]] + list(
            values[3:]
        )
        assert fx.fuzzy_vector(perturbed) != tuple(cw)

    def test_far_profile_different_vector(self, fx, anchored):
        cw, values = anchored
        far = [v + 50 * PARAMS.resolved_step for v in values]
        assert fx.fuzzy_vector(far) != tuple(cw)

    def test_unanchored_falls_back_to_quantized(self, fx):
        # a profile not near any codeword keeps its raw quantized vector
        values = [1000, 2000, 3000, 4000, 5000, 6000]
        vec = fx.fuzzy_vector(values)
        if not fx.code.is_codeword(list(vec)):
            assert vec == tuple(fx.quantize(values))

    @given(base=st.integers(min_value=0, max_value=10**6))
    @settings(max_examples=30)
    def test_deterministic(self, fx, base):
        values = [base + i for i in range(6)]
        assert fx.fuzzy_vector(values) == fx.fuzzy_vector(values)


class TestKeyMaterial:
    def test_same_vector_same_key(self, fx, anchored):
        _, values = anchored
        assert fx.key_material(values) == fx.key_material(
            [v + 3 for v in values]
        )

    def test_different_vector_different_key(self, fx, anchored):
        _, values = anchored
        far = [v + 1000 for v in values]
        assert fx.key_material(values) != fx.key_material(far)

    def test_key_is_32_bytes(self, fx, anchored):
        _, values = anchored
        assert len(fx.key_material(values)) == 32


class TestBoundaryErasures:
    def test_marks_near_boundary_positions(self, fx):
        step = PARAMS.resolved_step
        values = [0, step - 1, step // 2, 5 * step + step // 2, 1, step]
        marked = fx.boundary_erasures(values, margin=2)
        assert 0 in marked  # offset 0
        assert 1 in marked  # offset step-1
        assert 2 not in marked  # mid-bucket

    def test_respects_budget_cap(self, fx):
        values = [0] * 6  # every position is at a boundary
        marked = fx.boundary_erasures(values, margin=2)
        assert len(marked) <= fx.code.n_parity // 2

    def test_negative_margin_rejected(self, fx):
        with pytest.raises(ParameterError):
            fx.boundary_erasures([0] * 6, margin=-1)

    def test_erasures_rescue_boundary_flip(self, fx, anchored):
        cw, values = anchored
        step = PARAMS.resolved_step
        # push three attributes just across the boundary (> t errors), but
        # two of them are erasure-markable
        perturbed = list(values)
        for i in range(3):
            perturbed[i] = values[i] + (step - step // 2)  # to bucket edge
        erasures = fx.boundary_erasures(perturbed, margin=1)
        # with erasures the decode has strictly more budget
        assert len(erasures) >= 0  # structural sanity
