"""Tests for the networked OPRF key service and the remote keygen client."""

import pytest

from repro.client.remote_keygen import RemoteKeygenClient
from repro.core.keygen import ProfileKeygen
from repro.core.profile import Profile, ProfileSchema
from repro.errors import ProtocolError
from repro.net.channel import SecureChannel
from repro.net.messages import QueryRequest, decode_message
from repro.net.oprf_messages import (
    OprfKeyInfo,
    OprfKeyInfoRequest,
    OprfRequest,
    OprfResponse,
)
from repro.net.transport import InMemoryNetwork
from repro.rs.fuzzy import FuzzyExtractor, FuzzyParams
from repro.server.keyservice import KeyGenService, RateLimitExceeded
from repro.utils.rand import SystemRandomSource

SCHEMA = ProfileSchema.uniform(["a", "b", "c", "d", "e", "f"], 1 << 16)
PARAMS = FuzzyParams(num_attributes=6, theta=8)


@pytest.fixture(scope="module")
def service(oprf_server):
    return KeyGenService(oprf_server=oprf_server, max_requests_per_window=5)


def make_link():
    network = InMemoryNetwork()
    client_end = network.endpoint("phone")
    service_end = network.endpoint("keyservice")
    return SecureChannel.pair(client_end, service_end, b"kdf-session")


def pump(service, channel, client="phone", now=0):
    """Serve exactly one pending request."""
    message = channel.recv()
    response = service.handle_message(client, message, now=now)
    channel.send(response)


class TestMessages:
    def test_roundtrips(self):
        for msg in (
            OprfRequest(request_id=1, blinded=12345),
            OprfResponse(request_id=1, evaluated=999),
            OprfKeyInfoRequest(request_id=2),
            OprfKeyInfo(request_id=2, modulus=15, exponent=65537),
        ):
            assert decode_message(msg.encode()) == msg


class TestKeyGenService:
    def test_key_info(self, service, oprf_server):
        info = service.handle_message(
            "c1", OprfKeyInfoRequest(request_id=1)
        )
        assert isinstance(info, OprfKeyInfo)
        assert info.modulus == oprf_server.public_key.n

    def test_evaluation_matches_direct(self, oprf_server):
        service = KeyGenService(oprf_server=oprf_server)
        blinded = 0x1234567
        response = service.handle_message(
            "c1", OprfRequest(request_id=9, blinded=blinded)
        )
        assert response.evaluated == oprf_server.evaluate_blinded(blinded)

    def test_rate_limit_enforced(self, oprf_server):
        service = KeyGenService(
            oprf_server=oprf_server,
            max_requests_per_window=3,
            window_seconds=100,
        )
        for i in range(3):
            service.handle_message(
                "attacker", OprfRequest(request_id=i, blinded=7), now=0
            )
        with pytest.raises(RateLimitExceeded):
            service.handle_message(
                "attacker", OprfRequest(request_id=99, blinded=7), now=50
            )
        assert service.rejections == 1

    def test_rate_limit_per_client(self, oprf_server):
        service = KeyGenService(
            oprf_server=oprf_server, max_requests_per_window=1
        )
        service.handle_message("a", OprfRequest(request_id=1, blinded=7))
        # a different client still has budget
        service.handle_message("b", OprfRequest(request_id=1, blinded=7))
        with pytest.raises(RateLimitExceeded):
            service.handle_message("a", OprfRequest(request_id=2, blinded=7))

    def test_window_resets(self, oprf_server):
        service = KeyGenService(
            oprf_server=oprf_server,
            max_requests_per_window=1,
            window_seconds=10,
        )
        service.handle_message("a", OprfRequest(request_id=1, blinded=7), now=0)
        service.handle_message("a", OprfRequest(request_id=2, blinded=7), now=11)
        assert service.evaluations_served == 2

    def test_remaining_budget(self, oprf_server):
        service = KeyGenService(
            oprf_server=oprf_server, max_requests_per_window=4
        )
        assert service.remaining_budget("x") == 4
        service.handle_message("x", OprfRequest(request_id=1, blinded=7))
        assert service.remaining_budget("x") == 3

    def test_rejects_foreign_messages(self, service):
        with pytest.raises(ProtocolError):
            service.handle_message(
                "c1", QueryRequest(query_id=1, timestamp=0, user_id=1)
            )


class TestRemoteKeygen:
    def test_remote_matches_local_derivation(self, oprf_server):
        service = KeyGenService(oprf_server=oprf_server)
        client_ch, service_ch = make_link()
        rng = SystemRandomSource(seed=401)
        remote = RemoteKeygenClient(PARAMS, client_ch, rng=rng)

        # fetch parameters
        rid = remote.request_public_key()
        pump(service, service_ch)
        remote.receive_public_key(rid)

        # build an anchored profile so local/remote compare exactly
        fx = FuzzyExtractor(PARAMS)
        cw = fx.random_codeword(rng)
        profile = Profile(
            5, SCHEMA, tuple(fx.codeword_center_values(cw, 1 << 16))
        )

        state = remote.begin_derivation(profile)
        pump(service, service_ch)
        remote_key = remote.finish_derivation(state)

        local = ProfileKeygen(PARAMS, oprf_server, rng=rng)
        local_key = local.derive(profile)
        assert remote_key.key == local_key.key
        assert remote_key.index == local_key.index

    def test_public_key_required_first(self, oprf_server):
        client_ch, _ = make_link()
        remote = RemoteKeygenClient(PARAMS, client_ch)
        profile = Profile(1, SCHEMA, tuple([100] * 6))
        with pytest.raises(ProtocolError):
            remote.begin_derivation(profile)

    def test_mismatched_response_id_rejected(self, oprf_server):
        service = KeyGenService(oprf_server=oprf_server)
        client_ch, service_ch = make_link()
        rng = SystemRandomSource(seed=402)
        remote = RemoteKeygenClient(PARAMS, client_ch, rng=rng)
        rid = remote.request_public_key()
        pump(service, service_ch)
        remote.receive_public_key(rid)

        profile = Profile(1, SCHEMA, tuple([100] * 6))
        state = remote.begin_derivation(profile)
        request = service_ch.recv()
        # answer with a wrong request id
        service_ch.send(
            OprfResponse(
                request_id=request.request_id + 7,
                evaluated=oprf_server.evaluate_blinded(request.blinded),
            )
        )
        with pytest.raises(ProtocolError):
            remote.finish_derivation(state)

    def test_blinded_values_unlinkable(self, oprf_server):
        """Two derivations of the same profile send different blinded values."""
        service = KeyGenService(oprf_server=oprf_server)
        client_ch, service_ch = make_link()
        rng = SystemRandomSource(seed=403)
        remote = RemoteKeygenClient(PARAMS, client_ch, rng=rng)
        rid = remote.request_public_key()
        pump(service, service_ch)
        remote.receive_public_key(rid)

        profile = Profile(1, SCHEMA, tuple([321] * 6))
        seen = []
        for _ in range(2):
            state = remote.begin_derivation(profile)
            request = service_ch.recv()
            seen.append(request.blinded)
            service_ch.send(
                OprfResponse(
                    request_id=request.request_id,
                    evaluated=oprf_server.evaluate_blinded(request.blinded),
                )
            )
            remote.finish_derivation(state)
        assert seen[0] != seen[1]
