"""Tests for the executable PR-OKPA / PR-KK security games and bounds."""

import math

import pytest

from repro.attacks.games import (
    PrKkGame,
    PrOkpaGame,
    required_entropy_bits,
    theorem1_advantage,
    theorem1_security_level,
)
from repro.core.entropy import AttributeMapping
from repro.crypto.ope import OPE, OpeParams
from repro.errors import ParameterError
from repro.utils.rand import SystemRandomSource


class TestTheorem1Bound:
    def test_advantage_decreases_with_entropy(self):
        advantages = [theorem1_advantage(e) for e in (8, 16, 32, 64, 128)]
        assert advantages == sorted(advantages, reverse=True)

    def test_small_and_large_regimes_agree(self):
        """The asymptotic branch matches the exact branch at the seam."""
        from repro.attacks.games import _log2_theorem1_advantage

        exact = _log2_theorem1_advantage(49.0)
        # evaluate the asymptotic formula at the same entropy
        import math as m

        asym = m.log2(49.0 * m.log(2) + 0.577) - (48.0 + 49.0)
        assert m.isclose(exact, asym, rel_tol=1e-6)

    def test_paper_sizing_claim(self):
        """64-bit entropy achieves at least security level 80 (Section VII-B:
        'to achieve the security level of 80, the entropy can be configured
        to 64 bits')."""
        assert theorem1_security_level(64) >= 80

    def test_required_entropy_is_tight(self):
        e = required_entropy_bits(80)
        assert theorem1_security_level(e) >= 80
        assert theorem1_security_level(e - 1) < 80

    def test_2048_bit_entropy_no_overflow(self):
        assert theorem1_security_level(2048) > 4000
        assert theorem1_advantage(2048) < 2**-1000  # may underflow to 0.0

    def test_validation(self):
        with pytest.raises(ParameterError):
            theorem1_advantage(1)
        with pytest.raises(ParameterError):
            required_entropy_bits(0)


class TestPrOkpaGame:
    def test_low_entropy_breaks(self):
        """A 4-value attribute (2 bits of entropy) is essentially recovered."""
        rng = SystemRandomSource(seed=501)
        ope = OPE(b"game" + bytes(28), OpeParams(plaintext_bits=8))
        game = PrOkpaGame(
            ope.encrypt, population=[10, 20, 30, 40], known_fraction=0.5, rng=rng
        )
        outcome = game.play(rounds=60)
        assert outcome.empirical_advantage > 0.3
        assert outcome.mean_search_space < 4

    def test_entropy_increase_defends(self):
        """After the big-jump mapping the same attack's advantage collapses."""
        rng = SystemRandomSource(seed=502)
        mapping = AttributeMapping([0.25] * 4, k=24)
        population = [
            mapping.map_value(rng.randrange(0, 4), rng) for _ in range(120)
        ]
        ope = OPE(b"game" + bytes(28), OpeParams(plaintext_bits=24))
        game = PrOkpaGame(
            ope.encrypt, population=population, known_fraction=0.05, rng=rng
        )
        outcome = game.play(rounds=40)
        assert outcome.empirical_advantage < 0.15
        assert outcome.mean_search_space > 5

    def test_validation(self):
        ope = OPE(b"game" + bytes(28), OpeParams(plaintext_bits=8))
        with pytest.raises(ParameterError):
            PrOkpaGame(ope.encrypt, population=[])
        with pytest.raises(ParameterError):
            PrOkpaGame(ope.encrypt, population=[1], known_fraction=1.0)
        game = PrOkpaGame(ope.encrypt, population=[1, 2, 3])
        with pytest.raises(ParameterError):
            game.play(rounds=0)


class TestPrKkGame:
    def test_theorem2_holds_on_real_population(self, enrolled):
        _, users, uploads, keys = enrolled
        game = PrKkGame(uploads, keys)
        for user in users[:10]:
            uid = user.profile.user_id
            assert game.verify_theorem2(uid)

    def test_advantage_is_group_fraction(self, enrolled):
        _, users, uploads, keys = enrolled
        game = PrKkGame(uploads, keys)
        uid = users[0].profile.user_id
        outcome = game.play(uid)
        assert outcome.advantage == game.theorem2_advantage(uid)
        assert outcome.advantage <= 1.0

    def test_mismatched_maps_rejected(self, enrolled):
        _, _, uploads, keys = enrolled
        partial = dict(list(keys.items())[:-1])
        with pytest.raises(ParameterError):
            PrKkGame(uploads, partial)
