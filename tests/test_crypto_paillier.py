"""Tests for the Paillier cryptosystem, including homomorphism properties."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.crypto.fixtures import fixed_paillier_keypair
from repro.crypto.paillier import PaillierKeyPair, PaillierPublicKey
from repro.errors import CiphertextError, ParameterError
from repro.utils.rand import SystemRandomSource


@pytest.fixture(scope="module")
def kp():
    return fixed_paillier_keypair(256)


@pytest.fixture
def prng():
    return SystemRandomSource(seed=31)


small_ints = st.integers(min_value=0, max_value=(1 << 64) - 1)


class TestBasics:
    def test_encrypt_decrypt(self, kp, prng):
        for m in (0, 1, 42, (1 << 64) - 1):
            assert kp.decrypt(kp.public.encrypt(m, prng)) == m

    def test_probabilistic_encryption(self, kp, prng):
        a = kp.public.encrypt(7, prng)
        b = kp.public.encrypt(7, prng)
        assert a.value != b.value
        assert kp.decrypt(a) == kp.decrypt(b) == 7

    def test_plaintext_reduced_mod_n(self, kp, prng):
        m = kp.public.n + 5
        assert kp.decrypt(kp.public.encrypt(m, prng)) == 5

    def test_generate_small(self):
        kp2 = PaillierKeyPair.generate(bits=128, rng=SystemRandomSource(seed=32))
        assert kp2.public.n.bit_length() == 128
        r = SystemRandomSource(seed=33)
        assert kp2.decrypt(kp2.public.encrypt(999, r)) == 999

    def test_invalid_modulus(self):
        with pytest.raises(ParameterError):
            PaillierPublicKey(n=10)

    def test_foreign_ciphertext_rejected(self, kp, prng):
        other = fixed_paillier_keypair(384)
        ct = other.public.encrypt(1, prng)
        with pytest.raises(CiphertextError):
            kp.decrypt(ct)


class TestHomomorphisms:
    @given(small_ints, small_ints)
    @settings(max_examples=20, deadline=None)
    def test_additive(self, kp, a, b):
        prng = SystemRandomSource(seed=34)
        ca = kp.public.encrypt(a, prng)
        cb = kp.public.encrypt(b, prng)
        assert kp.decrypt(kp.public.add(ca, cb)) == (a + b) % kp.public.n

    @given(small_ints, small_ints)
    @settings(max_examples=20, deadline=None)
    def test_add_plain(self, kp, a, k):
        prng = SystemRandomSource(seed=35)
        ca = kp.public.encrypt(a, prng)
        assert kp.decrypt(kp.public.add_plain(ca, k)) == (a + k) % kp.public.n

    @given(small_ints, st.integers(min_value=0, max_value=1 << 16))
    @settings(max_examples=20, deadline=None)
    def test_mul_plain(self, kp, a, k):
        prng = SystemRandomSource(seed=36)
        ca = kp.public.encrypt(a, prng)
        assert kp.decrypt(kp.public.mul_plain(ca, k)) == (a * k) % kp.public.n

    def test_mul_operator(self, kp, prng):
        ca = kp.public.encrypt(3, prng)
        cb = kp.public.encrypt(4, prng)
        assert kp.decrypt(ca * cb) == 7

    def test_rerandomize_preserves_plaintext(self, kp, prng):
        ct = kp.public.encrypt(55, prng)
        rr = kp.public.rerandomize(ct, prng)
        assert rr.value != ct.value
        assert kp.decrypt(rr) == 55

    def test_decrypt_signed(self, kp, prng):
        minus_two = kp.public.n - 2
        ct = kp.public.encrypt(minus_two, prng)
        assert kp.decrypt_signed(ct) == -2

    def test_wire_bits(self, kp, prng):
        ct = kp.public.encrypt(1, prng)
        assert ct.wire_bits == 2 * kp.public.n.bit_length()


class TestDistanceComputation:
    """The homomorphic (a - b)^2 pattern homoPM relies on."""

    def test_squared_distance(self, kp, prng):
        a, b = 20, 14
        pk = kp.public
        enc_a = pk.encrypt(a, prng)
        enc_a2 = pk.encrypt(a * a, prng)
        term = pk.add(enc_a2, pk.mul_plain(enc_a, pk.n - (2 * b) % pk.n))
        term = pk.add_plain(term, b * b)
        assert kp.decrypt(term) == (a - b) ** 2
