"""Tests for repro.utils.rand."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ParameterError
from repro.utils.rand import DeterministicStream, SystemRandomSource


class TestDeterministicStream:
    def test_same_key_label_same_output(self):
        a = DeterministicStream(b"key", b"label").read(64)
        b = DeterministicStream(b"key", b"label").read(64)
        assert a == b

    def test_different_labels_diverge(self):
        a = DeterministicStream(b"key", b"l1").read(32)
        b = DeterministicStream(b"key", b"l2").read(32)
        assert a != b

    def test_different_keys_diverge(self):
        a = DeterministicStream(b"k1").read(32)
        b = DeterministicStream(b"k2").read(32)
        assert a != b

    def test_read_is_a_stream(self):
        s = DeterministicStream(b"key")
        combined = s.read(10) + s.read(22)
        assert combined == DeterministicStream(b"key").read(32)

    def test_getrandbits_range(self):
        s = DeterministicStream(b"key")
        for bits in (0, 1, 7, 64, 257):
            v = s.getrandbits(bits)
            assert 0 <= v < (1 << bits) if bits else v == 0

    def test_randrange_bounds(self):
        s = DeterministicStream(b"key")
        for _ in range(200):
            assert 10 <= s.randrange(10, 17) < 17

    def test_randrange_empty(self):
        with pytest.raises(ParameterError):
            DeterministicStream(b"key").randrange(5, 5)

    def test_permutation_is_permutation(self):
        perm = DeterministicStream(b"key").permutation(20)
        assert sorted(perm) == list(range(20))

    def test_permutation_deterministic(self):
        assert (
            DeterministicStream(b"key").permutation(10)
            == DeterministicStream(b"key").permutation(10)
        )

    @given(st.integers(min_value=0, max_value=1000), st.integers(min_value=1, max_value=1000))
    @settings(max_examples=30)
    def test_randrange_uniform_support(self, lo, span):
        s = DeterministicStream(b"prop")
        v = s.randrange(lo, lo + span)
        assert lo <= v < lo + span


class TestSystemRandomSource:
    def test_seeded_is_reproducible(self):
        a = SystemRandomSource(seed=5)
        b = SystemRandomSource(seed=5)
        assert [a.randint(0, 100) for _ in range(10)] == [
            b.randint(0, 100) for _ in range(10)
        ]

    def test_seeded_flag(self):
        assert SystemRandomSource(seed=1).is_seeded
        assert not SystemRandomSource().is_seeded

    def test_randbytes_length(self):
        assert len(SystemRandomSource(seed=1).randbytes(33)) == 33

    def test_randbytes_zero(self):
        assert SystemRandomSource(seed=1).randbytes(0) == b""

    def test_choice_empty_rejected(self):
        with pytest.raises(ParameterError):
            SystemRandomSource(seed=1).choice([])

    def test_sample(self):
        out = SystemRandomSource(seed=1).sample(range(100), 10)
        assert len(set(out)) == 10
