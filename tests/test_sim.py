"""Tests for the mobile-service lifecycle simulation."""


import pytest

from repro.datasets import INFOCOM06
from repro.errors import ParameterError
from repro.sim import MobileServiceSimulation, SimConfig


@pytest.fixture(scope="module")
def finished_sim():
    sim = MobileServiceSimulation(
        INFOCOM06,
        SimConfig(
            num_users=25,
            steps=8,
            upload_period=3,
            query_probability=0.4,
            drift_sigma=0.5,
            seed=7,
        ),
    )
    sim.run()
    return sim


class TestConfig:
    def test_validation(self):
        with pytest.raises(ParameterError):
            SimConfig(num_users=1)
        with pytest.raises(ParameterError):
            SimConfig(steps=0)
        with pytest.raises(ParameterError):
            SimConfig(query_probability=1.5)
        with pytest.raises(ParameterError):
            SimConfig(drift_sigma=-1)
        with pytest.raises(ParameterError):
            SimConfig(upload_period=0)


class TestLifecycle:
    def test_initial_enrollment_complete(self):
        sim = MobileServiceSimulation(
            INFOCOM06, SimConfig(num_users=10, steps=1, seed=8)
        )
        assert len(sim.server.store) == 10

    def test_history_length(self, finished_sim):
        assert len(finished_sim.history) == 8
        assert [m.step for m in finished_sim.history] == list(range(8))

    def test_uploads_follow_period(self, finished_sim):
        total_uploads = sum(m.uploads for m in finished_sim.history)
        # each user uploads roughly steps / period times
        expected = 25 * (8 // 3)
        assert total_uploads >= expected

    def test_queries_happen(self, finished_sim):
        assert sum(m.queries for m in finished_sim.history) > 0

    def test_groups_tracked(self, finished_sim):
        last = finished_sim.history[-1]
        assert last.num_groups >= 1
        assert 1 <= last.largest_group <= 25

    def test_verified_results_are_mostly_true_matches(self, finished_sim):
        summary = finished_sim.summary()
        if summary["verified_results"] > 0:
            assert summary["match_precision"] >= 0.8

    def test_summary_shape(self, finished_sim):
        summary = finished_sim.summary()
        assert summary["steps"] == 8
        assert summary["uploads"] > 0
        assert 0 <= summary["group_change_rate"] <= 1

    def test_summary_requires_run(self):
        sim = MobileServiceSimulation(
            INFOCOM06, SimConfig(num_users=5, steps=1, seed=9)
        )
        with pytest.raises(ParameterError):
            sim.summary()


class TestRestartRecovery:
    def test_simulation_survives_server_restart(self):
        """Mid-run, persist the store, 'restart' the server, continue."""
        from repro.server.matcher import ServerMatcher
        from repro.server.persistence import dump_store_bytes, load_store_bytes
        from repro.server.service import SMatchServer

        sim = MobileServiceSimulation(
            INFOCOM06,
            SimConfig(
                num_users=15,
                steps=3,
                upload_period=2,
                query_probability=0.3,
                seed=12,
            ),
        )
        sim.step()
        snapshot = dump_store_bytes(sim.server.store)

        restarted = SMatchServer(query_k=sim.config.query_k)
        restarted.store = load_store_bytes(snapshot)
        restarted.matcher = ServerMatcher(restarted.store)
        sim.server = restarted

        sim.step()
        sim.step()
        assert len(sim.history) == 3
        assert len(sim.server.store) == 15


class TestDrift:
    def test_zero_drift_zero_group_changes(self):
        sim = MobileServiceSimulation(
            INFOCOM06,
            SimConfig(
                num_users=15,
                steps=6,
                upload_period=2,
                drift_sigma=0.0,
                query_probability=0.0,
                seed=10,
            ),
        )
        sim.run()
        assert sum(m.group_changes for m in sim.history) == 0

    def test_heavy_drift_causes_churn(self):
        sim = MobileServiceSimulation(
            INFOCOM06,
            SimConfig(
                num_users=15,
                steps=10,
                upload_period=2,
                drift_sigma=4.0,
                query_probability=0.0,
                seed=11,
            ),
        )
        sim.run()
        assert sum(m.group_changes for m in sim.history) > 0

    def test_values_stay_in_domain(self, finished_sim):
        for profile in finished_sim.profiles.values():
            profile.schema.check_values(profile.values)
