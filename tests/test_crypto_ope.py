"""Tests for order-preserving encryption."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.crypto.ope import OPE, AdaptiveOPE, OpeParams
from repro.errors import CiphertextError, KeyError_, ParameterError

KEY = b"ope-test-key-32-bytes-long......"


@pytest.fixture(scope="module")
def ope16():
    return OPE(KEY, OpeParams(plaintext_bits=16))


class TestParams:
    def test_sizes(self):
        p = OpeParams(plaintext_bits=16, expansion_bits=8)
        assert p.ciphertext_bits == 24
        assert p.domain_size == 1 << 16
        assert p.range_size == 1 << 24

    def test_invalid(self):
        with pytest.raises(ParameterError):
            OpeParams(plaintext_bits=0)
        with pytest.raises(ParameterError):
            OpeParams(plaintext_bits=8, expansion_bits=-1)
        with pytest.raises(ParameterError):
            OpeParams(plaintext_bits=8, split="weird")

    def test_hypergeometric_domain_cap(self):
        with pytest.raises(ParameterError):
            OpeParams(plaintext_bits=32, split="hypergeometric")

    def test_key_size_enforced(self):
        with pytest.raises(KeyError_):
            OPE(b"short", OpeParams(plaintext_bits=8))


class TestOrderPreservation:
    @given(
        st.lists(
            st.integers(min_value=0, max_value=(1 << 16) - 1),
            min_size=2,
            max_size=30,
            unique=True,
        )
    )
    @settings(max_examples=30, deadline=None)
    def test_strictly_monotone(self, ope16, values):
        values.sort()
        cts = [ope16.encrypt(v) for v in values]
        assert cts == sorted(cts)
        assert len(set(cts)) == len(cts)

    def test_deterministic(self, ope16):
        assert ope16.encrypt(1234) == ope16.encrypt(1234)

    def test_key_dependence(self):
        a = OPE(KEY, OpeParams(plaintext_bits=16))
        b = OPE(b"another-key-32-bytes-long.......", OpeParams(plaintext_bits=16))
        cts_a = [a.encrypt(v) for v in (10, 500, 60000)]
        cts_b = [b.encrypt(v) for v in (10, 500, 60000)]
        assert cts_a != cts_b

    def test_domain_endpoints(self, ope16):
        lo = ope16.encrypt(0)
        hi = ope16.encrypt((1 << 16) - 1)
        assert 0 <= lo < hi < (1 << ope16.params.ciphertext_bits)

    def test_out_of_domain_rejected(self, ope16):
        with pytest.raises(ParameterError):
            ope16.encrypt(1 << 16)
        with pytest.raises(ParameterError):
            ope16.encrypt(-1)


class TestDecrypt:
    @given(st.integers(min_value=0, max_value=(1 << 16) - 1))
    @settings(max_examples=30, deadline=None)
    def test_inverts_encrypt(self, ope16, m):
        assert ope16.decrypt(ope16.encrypt(m)) == m

    def test_invalid_ciphertext_rejected(self, ope16):
        valid = ope16.encrypt(777)
        probe = valid + 1
        try:
            m = ope16.decrypt(probe)
            # if probe happens to be valid it must decrypt consistently
            assert ope16.encrypt(m) == probe
        except CiphertextError:
            pass

    def test_out_of_range_rejected(self, ope16):
        with pytest.raises(CiphertextError):
            ope16.decrypt(1 << ope16.params.ciphertext_bits)


class TestDegenerateAndLargeDomains:
    def test_zero_expansion_is_identity(self):
        ope = OPE(KEY, OpeParams(plaintext_bits=10, expansion_bits=0))
        assert all(ope.encrypt(v) == v for v in range(0, 1024, 37))

    def test_large_domain(self):
        ope = OPE(KEY, OpeParams(plaintext_bits=256))
        vals = [0, 1 << 128, (1 << 256) - 1]
        cts = [ope.encrypt(v) for v in vals]
        assert cts == sorted(cts)
        assert all(ope.decrypt(c) == v for v, c in zip(vals, cts))

    def test_hypergeometric_split_order(self):
        ope = OPE(
            KEY, OpeParams(plaintext_bits=12, expansion_bits=6, split="hypergeometric")
        )
        vals = list(range(0, 4096, 173))
        cts = [ope.encrypt(v) for v in vals]
        assert cts == sorted(cts)
        assert len(set(cts)) == len(cts)

    def test_hypergeometric_decrypt(self):
        ope = OPE(
            KEY, OpeParams(plaintext_bits=10, expansion_bits=4, split="hypergeometric")
        )
        for v in (0, 17, 512, 1023):
            assert ope.decrypt(ope.encrypt(v)) == v


class TestAdaptiveOPE:
    def test_low_entropy_gets_more_expansion(self):
        low = AdaptiveOPE.for_entropy(KEY, 64, measured_entropy=8.0)
        high = AdaptiveOPE.for_entropy(KEY, 64, measured_entropy=60.0)
        assert low.params.expansion_bits > high.params.expansion_bits

    def test_still_order_preserving(self):
        ope = AdaptiveOPE.for_entropy(KEY, 32, measured_entropy=10.0)
        vals = [0, 5, 1 << 20, (1 << 32) - 1]
        cts = [ope.encrypt(v) for v in vals]
        assert cts == sorted(cts)

    def test_entropy_validation(self):
        with pytest.raises(ParameterError):
            AdaptiveOPE.for_entropy(KEY, 16, measured_entropy=-1)
        with pytest.raises(ParameterError):
            AdaptiveOPE.for_entropy(KEY, 16, measured_entropy=17)
