"""Tests for the Berlekamp-Massey / Chien / Forney decoder."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ParameterError, UncorrectableError
from repro.rs.code import RSCode
from repro.rs.decoder import decode, syndromes
from repro.utils.rand import SystemRandomSource

CODE = RSCode(n=15, k=9, m=4)  # corrects 3 errors
BIG = RSCode(n=63, k=39, m=6)  # corrects 12 errors


def corrupt(codeword, positions, rng):
    out = list(codeword)
    for pos in positions:
        flip = rng.randrange(1, CODE.field_.size)
        out[pos] ^= flip
    return out


class TestErrorCorrection:
    def test_clean_word_passthrough(self):
        cw = CODE.encode(list(range(9)))
        assert decode(CODE, cw) == cw

    def test_single_error(self):
        rng = SystemRandomSource(seed=1)
        cw = CODE.encode(list(range(9)))
        assert decode(CODE, corrupt(cw, [4], rng)) == cw

    def test_errors_up_to_t(self):
        rng = SystemRandomSource(seed=2)
        cw = CODE.encode([3, 1, 4, 1, 5, 9, 2, 6, 5])
        for n_err in (1, 2, 3):
            positions = rng.sample(range(15), n_err)
            assert decode(CODE, corrupt(cw, positions, rng)) == cw

    def test_parity_position_errors(self):
        rng = SystemRandomSource(seed=3)
        cw = CODE.encode(list(range(9)))
        assert decode(CODE, corrupt(cw, [12, 13, 14], rng)) == cw

    def test_beyond_capability_raises_or_miscorrects(self):
        # bounded-distance decoding: > t errors either raises or lands on a
        # *different valid codeword* — never returns a non-codeword
        rng = SystemRandomSource(seed=4)
        cw = CODE.encode(list(range(9)))
        failures = 0
        for trial in range(20):
            positions = rng.sample(range(15), 6)
            received = corrupt(cw, positions, rng)
            try:
                out = decode(CODE, received)
                assert CODE.is_codeword(out)
            except UncorrectableError:
                failures += 1
        assert failures > 0  # most 6-error patterns are rejected

    @given(st.data())
    @settings(max_examples=60, deadline=None)
    def test_roundtrip_random(self, data):
        msg = data.draw(
            st.lists(
                st.integers(min_value=0, max_value=15),
                min_size=9,
                max_size=9,
            )
        )
        n_err = data.draw(st.integers(min_value=0, max_value=CODE.t))
        positions = data.draw(
            st.lists(
                st.integers(min_value=0, max_value=14),
                min_size=n_err,
                max_size=n_err,
                unique=True,
            )
        )
        magnitudes = data.draw(
            st.lists(
                st.integers(min_value=1, max_value=15),
                min_size=n_err,
                max_size=n_err,
            )
        )
        cw = CODE.encode(msg)
        received = list(cw)
        for pos, mag in zip(positions, magnitudes):
            received[pos] ^= mag
        assert decode(CODE, received) == cw

    def test_larger_code(self):
        rng = SystemRandomSource(seed=5)
        msg = [rng.randrange(0, 64) for _ in range(39)]
        cw = BIG.encode(msg)
        received = list(cw)
        for pos in rng.sample(range(63), 12):
            received[pos] ^= rng.randrange(1, 64)
        assert decode(BIG, received) == cw


class TestErasures:
    def test_erasures_only(self):
        cw = CODE.encode(list(range(9)))
        received = list(cw)
        for pos in (0, 5, 10, 14):
            received[pos] = 0
        assert decode(CODE, received, erasures=[0, 5, 10, 14]) == cw

    def test_full_parity_budget_of_erasures(self):
        cw = CODE.encode(list(range(9)))
        received = list(cw)
        erasures = [1, 3, 5, 7, 9, 11]  # n - k = 6
        for pos in erasures:
            received[pos] = 0
        assert decode(CODE, received, erasures=erasures) == cw

    def test_mixed_errors_and_erasures(self):
        # 2 errors + 2 erasures: 2*2 + 2 = 6 = n - k exactly
        rng = SystemRandomSource(seed=6)
        cw = CODE.encode(list(range(9)))
        received = corrupt(cw, [2, 8], rng)
        received[11] = 0
        received[13] = 0
        assert decode(CODE, received, erasures=[11, 13]) == cw

    def test_too_many_erasures(self):
        cw = CODE.encode(list(range(9)))
        with pytest.raises(UncorrectableError):
            decode(CODE, cw, erasures=list(range(7)))

    def test_duplicate_erasures_rejected(self):
        cw = CODE.encode(list(range(9)))
        with pytest.raises(ParameterError):
            decode(CODE, cw, erasures=[1, 1])

    def test_erasure_position_out_of_range(self):
        cw = CODE.encode(list(range(9)))
        with pytest.raises(ParameterError):
            decode(CODE, cw, erasures=[15])


class TestSyndromes:
    def test_zero_for_codewords(self):
        cw = CODE.encode([7] * 9)
        assert not any(syndromes(CODE, cw))

    def test_nonzero_for_corrupted(self):
        cw = CODE.encode([7] * 9)
        cw[0] ^= 3
        assert any(syndromes(CODE, cw))
