"""Tests for the profile-data encoders and builder (paper §V-A sources)."""

import pytest

from repro.core.profile import profile_distance
from repro.errors import ParameterError
from repro.profiles import (
    CategoricalEncoder,
    KeywordInterestEncoder,
    LocationGridEncoder,
    ProfileBuilder,
)

EDUCATION = ["high school", "B.S.", "M.S.", "Ph.D."]  # the paper's example


class TestCategoricalEncoder:
    def test_ordinal_preserves_order(self):
        enc = CategoricalEncoder(EDUCATION, ordinal=True, spacing=10)
        values = [enc.encode(c) for c in EDUCATION]
        assert values == sorted(values)
        # adjacent degrees are closer than distant ones
        assert abs(enc.encode("M.S.") - enc.encode("Ph.D.")) < abs(
            enc.encode("high school") - enc.encode("Ph.D.")
        )

    def test_nominal_values_far_apart(self):
        enc = CategoricalEncoder(
            ["red", "green", "blue"], ordinal=False, value_range=3000
        )
        values = sorted(enc.encode(c) for c in ["red", "green", "blue"])
        gaps = [b - a for a, b in zip(values, values[1:])]
        assert min(gaps) >= 900  # no two categories within a plausible theta

    def test_decode_nearest(self):
        enc = CategoricalEncoder(EDUCATION, spacing=10)
        assert enc.decode(enc.encode("B.S.") + 2) == "B.S."

    def test_unknown_label(self):
        enc = CategoricalEncoder(EDUCATION)
        with pytest.raises(ParameterError):
            enc.encode("bootcamp")

    def test_validation(self):
        with pytest.raises(ParameterError):
            CategoricalEncoder([])
        with pytest.raises(ParameterError):
            CategoricalEncoder(["a", "a"])
        with pytest.raises(ParameterError):
            CategoricalEncoder(["a", "b"], ordinal=False, value_range=1)


class TestLocationGridEncoder:
    def test_nearby_coordinates_nearby_cells(self):
        enc = LocationGridEncoder(cells_per_axis=4096)
        a = enc.encode(48.8566, 2.3522)  # Paris
        b = enc.encode(48.8600, 2.3400)  # also Paris
        c = enc.encode(35.6762, 139.6503)  # Tokyo
        assert abs(a[0] - b[0]) <= 1 and abs(a[1] - b[1]) <= 1
        assert abs(a[1] - c[1]) > 1000

    def test_bounds_enforced(self):
        enc = LocationGridEncoder()
        with pytest.raises(ParameterError):
            enc.encode(91.0, 0.0)
        with pytest.raises(ParameterError):
            enc.encode(0.0, 181.0)

    def test_edge_coordinates(self):
        enc = LocationGridEncoder(cells_per_axis=128)
        assert enc.encode(-90.0, -180.0) == (0, 0)
        assert enc.encode(90.0, 180.0) == (127, 127)

    def test_cell_size(self):
        enc = LocationGridEncoder(cells_per_axis=180)
        lat_size, lon_size = enc.cell_size_degrees()
        assert lat_size == pytest.approx(1.0)
        assert lon_size == pytest.approx(2.0)

    def test_validation(self):
        with pytest.raises(ParameterError):
            LocationGridEncoder(lat_min=10, lat_max=5)
        with pytest.raises(ParameterError):
            LocationGridEncoder(cells_per_axis=1)


class TestKeywordInterestEncoder:
    JAZZ = KeywordInterestEncoder(
        ["jazz", "saxophone", "coltrane", "bebop"], max_level=15,
        counts_per_level=1,
    )

    def test_counts_keywords(self):
        assert self.JAZZ.count_keywords("I love jazz and bebop JAZZ!") == 3

    def test_word_boundaries(self):
        assert self.JAZZ.count_keywords("jazzercise is not jazz") == 1

    def test_encode_levels(self):
        posts = ["jazz night", "new coltrane record", "bebop forever"]
        assert self.JAZZ.encode(posts) == 3

    def test_level_cap(self):
        posts = ["jazz " * 100]
        assert self.JAZZ.encode(posts) == 15

    def test_frequency_scales_intensity(self):
        casual = self.JAZZ.encode(["heard some jazz once"])
        fan = self.JAZZ.encode(["jazz jazz jazz", "saxophone bebop jazz"])
        assert fan > casual

    def test_validation(self):
        with pytest.raises(ParameterError):
            KeywordInterestEncoder([])
        with pytest.raises(ParameterError):
            KeywordInterestEncoder(["x"], max_level=0)


class TestProfileBuilder:
    def make_builder(self) -> ProfileBuilder:
        return (
            ProfileBuilder()
            .add_categorical(
                "education", CategoricalEncoder(EDUCATION, spacing=8)
            )
            .add_location(
                "home", LocationGridEncoder(cells_per_axis=1024)
            )
            .add_interest("jazz", TestKeywordInterestEncoder.JAZZ)
        )

    def test_schema_layout(self):
        builder = self.make_builder()
        assert builder.schema.names == [
            "education",
            "home_lat",
            "home_lon",
            "jazz",
        ]

    def test_build_profile(self):
        builder = self.make_builder()
        profile = builder.build(
            7,
            "M.S.",
            (48.85, 2.35),
            ["jazz concert tonight", "coltrane on repeat"],
        )
        assert profile.user_id == 7
        assert profile.value_of("education") == 16
        assert profile.value_of("jazz") == 2

    def test_similar_people_are_theta_close(self):
        builder = self.make_builder()
        alice = builder.build(
            1, "M.S.", (48.8566, 2.3522), ["jazz jazz saxophone"]
        )
        bob = builder.build(
            2, "M.S.", (48.8600, 2.3450), ["bebop and jazz", "jazz!"]
        )
        carol = builder.build(3, "high school", (35.67, 139.65), ["football"])
        assert profile_distance(alice, bob) <= 8
        assert profile_distance(alice, carol) > 8

    def test_built_profiles_enroll(self, small_scheme):
        """Builder output plugs straight into the scheme machinery."""
        builder = self.make_builder()
        profile = builder.build(9, "B.S.", (10.0, 20.0), ["jazz"])
        from repro.core.scheme import SMatch, SMatchParams
        from repro.utils.rand import SystemRandomSource

        scheme = SMatch(
            SMatchParams(
                schema=builder.schema, theta=8, plaintext_bits=64
            ),
            oprf_server=small_scheme.oprf_server,
            rng=SystemRandomSource(seed=61),
        )
        payload, key = scheme.enroll(profile)
        assert scheme.verify(payload.auth, key)

    def test_input_arity_checked(self):
        builder = self.make_builder()
        with pytest.raises(ParameterError):
            builder.build(1, "M.S.")

    def test_input_types_checked(self):
        builder = self.make_builder()
        with pytest.raises(ParameterError):
            builder.build(1, 42, (0.0, 0.0), ["x"])
        with pytest.raises(ParameterError):
            builder.build(1, "M.S.", "not a pair", ["x"])
        with pytest.raises(ParameterError):
            builder.build(1, "M.S.", (0.0, 0.0), "single string")

    def test_finalized_builder_rejects_additions(self):
        builder = self.make_builder()
        _ = builder.schema
        with pytest.raises(ParameterError):
            builder.add_categorical(
                "extra", CategoricalEncoder(["x", "y"])
            )

    def test_empty_builder_rejected(self):
        with pytest.raises(ParameterError):
            _ = ProfileBuilder().schema
