"""Tests for RSA and the RSA-OPRF protocol."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.crypto.fixtures import fixed_rsa_keypair
from repro.crypto.oprf import RsaOprfClient, RsaOprfServer, run_oprf
from repro.crypto.rsa import RSAKeyPair, RSAPublicKey
from repro.errors import CiphertextError, CryptoError, ParameterError
from repro.utils.rand import SystemRandomSource


@pytest.fixture(scope="module")
def keypair():
    return fixed_rsa_keypair(512)


class TestRsa:
    def test_roundtrip(self, keypair):
        m = 123456789
        assert keypair.raw_decrypt(keypair.public.raw_encrypt(m)) == m

    @given(st.integers(min_value=0, max_value=2**200))
    @settings(max_examples=20, deadline=None)
    def test_roundtrip_random(self, keypair, m):
        m %= keypair.public.n
        assert keypair.raw_decrypt(keypair.public.raw_encrypt(m)) == m

    def test_out_of_range_rejected(self, keypair):
        with pytest.raises(CiphertextError):
            keypair.public.raw_encrypt(keypair.public.n)
        with pytest.raises(CiphertextError):
            keypair.raw_decrypt(-1)

    def test_generate_bit_length(self):
        kp = RSAKeyPair.generate(bits=128, rng=SystemRandomSource(seed=8))
        assert kp.public.n.bit_length() == 128
        assert kp.public.modulus_bits == 128

    def test_from_primes_validates(self):
        with pytest.raises(ParameterError):
            RSAKeyPair.from_primes(13, 13)

    def test_public_key_validation(self):
        with pytest.raises(ParameterError):
            RSAPublicKey(n=10, e=65537)
        with pytest.raises(ParameterError):
            RSAPublicKey(n=15, e=4)

    def test_sign_raw_matches_decrypt(self, keypair):
        assert keypair.sign_raw(42) == keypair.raw_decrypt(42)


class TestOprf:
    @pytest.fixture(scope="class")
    def server(self, keypair):
        return RsaOprfServer(keypair=keypair)

    def test_consistency_across_blindings(self, server):
        rng = SystemRandomSource(seed=10)
        client = RsaOprfClient(server.public_key, rng=rng)
        out1 = client.evaluate(b"message", server)
        out2 = client.evaluate(b"message", server)
        assert out1 == out2

    def test_matches_unblinded_evaluation(self, server):
        client = RsaOprfClient(
            server.public_key, rng=SystemRandomSource(seed=11)
        )
        assert client.evaluate(b"m", server) == server.unblinded_evaluate(b"m")

    def test_blind_batch_matches_sequential_blinding(self, server):
        # the batched path must draw blinding factors in the same order a
        # per-message loop would, so a seeded client is batch-invariant
        messages = [bytes([i]) * 4 for i in range(7)]
        sequential = RsaOprfClient(
            server.public_key, rng=SystemRandomSource(seed=12)
        )
        batched = RsaOprfClient(
            server.public_key, rng=SystemRandomSource(seed=12)
        )
        states = batched.blind_batch(messages)
        assert states == [sequential.blind(m) for m in messages]
        for state, message in zip(states, messages):
            response = server.evaluate_blinded(state.blinded)
            assert batched.finalize(
                state, response
            ) == server.unblinded_evaluate(message)

    def test_blind_batch_empty(self, server):
        client = RsaOprfClient(
            server.public_key, rng=SystemRandomSource(seed=13)
        )
        assert client.blind_batch([]) == []

    def test_different_inputs_differ(self, server):
        client = RsaOprfClient(
            server.public_key, rng=SystemRandomSource(seed=12)
        )
        assert client.evaluate(b"a", server) != client.evaluate(b"b", server)

    def test_blinding_hides_input(self, server):
        """Two blindings of the same message look unrelated to the server."""
        client = RsaOprfClient(
            server.public_key, rng=SystemRandomSource(seed=13)
        )
        s1 = client.blind(b"same message")
        s2 = client.blind(b"same message")
        assert s1.blinded != s2.blinded

    def test_blinded_value_is_uniformish(self, server):
        """The blinded value of fixed input equals h(m) * s^e: over random s
        it covers the group; spot-check it differs from the raw hash."""
        from repro.crypto.kdf import hash_to_range

        client = RsaOprfClient(
            server.public_key, rng=SystemRandomSource(seed=14)
        )
        hm = hash_to_range(b"oprf-input" + b"x", server.public_key.n)
        assert client.blind(b"x").blinded != hm

    def test_corrupted_response_detected(self, server):
        client = RsaOprfClient(
            server.public_key, rng=SystemRandomSource(seed=15)
        )
        state = client.blind(b"msg")
        response = server.evaluate_blinded(state.blinded)
        with pytest.raises(CryptoError):
            client.finalize(state, (response + 1) % server.public_key.n)

    def test_out_of_range_rejected(self, server):
        client = RsaOprfClient(
            server.public_key, rng=SystemRandomSource(seed=16)
        )
        state = client.blind(b"msg")
        with pytest.raises(ParameterError):
            client.finalize(state, server.public_key.n)
        with pytest.raises(ParameterError):
            server.evaluate_blinded(-1)

    def test_run_oprf_helper(self, server):
        out, state = run_oprf(b"hello", server, rng=SystemRandomSource(seed=17))
        assert out == server.unblinded_evaluate(b"hello")
        assert state.blinded != 0

    def test_output_is_32_bytes(self, server):
        client = RsaOprfClient(
            server.public_key, rng=SystemRandomSource(seed=18)
        )
        assert len(client.evaluate(b"m", server)) == 32
