"""Tests for the exception hierarchy contract."""

import inspect

import pytest

import repro.errors as errors_mod
from repro.errors import (
    CiphertextError,
    CryptoError,
    DatasetError,
    DecodingError,
    IntegrityError,
    KeyError_,
    MatchingError,
    ParameterError,
    ProtocolError,
    ReproError,
    SchemeError,
    TransportError,
    UncorrectableError,
    VerificationError,
)


class TestHierarchy:
    def test_every_exported_error_is_repro_error(self):
        for name in errors_mod.__all__:
            cls = getattr(errors_mod, name)
            assert issubclass(cls, ReproError), name

    def test_branch_structure(self):
        assert issubclass(IntegrityError, CryptoError)
        assert issubclass(CiphertextError, CryptoError)
        assert issubclass(KeyError_, CryptoError)
        assert issubclass(UncorrectableError, DecodingError)
        assert issubclass(VerificationError, SchemeError)
        assert issubclass(MatchingError, SchemeError)
        assert issubclass(TransportError, ProtocolError)

    def test_parameter_error_is_value_error(self):
        """Callers using stdlib idioms still catch our validation errors."""
        assert issubclass(ParameterError, ValueError)
        with pytest.raises(ValueError):
            raise ParameterError("x")

    def test_keyerror_does_not_shadow_builtin(self):
        assert KeyError_ is not KeyError
        assert not issubclass(KeyError_, KeyError)

    def test_one_catch_all(self):
        """A single except ReproError guards any library call."""
        from repro.crypto.ope import OPE, OpeParams

        caught = 0
        for bad_call in (
            lambda: OPE(b"short", OpeParams(plaintext_bits=8)),
            lambda: OpeParams(plaintext_bits=0),
        ):
            try:
                bad_call()
            except ReproError:
                caught += 1
        assert caught == 2

    def test_docstrings_present(self):
        for name in errors_mod.__all__:
            assert inspect.getdoc(getattr(errors_mod, name)), name
