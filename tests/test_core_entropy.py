"""Tests for the big-jump entropy-increase mapping."""

import math

import pytest

from repro.core.entropy import AttributeMapping, BigJumpMapper
from repro.core.profile import ProfileSchema
from repro.errors import ParameterError
from repro.utils.rand import SystemRandomSource
from repro.utils.stats import empirical_entropy

EDUCATION = [0.3, 0.4, 0.2, 0.1]  # the paper's worked example


@pytest.fixture
def mapping():
    return AttributeMapping(EDUCATION, k=32)


@pytest.fixture
def prng():
    return SystemRandomSource(seed=51)


class TestMapping:
    def test_roundtrip(self, mapping, prng):
        for value in range(4):
            for _ in range(20):
                assert mapping.unmap_value(mapping.map_value(value, prng)) == value

    def test_order_preserved_across_values(self, mapping, prng):
        """Slots are ordered by raw value — OPE on mapped values still
        compares raw values (the third benefit the paper claims)."""
        for _ in range(20):
            mapped = [mapping.map_value(v, prng) for v in range(4)]
            assert mapped == sorted(mapped)

    def test_output_is_k_bits(self, mapping, prng):
        for v in range(4):
            assert 0 <= mapping.map_value(v, prng) < (1 << 32)

    def test_big_jump_exists(self, mapping):
        assert mapping.min_jump() > 0

    def test_candidate_counts_track_probability(self):
        m = AttributeMapping(EDUCATION, k=32, delta=1000)
        counts = [m._slot(j)[2] for j in range(4)]
        assert counts[1] > counts[0] > counts[3]  # 0.4 > 0.3 > 0.1

    def test_one_to_n(self, prng):
        m = AttributeMapping(EDUCATION, k=32, delta=1000)
        seen = {m.map_value(1, prng) for _ in range(50)}
        assert len(seen) > 10  # many candidate strings for one value

    def test_entropy_increases(self):
        m = AttributeMapping(EDUCATION, k=32)
        original = -sum(p * math.log2(p) for p in EDUCATION)
        assert m.analytic_entropy_bits() > original
        assert m.analytic_entropy_bits() <= 32

    def test_analytic_matches_empirical_at_small_k(self, prng):
        m = AttributeMapping([0.5, 0.5], k=6, delta=8)
        samples = []
        for _ in range(20000):
            v = 0 if prng.random() < 0.5 else 1
            samples.append(m.map_value(v, prng))
        assert empirical_entropy(samples) == pytest.approx(
            m.analytic_entropy_bits(), abs=0.1
        )

    def test_invalid_probs(self):
        with pytest.raises(ParameterError):
            AttributeMapping([0.5, 0.4], k=16)
        with pytest.raises(ParameterError):
            AttributeMapping([-0.1, 1.1], k=16)

    def test_k_too_small(self):
        with pytest.raises(ParameterError):
            AttributeMapping([0.25] * 4, k=2)

    def test_invalid_value(self, mapping, prng):
        with pytest.raises(ParameterError):
            mapping.map_value(4, prng)
        with pytest.raises(ParameterError):
            mapping.unmap_value(-1)

    def test_unmap_rejects_non_candidate(self, mapping):
        # value 1 not aligned on the candidate lattice of its slot
        base, spacing, _count = mapping._slot(0)
        if spacing > 1:
            with pytest.raises(ParameterError):
                mapping.unmap_value(base + 1)

    def test_uniform_choice_within_slot(self):
        mapping = AttributeMapping(EDUCATION, k=32)
        for value in range(4):
            prng = SystemRandomSource(seed=value)
            for _ in range(20):
                mapped = mapping.map_value(value, prng)
                base, spacing, count = mapping._slot(value)
                assert base <= mapped <= base + spacing * (count - 1)


class TestBigJumpMapper:
    SCHEMA = ProfileSchema.uniform(["x", "y"], 4)

    def test_uniform_constructor(self, prng):
        mapper = BigJumpMapper.uniform(self.SCHEMA, k=16)
        mapped = mapper.map_profile([0, 3], prng)
        assert mapper.unmap_profile(mapped) == [0, 3]

    def test_distribution_shape_checked(self):
        with pytest.raises(ParameterError):
            BigJumpMapper(self.SCHEMA, [[0.5, 0.5]], k=16)  # one dist, two attrs

    def test_cardinality_mismatch(self):
        with pytest.raises(ParameterError):
            BigJumpMapper(self.SCHEMA, [[0.5, 0.5], [0.5, 0.5]], k=16)

    def test_mean_entropy(self):
        mapper = BigJumpMapper.uniform(self.SCHEMA, k=16)
        per_attr = mapper.analytic_entropy_bits()
        assert len(per_attr) == 2
        assert mapper.mean_entropy_bits() == pytest.approx(
            sum(per_attr) / 2
        )

    def test_wrong_length(self, prng):
        mapper = BigJumpMapper.uniform(self.SCHEMA, k=16)
        with pytest.raises(ParameterError):
            mapper.map_profile([1], prng)
        with pytest.raises(ParameterError):
            mapper.unmap_profile([1])
