"""Edge-path tests: fixed-parameter fixtures, device estimates, misc."""

import pytest

from repro.client.device import NEXUS_ONE, PC_SERVER
from repro.crypto import fixed_params
from repro.crypto.fixtures import fixed_paillier_keypair, fixed_rsa_keypair
from repro.utils.instrument import OpCounter
from repro.utils.rand import SystemRandomSource


class TestFixedParams:
    def test_all_paillier_sizes_valid(self):
        rng = SystemRandomSource(seed=900)
        for bits in fixed_params.PAILLIER_PRIMES:
            kp = fixed_paillier_keypair(bits)
            assert kp.public.n.bit_length() == bits
            assert kp.decrypt(kp.public.encrypt(7, rng)) == 7

    def test_all_rsa_sizes_valid(self):
        for bits in fixed_params.RSA_PRIMES:
            kp = fixed_rsa_keypair(bits)
            assert kp.public.n.bit_length() == bits
            assert kp.raw_decrypt(kp.public.raw_encrypt(99)) == 99

    def test_cache_returns_same_object(self):
        assert fixed_paillier_keypair(256) is fixed_paillier_keypair(256)
        assert fixed_rsa_keypair(512) is fixed_rsa_keypair(512)

    def test_fallback_generates_unknown_size(self):
        kp = fixed_rsa_keypair(136)  # not in the table; generated + cached
        assert kp.public.n.bit_length() == 136
        assert fixed_rsa_keypair(136) is kp

    def test_safe_primes_are_safe(self):
        from repro.ntheory.primes import is_probable_prime

        for bits, p in fixed_params.SAFE_PRIMES.items():
            assert p.bit_length() == bits
            assert is_probable_prime(p)
            assert is_probable_prime((p - 1) // 2)


class TestDeviceEstimates:
    def test_server_rank_columns_scale_with_group(self):
        counter = OpCounter()
        counter.add("server_rank_column", 6)
        small = PC_SERVER.estimate_ms(counter, group_size=10)
        large = PC_SERVER.estimate_ms(counter, group_size=100)
        assert large == pytest.approx(small * 10)

    def test_ope_levels_priced(self):
        counter = OpCounter()
        counter.add("ope_level", 384)
        est = NEXUS_ONE.estimate_ms(counter)
        assert est == pytest.approx(384 * NEXUS_ONE.ope_level_ms)

    def test_empty_counter_is_free(self):
        assert NEXUS_ONE.estimate_ms(OpCounter()) == 0.0

    def test_paillier_mulmod_far_cheaper_than_modexp(self):
        enc = OpCounter()
        enc.add("paillier_encrypt", 1)
        mul = OpCounter()
        mul.add("paillier_mulmod", 1)
        assert NEXUS_ONE.estimate_ms(mul) < NEXUS_ONE.estimate_ms(enc) / 100


class TestSchnorrGeneration:
    def test_generate_produces_distinct_groups(self):
        from repro.ntheory.groups import SchnorrGroup

        a = SchnorrGroup.generate(bits=48, rng=SystemRandomSource(seed=901))
        b = SchnorrGroup.generate(bits=48, rng=SystemRandomSource(seed=902))
        assert a.p != b.p

    def test_default_is_cached_constant(self):
        from repro.ntheory.groups import SchnorrGroup, _DEFAULT_P

        g = SchnorrGroup.default()
        assert g.p == _DEFAULT_P


class TestExperimentResultEdges:
    def test_empty_table_formats(self):
        from repro.experiments.common import ExperimentResult

        result = ExperimentResult(name="empty", columns=["a"])
        text = result.format()
        assert "empty" in text

    def test_mixed_types_render(self):
        from repro.experiments.common import ExperimentResult

        result = ExperimentResult(name="mixed", columns=["x", "y"])
        result.add_row(x=True, y=0.123456789)
        text = result.format()
        assert "True" in text and "0.1235" in text
