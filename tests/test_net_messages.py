"""Tests for protocol message encoding."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.verification import AuthInfo
from repro.crypto.modes import AeadCiphertext
from repro.errors import ProtocolError
from repro.net.messages import (
    QueryRequest,
    QueryResult,
    ResultEntry,
    UploadMessage,
    decode_message,
)


def make_auth(user_id: int) -> AuthInfo:
    return AuthInfo(
        user_id=user_id,
        sealed=AeadCiphertext(iv=b"\x01" * 16, body=b"\x02" * 96, tag=b"\x03" * 32),
    )


class TestQueryRequest:
    def test_roundtrip(self):
        msg = QueryRequest(query_id=9, timestamp=1234567890, user_id=42)
        decoded = decode_message(msg.encode())
        assert decoded == msg
        assert decoded.max_distance is None

    def test_max_distance_roundtrip(self):
        msg = QueryRequest(
            query_id=1, timestamp=2, user_id=3, max_distance=17
        )
        decoded = decode_message(msg.encode())
        assert decoded == msg
        assert decoded.max_distance == 17

    def test_max_distance_zero_roundtrip(self):
        """Zero is a valid radius and must not decode as None."""
        msg = QueryRequest(
            query_id=1, timestamp=2, user_id=3, max_distance=0
        )
        decoded = decode_message(msg.encode())
        assert decoded.max_distance == 0

    @given(
        st.integers(min_value=0, max_value=1 << 62),
        st.integers(min_value=0, max_value=1 << 62),
        st.integers(min_value=1, max_value=1 << 31),
    )
    @settings(max_examples=30)
    def test_roundtrip_random(self, q, t, uid):
        msg = QueryRequest(query_id=q, timestamp=t, user_id=uid)
        assert decode_message(msg.encode()) == msg

    def test_wire_bits(self):
        msg = QueryRequest(query_id=1, timestamp=2, user_id=3)
        assert msg.wire_bits == len(msg.encode()) * 8


class TestQueryResult:
    def test_roundtrip(self):
        msg = QueryResult(
            query_id=5,
            timestamp=100,
            entries=(
                ResultEntry(user_id=1, auth=make_auth(1)),
                ResultEntry(user_id=2, auth=make_auth(2)),
            ),
        )
        assert decode_message(msg.encode()) == msg

    def test_empty_entries(self):
        msg = QueryResult(query_id=5, timestamp=100, entries=())
        assert decode_message(msg.encode()) == msg

    def test_size_grows_per_entry(self):
        one = QueryResult(
            query_id=1, timestamp=0, entries=(ResultEntry(1, make_auth(1)),)
        )
        two = QueryResult(
            query_id=1,
            timestamp=0,
            entries=(
                ResultEntry(1, make_auth(1)),
                ResultEntry(2, make_auth(2)),
            ),
        )
        assert two.wire_bits > one.wire_bits


class TestUploadMessage:
    def test_roundtrip(self, enrolled):
        _, _, uploads, _ = enrolled
        payload = next(iter(uploads.values()))
        msg = UploadMessage(payload=payload)
        decoded = decode_message(msg.encode())
        assert decoded == msg
        assert decoded.payload.chain == payload.chain

    def test_wire_bits_scale_with_chain(self, enrolled):
        _, _, uploads, _ = enrolled
        payload = next(iter(uploads.values()))
        msg = UploadMessage(payload=payload)
        assert msg.wire_bits > 64 * len(payload.chain)


class TestDecodeErrors:
    def test_unknown_tag(self):
        from repro.utils.serial import FieldWriter

        w = FieldWriter()
        w.write_int(99)
        with pytest.raises(ProtocolError):
            decode_message(w.getvalue())

    def test_trailing_garbage(self):
        msg = QueryRequest(query_id=1, timestamp=2, user_id=3)
        with pytest.raises(ProtocolError):
            decode_message(msg.encode() + b"\x00\x00\x00\x01z")

    def test_truncated(self):
        msg = QueryRequest(query_id=1, timestamp=2, user_id=3)
        with pytest.raises(ProtocolError):
            decode_message(msg.encode()[:-2])
