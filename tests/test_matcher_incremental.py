"""The incrementally maintained matcher equals a from-scratch rebuild.

Property tests for the performance layer's matcher (docs/PERFORMANCE.md):
after any interleaving of uploads and removals, ``match``/``match_within``
through the long-lived :class:`ServerMatcher` must agree with a matcher
built fresh from the same store — for both order methods — and dead groups
must not linger in the index.
"""

import random

import pytest

from repro.net.messages import UploadMessage
from repro.server.matcher import ServerMatcher
from repro.server.service import SMatchServer
from repro.server.storage import ProfileStore


def _loaded(enrolled, order_method):
    _, _, uploads, _ = enrolled
    server = SMatchServer(query_k=3, order_method=order_method)
    for payload in uploads.values():
        server.handle_upload(UploadMessage(payload=payload))
    return server, uploads


@pytest.mark.parametrize("order_method", ["rank", "value"])
class TestIncrementalEqualsRebuild:
    def test_interleaved_churn_equivalence(self, enrolled, order_method):
        server, uploads = _loaded(enrolled, order_method)
        rnd = random.Random(1009)
        all_uids = list(uploads)
        alive = set(all_uids)
        for _ in range(250):
            roll = rnd.random()
            if roll < 0.45 or not alive:
                uid = rnd.choice(all_uids)
                server.handle_upload(UploadMessage(payload=uploads[uid]))
                alive.add(uid)
            elif roll < 0.7 and len(alive) > 1:
                uid = rnd.choice(sorted(alive))
                server.store.remove(uid)
                alive.discard(uid)
            else:
                uid = rnd.choice(sorted(alive))
                fresh = ServerMatcher(
                    server.store, order_method=order_method
                )
                assert server.matcher.match(uid, 3) == fresh.match(uid, 3)
                assert server.matcher.match_within(
                    uid, 30
                ) == fresh.match_within(uid, 30)

    def test_remove_and_identical_reupload_is_a_no_op(
        self, enrolled, order_method
    ):
        server, uploads = _loaded(enrolled, order_method)
        _, members = max(server.store.groups(), key=lambda p: len(p[1]))
        if len(members) < 2:
            pytest.skip("no multi-member group in this population")
        ids = iter(members)
        query_uid, churn_uid = next(ids), next(ids)
        before = server.matcher.match(query_uid, 3)
        for _ in range(3):
            payload = server.store.get(churn_uid)
            server.store.remove(churn_uid)
            server.handle_upload(UploadMessage(payload=payload))
            assert server.matcher.match(query_uid, 3) == before

    def test_generation_advances_on_churn(self, enrolled, order_method):
        server, uploads = _loaded(enrolled, order_method)
        _, members = max(server.store.groups(), key=lambda p: len(p[1]))
        ids = iter(members)
        query_uid, churn_uid = next(ids), next(ids)
        server.matcher.match(query_uid, 3)  # build the group index
        first = server.matcher.group_generation(query_uid)
        payload = server.store.get(churn_uid)
        server.store.remove(churn_uid)
        server.handle_upload(UploadMessage(payload=payload))
        assert server.matcher.group_generation(query_uid) > first


class TestDeadGroupEviction:
    def test_emptied_group_leaves_the_index(self, enrolled):
        server, uploads = _loaded(enrolled, "rank")
        key_index, members = min(
            server.store.groups(), key=lambda p: len(p[1])
        )
        # force the group into the index, then drain it
        server.matcher._group_index(key_index)
        assert key_index in server.matcher._groups
        for member in list(members):
            server.store.remove(member)
        assert key_index not in server.matcher._groups

    def test_cold_groups_never_enter_the_index(self, enrolled):
        server, uploads = _loaded(enrolled, "rank")
        assert server.matcher._groups == {}
        uid = next(iter(uploads))
        server.store.remove(uid)
        assert server.matcher._groups == {}


class TestListenerLifecycle:
    def test_dead_matcher_listener_is_pruned(self, enrolled):
        _, _, uploads, _ = enrolled
        store = ProfileStore()
        matcher = ServerMatcher(store, order_method="rank")
        assert len(store._live_listeners()) == 1
        del matcher
        # the weakref is dead; the next notification prunes it silently
        store.put(next(iter(uploads.values())))
        assert store._live_listeners() == []

    def test_replacement_within_group_updates_index(self, enrolled):
        scheme, users, uploads, keys = enrolled
        server = SMatchServer(query_k=3)
        for payload in uploads.values():
            server.handle_upload(UploadMessage(payload=payload))
        _, members = max(server.store.groups(), key=lambda p: len(p[1]))
        ids = iter(members)
        query_uid, other_uid = next(ids), next(ids)
        server.matcher.match(query_uid, 3)  # warm the index
        # re-upload (same uid, same group) must be folded in as
        # remove-then-add, keeping the index equal to a fresh rebuild
        server.handle_upload(UploadMessage(payload=uploads[other_uid]))
        fresh = ServerMatcher(server.store, order_method="rank")
        assert server.matcher.match(query_uid, 3) == fresh.match(
            query_uid, 3
        )
