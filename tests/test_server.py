"""Tests for the untrusted server: storage, matcher, service, adversaries."""

import pytest

from repro.errors import MatchingError, ParameterError, ProtocolError
from repro.net.messages import QueryRequest, UploadMessage
from repro.server.adversary import MaliciousBehavior, MaliciousServer
from repro.server.matcher import ServerMatcher
from repro.server.service import SMatchServer
from repro.server.storage import ProfileStore
from repro.utils.rand import SystemRandomSource


@pytest.fixture
def loaded_server(enrolled):
    scheme, users, uploads, keys = enrolled
    server = SMatchServer(query_k=3)
    for payload in uploads.values():
        server.handle_upload(UploadMessage(payload=payload))
    return server, scheme, users, uploads, keys


class TestStorage:
    def test_put_get(self, enrolled):
        _, _, uploads, _ = enrolled
        store = ProfileStore()
        payload = next(iter(uploads.values()))
        store.put(payload)
        assert store.get(payload.user_id) == payload
        assert len(store) == 1
        assert store.contains(payload.user_id)

    def test_groups_by_key_index(self, enrolled):
        _, _, uploads, _ = enrolled
        store = ProfileStore()
        for payload in uploads.values():
            store.put(payload)
        assert len(store) == len(uploads)
        assert sum(store.group_sizes()) == len(uploads)
        uid = next(iter(uploads))
        group = store.group_of(uid)
        assert all(
            p.key_index == uploads[uid].key_index for p in group.values()
        )

    def test_reupload_moves_between_groups(self, enrolled):
        from repro.core.scheme import EncryptedProfile

        _, _, uploads, _ = enrolled
        store = ProfileStore()
        ids = iter(uploads)
        a = uploads[next(ids)]
        b = uploads[next(ids)]
        store.put(a)
        store.put(b)
        groups_before = store.num_groups
        # user B re-uploads under A's key index (profile drifted)
        moved = EncryptedProfile(
            user_id=b.user_id,
            key_index=a.key_index,
            chain=b.chain,
            auth=b.auth,
        )
        store.put(moved)
        assert len(store) == 2
        assert store.get(b.user_id).key_index == a.key_index
        if a.key_index != b.key_index:
            assert store.num_groups == groups_before - 1

    def test_put_idempotent(self, enrolled):
        _, _, uploads, _ = enrolled
        store = ProfileStore()
        payload = next(iter(uploads.values()))
        store.put(payload)
        store.put(payload)
        assert len(store) == 1

    def test_remove(self, enrolled):
        _, _, uploads, _ = enrolled
        store = ProfileStore()
        payload = next(iter(uploads.values()))
        store.put(payload)
        store.remove(payload.user_id)
        assert len(store) == 0
        with pytest.raises(MatchingError):
            store.get(payload.user_id)

    def test_unknown_user(self):
        store = ProfileStore()
        with pytest.raises(MatchingError):
            store.group_of(404)
        with pytest.raises(MatchingError):
            store.remove(404)

    def test_bad_key_index(self):
        with pytest.raises(ParameterError):
            ProfileStore().group_by_index(b"short")


class TestMatcher:
    def test_match_returns_group_members(self, loaded_server):
        server, _, _, uploads, _ = loaded_server
        sizes = server.store.group_sizes()
        # pick a user in the biggest group
        biggest = max(
            (g for _, g in server.store.groups()), key=len
        )
        if len(biggest) < 3:
            pytest.skip("no group big enough")
        uid = next(iter(biggest))
        result = server.matcher.match(uid, 2)
        assert len(result) == 2
        assert set(result) <= set(biggest) - {uid}

    def test_singleton_group_empty_result(self, loaded_server):
        server, _, _, _, _ = loaded_server
        singles = [
            next(iter(g)) for _, g in server.store.groups() if len(g) == 1
        ]
        if not singles:
            pytest.skip("no singleton groups")
        assert server.matcher.match(singles[0], 5) == []

    def test_unknown_user_raises(self, loaded_server):
        server, _, _, _, _ = loaded_server
        with pytest.raises(MatchingError):
            server.matcher.match(987654, 3)

    def test_cache_consistency(self, loaded_server):
        server, _, _, uploads, _ = loaded_server
        uid = next(iter(uploads))
        first = server.matcher.match(uid, 3)
        second = server.matcher.match(uid, 3)  # cached sort
        server.matcher.invalidate()
        third = server.matcher.match(uid, 3)  # cold sort
        assert first == second == third

    def test_match_within(self, loaded_server):
        server, _, _, uploads, _ = loaded_server
        biggest = max((g for _, g in server.store.groups()), key=len)
        if len(biggest) < 2:
            pytest.skip("no group big enough")
        uid = next(iter(biggest))
        everyone = server.matcher.match_within(uid, 10**12)
        assert set(everyone) == set(biggest) - {uid}
        with pytest.raises(ParameterError):
            server.matcher.match_within(uid, -1)

    def test_invalid_order_method(self):
        with pytest.raises(ParameterError):
            ServerMatcher(ProfileStore(), order_method="nope")


class TestService:
    def test_upload_then_query(self, loaded_server):
        server, scheme, users, uploads, keys = loaded_server
        uid = users[0].profile.user_id
        result = server.handle_query(
            QueryRequest(query_id=7, timestamp=5, user_id=uid)
        )
        assert result.query_id == 7
        assert result.timestamp == 5
        assert server.queries_served == 1
        for entry in result.entries:
            assert entry.auth.user_id == entry.user_id

    def test_max_distance_query(self, loaded_server):
        """A MAX-distance request returns the whole group at huge radius."""
        server, _, users, uploads, _ = loaded_server
        uid = users[0].profile.user_id
        group = server.store.group_of(uid)
        result = server.handle_query(
            QueryRequest(
                query_id=9, timestamp=0, user_id=uid, max_distance=10**12
            )
        )
        assert {e.user_id for e in result.entries} == set(group) - {uid}

    def test_max_distance_zero_returns_ties_only(self, loaded_server):
        server, _, users, _, _ = loaded_server
        uid = users[0].profile.user_id
        result = server.handle_query(
            QueryRequest(
                query_id=10, timestamp=0, user_id=uid, max_distance=0
            )
        )
        # radius zero returns only exact score ties (possibly none)
        assert isinstance(result.entries, tuple)

    def test_unknown_user_empty_result(self, loaded_server):
        server, _, _, _, _ = loaded_server
        result = server.handle_query(
            QueryRequest(query_id=1, timestamp=0, user_id=13371337)
        )
        assert result.entries == ()

    def test_handle_message_dispatch(self, loaded_server):
        server, _, users, uploads, _ = loaded_server
        payload = next(iter(uploads.values()))
        assert server.handle_message(UploadMessage(payload=payload)) is None
        response = server.handle_message(
            QueryRequest(query_id=1, timestamp=0, user_id=payload.user_id)
        )
        assert response is not None

    def test_unexpected_message_rejected(self, loaded_server):
        server, _, _, _, _ = loaded_server
        from repro.net.messages import QueryResult

        with pytest.raises(ProtocolError):
            server.handle_message(
                QueryResult(query_id=1, timestamp=0, entries=())
            )


class TestMaliciousServer:
    def load(self, enrolled, behavior):
        scheme, users, uploads, keys = enrolled
        server = MaliciousServer(
            behavior, query_k=3, rng=SystemRandomSource(seed=81)
        )
        for payload in uploads.values():
            server.handle_upload(UploadMessage(payload=payload))
        return server, scheme, users, uploads, keys

    def query_and_verify(self, server, scheme, users, keys):
        uid = users[0].profile.user_id
        result = server.handle_query(
            QueryRequest(query_id=1, timestamp=0, user_id=uid)
        )
        verified = [
            entry.user_id
            for entry in result.entries
            if scheme.verify(entry.auth, keys[uid])
        ]
        return result, verified

    def test_fake_users_all_rejected(self, enrolled):
        server, scheme, users, uploads, keys = self.load(
            enrolled, MaliciousBehavior.FAKE_USERS
        )
        result, verified = self.query_and_verify(server, scheme, users, keys)
        assert result.entries  # forgery happened
        assert verified == []

    def test_forged_auth_all_rejected(self, enrolled):
        server, scheme, users, uploads, keys = self.load(
            enrolled, MaliciousBehavior.FORGED_AUTH
        )
        result, verified = self.query_and_verify(server, scheme, users, keys)
        assert result.entries
        assert verified == []

    def test_swapped_auth_rejected(self, enrolled):
        server, scheme, users, uploads, keys = self.load(
            enrolled, MaliciousBehavior.SWAPPED_AUTH
        )
        result, verified = self.query_and_verify(server, scheme, users, keys)
        if len(result.entries) >= 2:
            assert verified == []

    def test_drop_results(self, enrolled):
        server, scheme, users, uploads, keys = self.load(
            enrolled, MaliciousBehavior.DROP_RESULTS
        )
        result, verified = self.query_and_verify(server, scheme, users, keys)
        assert result.entries == ()

    def test_forgery_counter(self, enrolled):
        server, scheme, users, uploads, keys = self.load(
            enrolled, MaliciousBehavior.FAKE_USERS
        )
        self.query_and_verify(server, scheme, users, keys)
        assert server.forgeries_sent >= 1


class TestStoreViews:
    """The documented read-only view contract of ProfileStore."""

    @pytest.fixture
    def store(self, enrolled):
        _, _, uploads, _ = enrolled
        store = ProfileStore()
        for payload in uploads.values():
            store.put(payload)
        return store

    def test_all_profiles_is_read_only(self, store):
        view = store.all_profiles()
        uid = next(iter(view))
        with pytest.raises(TypeError):
            view[uid] = view[uid]  # type: ignore[index]
        with pytest.raises(TypeError):
            del view[uid]  # type: ignore[attr-defined]

    def test_all_profiles_is_a_live_view(self, store):
        view = store.all_profiles()
        uid = next(iter(view))
        count = len(view)
        store.remove(uid)
        assert len(view) == count - 1 and uid not in view
        store.put(store.get(next(iter(view))))  # replace keeps the count
        assert len(view) == count - 1

    def test_all_profiles_matches_gets(self, store):
        for uid, payload in store.all_profiles().items():
            assert store.get(uid) == payload

    def test_group_sizes_is_a_sorted_snapshot(self, store):
        sizes = store.group_sizes()
        assert isinstance(sizes, tuple)
        assert list(sizes) == sorted(sizes, reverse=True)
        assert sum(sizes) == len(store)
        assert len(sizes) == store.num_groups
        # snapshot semantics: the tuple does not track later mutations...
        store.remove(next(iter(store.all_profiles())))
        assert sum(sizes) == len(store) + 1
        # ...and a fresh call reflects them (cache invalidated on mutation)
        assert sum(store.group_sizes()) == len(store)

    def test_group_sizes_cached_between_mutations(self, store):
        assert store.group_sizes() is store.group_sizes()
        before = store.group_sizes()
        store.remove(next(iter(store.all_profiles())))
        assert store.group_sizes() is not before
