"""Tests for the command-line interface."""

import json

import pytest

from repro import obs
from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_experiment_choices(self):
        args = build_parser().parse_args(["experiment", "table2"])
        assert args.name == "table2"
        with pytest.raises(SystemExit):
            build_parser().parse_args(["experiment", "nonexistent"])

    def test_dataset_option(self):
        args = build_parser().parse_args(
            ["experiment", "fig5def", "--dataset", "Weibo"]
        )
        assert args.dataset == "Weibo"

    def test_simulate_defaults(self):
        args = build_parser().parse_args(["simulate"])
        assert args.users == 30 and args.steps == 10
        assert args.obs is False and args.obs_dir is None

    def test_obs_report_defaults(self):
        args = build_parser().parse_args(["obs", "report"])
        assert args.obs_command == "report" and args.dir is None


class TestCommands:
    def test_datasets(self, capsys):
        assert main(["datasets"]) == 0
        out = capsys.readouterr().out
        assert "Infocom06" in out and "Weibo" in out

    def test_experiment_table1(self, capsys):
        assert main(["experiment", "table1"]) == 0
        out = capsys.readouterr().out
        assert "S-MATCH" in out and "ZZS12" in out

    def test_experiment_fig1(self, capsys):
        assert main(["experiment", "fig1"]) == 0
        assert "search space" in capsys.readouterr().out

    def test_attack(self, capsys):
        assert main(["attack", "ope_split"]) == 0
        assert "order preserved" in capsys.readouterr().out

    def test_simulate(self, capsys):
        assert main(["simulate", "--users", "8", "--steps", "2"]) == 0
        out = capsys.readouterr().out
        assert "match_precision" in out

    def test_demo(self, capsys):
        assert main(["demo"]) == 0
        out = capsys.readouterr().out
        assert "verified" in out or "verification" in out


class TestObsFlow:
    @pytest.fixture(autouse=True)
    def _telemetry_off(self):
        obs.disable()
        yield
        obs.disable()

    def test_simulate_obs_writes_artifacts_and_report_reads_them(
        self, tmp_path, capsys
    ):
        target = tmp_path / "artifacts"
        code = main(
            [
                "simulate",
                "--users",
                "6",
                "--steps",
                "2",
                "--obs-dir",
                str(target),
            ]
        )
        assert code == 0
        capsys.readouterr()
        trace_lines = (
            (target / "trace.jsonl").read_text().strip().splitlines()
        )
        names = {json.loads(line)["name"] for line in trace_lines}
        for phase in (
            "simulate",
            "sim.run",
            "sim.step",
            "profile.build",
            "keygen.oprf",
            "scheme.encrypt",
            "server.handle_upload",
        ):
            assert phase in names, f"missing span {phase}"
        metrics = json.loads((target / "metrics.json").read_text())
        # initial enrollment alone uploads every user once
        assert metrics["counters"]["smatch_server_uploads_total"] >= 6

        assert main(["obs", "report", "--dir", str(target)]) == 0
        out = capsys.readouterr().out
        assert "-- trace --" in out
        assert "simulate" in out
        assert "-- metrics --" in out


class TestObsAnalytics:
    """The offline analysis subcommands: flame, top, critical-path, diff."""

    @pytest.fixture(autouse=True)
    def _telemetry_off(self):
        obs.disable()
        yield
        obs.disable()

    @pytest.fixture()
    def trace_file(self, tmp_path):
        from repro.obs.trace import span, tracing

        with tracing("run") as tracer:
            with span("enroll"):
                with span("encrypt"):
                    sum(range(500))
            with span("query"):
                sum(range(100))
        path = tmp_path / "trace.jsonl"
        path.write_text(tracer.to_jsonl(), encoding="utf-8")
        return path

    def test_flame_folded_to_stdout(self, trace_file, capsys):
        assert main(["obs", "flame", str(trace_file), "--format", "folded"]) == 0
        out = capsys.readouterr().out
        assert "run;enroll;encrypt " in out
        # folded self-times re-aggregate to exactly the root duration
        root = json.loads(trace_file.read_text().splitlines()[0])
        total = sum(
            int(line.rsplit(" ", 1)[1])
            for line in out.strip().splitlines()
        )
        assert total == root["duration_us"]

    def test_flame_html_to_file(self, trace_file, tmp_path, capsys):
        out_path = tmp_path / "flame.html"
        code = main(
            [
                "obs",
                "flame",
                str(trace_file),
                "--out",
                str(out_path),
                "--title",
                "cli test",
            ]
        )
        assert code == 0
        html = out_path.read_text()
        assert html.startswith("<!DOCTYPE html>")
        assert "cli test" in html and 'class="frame"' in html

    def test_top(self, trace_file, capsys):
        assert main(["obs", "top", str(trace_file), "--limit", "2"]) == 0
        out = capsys.readouterr().out
        assert "self_us" in out and "span" in out
        assert len(out.strip().splitlines()) == 3  # header + 2 rows

    def test_critical_path(self, trace_file, capsys):
        assert main(["obs", "critical-path", str(trace_file)]) == 0
        out = capsys.readouterr().out
        assert out.startswith("run ")
        assert "% of root" in out

    def test_diff_writes_schema_tagged_json(self, trace_file, tmp_path, capsys):
        report_path = tmp_path / "diff.json"
        code = main(
            [
                "obs",
                "diff",
                str(trace_file),
                str(trace_file),
                "--json-out",
                str(report_path),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "trace diff: root" in out
        report = json.loads(report_path.read_text())
        assert report["schema"] == "smatch-trace-diff/1"
        assert report["delta_root_us"] == 0
        assert report["top_regression"] is None

    def test_flame_reads_from_obs_dir(self, trace_file, tmp_path, capsys):
        # without a positional trace the subcommands read --dir/trace.jsonl
        target = tmp_path / "artifacts"
        target.mkdir()
        (target / "trace.jsonl").write_text(trace_file.read_text())
        assert main(["obs", "top", "--dir", str(target)]) == 0
        assert "run" in capsys.readouterr().out
