"""Tests for the command-line interface."""

import json

import pytest

from repro import obs
from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_experiment_choices(self):
        args = build_parser().parse_args(["experiment", "table2"])
        assert args.name == "table2"
        with pytest.raises(SystemExit):
            build_parser().parse_args(["experiment", "nonexistent"])

    def test_dataset_option(self):
        args = build_parser().parse_args(
            ["experiment", "fig5def", "--dataset", "Weibo"]
        )
        assert args.dataset == "Weibo"

    def test_simulate_defaults(self):
        args = build_parser().parse_args(["simulate"])
        assert args.users == 30 and args.steps == 10
        assert args.obs is False and args.obs_dir is None

    def test_obs_report_defaults(self):
        args = build_parser().parse_args(["obs", "report"])
        assert args.obs_command == "report" and args.dir is None


class TestCommands:
    def test_datasets(self, capsys):
        assert main(["datasets"]) == 0
        out = capsys.readouterr().out
        assert "Infocom06" in out and "Weibo" in out

    def test_experiment_table1(self, capsys):
        assert main(["experiment", "table1"]) == 0
        out = capsys.readouterr().out
        assert "S-MATCH" in out and "ZZS12" in out

    def test_experiment_fig1(self, capsys):
        assert main(["experiment", "fig1"]) == 0
        assert "search space" in capsys.readouterr().out

    def test_attack(self, capsys):
        assert main(["attack", "ope_split"]) == 0
        assert "order preserved" in capsys.readouterr().out

    def test_simulate(self, capsys):
        assert main(["simulate", "--users", "8", "--steps", "2"]) == 0
        out = capsys.readouterr().out
        assert "match_precision" in out

    def test_demo(self, capsys):
        assert main(["demo"]) == 0
        out = capsys.readouterr().out
        assert "verified" in out or "verification" in out


class TestObsFlow:
    @pytest.fixture(autouse=True)
    def _telemetry_off(self):
        obs.disable()
        yield
        obs.disable()

    def test_simulate_obs_writes_artifacts_and_report_reads_them(
        self, tmp_path, capsys
    ):
        target = tmp_path / "artifacts"
        code = main(
            [
                "simulate",
                "--users",
                "6",
                "--steps",
                "2",
                "--obs-dir",
                str(target),
            ]
        )
        assert code == 0
        capsys.readouterr()
        trace_lines = (
            (target / "trace.jsonl").read_text().strip().splitlines()
        )
        names = {json.loads(line)["name"] for line in trace_lines}
        for phase in (
            "simulate",
            "sim.run",
            "sim.step",
            "profile.build",
            "keygen.oprf",
            "scheme.encrypt",
            "server.handle_upload",
        ):
            assert phase in names, f"missing span {phase}"
        metrics = json.loads((target / "metrics.json").read_text())
        # initial enrollment alone uploads every user once
        assert metrics["counters"]["smatch_server_uploads_total"] >= 6

        assert main(["obs", "report", "--dir", str(target)]) == 0
        out = capsys.readouterr().out
        assert "-- trace --" in out
        assert "simulate" in out
        assert "-- metrics --" in out
