"""Unit tests for the smatch-lint dataflow layer (cfg.py + taint.py).

The rule-level behavior is covered in test_smatch_lint.py; these tests pin
the graph construction (edge kinds, loop back edges, exception edges) and
the taint engine's core algebra (joins, strong updates, summaries,
convergence) directly, so a regression points at the right layer.
"""

from __future__ import annotations

import ast
import textwrap

from tools.smatch_lint.cfg import build_cfg
from tools.smatch_lint.config import DEFAULT_CONFIG
from tools.smatch_lint.rules import RuleContext
from tools.smatch_lint.taint import analyze_module

SERVER_PATH = "src/repro/server/handler.py"


def first_function(source: str) -> ast.FunctionDef:
    tree = ast.parse(textwrap.dedent(source))
    for node in ast.walk(tree):
        if isinstance(node, ast.FunctionDef):
            return node
    raise AssertionError("no function in fixture")


def analyze(source: str, path: str = SERVER_PATH, secret_lines=frozenset()):
    tree = ast.parse(textwrap.dedent(source))
    ctx = RuleContext(path=path, config=DEFAULT_CONFIG, secret_lines=secret_lines)
    return analyze_module(tree, ctx)


def edge_kinds(cfg):
    return {edge.kind for edge in cfg.edges}


class TestCfgConstruction:
    def test_straight_line_wires_entry_to_exit(self):
        cfg = build_cfg(first_function("def f():\n    a = 1\n    b = 2\n"))
        assert len(cfg.nodes) == 4  # ENTRY, EXIT, two statements
        kinds = edge_kinds(cfg)
        assert kinds == {"next"}
        # ENTRY -> a -> b -> EXIT
        assert (cfg.ENTRY, "next") in cfg.preds[2]
        assert any(dst == cfg.EXIT for dst, _ in cfg.succs[3])

    def test_if_has_true_false_edges_and_join(self):
        cfg = build_cfg(
            first_function(
                """\
                def f(x):
                    if x:
                        a = 1
                    b = 2
                """
            )
        )
        kinds = edge_kinds(cfg)
        assert {"true", "false"} <= kinds
        # the statement after the if joins both arms: two predecessors
        join = max(cfg.index_of.values())
        assert len(cfg.preds[join]) == 2

    def test_while_loop_has_back_edge(self):
        cfg = build_cfg(
            first_function(
                """\
                def f(x):
                    while x:
                        x -= 1
                    return x
                """
            )
        )
        assert {"loop", "back", "false"} <= edge_kinds(cfg)

    def test_for_loop_exhausted_and_break(self):
        cfg = build_cfg(
            first_function(
                """\
                def f(items):
                    for item in items:
                        if item:
                            break
                    return 0
                """
            )
        )
        assert {"loop", "exhausted", "back", "break"} <= edge_kinds(cfg)

    def test_continue_targets_loop_header(self):
        func = first_function(
            """\
            def f(items):
                for item in items:
                    continue
            """
        )
        cfg = build_cfg(func)
        continue_edges = [e for e in cfg.edges if e.kind == "continue"]
        assert len(continue_edges) == 1
        header = cfg.index_of[id(func.body[0])]
        assert continue_edges[0].dst == header

    def test_try_body_statements_may_raise_into_handler(self):
        func = first_function(
            """\
            def f():
                try:
                    a = g()
                    b = h()
                except ValueError:
                    c = 1
                return 0
            """
        )
        cfg = build_cfg(func)
        except_edges = [e for e in cfg.edges if e.kind == "except"]
        # both body statements get an edge into the handler head
        assert len(except_edges) == 2
        assert len({e.dst for e in except_edges}) == 1

    def test_return_and_raise_reach_exit(self):
        cfg = build_cfg(
            first_function(
                """\
                def f(x):
                    if x:
                        return 1
                    raise ValueError("no")
                """
            )
        )
        exit_kinds = {kind for _src, kind in cfg.preds[cfg.EXIT]}
        assert {"return", "raise"} <= exit_kinds

    def test_render_names_every_node(self):
        cfg = build_cfg(first_function("def f():\n    return 1\n"))
        dump = cfg.render()
        assert "<entry>" in dump and "Return@2" in dump


class TestTaintEngine:
    def test_join_keeps_taint_from_either_branch(self):
        module = analyze(
            """\
            def handle(flag, profile_key):
                if flag:
                    value = profile_key
                else:
                    value = b"public"
                if value:
                    return b"y"
                return b"n"
            """
        )
        events = [e for _f, e in module.events("branch")]
        assert any(e.taint.source == "profile_key" and e.line == 6 for e in events)

    def test_strong_update_on_every_path_kills_taint(self):
        module = analyze(
            """\
            def handle(flag, profile_key):
                value = profile_key
                if flag:
                    value = b"a"
                else:
                    value = b"b"
                if value:
                    return b"y"
                return b"n"
            """
        )
        assert [e for _f, e in module.events("branch") if e.line == 7] == []

    def test_summary_tracks_param_to_return_flow(self):
        module = analyze(
            """\
            def passthrough(data, salt):
                mixed = data + salt
                return mixed
            """
        )
        summary = module.functions[0].summary
        assert summary.flows == {"data", "salt"}
        assert not summary.returns_secret

    def test_summary_returns_secret_for_source_calls(self):
        module = analyze(
            """\
            def mint(values):
                return derive_from_values(values)
            """
        )
        assert module.functions[0].summary.returns_secret

    def test_sanitizer_in_helper_breaks_the_chain(self):
        module = analyze(
            """\
            def commit(data):
                return sha256(data)

            def handle(profile_key):
                if commit(profile_key):
                    return b"y"
                return b"n"
            """
        )
        assert [e for _f, e in module.events("branch")] == []

    def test_cyclic_assignment_converges(self):
        # a <-> b swap in a loop must not diverge (hop-chain capping)
        module = analyze(
            """\
            def handle(profile_key, rounds):
                a = profile_key
                b = a
                while rounds:
                    a, b = b, a
                    rounds -= 1
                if a:
                    return b"y"
                return b"n"
            """
        )
        events = [e for _f, e in module.events("branch") if e.line == 7]
        assert events and all(len(e.taint.via) <= 4 for e in events)

    def test_annotation_line_is_a_source(self):
        module = analyze(
            "def handle(request):\n"
            "    blob = request.payload\n"
            "    if blob:\n"
            "        return b'y'\n"
            "    return b'n'\n",
            secret_lines=frozenset({2}),
        )
        events = [e for _f, e in module.events("branch")]
        assert events and events[0].taint.kind == "annotation"

    def test_except_handler_name_is_clean(self):
        module = analyze(
            """\
            def handle(profile_key):
                try:
                    use(profile_key)
                except ValueError as exc:
                    if exc:
                        return b"err"
                return b"ok"
            """
        )
        assert [e for _f, e in module.events("branch") if e.line == 5] == []

    def test_analysis_memoized_per_context(self):
        tree = ast.parse("def f(key):\n    return key\n")
        ctx = RuleContext(path=SERVER_PATH, config=DEFAULT_CONFIG)
        first = analyze_module(tree, ctx)
        assert analyze_module(tree, ctx) is first
