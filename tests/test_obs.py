"""Tests for the repro.obs telemetry subsystem (tracing/metrics/logging).

Covers the three pillars plus the lifecycle glue: span nesting and fold-up
semantics, JSONL export and tree re-rendering, the integer-only metrics
registry with both exporters, the redacting logger, and — the property the
instrumented hot paths rely on — that everything is a no-op while telemetry
is inactive.
"""

from __future__ import annotations

import json
import logging

import pytest

from repro import obs
from repro.errors import ParameterError
from repro.obs.logs import KeyValueFormatter, Redactor, get_logger
from repro.obs.metrics import (
    BYTE_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    active_metrics,
    disable_metrics,
    enable_metrics,
    metric_inc,
    metric_observe,
    metric_set,
)
from repro.obs.report import (
    load_trace_records,
    render_report,
    render_trace_report,
    save_run,
)
from repro.obs.trace import (
    _NOOP,
    current_span,
    current_tracer,
    record_bytes,
    span,
    tracing,
)
from repro.utils.instrument import count_op


@pytest.fixture(autouse=True)
def _telemetry_off():
    """Every test starts and ends with telemetry fully inactive."""
    obs.disable()
    yield
    obs.disable()


@pytest.fixture(scope="module")
def pop_scheme(oprf_server, population):
    """A scheme over the population's numeric schema (cf. ``enrolled``)."""
    from repro.core.scheme import SMatch, SMatchParams
    from repro.utils.rand import SystemRandomSource

    return SMatch(
        SMatchParams(schema=population.schema, theta=8, plaintext_bits=64),
        oprf_server=oprf_server,
        rng=SystemRandomSource(seed=5),
    )


class TestSpanTracing:
    def test_nesting_and_names(self):
        with tracing("root") as tracer:
            with span("a"):
                with span("b"):
                    pass
            with span("c"):
                pass
        assert tracer.span_names() == ["root", "a", "b", "c"]
        (a,) = tracer.find("a")
        assert [c.name for c in a.children] == ["b"]

    def test_ops_fold_into_ancestors(self):
        with tracing("root") as tracer:
            with span("outer"):
                count_op("hash")
                with span("inner"):
                    count_op("hash", 2)
        (outer,) = tracer.find("outer")
        (inner,) = tracer.find("inner")
        assert inner.ops == {"hash": 2}
        assert outer.ops == {"hash": 3}
        assert tracer.root.ops == {"hash": 3}

    def test_bytes_fold_into_ancestors(self):
        with tracing("root") as tracer:
            with span("phase"):
                record_bytes("sent", 100)
                with span("sub"):
                    record_bytes("sent", 10)
                    record_bytes("received", 7)
        (phase,) = tracer.find("phase")
        assert phase.bytes_io == {"sent": 110, "received": 7}
        assert tracer.root.bytes_io == {"sent": 110, "received": 7}

    def test_durations_recorded(self):
        with tracing("root") as tracer:
            with span("timed"):
                pass
        (timed,) = tracer.find("timed")
        assert timed.duration_ns >= 0
        assert tracer.root.duration_ns >= timed.duration_ns

    def test_attrs_and_set_attr(self):
        with tracing("root") as tracer:
            with span("phase", users=4) as s:
                s.set_attr("groups", 2)
        (phase,) = tracer.find("phase")
        assert phase.attrs == {"users": 4, "groups": 2}

    def test_jsonl_roundtrip_with_parent_links(self):
        with tracing("root", run=1) as tracer:
            with span("a"):
                with span("b"):
                    count_op("hash")
        records = [
            json.loads(line) for line in tracer.to_jsonl().splitlines() if line
        ]
        assert [r["name"] for r in records] == ["root", "a", "b"]
        by_name = {r["name"]: r for r in records}
        assert by_name["root"]["parent"] is None
        assert by_name["a"]["parent"] == by_name["root"]["id"]
        assert by_name["b"]["parent"] == by_name["a"]["id"]
        assert by_name["b"]["ops"] == {"hash": 1}
        assert all("duration_us" in r and "start_us" in r for r in records)

    def test_render_tree_shape(self):
        with tracing("root") as tracer:
            with span("a"):
                with span("b"):
                    pass
            with span("c"):
                pass
        rendered = tracer.render()
        lines = rendered.splitlines()
        assert lines[0].startswith("root")
        assert "|- a" in lines[1]
        assert "`- b" in lines[2]
        assert "`- c" in lines[3]

    def test_tracers_do_not_nest(self):
        with tracing("outer"):
            with pytest.raises(ParameterError):
                with tracing("inner"):
                    pass

    def test_current_span_and_tracer(self):
        assert current_tracer() is None
        assert current_span() is None
        with tracing("root") as tracer:
            assert current_tracer() is tracer
            with span("a") as a:
                assert current_span() is a


class TestInactiveNoop:
    """The disabled-path guarantee the instrumented call sites rely on."""

    def test_span_returns_shared_noop(self):
        assert span("anything", attrs=1) is _NOOP
        with span("anything") as s:
            s.set_attr("x", 1)
            s.add_bytes("sent", 10)

    def test_record_bytes_is_noop(self):
        record_bytes("sent", 10)  # must not raise

    def test_metric_helpers_are_noops(self):
        assert active_metrics() is None
        metric_inc("smatch_x_total")
        metric_set("smatch_x", 1)
        metric_observe("smatch_x_bytes", 10)
        assert active_metrics() is None

    def test_pipeline_produces_zero_spans_and_metrics(self, pop_scheme, population):
        """Acceptance: an uninstrumented run records nothing at all."""
        profile = population.generate(1)[0].profile
        payload, key = pop_scheme.enroll(profile)
        assert pop_scheme.verify(payload.auth, key)
        assert current_tracer() is None
        assert active_metrics() is None


class TestMetrics:
    def test_counter(self):
        c = Counter("n")
        c.inc()
        c.inc(4)
        assert c.value == 5
        with pytest.raises(ParameterError):
            c.inc(-1)

    def test_gauge(self):
        g = Gauge("n")
        g.set(7)
        g.inc(-2)
        assert g.value == 5

    def test_histogram_buckets(self):
        h = Histogram("n", bounds=(10, 100))
        for v in (5, 10, 50, 1000):
            h.observe(v)
        assert h.cumulative() == [("10", 2), ("100", 3), ("+Inf", 4)]
        assert h.total == 1065
        assert h.count == 4
        with pytest.raises(ParameterError):
            h.observe(-1)
        with pytest.raises(ParameterError):
            Histogram("bad", bounds=(100, 10))

    def test_registry_get_or_create(self):
        registry = MetricsRegistry()
        assert registry.counter("a") is registry.counter("a")
        assert registry.histogram("h") is registry.histogram("h")

    def test_snapshot_and_json(self):
        registry = MetricsRegistry()
        registry.counter("smatch_x_total").inc(3)
        registry.gauge("smatch_g").set(2)
        registry.histogram("smatch_b", BYTE_BUCKETS).observe(100)
        snap = registry.snapshot()
        assert snap["counters"] == {"smatch_x_total": 3}
        assert snap["gauges"] == {"smatch_g": 2}
        assert snap["histograms"]["smatch_b"]["count"] == 1
        assert snap["histograms"]["smatch_b"]["sum"] == 100
        assert json.loads(registry.render_json()) == snap

    def test_prometheus_exposition(self):
        registry = MetricsRegistry()
        registry.counter("smatch_x_total").inc()
        registry.histogram("smatch_b", (64, 256)).observe(100)
        text = registry.render_prometheus()
        assert "# TYPE smatch_x_total counter" in text
        assert "smatch_x_total 1" in text
        assert 'smatch_b_bucket{le="64"} 0' in text
        assert 'smatch_b_bucket{le="256"} 1' in text
        assert 'smatch_b_bucket{le="+Inf"} 1' in text
        assert "smatch_b_sum 100" in text
        assert "smatch_b_count 1" in text

    def test_enable_disable_helpers(self):
        registry = enable_metrics()
        metric_inc("smatch_x_total", 2)
        metric_set("smatch_g", 9)
        metric_observe("smatch_b", 12)
        snap = registry.snapshot()
        assert snap["counters"]["smatch_x_total"] == 2
        assert snap["gauges"]["smatch_g"] == 9
        assert snap["histograms"]["smatch_b"]["count"] == 1
        disable_metrics()
        metric_inc("smatch_x_total")
        assert registry.snapshot()["counters"]["smatch_x_total"] == 2

    def test_histogram_reregistration_with_other_bounds_raises(self):
        registry = MetricsRegistry()
        registry.histogram("smatch_b", (64, 256))
        with pytest.raises(ParameterError) as exc:
            registry.histogram("smatch_b", (10, 100))
        # the error must name the metric — it points at the offending site
        assert "smatch_b" in str(exc.value)
        assert "(64, 256)" in str(exc.value)
        # same bounds re-register fine (list vs tuple is immaterial)
        assert registry.histogram("smatch_b", [64, 256]).count == 0

    def test_metric_names_cover_catalog(self):
        from repro.obs.metrics import METRICS, metric_names

        names = metric_names()
        assert names == frozenset(METRICS)
        assert "smatch_server_uploads_total" in names
        assert "smatch_obs_worker_spans_total" in names


class TestMergeableRegistries:
    """Cross-process aggregation: merge(to_mergeable()) is exact."""

    def test_counters_add_gauges_max_histograms_add(self):
        worker = MetricsRegistry()
        worker.counter("smatch_x_total").inc(3)
        worker.gauge("smatch_depth").set(5)
        worker.histogram("smatch_b", (64, 256)).observe(100)
        parent = MetricsRegistry()
        parent.counter("smatch_x_total").inc(2)
        parent.gauge("smatch_depth").set(9)
        parent.histogram("smatch_b", (64, 256)).observe(30)
        parent.merge(worker.to_mergeable())
        snap = parent.snapshot()
        assert snap["counters"]["smatch_x_total"] == 5
        assert snap["gauges"]["smatch_depth"] == 9  # level metrics keep max
        assert snap["histograms"]["smatch_b"]["count"] == 2
        assert snap["histograms"]["smatch_b"]["sum"] == 130

    def test_merge_is_associative_and_commutative(self):
        def make(c, g):
            registry = MetricsRegistry()
            registry.counter("smatch_x_total").inc(c)
            registry.gauge("smatch_depth").set(g)
            registry.histogram("smatch_b", (64,)).observe(c)
            return registry

        views = [make(1, 4).to_mergeable(), make(2, 2).to_mergeable()]
        forward, backward = MetricsRegistry(), MetricsRegistry()
        for view in views:
            forward.merge(view)
        for view in reversed(views):
            backward.merge(view)
        assert forward.snapshot() == backward.snapshot()

    def test_merge_creates_missing_metrics(self):
        worker = MetricsRegistry()
        worker.counter("smatch_new_total").inc(7)
        worker.histogram("smatch_h", (10,)).observe(3)
        parent = MetricsRegistry()
        parent.merge(worker.to_mergeable())
        snap = parent.snapshot()
        assert snap["counters"]["smatch_new_total"] == 7
        assert snap["histograms"]["smatch_h"]["count"] == 1

    def test_merge_rejects_mismatched_bounds(self):
        worker = MetricsRegistry()
        worker.histogram("smatch_h", (10,)).observe(1)
        parent = MetricsRegistry()
        parent.histogram("smatch_h", (99,))
        with pytest.raises(ParameterError) as exc:
            parent.merge(worker.to_mergeable())
        assert "smatch_h" in str(exc.value)

    def test_mergeable_round_trips_through_pickle_shape(self):
        # workers ship this dict across a process boundary: it must be
        # plain JSON-compatible data, no live metric objects
        worker = MetricsRegistry()
        worker.counter("smatch_x_total").inc(1)
        worker.histogram("smatch_b", (64,)).observe(9)
        view = json.loads(json.dumps(worker.to_mergeable()))
        parent = MetricsRegistry()
        parent.merge(view)
        assert parent.snapshot()["counters"]["smatch_x_total"] == 1


class TestLogging:
    def test_redactor_refuses_secret_fields(self):
        r = Redactor()
        assert r.render_value("profile_key", b"\x00" * 32) == "[REDACTED]"
        assert r.render_value("mac", "deadbeef") == "[REDACTED]"
        assert r.render_value("oprf_output", 123) == "[REDACTED]"

    def test_redactor_bytes_become_lengths(self):
        assert Redactor().render_value("blob", b"1234") == "bytes[4]"

    def test_redactor_public_values_pass(self):
        r = Redactor()
        assert r.render_value("key_index", "abc123") == "abc123"
        assert r.render_value("user_id", 7) == "7"

    def test_redactor_truncates_long_values(self):
        rendered = Redactor().render_value("detail", "x" * 500)
        assert len(rendered) < 500
        assert rendered.endswith("...")

    def test_logger_emits_redacted_key_values(self):
        records = []

        class _Capture(logging.Handler):
            def emit(self, record):
                records.append(self.format(record))

        handler = _Capture()
        handler.setFormatter(KeyValueFormatter())
        root = logging.getLogger("smatch")
        root.addHandler(handler)
        root.setLevel(logging.DEBUG)
        try:
            log = get_logger("testcomp")
            log.info("enrolled", user=7, session_key=b"secret", blob=b"abcd")
        finally:
            root.removeHandler(handler)
        (line,) = records
        assert "component=testcomp" in line
        assert "event=enrolled" in line
        assert "user=7" in line
        assert "session_key=[REDACTED]" in line
        assert "blob=bytes[4]" in line
        assert "secret" not in line.replace("[REDACTED]", "")

    def test_fallback_regexes_match_lint_config(self):
        """logs.py mirrors the SML002 heuristics; they must never drift."""
        from repro.obs import logs
        from tools.smatch_lint.config import _PUBLIC_NAME_RE, _SECRET_NAME_RE

        assert logs._FALLBACK_SECRET_RE.pattern == _SECRET_NAME_RE.pattern
        assert logs._FALLBACK_PUBLIC_RE.pattern == _PUBLIC_NAME_RE.pattern


class TestLifecycleAndReport:
    def test_pipeline_span_noop_when_disabled(self):
        with obs.pipeline_span("run"):
            assert current_tracer() is None

    def test_pipeline_span_roots_and_saves(self, tmp_path):
        obs.enable(tmp_path)
        with obs.pipeline_span("run", users=2):
            with span("phase"):
                count_op("hash")
            metric_inc("smatch_test_total")
        records = load_trace_records(tmp_path)
        assert [r["name"] for r in records] == ["run", "phase"]
        metrics = json.loads((tmp_path / "metrics.json").read_text())
        assert metrics["counters"]["smatch_test_total"] == 1
        assert (tmp_path / "metrics.prom").exists()

    def test_pipeline_span_nests_as_child(self, tmp_path):
        obs.enable(tmp_path)
        with obs.pipeline_span("outer"):
            with obs.pipeline_span("inner"):
                pass
        assert [r["name"] for r in load_trace_records(tmp_path)] == [
            "outer",
            "inner",
        ]

    def test_enabled_via_env(self, monkeypatch):
        assert not obs.enabled()
        monkeypatch.setenv("SMATCH_OBS", "1")
        assert obs.enabled()
        monkeypatch.setenv("SMATCH_OBS", "0")
        assert not obs.enabled()

    def test_load_trace_missing_raises(self, tmp_path):
        with pytest.raises(ParameterError):
            load_trace_records(tmp_path / "nope")

    def test_report_renders_tree_and_metrics(self, tmp_path):
        obs.enable(tmp_path)
        with obs.pipeline_span("run"):
            with span("phase"):
                count_op("hash", 3)
            metric_inc("smatch_test_total", 2)
        report = render_report(tmp_path)
        assert "-- trace --" in report
        assert "`- phase" in report
        assert "[hash=3]" in report
        assert "smatch_test_total" in report

    def test_render_trace_report_rebuilds_from_jsonl(self):
        with tracing("root") as tracer:
            with span("child"):
                pass
        records = [
            json.loads(line) for line in tracer.to_jsonl().splitlines() if line
        ]
        rendered = render_trace_report(records)
        assert rendered.splitlines()[0].startswith("root")
        assert "`- child" in rendered

    def test_save_run_handles_missing_parts(self, tmp_path):
        target = save_run(None, None, tmp_path / "sub")
        assert target.exists()
        assert not (target / "trace.jsonl").exists()


class TestEndToEndPipeline:
    """Acceptance: phase spans across the whole matching pipeline."""

    PHASES = (
        "profile.build",
        "scheme.init_data",
        "keygen.fuzzy_extract",
        "keygen.oprf",
        "scheme.encrypt",
        "ope.encrypt",
        "match.score_table",
        "verification.vf",
    )

    @pytest.fixture()
    def traced_run(self, pop_scheme, population):
        from repro.core.matching import knn_match

        with tracing("e2e") as tracer:
            users = population.generate(6)
            uploads, keys = pop_scheme.enroll_population(
                [u.profile for u in users]
            )
            groups = {}
            for payload in uploads.values():
                groups.setdefault(payload.key_index, {})[
                    payload.user_id
                ] = payload
            group = max(groups.values(), key=len)
            query_user = next(iter(group))
            if len(group) > 1:
                chains = {uid: ep.chain for uid, ep in group.items()}
                knn_match(chains, query_user, k=1)
            some_user = next(iter(uploads))
            pop_scheme.verify(uploads[some_user].auth, keys[some_user])
        return tracer

    def test_all_phases_present(self, traced_run):
        names = set(traced_run.span_names())
        for phase in self.PHASES:
            assert phase in names, f"missing phase span {phase}"

    def test_phase_spans_carry_duration_and_ops(self, traced_run):
        for name, op in [
            ("scheme.encrypt", "ope_level"),
            ("keygen.oprf", "modexp"),
            ("scheme.init_data", "entropy_map"),
        ]:
            spans = traced_run.find(name)
            assert spans, f"no {name} spans"
            for s in spans:
                assert s.duration_ns >= 0
                assert s.ops.get(op, 0) > 0

    def test_root_aggregates_everything(self, traced_run):
        root = traced_run.root
        assert root.ops.get("keygen", 0) == 6
        assert root.ops.get("init_data", 0) == 6
        assert root.ops.get("verify", 0) == 1
        assert root.duration_ns > 0

    def test_jsonl_export_parses(self, traced_run):
        records = [
            json.loads(line)
            for line in traced_run.to_jsonl().splitlines()
            if line
        ]
        assert len(records) == len(traced_run.spans())
        ids = {r["id"] for r in records}
        assert all(r["parent"] in ids for r in records if r["parent"] is not None)
