"""Shared fixtures: seeded randomness, a small scheme, a small population.

Everything here is deterministic (seeded) so failures reproduce exactly.
Module-scoped fixtures amortize the expensive setup (OPRF keys, enrollment)
across the tests of one file.
"""

from __future__ import annotations

import pytest

from repro.core.profile import ProfileSchema
from repro.core.scheme import SMatch, SMatchParams
from repro.crypto.fixtures import fixed_rsa_keypair
from repro.crypto.oprf import RsaOprfServer
from repro.datasets.synthetic import INFOCOM06, ClusteredPopulation
from repro.utils.rand import SystemRandomSource


@pytest.fixture
def rng() -> SystemRandomSource:
    return SystemRandomSource(seed=1234)


@pytest.fixture(scope="module")
def oprf_server() -> RsaOprfServer:
    return RsaOprfServer(
        keypair=fixed_rsa_keypair(1024), rng=SystemRandomSource(seed=99)
    )


@pytest.fixture(scope="module")
def small_schema() -> ProfileSchema:
    return ProfileSchema.uniform(
        ["gender", "education", "age", "interest_a", "interest_b", "city"],
        1 << 15,
    )


@pytest.fixture(scope="module")
def small_scheme(oprf_server, small_schema) -> SMatch:
    params = SMatchParams(schema=small_schema, theta=8, plaintext_bits=64)
    return SMatch(
        params,
        oprf_server=oprf_server,
        rng=SystemRandomSource(seed=42),
    )


@pytest.fixture(scope="module")
def population() -> ClusteredPopulation:
    return ClusteredPopulation(
        INFOCOM06, theta=8, rng=SystemRandomSource(seed=77)
    )


@pytest.fixture(scope="module")
def enrolled(population):
    """(scheme, users, uploads, keys) for a 30-user Infocom06 population."""
    users = population.generate(30)
    scheme_rng = SystemRandomSource(seed=43)
    scheme = SMatch(
        SMatchParams(schema=population.schema, theta=8, plaintext_bits=64),
        oprf_server=RsaOprfServer(
            keypair=fixed_rsa_keypair(1024), rng=scheme_rng
        ),
        rng=scheme_rng,
    )
    uploads, keys = scheme.enroll_population([u.profile for u in users])
    return scheme, users, uploads, keys
