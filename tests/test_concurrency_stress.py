"""N-thread hammer tests for the shared mutable state SML012–SML015 police.

These are the dynamic complement to the static lockset rules: each test
drives one of the concurrency-hardened components from many threads at
once and asserts an exact conservation property — counts that a lost
update, duplicated splice, or torn LRU eviction would violate.  They are
deliberately deterministic in their *assertions* (exact totals, unique
ids) even though the interleavings are not.
"""

from __future__ import annotations

import threading
from typing import Any, Callable, Dict, List

import pytest

from repro.crypto.ope_cache import OpeNodeCache
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import Tracer

THREADS = 6
ITERS = 2000


def _hammer(worker: Callable[[int], None], threads: int = THREADS) -> None:
    """Run ``worker(thread_index)`` across N threads with a common start."""
    barrier = threading.Barrier(threads)
    errors: List[BaseException] = []

    def run(index: int) -> None:
        try:
            barrier.wait()
            worker(index)
        except BaseException as exc:  # noqa: BLE001 - re-raised below
            errors.append(exc)

    pool = [
        threading.Thread(target=run, args=(i,), name=f"hammer-{i}")
        for i in range(threads)
    ]
    for thread in pool:
        thread.start()
    for thread in pool:
        thread.join()
    if errors:
        raise errors[0]


class TestOpeNodeCacheStress:
    def test_tally_conservation_under_contention(self) -> None:
        """hits + misses == total gets, no matter the interleaving."""
        cache = OpeNodeCache(capacity=256)

        def token(i: int) -> Any:
            return (b"k", 0, i % 512, 0, 0, 0)

        def worker(index: int) -> None:
            for i in range(ITERS):
                value = cache.get(token(i))
                if value is None:
                    cache.put(token(i), i % 512)

        _hammer(worker)
        hits, misses, evictions = cache.stats()
        assert hits + misses == THREADS * ITERS
        assert len(cache) <= 256
        assert evictions >= 0

    def test_cached_values_stay_correct(self) -> None:
        """Concurrent eviction churn never serves a wrong value."""
        cache = OpeNodeCache(capacity=64)

        def worker(index: int) -> None:
            for i in range(ITERS):
                key = (b"k", index, i % 128, 0, 0, 0)
                value = cache.get(key)
                if value is None:
                    cache.put(key, index * 1000 + i % 128)
                else:
                    assert value == index * 1000 + i % 128

        _hammer(worker)


class TestMetricsRegistryStress:
    def test_counter_increment_conservation(self) -> None:
        """No lost updates: the counter lands on exactly threads * iters."""
        registry = MetricsRegistry()

        def worker(index: int) -> None:
            for _ in range(ITERS):
                registry.inc("stress_total")

        _hammer(worker)
        assert registry.counter("stress_total").value == THREADS * ITERS

    def test_observe_and_merge_conservation(self) -> None:
        """Concurrent observes and worker merges fold without loss."""
        registry = MetricsRegistry()

        def worker(index: int) -> None:
            if index % 2 == 0:
                # direct observers
                for i in range(ITERS):
                    registry.observe("stress_bytes", i % 1024)
                    registry.inc("stress_direct")
            else:
                # pool-style: accumulate locally, merge in batches
                for _batch in range(10):
                    local = MetricsRegistry()
                    for i in range(ITERS // 10):
                        local.observe("stress_bytes", i % 1024)
                        local.inc("stress_merged")
                    registry.merge(local.to_mergeable())

        _hammer(worker)
        observers = (THREADS + 1) // 2
        mergers = THREADS // 2
        hist = registry.histogram("stress_bytes")
        assert hist.count == (observers + mergers) * ITERS
        assert registry.counter("stress_direct").value == observers * ITERS
        assert registry.counter("stress_merged").value == mergers * ITERS

    def test_gauge_last_write_is_a_written_value(self) -> None:
        """Torn writes would surface as a value no thread ever set."""
        registry = MetricsRegistry()

        def worker(index: int) -> None:
            for i in range(ITERS):
                registry.set_gauge("stress_level", index * ITERS + i)

        _hammer(worker)
        value = registry.gauge("stress_level").value
        assert 0 <= value < THREADS * ITERS


class TestTracerSpliceStress:
    SPLICES = 200

    @staticmethod
    def _batch(thread: int, index: int) -> List[Dict[str, Any]]:
        """A two-span worker trace in ``span_records`` wire shape."""
        root_id = f"w{thread}-{index}-root"
        return [
            {
                "id": root_id,
                "parent": None,
                "name": f"worker-{thread}",
                "attrs": {},
                "start_us": 1,
                "duration_us": 2,
                "ops": {"enroll": 1},
                "bytes": {"out": 3},
            },
            {
                "id": f"w{thread}-{index}-child",
                "parent": root_id,
                "name": "chunk",
                "attrs": {},
                "start_us": 1,
                "duration_us": 1,
                "ops": {},
                "bytes": {},
            },
        ]

    def test_no_lost_or_duplicated_spans(self) -> None:
        tracer = Tracer("coordinator")

        def worker(index: int) -> None:
            for i in range(self.SPLICES):
                grafted = tracer.splice(
                    self._batch(index, i), parent=tracer.root
                )
                assert len(grafted) == 1

        _hammer(worker)
        spans = tracer.spans()
        # root + (grafted root + child) per splice — nothing lost, nothing
        # spliced twice
        assert len(spans) == 1 + 2 * THREADS * self.SPLICES
        ids = [s.span_id for s in spans]
        assert len(ids) == len(set(ids)), "duplicated span ids"

    def test_op_and_byte_folds_conserve(self) -> None:
        """Grafted roots fold ops/bytes into the parent exactly once each."""
        tracer = Tracer("coordinator")

        def worker(index: int) -> None:
            for i in range(self.SPLICES):
                tracer.splice(self._batch(index, i), parent=tracer.root)

        _hammer(worker)
        total = THREADS * self.SPLICES
        assert tracer.root.ops.get("enroll") == total
        assert tracer.root.bytes_io.get("out") == 3 * total

    def test_concurrent_id_allocation_is_unique(self) -> None:
        tracer = Tracer("t")
        seen: List[int] = []
        lock = threading.Lock()

        def worker(index: int) -> None:
            local = [tracer._next_id() for _ in range(ITERS)]
            with lock:
                seen.extend(local)

        _hammer(worker)
        assert len(seen) == len(set(seen)) == THREADS * ITERS


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(pytest.main([__file__, "-v"]))
