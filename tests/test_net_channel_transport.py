"""Tests for the in-memory transport, secure channel, and latency model."""

import pytest

from repro.errors import IntegrityError, ParameterError, ProtocolError, TransportError
from repro.net.channel import SecureChannel
from repro.net.latency import LatencyModel
from repro.net.messages import QueryRequest
from repro.net.transport import InMemoryNetwork


class TestTransport:
    def test_send_recv_fifo(self):
        net = InMemoryNetwork()
        a = net.endpoint("a")
        b = net.endpoint("b")
        a.send("b", b"one")
        a.send("b", b"two")
        assert b.recv() == ("a", b"one")
        assert b.recv() == ("a", b"two")

    def test_pending(self):
        net = InMemoryNetwork()
        a = net.endpoint("a")
        b = net.endpoint("b")
        assert b.pending() == 0
        a.send("b", b"x")
        assert b.pending() == 1

    def test_unknown_destination(self):
        net = InMemoryNetwork()
        a = net.endpoint("a")
        with pytest.raises(TransportError):
            a.send("ghost", b"x")

    def test_recv_empty(self):
        net = InMemoryNetwork()
        a = net.endpoint("a")
        with pytest.raises(TransportError):
            a.recv()

    def test_duplicate_endpoint(self):
        net = InMemoryNetwork()
        net.endpoint("a")
        with pytest.raises(TransportError):
            net.endpoint("a")

    def test_traffic_accounting(self):
        net = InMemoryNetwork()
        a = net.endpoint("a")
        net.endpoint("b")
        a.send("b", b"12345")
        assert net.bytes_sent == 5
        assert net.messages_sent == 1


class TestSecureChannel:
    def make_pair(self):
        net = InMemoryNetwork()
        a = net.endpoint("client")
        b = net.endpoint("server")
        return SecureChannel.pair(a, b, session_key=b"session-secret")

    def test_roundtrip(self):
        client, server = self.make_pair()
        msg = QueryRequest(query_id=1, timestamp=2, user_id=3)
        client.send(msg)
        assert server.recv() == msg

    def test_bidirectional(self):
        client, server = self.make_pair()
        client.send(QueryRequest(query_id=1, timestamp=0, user_id=1))
        server.recv()
        server.send(QueryRequest(query_id=2, timestamp=0, user_id=2))
        assert client.recv().query_id == 2

    def test_wrong_session_key_rejected(self):
        net = InMemoryNetwork()
        a = net.endpoint("client")
        b = net.endpoint("server")
        sender = SecureChannel(a, "server", b"key-1")
        receiver = SecureChannel(b, "client", b"key-2")
        sender.send(QueryRequest(query_id=1, timestamp=0, user_id=1))
        with pytest.raises(IntegrityError):
            receiver.recv()

    def test_replay_rejected(self):
        """Sequence numbers in the AAD make replays fail."""
        net = InMemoryNetwork()
        a = net.endpoint("client")
        b = net.endpoint("server")
        client, server = (
            SecureChannel(a, "server", b"k"),
            SecureChannel(b, "client", b"k"),
        )
        client.send(QueryRequest(query_id=1, timestamp=0, user_id=1))
        _, datagram = net._queues["server"][0]
        server.recv()
        # replay the same datagram
        a.send("server", datagram)
        with pytest.raises(IntegrityError):
            server.recv()

    def test_unexpected_peer_rejected(self):
        net = InMemoryNetwork()
        a = net.endpoint("client")
        b = net.endpoint("server")
        mallory = net.endpoint("mallory")
        server = SecureChannel(b, "client", b"k")
        mallory.send("server", b"junk")
        with pytest.raises(ProtocolError):
            server.recv()

    def test_byte_accounting(self):
        client, server = self.make_pair()
        sent = client.send(QueryRequest(query_id=1, timestamp=0, user_id=1))
        server.recv()
        assert client.bytes_sent == sent
        assert server.bytes_received == sent


class TestNetMetrics:
    """Recorded message sizes must match the net-layer metrics exactly."""

    @pytest.fixture(autouse=True)
    def _metrics(self):
        from repro.obs.metrics import disable_metrics, enable_metrics

        self.registry = enable_metrics()
        yield
        disable_metrics()

    def test_transport_metrics_match_accounting(self):
        net = InMemoryNetwork()
        a = net.endpoint("a")
        net.endpoint("b")
        a.send("b", b"x" * 100)
        a.send("b", b"y" * 300)
        snap = self.registry.snapshot()
        assert snap["counters"]["smatch_net_messages_total"] == net.messages_sent == 2
        hist = snap["histograms"]["smatch_net_message_bytes"]
        assert hist["count"] == net.messages_sent
        assert hist["sum"] == net.bytes_sent == 400
        # 100 <= 256 and 300 <= 1024: cumulative buckets reflect the sizes
        assert hist["buckets"]["256"] == 1
        assert hist["buckets"]["1024"] == 2

    def test_channel_metrics_match_accounting(self):
        net = InMemoryNetwork()
        a = net.endpoint("client")
        b = net.endpoint("server")
        client, server = SecureChannel.pair(a, b, session_key=b"k")
        sent = client.send(QueryRequest(query_id=1, timestamp=0, user_id=1))
        server.recv()
        snap = self.registry.snapshot()
        assert snap["counters"]["smatch_channel_messages_total"] == 1
        assert snap["histograms"]["smatch_channel_sent_bytes"]["sum"] == sent
        assert snap["histograms"]["smatch_channel_sent_bytes"]["count"] == 1
        assert (
            snap["histograms"]["smatch_channel_received_bytes"]["sum"]
            == server.bytes_received
            == sent
        )

    def test_span_byte_tallies_match_wire_bytes(self):
        from repro.obs.trace import tracing

        net = InMemoryNetwork()
        a = net.endpoint("client")
        b = net.endpoint("server")
        client, server = SecureChannel.pair(a, b, session_key=b"k")
        with tracing("net") as tracer:
            sent = client.send(QueryRequest(query_id=1, timestamp=0, user_id=1))
            server.recv()
        assert tracer.root.bytes_io["sent"] == sent == net.bytes_sent
        assert tracer.root.bytes_io["received"] == sent


class TestLatency:
    def test_transmission_time(self):
        model = LatencyModel(bandwidth_bps=1e6, rtt_s=0, per_message_overhead_bits=0)
        assert model.transmission_time_s(1_000_000) == pytest.approx(1.0)

    def test_overhead_per_message(self):
        model = LatencyModel(bandwidth_bps=1e6, rtt_s=0, per_message_overhead_bits=1000)
        one = model.transmission_time_s(0, messages=1)
        three = model.transmission_time_s(0, messages=3)
        assert three == pytest.approx(3 * one)

    def test_round_trip(self):
        model = LatencyModel(bandwidth_bps=1e6, rtt_s=0.01, per_message_overhead_bits=0)
        assert model.round_trip_time_s(5000, 5000) == pytest.approx(0.02)

    def test_validation(self):
        with pytest.raises(ParameterError):
            LatencyModel(bandwidth_bps=0)
        model = LatencyModel()
        with pytest.raises(ParameterError):
            model.transmission_time_s(-1)
        with pytest.raises(ParameterError):
            model.transmission_time_s(10, messages=0)

    def test_paper_link_default(self):
        assert LatencyModel().bandwidth_bps == 53e6

    def test_payload_plus_overhead_arithmetic(self):
        model = LatencyModel(
            bandwidth_bps=1e6, rtt_s=0, per_message_overhead_bits=1000
        )
        # (9000 payload + 2 * 1000 framing) bits over 1 Mbps
        assert model.transmission_time_s(9000, messages=2) == pytest.approx(0.011)

    def test_round_trip_includes_overhead_both_ways(self):
        model = LatencyModel(
            bandwidth_bps=1e6, rtt_s=0.01, per_message_overhead_bits=500
        )
        expected = 0.01 + (4000 + 500) / 1e6 + (6000 + 500) / 1e6
        assert model.round_trip_time_s(4000, 6000) == pytest.approx(expected)
