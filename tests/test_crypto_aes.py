"""AES known-answer (FIPS-197) and property tests."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.crypto.aes import AES
from repro.errors import KeyError_, ParameterError

PLAINTEXT = bytes.fromhex("00112233445566778899aabbccddeeff")


class TestKnownAnswers:
    """FIPS-197 Appendix C example vectors."""

    def test_aes128(self):
        cipher = AES(bytes(range(16)))
        ct = cipher.encrypt_block(PLAINTEXT)
        assert ct.hex() == "69c4e0d86a7b0430d8cdb78070b4c55a"

    def test_aes192(self):
        cipher = AES(bytes(range(24)))
        ct = cipher.encrypt_block(PLAINTEXT)
        assert ct.hex() == "dda97ca4864cdfe06eaf70a0ec0d7191"

    def test_aes256(self):
        cipher = AES(bytes(range(32)))
        ct = cipher.encrypt_block(PLAINTEXT)
        assert ct.hex() == "8ea2b7ca516745bfeafc49904b496089"

    def test_aes128_appendix_b(self):
        key = bytes.fromhex("2b7e151628aed2a6abf7158809cf4f3c")
        pt = bytes.fromhex("3243f6a8885a308d313198a2e0370734")
        assert AES(key).encrypt_block(pt).hex() == "3925841d02dc09fbdc118597196a0b32"


class TestRoundtrip:
    @given(st.binary(min_size=16, max_size=16), st.sampled_from([16, 24, 32]))
    @settings(max_examples=40, deadline=None)
    def test_decrypt_inverts_encrypt(self, block, key_size):
        cipher = AES(bytes(range(key_size)))
        assert cipher.decrypt_block(cipher.encrypt_block(block)) == block

    def test_different_keys_different_ciphertexts(self):
        a = AES(b"\x00" * 16).encrypt_block(PLAINTEXT)
        b = AES(b"\x01" + b"\x00" * 15).encrypt_block(PLAINTEXT)
        assert a != b

    def test_rounds_by_key_size(self):
        assert AES(bytes(16)).rounds == 10
        assert AES(bytes(24)).rounds == 12
        assert AES(bytes(32)).rounds == 14


class TestValidation:
    def test_bad_key_size(self):
        with pytest.raises(KeyError_):
            AES(b"short")

    def test_bad_block_size(self):
        with pytest.raises(ParameterError):
            AES(bytes(16)).encrypt_block(b"tiny")
        with pytest.raises(ParameterError):
            AES(bytes(16)).decrypt_block(b"x" * 17)

    def test_counts_ops(self):
        from repro.utils.instrument import counting

        with counting() as c:
            AES(bytes(16)).encrypt_block(PLAINTEXT)
        assert c.get("aes_block") == 1
