"""Cross-cutting property-based tests on scheme-level invariants."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.matching import knn_match
from repro.errors import ProtocolError, ReproError
from repro.net.messages import decode_message
from repro.rs.fuzzy import FuzzyExtractor, FuzzyParams
from repro.server.matcher import ServerMatcher
from repro.utils.rand import SystemRandomSource


class TestFuzzyKeyCompleteness:
    """Close profiles anchored near a codeword derive equal fuzzy vectors."""

    PARAMS = FuzzyParams(num_attributes=6, theta=8)

    @given(data=st.data())
    @settings(max_examples=40, deadline=None)
    def test_bounded_noise_collides(self, data):
        fx = FuzzyExtractor(self.PARAMS)
        seed = data.draw(st.integers(min_value=0, max_value=10**6))
        rng = SystemRandomSource(seed=seed)
        cw = fx.random_codeword(rng)
        center = fx.codeword_center_values(cw, 1 << 18)
        # noise within the same bucket: |eps| <= step//2 - 1 keeps every
        # attribute in its bucket, so the vectors must collide exactly
        step = self.PARAMS.resolved_step
        eps = data.draw(
            st.lists(
                st.integers(
                    min_value=-(step // 2 - 1), max_value=step // 2 - 1
                ),
                min_size=6,
                max_size=6,
            )
        )
        noisy = [c + e for c, e in zip(center, eps)]
        assert fx.fuzzy_vector(noisy) == tuple(cw)

    @given(data=st.data())
    @settings(max_examples=40, deadline=None)
    def test_up_to_t_bucket_flips_still_collide(self, data):
        fx = FuzzyExtractor(self.PARAMS)
        seed = data.draw(st.integers(min_value=0, max_value=10**6))
        rng = SystemRandomSource(seed=seed)
        cw = fx.random_codeword(rng)
        center = fx.codeword_center_values(cw, 1 << 18)
        step = self.PARAMS.resolved_step
        t = self.PARAMS.tolerated_errors
        flip_positions = data.draw(
            st.lists(
                st.integers(min_value=0, max_value=5),
                min_size=0,
                max_size=t,
                unique=True,
            )
        )
        noisy = list(center)
        for pos in flip_positions:
            direction = data.draw(st.sampled_from([-1, 1]))
            noisy[pos] = max(0, center[pos] + direction * step)
        assert fx.fuzzy_vector(noisy) == tuple(cw)


class TestMessageFuzzing:
    """decode_message never raises anything but ProtocolError family."""

    @given(st.binary(max_size=400))
    @settings(max_examples=100)
    def test_random_bytes(self, raw):
        try:
            decode_message(raw)
        except ReproError:
            pass  # ProtocolError/ParameterError are acceptable rejections
        except OverflowError:
            pytest.fail("decoder leaked an OverflowError")

    @given(st.binary(min_size=1, max_size=60))
    @settings(max_examples=50)
    def test_truncations_of_valid_message(self, prefix):
        from repro.net.messages import QueryRequest

        encoded = QueryRequest(query_id=7, timestamp=9, user_id=3).encode()
        for cut in range(0, len(encoded), 3):
            try:
                msg = decode_message(encoded[:cut])
                # decoding a prefix should only succeed for the full message
                assert encoded[:cut] == encoded
            except ReproError:
                pass


class TestMatcherAgainstReference:
    """ServerMatcher's windowed selection matches score-distance semantics."""

    @given(data=st.data())
    @settings(max_examples=25, deadline=None)
    def test_window_distances_optimal(self, data):
        from repro.core.matching import score_table

        n = data.draw(st.integers(min_value=3, max_value=12))
        chains = {
            uid: [
                data.draw(st.integers(min_value=0, max_value=100))
                for _ in range(3)
            ]
            for uid in range(1, n + 1)
        }
        k = data.draw(st.integers(min_value=1, max_value=n - 1))
        query = 1
        result = knn_match(chains, query, k, method="rank")
        assert len(result) == min(k, n - 1)
        scores = score_table(chains, "rank")
        mine = scores[query]
        chosen = sorted(abs(scores[u] - mine) for u in result)
        others = sorted(
            abs(scores[u] - mine) for u in chains if u != query
        )
        # the selected distances are the k smallest achievable
        assert chosen == others[: len(chosen)]


class TestPipelineOrderInvariant:
    """End-to-end: mapped+chained+OPE totals preserve dominance order."""

    @given(data=st.data())
    @settings(max_examples=10, deadline=None)
    def test_dominated_profiles_rank_lower(self, data, small_scheme):
        schema = small_scheme.params.schema
        base_values = [
            data.draw(
                st.integers(min_value=0, max_value=s.cardinality - 2)
            )
            for s in schema.attributes
        ]
        from repro.core.profile import Profile

        lo = Profile(1, schema, tuple(base_values))
        hi = Profile(
            2,
            schema,
            tuple(
                min(v + s.cardinality // 2, s.cardinality - 1)
                for v, s in zip(base_values, schema.attributes)
            ),
        )
        key = small_scheme.keygen(lo)
        lo_chain = small_scheme.encrypt(lo, key)
        hi_chain = small_scheme.encrypt(hi, key)
        assert sum(lo_chain) <= sum(hi_chain)
