"""Shared-memory result-arena edge cases (repro.parallel.arena).

The transport's safety properties under test: a record that exactly fills
its slot commits; an overfull slot falls back to pickle cleanly (counted,
never raising); a worker killed mid-write surfaces the existing typed
:class:`~repro.errors.WorkerCrashError` and the pool recovers; torn or
missing commits are detected from the slot header rather than decoded; and
no shared-memory segment outlives its batch — the whole module runs under
a leak check on ``/dev/shm``.
"""

from __future__ import annotations

import glob
import os
import pickle
from dataclasses import dataclass

import pytest

from repro.errors import (
    ParallelError,
    ParameterError,
    WorkerCrashError,
)
from repro.obs.metrics import (
    MetricsRegistry,
    disable_metrics,
    enable_metrics,
)
from repro.parallel import (
    ProcessBackend,
    TaskEnvelope,
    ThreadBackend,
)
from repro.parallel.arena import (
    _RECORD,
    ArenaRef,
    ArenaWriter,
    ContextHandle,
    ContextSegment,
    LazyWireRecord,
    ResultArena,
    ShmContext,
    register_wire_codec,
)


def _segments() -> list:
    if not os.path.isdir("/dev/shm"):  # pragma: no cover - non-Linux
        return []
    return sorted(glob.glob("/dev/shm/smarena_*"))


@pytest.fixture(autouse=True)
def no_segment_leaks():
    """Every test in this module must unlink what it links."""
    before = _segments()
    yield
    assert _segments() == before


@dataclass(frozen=True)
class Pair:
    """A tiny wire-encodable record type for arena tests."""

    left: int
    right: int

    def to_wire_bytes(self) -> bytes:
        return self.left.to_bytes(4, "big") + self.right.to_bytes(4, "big")

    @classmethod
    def from_wire_bytes(cls, raw: bytes) -> "Pair":
        return cls(
            int.from_bytes(raw[:4], "big"), int.from_bytes(raw[4:], "big")
        )


_TAG_PAIR = 201

register_wire_codec(Pair, _TAG_PAIR, Pair.to_wire_bytes, Pair.from_wire_bytes)

_PAIR_RECORD_LEN = _RECORD.size + 8


def _capturing_registry():
    return enable_metrics(MetricsRegistry())


def _counters(registry) -> dict:
    disable_metrics()
    return registry.snapshot()["counters"]


# -- slot geometry: exact fill and overflow fallback ----------------------------


class TestSlotCapacity:
    def test_record_exactly_filling_the_slot_commits(self):
        with ResultArena(slots=1, slot_bytes=2 * _PAIR_RECORD_LEN) as arena:
            desc = arena.slot_descriptor(0)
            writer = ArenaWriter(desc)
            first = writer.put_record(Pair(1, 2))
            second = writer.put_record(Pair(3, 4))  # fills the slot exactly
            assert isinstance(first, ArenaRef)
            assert isinstance(second, ArenaRef)
            writer.seal()
            resolved = arena.resolve([first, second], desc, "exact-fill")
            assert resolved == [Pair(1, 2), Pair(3, 4)]

    def test_overflowing_record_falls_back_to_pickle(self):
        registry = _capturing_registry()
        try:
            with ResultArena(slots=1, slot_bytes=_PAIR_RECORD_LEN) as arena:
                desc = arena.slot_descriptor(0)
                writer = ArenaWriter(desc)
                fits = writer.put_record(Pair(1, 2))
                overflow = writer.put_record(Pair(3, 4))  # one byte too many
                assert isinstance(fits, ArenaRef)
                assert overflow == Pair(3, 4)  # the original object, as-is
                writer.seal()
                resolved = arena.resolve([fits, overflow], desc, "overflow")
                assert resolved == [Pair(1, 2), Pair(3, 4)]
        finally:
            counters = _counters(registry)
        assert counters["smatch_parallel_shm_fallbacks_total"] == 1
        assert counters["smatch_parallel_shm_bytes_total"] == _PAIR_RECORD_LEN

    def test_unregistered_type_falls_back(self):
        registry = _capturing_registry()
        try:
            with ResultArena(slots=1, slot_bytes=256) as arena:
                writer = ArenaWriter(arena.slot_descriptor(0))
                value = {"no": "codec"}
                assert writer.put_record(value) is value
        finally:
            counters = _counters(registry)
        assert counters["smatch_parallel_shm_fallbacks_total"] == 1

    def test_geometry_validated(self):
        with pytest.raises(ParameterError):
            ResultArena(slots=0)
        with pytest.raises(ParameterError):
            ResultArena(slots=1, slot_bytes=_RECORD.size)


# -- commit-protocol failure detection ------------------------------------------


class TestCommitDetection:
    def test_unsealed_slot_is_a_worker_crash(self):
        with ResultArena(slots=2, slot_bytes=256) as arena:
            desc = arena.slot_descriptor(0)
            writer = ArenaWriter(desc)
            ref = writer.put_record(Pair(1, 2))
            # no seal(): the worker died before its commit point
            with pytest.raises(WorkerCrashError, match="never committed"):
                arena.resolve([ref], desc, "unsealed")

    def test_stale_generation_is_a_worker_crash(self):
        with ResultArena(slots=1, slot_bytes=256) as arena:
            first = arena.slot_descriptor(0)
            writer = ArenaWriter(first)
            writer.put_record(Pair(1, 2))
            writer.seal()
            # ring position reused by chunk 1, but its writer never sealed:
            # the header still shows generation 1
            second = arena.slot_descriptor(1)
            with pytest.raises(WorkerCrashError, match="never committed"):
                arena.resolve([ArenaRef(0)], second, "stale")

    def test_torn_commit_counts_are_detected(self):
        import struct

        with ResultArena(slots=1, slot_bytes=64) as arena:
            desc = arena.slot_descriptor(0)
            header = struct.Struct(">QLL")
            # claims more payload than the slot can hold
            header.pack_into(arena._shm.buf, 0, desc.generation, 1, 65)
            with pytest.raises(WorkerCrashError, match="torn commit"):
                arena.resolve([ArenaRef(0)], desc, "overclaim")
            # claims a record but commits too few bytes for its header
            header.pack_into(arena._shm.buf, 0, desc.generation, 1, 2)
            with pytest.raises(WorkerCrashError, match="torn commit"):
                arena.resolve([ArenaRef(0)], desc, "short")
            # committed record carries a tag no codec claims
            arena._shm.buf[header.size] = 0xFE
            header.pack_into(
                arena._shm.buf, 0, desc.generation, 1, _RECORD.size
            )
            with pytest.raises(WorkerCrashError, match="corrupt"):
                arena.resolve([ArenaRef(0)], desc, "badtag")


# -- lazy views ------------------------------------------------------------------


class TestLazyWireRecord:
    def _view(self, pair: Pair) -> LazyWireRecord:
        return LazyWireRecord(pair.to_wire_bytes(), Pair.from_wire_bytes)

    def test_equality_reflects_both_directions(self):
        view = self._view(Pair(5, 6))
        assert view == Pair(5, 6)
        assert Pair(5, 6) == view
        assert view != Pair(5, 7)
        assert Pair(5, 7) != view
        assert view == self._view(Pair(5, 6))

    def test_attribute_access_materializes_once(self):
        view = self._view(Pair(5, 6))
        assert "pending" in repr(view)  # repr never decodes
        assert view.left == 5
        assert "decoded" in repr(view)
        assert view.materialize() is view.materialize()

    def test_hash_matches_the_decoded_value(self):
        assert hash(self._view(Pair(5, 6))) == hash(Pair(5, 6))
        assert {self._view(Pair(5, 6)): "x"}[Pair(5, 6)] == "x"

    def test_repickling_ships_the_materialized_value(self):
        revived = pickle.loads(pickle.dumps(self._view(Pair(5, 6))))
        assert isinstance(revived, Pair)
        assert revived == Pair(5, 6)

    def test_encode_fields_splices_without_decoding(self):
        from repro.utils.serial import FieldWriter

        view = self._view(Pair(5, 6))
        writer = FieldWriter()
        view.encode_fields(writer)
        assert writer.getvalue() == Pair(5, 6).to_wire_bytes()
        assert "pending" in repr(view)  # the splice never materialized

    def test_upload_message_bytes_identical_through_the_view(self):
        # the serialize-once contract end to end: an undecoded arena view
        # of an EncryptedProfile produces the exact UploadMessage bytes the
        # eager object would, without ever running the decoder
        from repro.core.profile import Profile, ProfileSchema
        from repro.core.scheme import (
            EncryptedProfile,
            SMatch,
            SMatchParams,
        )
        from repro.net.messages import UploadMessage
        from repro.utils.rand import SystemRandomSource

        schema = ProfileSchema.uniform(["a", "b", "c"], 1 << 10)
        scheme = SMatch(
            SMatchParams(schema=schema, theta=8, plaintext_bits=32),
            rng=SystemRandomSource(17),
        )
        payload, _ = scheme.enroll(
            Profile(1, schema, (3, 5, 7)), rng=SystemRandomSource(18)
        )
        view = LazyWireRecord(
            payload.to_wire_bytes(), EncryptedProfile.from_wire_bytes
        )
        assert (
            UploadMessage(payload=view).encode()
            == UploadMessage(payload=payload).encode()
        )
        assert "pending" in repr(view)


# -- codec registry --------------------------------------------------------------


class TestCodecRegistry:
    def test_reregistration_is_idempotent(self):
        register_wire_codec(
            Pair, _TAG_PAIR, Pair.to_wire_bytes, Pair.from_wire_bytes
        )

    def test_conflicts_rejected(self):
        with pytest.raises(ParameterError):
            register_wire_codec(
                Pair, 202, Pair.to_wire_bytes, Pair.from_wire_bytes
            )

        class Other:
            pass

        with pytest.raises(ParameterError):
            register_wire_codec(
                Other, _TAG_PAIR, Pair.to_wire_bytes, Pair.from_wire_bytes
            )

    def test_tag_range_validated(self):
        for bad in (0, 256, -1):
            with pytest.raises(ParameterError):
                register_wire_codec(
                    Pair, bad, Pair.to_wire_bytes, Pair.from_wire_bytes
                )


# -- context shipping ------------------------------------------------------------


class TestContextShipping:
    def test_pickle_context_roundtrip(self):
        registry = _capturing_registry()
        try:
            segment = ContextSegment.create({"k": 3, "orders": (1, 2)})
            try:
                handle = pickle.loads(pickle.dumps(segment.handle()))
                assert handle.load() == {"k": 3, "orders": (1, 2)}
            finally:
                segment.close()
        finally:
            counters = _counters(registry)
        assert counters["smatch_parallel_shm_fallbacks_total"] == 1

    def test_registered_context_uses_its_codec(self):
        registry = _capturing_registry()
        try:
            segment = ContextSegment.create(Pair(7, 8))
            try:
                assert segment.handle().load() == Pair(7, 8)
            finally:
                segment.close()
        finally:
            counters = _counters(registry)
        assert "smatch_parallel_shm_fallbacks_total" not in counters

    def test_vanished_segment_is_a_typed_error(self):
        segment = ContextSegment.create({"gone": True})
        handle = segment.handle()
        segment.close()
        with pytest.raises(ParallelError):
            handle.load()

    def test_shm_context_pickles_transparently(self):
        wrapped = pickle.loads(pickle.dumps(ShmContext({"k": 1})))
        assert isinstance(wrapped, ShmContext)
        assert wrapped.value == {"k": 1}


# -- end-to-end through the process backend --------------------------------------


def _emit_pairs(context, chunk, arena=None):
    out = []
    for value in chunk:
        pair = Pair(value, value * value)
        out.append(arena.put_record(pair) if arena is not None else pair)
    return out


def _die_mid_write(context, chunk, arena=None):
    if arena is not None:
        arena.put_record(Pair(chunk[0], 0))
    os._exit(13)  # before seal(): the slot never commits


def _report_context(context, chunk):
    return [context["scale"] * value for value in chunk]


class TestProcessBackendTransport:
    def test_results_arrive_through_the_arena(self):
        envelope = TaskEnvelope(
            fn=_emit_pairs, label="pairs", shm_results=True
        )
        expected = [[Pair(v, v * v) for v in chunk] for chunk in ([1, 2], [3])]
        with ProcessBackend(2, mp_context="fork") as backend:
            results = backend.map_chunks(envelope, [[1, 2], [3]])
        assert results == expected
        assert all(
            isinstance(record, LazyWireRecord)
            for chunk in results
            for record in chunk
        )

    def test_shm_disabled_returns_plain_objects(self):
        envelope = TaskEnvelope(
            fn=_emit_pairs, label="pairs", shm_results=True
        )
        with ProcessBackend(2, mp_context="fork", shm=False) as backend:
            assert not backend.shm_enabled
            results = backend.map_chunks(envelope, [[1, 2], [3]])
        assert results == [[Pair(1, 1), Pair(2, 4)], [Pair(3, 9)]]
        assert all(
            isinstance(record, Pair)
            for chunk in results
            for record in chunk
        )

    def test_worker_killed_mid_write_surfaces_and_pool_recovers(self):
        with ProcessBackend(2, mp_context="fork") as backend:
            crash = TaskEnvelope(
                fn=_die_mid_write, label="mid-write", shm_results=True
            )
            with pytest.raises(WorkerCrashError):
                backend.map_chunks(crash, [[1], [2], [3]])
            # the batch segment was unlinked on the failure path and the
            # discarded pool restarts cleanly
            healthy = TaskEnvelope(
                fn=_emit_pairs, label="recovery", shm_results=True
            )
            assert backend.map_chunks(healthy, [[4]]) == [[Pair(4, 16)]]

    def test_shm_context_delivered_to_workers(self):
        envelope = TaskEnvelope(
            fn=_report_context,
            context=ShmContext({"scale": 10}),
            label="ctx",
        )
        with ProcessBackend(2, mp_context="fork") as backend:
            assert backend.map_chunks(envelope, [[1, 2], [3]]) == [
                [10, 20],
                [30],
            ]

    def test_shm_context_unwrapped_when_shm_off(self):
        envelope = TaskEnvelope(
            fn=_report_context,
            context=ShmContext({"scale": 7}),
            label="ctx-off",
        )
        with ProcessBackend(2, mp_context="fork", shm=False) as backend:
            assert backend.map_chunks(envelope, [[1], [2]]) == [[7], [14]]

    def test_thread_backend_ignores_shm_flag(self):
        envelope = TaskEnvelope(
            fn=_emit_pairs, label="threaded", shm_results=True
        )
        with ThreadBackend(2) as backend:
            results = backend.map_chunks(envelope, [[1, 2]])
        assert results == [[Pair(1, 1), Pair(2, 4)]]
        assert isinstance(results[0][0], Pair)

    def test_slot_bytes_validated(self):
        with pytest.raises(ParameterError):
            ProcessBackend(2, shm_slot_bytes=8)
