"""Integration tests: the full protocol across modules.

These drive the complete S-MATCH flow — clustered population, enrollment
over secure channels, server matching, client verification — and check the
end-to-end security and correctness properties the paper claims.
"""

import pytest

from repro.client.client import MobileClient
from repro.datasets import INFOCOM06, ClusteredPopulation
from repro.experiments.common import build_scheme
from repro.net.channel import SecureChannel
from repro.net.messages import QueryRequest, UploadMessage
from repro.net.transport import InMemoryNetwork
from repro.server.adversary import MaliciousBehavior, MaliciousServer
from repro.server.service import SMatchServer
from repro.utils.rand import SystemRandomSource


@pytest.fixture(scope="module")
def world():
    """A 40-user Infocom06 world with server and scheme."""
    rng = SystemRandomSource(seed=301)
    pop = ClusteredPopulation(INFOCOM06, theta=8, rng=rng)
    users = pop.generate(40)
    scheme = build_scheme(INFOCOM06, schema=pop.schema, seed=301)
    uploads, keys = scheme.enroll_population([u.profile for u in users])
    server = SMatchServer(query_k=5)
    for payload in uploads.values():
        server.handle_upload(UploadMessage(payload=payload))
    return pop, users, scheme, uploads, keys, server


class TestEndToEnd:
    def test_every_user_can_query(self, world):
        _, users, scheme, _, keys, server = world
        for user in users:
            uid = user.profile.user_id
            result = server.handle_query(
                QueryRequest(query_id=uid, timestamp=0, user_id=uid)
            )
            for entry in result.entries:
                # verified entries always share the querier's fuzzy key
                if scheme.verify(entry.auth, keys[uid]):
                    assert True

    def test_verified_matches_are_similar(self, world):
        """Completeness + soundness: Vf-accepted matches share the fuzzy
        key, i.e. their profiles are close (up to the RS decoding radius)."""
        _, users, scheme, uploads, keys, server = world
        by_id = {u.profile.user_id: u for u in users}
        for user in users[:15]:
            uid = user.profile.user_id
            result = server.handle_query(
                QueryRequest(query_id=uid, timestamp=0, user_id=uid)
            )
            for entry in result.entries:
                if scheme.verify(entry.auth, keys[uid]):
                    assert (
                        uploads[entry.user_id].key_index
                        == uploads[uid].key_index
                    )

    def test_cross_group_auth_never_verifies(self, world):
        _, users, scheme, uploads, keys, _ = world
        groups = {}
        for uid, payload in uploads.items():
            groups.setdefault(payload.key_index, []).append(uid)
        group_list = list(groups.values())
        if len(group_list) < 2:
            pytest.skip("single group")
        a = group_list[0][0]
        for other_group in group_list[1:3]:
            b = other_group[0]
            assert not scheme.verify(uploads[b].auth, keys[a])

    def test_server_learns_only_ciphertexts(self, world):
        """The stored state contains no raw attribute values."""
        pop, users, scheme, uploads, _, server = world
        stored = server.store.all_profiles()
        for user in users:
            payload = stored[user.profile.user_id]
            for raw, ct in zip(user.profile.values, payload.chain):
                # raw values are small; OPE chain blocks are 64-bit mapped
                assert ct != raw

    def test_profile_drift_reupload(self, world):
        """A user whose profile drifts far re-uploads into a new group."""
        pop, users, scheme, uploads, keys, server = world
        user = users[0]
        drifted_values = tuple(
            min(v + 40 * (8 + 1), s.cardinality - 1)
            for v, s in zip(user.profile.values, pop.schema.attributes)
        )
        drifted = user.profile.with_values(drifted_values)
        payload, new_key = scheme.enroll(drifted)
        old_index = uploads[user.profile.user_id].key_index
        server.handle_upload(UploadMessage(payload=payload))
        assert server.store.get(user.profile.user_id).key_index != old_index
        # restore original upload for other tests
        server.handle_upload(
            UploadMessage(payload=uploads[user.profile.user_id])
        )


class TestChannelledProtocol:
    def test_full_flow_over_secure_channels(self, world):
        pop, users, scheme, uploads, keys, _ = world
        rng = SystemRandomSource(seed=302)
        server = SMatchServer(query_k=5)
        network = InMemoryNetwork()
        server_endpoint = network.endpoint("server")

        sessions = []
        for user in users[:10]:
            endpoint = network.endpoint(f"c{user.profile.user_id}")
            key = rng.randbytes(32)
            client_ch = SecureChannel(endpoint, "server", key)
            server_ch = SecureChannel(server_endpoint, endpoint.name, key)
            client = MobileClient(user.profile, scheme, channel=client_ch)
            client.upload()
            server.handle_upload(server_ch.recv())
            sessions.append((client, server_ch))
        assert server.uploads_accepted == 10

        client, server_ch = sessions[0]
        client.send_query(timestamp=42)
        response = server.handle_message(server_ch.recv())
        server_ch.send(response)
        outcome = client.receive_results()
        assert set(outcome.accepted).isdisjoint(outcome.rejected)

    def test_network_byte_accounting(self, world):
        pop, users, scheme, _, _, _ = world
        rng = SystemRandomSource(seed=303)
        network = InMemoryNetwork()
        server_endpoint = network.endpoint("server")
        endpoint = network.endpoint("phone")
        key = rng.randbytes(32)
        client_ch = SecureChannel(endpoint, "server", key)
        client = MobileClient(users[0].profile, scheme, channel=client_ch)
        sent = client.upload()
        assert network.bytes_sent == sent
        assert network.messages_sent == 1


class TestMaliciousServerEndToEnd:
    @pytest.mark.parametrize(
        "behavior",
        [
            MaliciousBehavior.FAKE_USERS,
            MaliciousBehavior.FORGED_AUTH,
            MaliciousBehavior.SWAPPED_AUTH,
        ],
    )
    def test_all_forgeries_detected(self, world, behavior):
        _, users, scheme, uploads, keys, _ = world
        server = MaliciousServer(
            behavior, query_k=5, rng=SystemRandomSource(seed=304)
        )
        for payload in uploads.values():
            server.handle_upload(UploadMessage(payload=payload))
        detections = 0
        forgeries = 0
        for user in users[:10]:
            uid = user.profile.user_id
            result = server.handle_query(
                QueryRequest(query_id=uid, timestamp=0, user_id=uid)
            )
            if not result.entries:
                continue
            client = MobileClient(user.profile, scheme)
            client._key = keys[uid]
            outcome = client.verify_results(result)
            honest_group = {
                v
                for v, payload in uploads.items()
                if payload.key_index == uploads[uid].key_index and v != uid
            }
            fake_accepted = set(outcome.accepted) - honest_group
            assert not fake_accepted, "a forged entry passed verification"
            forgeries += 1
            if outcome.forgery_detected:
                detections += 1
        assert forgeries > 0
        assert detections == forgeries  # detection rate 1.0
