"""Full three-party wire flow: key service + matching server + clients.

The complete deployment shape of docs/PROTOCOL.md: every client derives its
profile key over the wire from the rate-limited key service, enrolls with
the matching server over its own secure channel, queries, and verifies —
no in-process shortcuts anywhere on the hot path.
"""

import pytest

from repro.client.client import MobileClient
from repro.client.remote_keygen import RemoteKeygenClient
from repro.core.scheme import EncryptedProfile
from repro.datasets import INFOCOM06, ClusteredPopulation
from repro.experiments.common import build_scheme
from repro.net.channel import SecureChannel
from repro.net.messages import UploadMessage
from repro.net.transport import InMemoryNetwork
from repro.server.keyservice import KeyGenService
from repro.server.service import SMatchServer
from repro.utils.rand import SystemRandomSource


@pytest.fixture(scope="module")
def deployment():
    rng = SystemRandomSource(seed=950)
    pop = ClusteredPopulation(INFOCOM06, theta=8, rng=rng)
    users = pop.generate(16)
    scheme = build_scheme(INFOCOM06, schema=pop.schema, seed=950)
    key_service = KeyGenService(
        oprf_server=scheme.oprf_server, max_requests_per_window=100
    )
    match_server = SMatchServer(query_k=5)
    network = InMemoryNetwork()
    ks_endpoint = network.endpoint("keyservice")
    ms_endpoint = network.endpoint("matchserver")
    return (
        rng,
        pop,
        users,
        scheme,
        key_service,
        match_server,
        network,
        ks_endpoint,
        ms_endpoint,
    )


def test_full_three_party_flow(deployment):
    (
        rng,
        pop,
        users,
        scheme,
        key_service,
        match_server,
        network,
        ks_endpoint,
        ms_endpoint,
    ) = deployment

    clients = {}
    for user in users:
        uid = user.profile.user_id
        # two secure channels per client: one to each service
        ks_ch_client = SecureChannel(
            network.endpoint(f"u{uid}-ks"), "keyservice", b"ks" + bytes([uid])
        )
        ks_ch_service = SecureChannel(
            ks_endpoint, f"u{uid}-ks", b"ks" + bytes([uid])
        )
        ms_ch_client = SecureChannel(
            network.endpoint(f"u{uid}-ms"), "matchserver", b"ms" + bytes([uid])
        )
        ms_ch_server = SecureChannel(
            ms_endpoint, f"u{uid}-ms", b"ms" + bytes([uid])
        )

        # --- key derivation over the wire ---
        remote = RemoteKeygenClient(
            scheme.params.fuzzy_params, ks_ch_client, rng=rng
        )
        rid = remote.request_public_key()
        ks_ch_service.send(
            key_service.handle_message(f"u{uid}", ks_ch_service.recv())
        )
        remote.receive_public_key(rid)
        state = remote.begin_derivation(user.profile)
        ks_ch_service.send(
            key_service.handle_message(f"u{uid}", ks_ch_service.recv())
        )
        key = remote.finish_derivation(state)

        # --- enrollment with the remotely-derived key ---
        chain = scheme.encrypt(user.profile, key)
        auth = scheme.verifier.auth(
            uid, scheme.verifier.make_secret(rng), key, rng=rng
        )
        payload = EncryptedProfile(
            user_id=uid, key_index=key.index, chain=chain, auth=auth
        )
        ms_ch_client.send(UploadMessage(payload=payload))
        match_server.handle_upload(ms_ch_server.recv())

        client = MobileClient(user.profile, scheme, channel=ms_ch_client)
        client._key = key
        clients[uid] = (client, ms_ch_server)

    assert match_server.uploads_accepted == len(users)
    assert key_service.evaluations_served == len(users)

    # remote keys must agree with local derivation (same groups form)
    local_keys = {
        u.profile.user_id: scheme.keygen(u.profile) for u in users
    }
    for uid, (client, _) in clients.items():
        assert client._key.index == local_keys[uid].index

    # --- a query through the wire, verified end to end ---
    uid = users[0].profile.user_id
    client, server_ch = clients[uid]
    client.send_query(timestamp=5)
    response = match_server.handle_message(server_ch.recv())
    server_ch.send(response)
    outcome = client.receive_results()
    assert set(outcome.accepted).isdisjoint(outcome.rejected)
    # accepted matches share the querier's key group
    for matched in outcome.accepted:
        assert (
            match_server.store.get(matched).key_index
            == match_server.store.get(uid).key_index
        )
