"""Tests for the NCD13 bloom-filter finder and the LGD12 fair exchange."""

import pytest

from repro.baselines.bloom import BloomFilter, Ncd13Party, run_common_attributes
from repro.baselines.lgd12 import (
    BlindOpening,
    Lgd12Initiator,
    Lgd12Responder,
)
from repro.baselines.homopm import HomoPM
from repro.crypto.fixtures import fixed_paillier_keypair
from repro.errors import ParameterError, VerificationError
from repro.utils.rand import SystemRandomSource


class TestBloomFilter:
    def test_membership(self):
        bf = BloomFilter.for_capacity(100)
        for i in range(50):
            bf.add(f"item-{i}".encode())
        assert all(f"item-{i}".encode() in bf for i in range(50))

    def test_false_positive_rate_bounded(self):
        bf = BloomFilter.for_capacity(200, false_positive_rate=0.01)
        for i in range(200):
            bf.add(f"member-{i}".encode())
        false_hits = sum(
            1 for i in range(2000) if f"outsider-{i}".encode() in bf
        )
        assert false_hits / 2000 < 0.05

    def test_sizing_grows_with_capacity(self):
        small = BloomFilter.for_capacity(10)
        large = BloomFilter.for_capacity(1000)
        assert large.num_bits > small.num_bits

    def test_serialization(self):
        bf = BloomFilter.for_capacity(20)
        bf.add(b"x")
        clone = BloomFilter.from_bytes(
            bf.to_bytes(), bf.num_bits, bf.num_hashes
        )
        assert b"x" in clone
        assert b"y" not in clone

    def test_serialization_size_checked(self):
        bf = BloomFilter.for_capacity(20)
        with pytest.raises(ParameterError):
            BloomFilter.from_bytes(b"short", bf.num_bits, bf.num_hashes)

    def test_validation(self):
        with pytest.raises(ParameterError):
            BloomFilter(num_bits=4, num_hashes=1)
        with pytest.raises(ParameterError):
            BloomFilter.for_capacity(0)
        with pytest.raises(ParameterError):
            BloomFilter.for_capacity(10, false_positive_rate=1.5)

    def test_fill_ratio_monotone(self):
        bf = BloomFilter.for_capacity(50)
        before = bf.fill_ratio()
        bf.add(b"e")
        assert bf.fill_ratio() > before


class TestNcd13:
    def test_common_count(self):
        rng = SystemRandomSource(seed=701)
        common, _ = run_common_attributes(
            [1, 2, 3, 4, 5], [1, 2, 3, 9, 9], rng=rng
        )
        assert common == 3

    def test_disjoint(self):
        rng = SystemRandomSource(seed=702)
        common, _ = run_common_attributes([1, 2], [3, 4], rng=rng)
        assert common == 0

    def test_not_fine_grained(self):
        """Near and far value mismatches look identical (Table I)."""
        rng = SystemRandomSource(seed=703)
        near, _ = run_common_attributes([10, 20], [10, 21], rng=rng)
        far, _ = run_common_attributes([10, 20], [10, 9999], rng=rng)
        assert near == far == 1

    def test_session_key_agreement(self):
        rng = SystemRandomSource(seed=704)
        a = Ncd13Party([1], rng=rng)
        b = Ncd13Party([1], rng=rng)
        assert a.session_key(b.dh_public()) == b.session_key(a.dh_public())

    def test_eavesdropper_cannot_probe_filter(self):
        """Without the session key, candidate elements don't hit the filter."""
        rng = SystemRandomSource(seed=705)
        a = Ncd13Party([42, 43], rng=rng)
        b = Ncd13Party([42, 99], rng=rng)
        key = b.session_key(a.dh_public())
        bf = b.build_filter(key)
        eve = Ncd13Party([42, 43], rng=rng)  # knows candidate values
        wrong_key = eve.session_key(a.dh_public())  # but not the session key
        assert eve.count_common(wrong_key, bf) == 0

    def test_invalid_dh_public(self):
        rng = SystemRandomSource(seed=706)
        a = Ncd13Party([1], rng=rng)
        with pytest.raises(ParameterError):
            a.session_key(0)


@pytest.fixture(scope="module")
def homo_small():
    rng = SystemRandomSource(seed=710)
    bits = HomoPM.default_modulus_bits(4, 16)
    return HomoPM(
        num_attributes=4,
        plaintext_bits=16,
        rng=rng,
        keypair=fixed_paillier_keypair(bits),
    )


class TestLgd12:
    def test_full_exchange_recovers_distance(self, homo_small):
        rng = SystemRandomSource(seed=711)
        a_vals = [10, 20, 30, 40]
        b_vals = [12, 20, 27, 40]
        initiator = Lgd12Initiator(homo_small, a_vals)
        responder = Lgd12Responder(homo_small, b_vals, rng=rng)
        query = initiator.start()
        blinded_msg = responder.respond(query)
        blinded_value = initiator.receive_blinded(blinded_msg)
        opening = responder.open_blinds(acknowledgment=True)
        dist = initiator.finish(opening)
        assert dist == sum((x - y) ** 2 for x, y in zip(a_vals, b_vals))
        # the intermediate blinded value differs from the true distance
        assert blinded_value != dist

    def test_runaway_initiator_learns_only_blinded_value(self, homo_small):
        """Aborting after step 3 leaves only r*dist+s — the runaway attack
        the blind transformation defends against."""
        rng = SystemRandomSource(seed=712)
        initiator = Lgd12Initiator(homo_small, [1, 2, 3, 4])
        responder = Lgd12Responder(homo_small, [1, 2, 3, 5], rng=rng)
        blinded_msg = responder.respond(initiator.start())
        blinded = initiator.receive_blinded(blinded_msg)
        true_dist = 1
        # without the blinds, the value is not the distance and the blinds
        # are never released
        assert blinded != true_dist
        with pytest.raises(VerificationError):
            responder.open_blinds(acknowledgment=False)

    def test_tampered_opening_detected(self, homo_small):
        rng = SystemRandomSource(seed=713)
        initiator = Lgd12Initiator(homo_small, [5, 5, 5, 5])
        responder = Lgd12Responder(homo_small, [5, 5, 5, 6], rng=rng)
        initiator.receive_blinded(responder.respond(initiator.start()))
        opening = responder.open_blinds(acknowledgment=True)
        forged = BlindOpening(r=opening.r + 1, s=opening.s)
        with pytest.raises(VerificationError):
            initiator.finish(forged)

    def test_fine_grained(self, homo_small):
        """Distances separate near from far values (Table I)."""
        rng = SystemRandomSource(seed=714)

        def run(b_vals):
            initiator = Lgd12Initiator(homo_small, [100, 100, 100, 100])
            responder = Lgd12Responder(homo_small, b_vals, rng=rng)
            initiator.receive_blinded(responder.respond(initiator.start()))
            return initiator.finish(
                responder.open_blinds(acknowledgment=True)
            )

        assert run([100, 100, 100, 101]) < run([100, 100, 100, 200])

    def test_session_state_machine(self, homo_small):
        rng = SystemRandomSource(seed=715)
        responder = Lgd12Responder(homo_small, [1, 2, 3, 4], rng=rng)
        with pytest.raises(ParameterError):
            responder.open_blinds(acknowledgment=True)
        initiator = Lgd12Initiator(homo_small, [1, 2, 3, 4])
        with pytest.raises(ParameterError):
            initiator.receive_blinded  # attribute exists
            initiator.finish(BlindOpening(r=1, s=0))
