"""Smoke and structure tests for the experiment drivers.

The benchmarks run the full-size experiments; these tests exercise the same
drivers at miniature scale so failures localize quickly.
"""

import pytest

from repro.experiments import (
    ablations,
    costmodel,
    fig1,
    fig4a,
    fig4b,
    fig4cde,
    fig5abc,
    fig5def,
    table1,
    table2,
)
from repro.experiments.common import ExperimentResult
from repro.errors import ParameterError


class TestExperimentResult:
    def test_add_row_requires_all_columns(self):
        result = ExperimentResult(name="t", columns=["a", "b"])
        with pytest.raises(ParameterError):
            result.add_row(a=1)
        result.add_row(a=1, b=2)
        assert result.column("a") == [1]

    def test_unknown_column(self):
        result = ExperimentResult(name="t", columns=["a"])
        with pytest.raises(ParameterError):
            result.column("z")

    def test_format_renders_all_rows(self):
        result = ExperimentResult(name="t", columns=["x"], notes="note")
        result.add_row(x=1.23456)
        text = result.format()
        assert "t" in text and "1.235" in text and "note" in text


class TestDrivers:
    def test_table1(self):
        result = table1.run()
        assert len(result.rows) == 6

    def test_table2(self):
        result = table2.run()
        assert [r["Dataset"] for r in result.rows] == [
            "Infocom06",
            "Sigcomm09",
            "Weibo",
        ]

    def test_fig1_panels(self):
        result = fig1.paper_panels()
        assert result.rows[0]["search space N"] == 3
        assert result.rows[1]["search space N"] == 39

    def test_fig1_generalized_small(self):
        result = fig1.run(densities=(4, 8), trials=4)
        assert len(result.rows) == 2

    def test_fig4a_small(self):
        result = fig4a.run(sizes=(64, 128))
        assert result.rows[0]["perfect entropy"] == 64.0
        assert result.rows[1]["Infocom06"] > result.rows[0]["Infocom06"]

    def test_fig4b_tiny(self):
        rate = fig4b.measure_tpr(
            fig4b.INFOCOM06, theta=8, num_users=15, seeds=(4,)
        )
        assert 0.5 <= rate <= 1.0

    def test_fig4cde_small(self):
        costs = fig4cde.client_costs_ms(
            fig4cde.DATASETS["Infocom06"], 64, repeats=1
        )
        assert set(costs) == {"PM", "PM+V", "homoPM"}
        assert costs["PM+V"] >= costs["PM"] > 0

    def test_fig5abc_small(self):
        costs = fig5abc.server_costs_ms(
            fig4cde.DATASETS["Infocom06"], 64, num_users=8, repeats=1
        )
        assert costs["PM"] > 0 and costs["homoPM"] > 0

    def test_fig5def_small(self):
        bits = fig5def.comm_costs_bits(fig5def.DATASETS["Infocom06"], 64)
        assert bits["PM+V"] > bits["PM"] > 0
        analytic = fig5def.analytic_costs_bits(6, 64, bits["auth"])
        assert analytic["PM+V"] - analytic["PM"] == 6 * bits["auth"]

    def test_costmodel_phases(self):
        phases = costmodel.pipeline_op_counts()
        assert set(phases) == {"keygen", "init_data", "enc", "auth", "vf"}

    def test_build_homopm_uses_fixed_keys(self):
        homo = fig4cde.build_homopm(6, 64)
        assert homo.keypair.public.n.bit_length() == 256


class TestAblationsSmall:
    def test_ope_split(self):
        result = ablations.ope_split_ablation()
        assert len(result.rows) == 2

    def test_key_sharing_small(self):
        result = ablations.key_sharing_ablation(num_users=15)
        shared, fuzzy, worst = result.rows
        assert shared["advantage"] == 1.0
        assert fuzzy["advantage"] <= worst["advantage"] <= 1.0

    def test_adaptive_ope(self):
        result = ablations.adaptive_ope_ablation()
        assert all(result.column("order preserved"))


class TestExtensionExperiments:
    def test_scaling_small(self):
        from repro.experiments import scaling

        result = scaling.run(community_sizes=(3, 6))
        zll = result.column("ZLL13 (bit)")
        assert zll[1] > zll[0]
        assert len(set(result.column("S-MATCH PM+V (bit)"))) == 1

    def test_testbed_small(self):
        from repro.experiments import testbed

        costs = testbed.estimated_client_costs_ms("Infocom06", 64)
        assert costs["PM"] > 0
        assert costs["PM+V"] > costs["PM"]

    def test_testbed_devices_differ(self):
        from repro.client.device import NEXUS_ONE, PC_SERVER
        from repro.experiments import testbed

        phone = testbed.estimated_client_costs_ms(
            "Infocom06", 64, device=NEXUS_ONE
        )
        pc = testbed.estimated_client_costs_ms(
            "Infocom06", 64, device=PC_SERVER
        )
        assert pc["PM"] < phone["PM"]
