"""Tests for distance-preserving encryption."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.crypto.dpe import DPE, DpeParams
from repro.errors import CiphertextError, KeyError_, ParameterError

KEY = b"dpe-test-key-32-bytes-long......"


@pytest.fixture(scope="module")
def dpe():
    return DPE(KEY, DpeParams(plaintext_bits=16))


vals = st.integers(min_value=0, max_value=(1 << 16) - 1)


class TestProperty:
    @given(vals, vals, vals)
    @settings(max_examples=60)
    def test_definition_1_with_k_3(self, dpe, a, b, c):
        """|m_i - m_j| >= |m_j - m_k| <=> same comparison on ciphertexts."""
        ca, cb, cc = dpe.encrypt(a), dpe.encrypt(b), dpe.encrypt(c)
        assert DPE.test_property(ca, cb, cc) == (abs(a - b) >= abs(b - c))

    @given(vals, vals)
    @settings(max_examples=40)
    def test_distances_scale_uniformly(self, dpe, a, b):
        ca, cb = dpe.encrypt(a), dpe.encrypt(b)
        assert abs(ca - cb) == dpe.scale * abs(a - b)

    @given(vals)
    @settings(max_examples=40)
    def test_decrypt_inverts(self, dpe, m):
        assert dpe.decrypt(dpe.encrypt(m)) == m

    def test_deterministic_from_key(self):
        a = DPE(KEY, DpeParams(plaintext_bits=16))
        b = DPE(KEY, DpeParams(plaintext_bits=16))
        assert a.encrypt(100) == b.encrypt(100)

    def test_key_dependence(self):
        other = DPE(b"x" * 32, DpeParams(plaintext_bits=16))
        mine = DPE(KEY, DpeParams(plaintext_bits=16))
        assert mine.encrypt(100) != other.encrypt(100) or mine.scale != other.scale


class TestValidation:
    def test_out_of_domain(self, dpe):
        with pytest.raises(ParameterError):
            dpe.encrypt(1 << 16)

    def test_invalid_ciphertext(self, dpe):
        ct = dpe.encrypt(5)
        with pytest.raises(CiphertextError):
            dpe.decrypt(ct + 1)  # not on the lattice a*m + b

    def test_short_key(self):
        with pytest.raises(KeyError_):
            DPE(b"short", DpeParams(plaintext_bits=8))

    def test_params_validation(self):
        with pytest.raises(ParameterError):
            DpeParams(plaintext_bits=0)
        with pytest.raises(ParameterError):
            DpeParams(plaintext_bits=8, scale_bits=0)
