"""Tests for the dataset substrate: specs, generators, analysis."""

import pytest

from repro.core.profile import profile_distance
from repro.datasets import (
    INFOCOM06,
    SIGCOMM09,
    WEIBO,
    ClusteredPopulation,
    analyze_samples,
    analyze_spec,
    dataset_by_name,
)
from repro.datasets.schema import AttributeDistSpec
from repro.errors import DatasetError, ParameterError
from repro.utils.rand import SystemRandomSource


class TestAttributeDistSpec:
    def test_dominant_solves_target(self):
        spec = AttributeDistSpec("x", "dominant", 3, 0.82, (0.8, 1.0))
        probs = spec.solve()
        from repro.utils.stats import entropy_from_probs

        assert entropy_from_probs(probs) == pytest.approx(0.82, abs=1e-3)
        assert probs[0] > 0.8

    def test_zipf_solves_target(self):
        spec = AttributeDistSpec("x", "zipf", 48, 5.34)
        probs = spec.solve()
        from repro.utils.stats import entropy_from_probs

        assert entropy_from_probs(probs) == pytest.approx(5.34, abs=1e-3)

    def test_uniform(self):
        probs = AttributeDistSpec("x", "uniform", 16, 4.0).solve()
        assert all(p == pytest.approx(1 / 16) for p in probs)

    def test_unreachable_target(self):
        with pytest.raises(ParameterError):
            AttributeDistSpec("x", "zipf", 4, 5.0).solve()  # log2(4)=2 < 5

    def test_landmark_window_enforced(self):
        with pytest.raises(DatasetError):
            # entropy 2.0 on 3 values needs p0 < 0.8
            AttributeDistSpec("x", "dominant", 8, 2.8, (0.8, 1.0)).solve()

    def test_invalid_family(self):
        with pytest.raises(ParameterError):
            AttributeDistSpec("x", "normal", 4, 1.0)


class TestTable2Specs:
    @pytest.mark.parametrize("spec", [INFOCOM06, SIGCOMM09, WEIBO])
    def test_entropy_statistics_match_paper(self, spec):
        props = analyze_spec(spec)
        assert props.entropy_avg == pytest.approx(spec.paper_entropy_avg, abs=0.01)
        assert props.entropy_max == pytest.approx(spec.paper_entropy_max, abs=0.01)
        assert props.entropy_min == pytest.approx(spec.paper_entropy_min, abs=0.01)

    @pytest.mark.parametrize("spec", [INFOCOM06, SIGCOMM09, WEIBO])
    def test_landmark_counts_match_paper(self, spec):
        props = analyze_spec(spec)
        assert props.landmarks_06 == spec.paper_landmarks_06
        assert props.landmarks_08 == spec.paper_landmarks_08

    def test_node_and_attribute_counts(self):
        assert (INFOCOM06.num_nodes, INFOCOM06.num_attributes) == (78, 6)
        assert (SIGCOMM09.num_nodes, SIGCOMM09.num_attributes) == (76, 6)
        assert (WEIBO.num_nodes, WEIBO.num_attributes) == (1_000_000, 17)

    def test_lookup_by_name(self):
        assert dataset_by_name("infocom06") is INFOCOM06
        assert dataset_by_name("WEIBO") is WEIBO
        with pytest.raises(DatasetError):
            dataset_by_name("mystery")


class TestClusteredPopulation:
    @pytest.fixture(scope="class")
    def pop(self):
        return ClusteredPopulation(
            INFOCOM06, theta=8, rng=SystemRandomSource(seed=101)
        )

    def test_generates_requested_count(self, pop):
        assert len(pop.generate(25)) == 25

    def test_user_ids_sequential(self, pop):
        users = pop.generate(10)
        assert [u.profile.user_id for u in users] == list(range(1, 11))

    def test_members_near_center(self, pop):
        for u in pop.generate(30):
            center = u.profile.with_values(u.cluster_center)
            assert profile_distance(u.profile, center) <= 5 * pop.noise_sigma + 1

    def test_centers_decode_to_codewords(self, pop):
        users = pop.generate(20)
        for u in users:
            vec = pop.fuzzy.fuzzy_vector(u.cluster_center)
            assert pop.fuzzy.code.is_codeword(list(vec))

    def test_distinct_categoricals_distinct_centers(self, pop):
        users = pop.generate(40)
        centers = {}
        for u in users:
            centers.setdefault(u.categorical, set()).add(u.cluster_center)
        for variants in centers.values():
            assert len(variants) == 1  # deterministic center per categorical

    def test_cluster_cap_respected(self, pop):

        users = pop.generate(60, max_cluster_size=4)
        # contiguous runs share categorical; count run lengths
        runs = []
        current, count = None, 0
        for u in users:
            if u.categorical == current:
                count += 1
            else:
                if current is not None:
                    runs.append(count)
                current, count = u.categorical, 1
        runs.append(count)
        assert max(runs) <= 4

    def test_values_in_schema_domain(self, pop):
        for u in pop.generate(30):
            pop.schema.check_values(u.profile.values)

    def test_marginals_follow_spec(self):
        """Categorical samples follow the solved distributions."""
        pop = ClusteredPopulation(
            INFOCOM06, theta=8, rng=SystemRandomSource(seed=102)
        )
        samples = [pop.sample_categorical() for _ in range(4000)]
        props = analyze_samples("sampled", samples)
        exact = analyze_spec(INFOCOM06)
        assert props.entropy_avg == pytest.approx(exact.entropy_avg, abs=0.15)
        assert props.landmarks_08 == exact.landmarks_08

    def test_invalid_params(self):
        with pytest.raises(ParameterError):
            ClusteredPopulation(INFOCOM06, theta=0)
        with pytest.raises(ParameterError):
            ClusteredPopulation(INFOCOM06, theta=8, noise_fraction=1.5)
        pop = ClusteredPopulation(
            INFOCOM06, theta=8, rng=SystemRandomSource(seed=103)
        )
        with pytest.raises(ParameterError):
            pop.generate(0)


class TestAnalyzeSamples:
    def test_empirical_entropy(self):
        samples = [(0, 0), (0, 1), (1, 0), (1, 1)] * 10
        props = analyze_samples("uniform2", samples)
        assert props.entropy_avg == pytest.approx(1.0)
        assert props.landmarks_06 == 0

    def test_landmark_detection(self):
        samples = [(0,)] * 90 + [(1,)] * 10
        props = analyze_samples("landmarky", samples)
        assert props.landmarks_08 == 1

    def test_validation(self):
        with pytest.raises(ParameterError):
            analyze_samples("empty", [])
        with pytest.raises(ParameterError):
            analyze_samples("ragged", [(1, 2), (1,)])
