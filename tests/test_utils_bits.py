"""Tests for repro.utils.bits."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import ParameterError
from repro.utils.bits import (
    bit_length_ceil,
    bytes_to_int,
    int_to_bytes,
    pack_blocks,
    rotl32,
    unpack_blocks,
    xor_bytes,
)


class TestBitLengthCeil:
    def test_single_value_needs_no_bits(self):
        assert bit_length_ceil(1) == 0

    def test_powers_of_two(self):
        assert bit_length_ceil(2) == 1
        assert bit_length_ceil(4) == 2
        assert bit_length_ceil(1024) == 10

    def test_non_powers(self):
        assert bit_length_ceil(5) == 3
        assert bit_length_ceil(1000) == 10

    def test_rejects_non_positive(self):
        with pytest.raises(ParameterError):
            bit_length_ceil(0)

    @given(st.integers(min_value=1, max_value=10**9))
    def test_count_fits(self, n):
        bits = bit_length_ceil(n)
        assert (1 << bits) >= n
        if bits:
            assert (1 << (bits - 1)) < n


class TestIntBytes:
    def test_zero_encodes_to_one_byte(self):
        assert int_to_bytes(0) == b"\x00"

    def test_explicit_length_pads(self):
        assert int_to_bytes(1, 4) == b"\x00\x00\x00\x01"

    def test_rejects_negative(self):
        with pytest.raises(ParameterError):
            int_to_bytes(-1)

    def test_rejects_overflow(self):
        with pytest.raises(ParameterError):
            int_to_bytes(256, 1)

    @given(st.integers(min_value=0, max_value=1 << 256))
    def test_roundtrip(self, n):
        assert bytes_to_int(int_to_bytes(n)) == n


class TestPackBlocks:
    def test_order_msb_first(self):
        assert pack_blocks([1, 2], 8) == 0x0102

    def test_unpack_inverts(self):
        packed = pack_blocks([5, 0, 255], 8)
        assert unpack_blocks(packed, 8, 3) == [5, 0, 255]

    def test_rejects_oversized_block(self):
        with pytest.raises(ParameterError):
            pack_blocks([256], 8)

    def test_rejects_oversized_packed(self):
        with pytest.raises(ParameterError):
            unpack_blocks(1 << 24, 8, 3)

    @given(
        st.lists(st.integers(min_value=0, max_value=(1 << 64) - 1), min_size=1, max_size=8)
    )
    def test_roundtrip_64bit(self, blocks):
        assert unpack_blocks(pack_blocks(blocks, 64), 64, len(blocks)) == blocks


class TestRotXor:
    def test_rotl32_wraps(self):
        assert rotl32(0x80000000, 1) == 1

    def test_xor_bytes(self):
        assert xor_bytes(b"\xff\x00", b"\x0f\x0f") == b"\xf0\x0f"

    def test_xor_length_mismatch(self):
        with pytest.raises(ParameterError):
            xor_bytes(b"ab", b"a")
