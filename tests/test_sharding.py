"""Tests for the sharded, durable server tier (repro.server.sharding).

Covers the four layers bottom-up — placement ring, WAL, snapshot chain,
shard state — then the coordinator-level contracts the ISSUE pins: the
cross-shard equivalence matrix (legacy store vs shards=1 vs shards=N vs
process-backed shards, byte-identical ``QueryResult`` encodings) and
kill-a-shard-mid-churn crash recovery against an unsharded oracle.
"""

import dataclasses
import os

import pytest

from repro.errors import (
    MatchingError,
    ParameterError,
    PersistenceError,
    ProtocolError,
    WorkerCrashError,
)
from repro.net.messages import QueryRequest, QueryResult, UploadMessage
from repro.server.persistence import dump_store_bytes, load_store_bytes
from repro.server.service import SMatchServer
from repro.server.sharding import (
    PlacementMap,
    ShardState,
    ShardWal,
    ShardedTier,
    SnapshotStore,
)
from repro.server.sharding.snapshot import load_snapshot, write_snapshot
from repro.server.sharding.wal import (
    OP_PUT,
    OP_REMOVE,
    decode_op,
    encode_put,
    encode_remove,
    replay_wal,
)
from repro.server.storage import ProfileStore
from repro.utils.rand import SystemRandomSource


def _drifted(payload, bump=1):
    """A re-upload of the same user whose OPE chain drifted slightly."""
    return dataclasses.replace(
        payload, chain=tuple(c + bump for c in payload.chain)
    )


def _moved(payload, key_index):
    """A re-upload whose fuzzy key landed in a different group."""
    return dataclasses.replace(payload, key_index=key_index)


@pytest.fixture(scope="module")
def payloads(enrolled):
    _, _, uploads, _ = enrolled
    return [uploads[uid] for uid in sorted(uploads)]


# -- placement -----------------------------------------------------------------


class TestPlacement:
    def test_deterministic_across_instances(self, payloads):
        a = PlacementMap.build(4)
        b = PlacementMap.decode(PlacementMap.build(4).encode())
        for payload in payloads:
            assert a.shard_of(payload.key_index) == b.shard_of(
                payload.key_index
            )

    def test_codec_roundtrip(self):
        original = PlacementMap.build(3, version=7, vnodes=16)
        decoded = PlacementMap.decode(original.encode())
        assert decoded == original

    def test_every_shard_owns_keys(self):
        rng = SystemRandomSource(seed=5)
        placement = PlacementMap.build(4)
        owners = {
            placement.shard_of(rng.randbytes(32)) for _ in range(256)
        }
        assert owners == {0, 1, 2, 3}

    def test_rebalanced_bumps_version_only_explicitly(self):
        placement = PlacementMap.build(2)
        successor = placement.rebalanced(4)
        assert successor.version == placement.version + 1
        assert successor.shards == 4
        # the original is immutable and untouched
        assert placement.shards == 2

    def test_moved_keys_only_reports_movers(self):
        rng = SystemRandomSource(seed=6)
        keys = [rng.randbytes(32) for _ in range(64)]
        placement = PlacementMap.build(2)
        same = placement.rebalanced(2)
        assert placement.moved_keys(same, keys) == {}
        grown = placement.rebalanced(3)
        moved = placement.moved_keys(grown, keys)
        assert moved  # something must land on the new shard
        for key, (old, new) in moved.items():
            assert old != new
            assert placement.shard_of(key) == old
            assert grown.shard_of(key) == new

    def test_validation(self):
        with pytest.raises(ParameterError):
            PlacementMap.build(0)
        with pytest.raises(ParameterError):
            PlacementMap.build(2).shard_of(b"short")
        with pytest.raises(ProtocolError):
            PlacementMap.decode(b"\x00\x00\x00\x04junk")


# -- WAL -----------------------------------------------------------------------


class TestWal:
    def test_append_commit_replay_roundtrip(self, payloads, tmp_path):
        path = tmp_path / "wal.log"
        with ShardWal(path, fsync=False) as wal:
            wal.append_record(encode_put(payloads[0]))
            wal.append_record(encode_remove(payloads[0].user_id))
            assert wal.commit() == 2
        replayed = replay_wal(path)
        assert not replayed.torn_tail
        op, profile = decode_op(replayed.records[0])
        assert op == OP_PUT and profile == payloads[0]
        op, uid = decode_op(replayed.records[1])
        assert op == OP_REMOVE and uid == payloads[0].user_id

    def test_uncommitted_appends_are_not_durable(self, payloads, tmp_path):
        path = tmp_path / "wal.log"
        wal = ShardWal(path, fsync=False)
        wal.append_record(encode_put(payloads[0]))
        wal.commit()
        wal.append_record(encode_put(payloads[1]))
        wal.rollback()
        wal.close()
        assert len(replay_wal(path).records) == 1

    def test_torn_tail_truncated_on_reopen(self, payloads, tmp_path):
        path = tmp_path / "wal.log"
        with ShardWal(path, fsync=False) as wal:
            wal.append_record(encode_put(payloads[0]))
            wal.commit()
        intact = path.read_bytes()
        # crash mid-append: half a frame header lands on disk
        path.write_bytes(intact + b"\x00\x00")
        replayed = replay_wal(path)
        assert replayed.torn_tail
        assert replayed.valid_bytes == len(intact)
        assert len(replayed.records) == 1
        # reopening rolls the file back to the last commit point and the
        # next append continues from a clean boundary
        with ShardWal(path, fsync=False) as wal:
            assert wal.records_written == 1
            wal.append_record(encode_put(payloads[1]))
            wal.commit()
        replayed = replay_wal(path)
        assert not replayed.torn_tail
        assert len(replayed.records) == 2

    def test_truncated_final_body_is_torn_not_corrupt(
        self, payloads, tmp_path
    ):
        path = tmp_path / "wal.log"
        with ShardWal(path, fsync=False) as wal:
            wal.append_record(encode_put(payloads[0]))
            wal.append_record(encode_put(payloads[1]))
            wal.commit()
        data = path.read_bytes()
        path.write_bytes(data[:-5])
        replayed = replay_wal(path)
        assert replayed.torn_tail
        assert len(replayed.records) == 1

    def test_corrupt_crc_on_final_frame_is_torn_write(
        self, payloads, tmp_path
    ):
        path = tmp_path / "wal.log"
        with ShardWal(path, fsync=False) as wal:
            wal.append_record(encode_put(payloads[0]))
            wal.commit()
        data = bytearray(path.read_bytes())
        data[-1] ^= 0x01
        path.write_bytes(bytes(data))
        replayed = replay_wal(path)
        assert replayed.torn_tail
        assert replayed.records == ()

    def test_midlog_corruption_is_a_typed_error(self, payloads, tmp_path):
        path = tmp_path / "wal.log"
        with ShardWal(path, fsync=False) as wal:
            wal.append_record(encode_put(payloads[0]))
            wal.append_record(encode_put(payloads[1]))
            wal.commit()
        data = bytearray(path.read_bytes())
        data[10] ^= 0xFF  # inside the first frame, with a frame following
        path.write_bytes(bytes(data))
        with pytest.raises(PersistenceError):
            replay_wal(path)

    def test_absurd_length_is_a_typed_error(self, tmp_path):
        path = tmp_path / "wal.log"
        path.write_bytes(b"\xff\xff\xff\xff\x00\x00\x00\x00" + b"x" * 64)
        with pytest.raises(PersistenceError):
            replay_wal(path)

    def test_duplicate_replay_is_idempotent(self, payloads, tmp_path):
        path = tmp_path / "wal.log"
        with ShardWal(path, fsync=False) as wal:
            for payload in payloads[:4]:
                wal.append_record(encode_put(payload))
            wal.append_record(encode_remove(payloads[0].user_id))
            wal.commit()
        records = replay_wal(path).records
        store = ProfileStore()
        for _ in range(2):  # at-least-once redelivery
            for raw in records:
                op, value = decode_op(raw)
                if op == OP_PUT:
                    store.put(value)
                elif store.contains(value):
                    store.remove(value)
        assert len(store) == 3
        assert not store.contains(payloads[0].user_id)

    def test_unknown_op_is_a_typed_error(self):
        from repro.utils.serial import FieldWriter

        w = FieldWriter()
        w.write_int(99)
        with pytest.raises(PersistenceError):
            decode_op(w.getvalue())


# -- snapshots -----------------------------------------------------------------


def _group_table(payloads):
    groups = {}
    for payload in payloads:
        groups.setdefault(payload.key_index, {})[payload.user_id] = payload
    return groups


class TestSnapshots:
    def test_chain_folds_deltas_and_tombstones(self, payloads, tmp_path):
        store = SnapshotStore(tmp_path)
        groups = _group_table(payloads[:6])
        store.write(1, 0, True, groups, ())
        keys = list(groups)
        changed = {keys[0]: dict(groups[keys[0]])}
        removed_uid = next(iter(changed[keys[0]]))
        del changed[keys[0]][removed_uid]
        tombstones = [keys[-1]]
        if not changed[keys[0]]:
            # the member was its group's last: emptied groups travel as
            # tombstones, never as empty delta entries
            tombstones.append(keys[0])
            changed = {}
        store.write(2, 1, False, changed, tombstones)
        folded, seq = store.load_chain()
        assert seq == 2
        assert keys[-1] not in folded
        assert removed_uid not in folded.get(keys[0], {})

    def test_full_snapshot_compacts_the_chain(self, payloads, tmp_path):
        store = SnapshotStore(tmp_path)
        groups = _group_table(payloads[:4])
        store.write(1, 0, True, groups, ())
        store.write(2, 1, False, {}, ())
        store.write(3, 2, True, groups, ())
        assert store.chain_length() == 1
        assert store.latest_seq() == 3
        folded, seq = store.load_chain()
        assert seq == 3 and folded == groups

    def test_digest_corruption_is_a_typed_error(self, payloads, tmp_path):
        path = write_snapshot(
            tmp_path, 1, 0, True, _group_table(payloads[:3]), ()
        )
        data = bytearray(path.read_bytes())
        data[-1] ^= 0x01
        path.write_bytes(bytes(data))
        with pytest.raises(PersistenceError):
            load_snapshot(path)

    def test_chain_without_full_base_is_a_typed_error(
        self, payloads, tmp_path
    ):
        write_snapshot(tmp_path, 2, 1, False, _group_table(payloads[:2]), ())
        with pytest.raises(PersistenceError):
            SnapshotStore(tmp_path).load_chain()

    def test_broken_chain_linkage_is_a_typed_error(self, payloads, tmp_path):
        groups = _group_table(payloads[:2])
        write_snapshot(tmp_path, 1, 0, True, groups, ())
        write_snapshot(tmp_path, 3, 2, False, groups, ())  # parent 2 missing
        with pytest.raises(PersistenceError):
            SnapshotStore(tmp_path).load_chain()


# -- shard state recovery ------------------------------------------------------


class TestShardStateRecovery:
    def test_snapshot_plus_tail_replay(self, payloads, tmp_path):
        state = ShardState(0, directory=tmp_path, fsync=False)
        state.apply_ops([("put", p) for p in payloads[:6]])
        state.snapshot_now()
        # post-snapshot churn lives only in the WAL tail
        state.apply_ops(
            [
                ("put", _drifted(payloads[0])),
                ("remove", payloads[5].user_id),
                ("put", payloads[6]),
            ]
        )
        state.close()

        recovered = ShardState(0, directory=tmp_path, fsync=False)
        assert len(recovered.store) == 6
        assert not recovered.store.contains(payloads[5].user_id)
        assert recovered.store.get(payloads[0].user_id) == _drifted(
            payloads[0]
        )
        recovered.close()

    def test_snapshot_truncates_the_log(self, payloads, tmp_path):
        state = ShardState(0, directory=tmp_path, fsync=False)
        state.apply_ops([("put", p) for p in payloads[:5]])
        wal_files = list(tmp_path.glob("wal-*.log"))
        assert len(wal_files) == 1 and wal_files[0].stat().st_size > 0
        state.apply_ops([("snapshot",)])
        wal_files = list(tmp_path.glob("wal-*.log"))
        assert len(wal_files) == 1 and wal_files[0].stat().st_size == 0
        assert list(tmp_path.glob("snap-*.bin"))
        state.close()

    def test_snapshot_cadence_is_automatic(self, payloads, tmp_path):
        state = ShardState(
            0, directory=tmp_path, snapshot_every=4, fsync=False
        )
        state.apply_ops([("put", p) for p in payloads[:8]])
        assert SnapshotStore(tmp_path).latest_seq() >= 1
        state.close()

    def test_group_move_marks_both_groups_dirty(self, payloads, tmp_path):
        a, b = payloads[0], payloads[1]
        state = ShardState(0, directory=tmp_path, fsync=False)
        state.apply_ops([("put", a), ("put", b)])
        state.snapshot_now()
        # a's fuzzy key drifts into b's group: delta must cover both the
        # emptied old group (tombstone) and the grown new group
        state.apply_ops([("put", _moved(a, b.key_index))])
        state.snapshot_now()
        state.close()
        recovered = ShardState(0, directory=tmp_path, fsync=False)
        assert recovered.store.get(a.user_id).key_index == b.key_index
        assert len(recovered.store.group_by_index(b.key_index)) == 2
        assert recovered.store.group_by_index(a.key_index) == {}
        recovered.close()


# -- the equivalence matrix ----------------------------------------------------


def _churn_workload(payloads):
    """(mutations, queried-uids): upload all, drift some, move one, drop some."""
    uids = [p.user_id for p in payloads]
    other_key = payloads[-1].key_index
    ops = [("put", p) for p in payloads]
    ops += [("put", _drifted(p)) for p in payloads[::3]]
    ops += [("put", _moved(payloads[2], other_key))]
    ops += [("remove", uids[7]), ("remove", uids[11])]
    remaining = [u for u in uids if u not in (uids[7], uids[11])]
    return ops, remaining


def _legacy_results(payloads, k=3):
    server = SMatchServer(query_k=k)
    ops, remaining = _churn_workload(payloads)
    for op in ops:
        if op[0] == "put":
            server.handle_upload(UploadMessage(payload=op[1]))
        else:
            server.store.remove(op[1])
    out = {}
    for uid in remaining:
        result = server.handle_query(
            QueryRequest(query_id=uid, timestamp=3, user_id=uid)
        )
        out[uid] = result.encode()
    return out


def _tier_results(tier, payloads, k=3):
    ops, remaining = _churn_workload(payloads)
    puts = []
    for op in ops:
        if op[0] == "put":
            puts.append(op[1])
        else:
            tier.put_batch(puts)
            puts = []
            tier.remove(op[1])
    if puts:
        tier.put_batch(puts)
    out = {}
    bulk = tier.query_bulk(remaining, k=k)
    for uid in remaining:
        single = tier.query(uid, k=k)
        assert single == bulk[uid]
        out[uid] = QueryResult(
            query_id=uid, timestamp=3, entries=bulk[uid]
        ).encode()
    return out


class TestEquivalenceMatrix:
    @pytest.fixture(scope="class")
    def oracle(self, payloads):
        return _legacy_results(payloads)

    @pytest.mark.parametrize("shards", [1, 3])
    def test_inline_shards_match_legacy(self, payloads, oracle, shards):
        with ShardedTier(shards=shards, mode="inline") as tier:
            assert _tier_results(tier, payloads) == oracle

    def test_process_shards_match_legacy(self, payloads, oracle, tmp_path):
        with ShardedTier(
            shards=2, mode="process", data_dir=tmp_path, fsync=False
        ) as tier:
            assert _tier_results(tier, payloads) == oracle

    def test_durable_tier_reopen_matches_legacy(
        self, payloads, oracle, tmp_path
    ):
        with ShardedTier(
            shards=3, mode="inline", data_dir=tmp_path, fsync=False
        ) as tier:
            results = _tier_results(tier, payloads)
            assert results == oracle
        # cold reopen: snapshot chain + WAL tail + manifest routing rebuild
        with ShardedTier(
            shards=3, mode="inline", data_dir=tmp_path, fsync=False
        ) as reopened:
            _, remaining = _churn_workload(payloads)
            for uid in remaining:
                entries = reopened.query(uid, k=3)
                assert (
                    QueryResult(
                        query_id=uid, timestamp=3, entries=entries
                    ).encode()
                    == oracle[uid]
                )

    def test_sharded_server_behind_handle_message(self, payloads, oracle):
        with SMatchServer(query_k=3, shards=3, shard_mode="inline") as server:
            ops, remaining = _churn_workload(payloads)
            for op in ops:
                if op[0] == "put":
                    server.handle_message(UploadMessage(payload=op[1]))
                else:
                    server.tier.remove(op[1])
            for uid in remaining:
                result = server.handle_message(
                    QueryRequest(query_id=uid, timestamp=3, user_id=uid)
                )
                assert result.encode() == oracle[uid]
            assert server.uploads_accepted == sum(
                1 for op in ops if op[0] == "put"
            )


# -- crash recovery ------------------------------------------------------------


class TestCrashRecovery:
    def test_kill_shard_mid_churn_converges_to_oracle(
        self, payloads, tmp_path
    ):
        oracle = _legacy_results(payloads)
        with ShardedTier(
            shards=2,
            mode="process",
            data_dir=tmp_path,
            fsync=False,
            snapshot_every=8,
        ) as tier:
            ops, remaining = _churn_workload(payloads)
            half = len(ops) // 2
            crashed = False

            def run(op):
                if op[0] == "put":
                    tier.put(op[1])
                else:
                    tier.remove(op[1])

            for op in ops[:half]:
                run(op)
            # hard-kill shard 0 mid-churn; the crash op dies on the retry
            # too, so the typed error escapes — exactly once
            try:
                tier._shards[0].apply([("crash",)])
            except WorkerCrashError:
                crashed = True
            assert crashed
            # churn continues: the next batch restarts the worker, which
            # recovers from its snapshot chain + WAL tail
            for op in ops[half:]:
                run(op)
            bulk = tier.query_bulk(remaining, k=3)
            for uid in remaining:
                assert (
                    QueryResult(
                        query_id=uid, timestamp=3, entries=bulk[uid]
                    ).encode()
                    == oracle[uid]
                )

    def test_crash_between_batches_loses_nothing(self, payloads, tmp_path):
        with ShardedTier(
            shards=1, mode="process", data_dir=tmp_path, fsync=False
        ) as tier:
            tier.put_batch(payloads[:10])
            with pytest.raises(WorkerCrashError):
                tier._shards[0].apply([("crash",)])
            sizes = tier.shard_sizes()
            assert sum(sizes[0]) == 10


# -- tier lifecycle ------------------------------------------------------------


class TestTierLifecycle:
    def test_placement_mismatch_refused_on_reopen(self, payloads, tmp_path):
        with ShardedTier(
            shards=2, mode="inline", data_dir=tmp_path, fsync=False
        ) as tier:
            tier.put_batch(payloads[:4])
        with pytest.raises(ParameterError):
            ShardedTier(shards=4, mode="inline", data_dir=tmp_path)

    def test_rebalance_is_explicit_and_versioned(self, payloads, tmp_path):
        tier = ShardedTier(
            shards=2, mode="inline", data_dir=tmp_path, fsync=False
        )
        tier.put_batch(payloads)
        before = {
            uid: tier.query(uid, k=3) for uid in (p.user_id for p in payloads)
        }
        old_version = tier.placement.version
        tier.rebalance(4)
        assert tier.placement.version == old_version + 1
        assert tier.shards == 4
        total = sum(sum(sizes) for sizes in tier.shard_sizes().values())
        assert total == len(payloads)
        for uid, entries in before.items():
            assert tier.query(uid, k=3) == entries
        tier.close()
        # the successor map is what a reopen must now be asked for
        reopened = ShardedTier(
            shards=4, mode="inline", data_dir=tmp_path, fsync=False
        )
        assert len(reopened) == len(payloads)
        reopened.close()

    def test_rebalance_down_drains_dropped_shards(self, payloads):
        tier = ShardedTier(shards=3, mode="inline")
        tier.put_batch(payloads)
        tier.rebalance(1)
        assert tier.shards == 1
        sizes = tier.shard_sizes()
        assert sum(sizes[0]) == len(payloads)
        tier.close()

    def test_unknown_users(self, payloads):
        with ShardedTier(shards=2, mode="inline") as tier:
            tier.put_batch(payloads[:3])
            assert tier.query(999_999, k=3) == ()
            assert tier.query_bulk([999_999], k=3) == {999_999: ()}
            with pytest.raises(MatchingError):
                tier.remove(999_999)

    def test_export_import_bridges_the_blob_path(self, payloads):
        with ShardedTier(shards=3, mode="inline") as tier:
            tier.put_batch(payloads)
            blob = dump_store_bytes(tier.export_store())
        restored = load_store_bytes(blob)
        with ShardedTier(shards=2, mode="inline") as fresh:
            fresh.import_profiles(list(restored.all_profiles().values()))
            assert len(fresh) == len(payloads)
            total = sum(sum(s) for s in fresh.shard_sizes().values())
            assert total == len(payloads)

    def test_validation(self):
        with pytest.raises(ParameterError):
            ShardedTier(shards=0)
        with pytest.raises(ParameterError):
            ShardedTier(shards=1, mode="quantum")

    def test_max_distance_queries_route_too(self, payloads):
        legacy = SMatchServer(query_k=3)
        for payload in payloads:
            legacy.handle_upload(UploadMessage(payload=payload))
        with ShardedTier(shards=3, mode="inline") as tier:
            tier.put_batch(payloads)
            for payload in payloads[:8]:
                request = QueryRequest(
                    query_id=1,
                    timestamp=0,
                    user_id=payload.user_id,
                    max_distance=4,
                )
                assert (
                    tier.query(payload.user_id, max_distance=4)
                    == legacy.handle_query(request).entries
                )
