"""Tests for repro.utils.ct.constant_time_eq."""

from __future__ import annotations

import pytest

from repro.errors import ParameterError
from repro.utils.ct import constant_time_eq


class TestBytesComparison:
    def test_equal(self):
        assert constant_time_eq(b"\x00" * 32, b"\x00" * 32)

    def test_unequal_same_length(self):
        assert not constant_time_eq(b"a" * 32, b"a" * 31 + b"b")

    def test_unequal_lengths(self):
        assert not constant_time_eq(b"abc", b"abcd")

    def test_empty(self):
        assert constant_time_eq(b"", b"")

    def test_bytearray_and_memoryview(self):
        assert constant_time_eq(bytearray(b"tag"), b"tag")
        assert constant_time_eq(memoryview(b"tag"), bytearray(b"tag"))


class TestIntComparison:
    def test_equal(self):
        assert constant_time_eq(12345, 12345)

    def test_unequal(self):
        assert not constant_time_eq(12345, 12346)

    def test_zero(self):
        assert constant_time_eq(0, 0)
        assert not constant_time_eq(0, 1)

    def test_width_mismatch_handled(self):
        # operands spanning different byte widths must still compare
        assert not constant_time_eq(1, 1 << 1024)
        assert not constant_time_eq(1 << 1024, 1)
        assert constant_time_eq(1 << 1024, 1 << 1024)

    def test_leading_zero_byte_boundary(self):
        assert not constant_time_eq(255, 256)
        assert not constant_time_eq(256, 255)

    def test_negative_rejected(self):
        with pytest.raises(ParameterError):
            constant_time_eq(-1, 1)
        with pytest.raises(ParameterError):
            constant_time_eq(1, -1)


class TestStrComparison:
    def test_equal(self):
        assert constant_time_eq("s-match", "s-match")

    def test_unequal(self):
        assert not constant_time_eq("s-match", "s-watch")


class TestTypeDiscipline:
    def test_mixed_kinds_rejected(self):
        with pytest.raises(ParameterError):
            constant_time_eq(b"0", 0)
        with pytest.raises(ParameterError):
            constant_time_eq("0", b"0")
        with pytest.raises(ParameterError):
            constant_time_eq(0, "0")

    def test_bool_rejected(self):
        with pytest.raises(ParameterError):
            constant_time_eq(True, 1)
        with pytest.raises(ParameterError):
            constant_time_eq(1, False)

    def test_unsupported_types_rejected(self):
        with pytest.raises(ParameterError):
            constant_time_eq([1], [1])
