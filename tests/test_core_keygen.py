"""Tests for fuzzy profile-key generation."""

import pytest

from repro.core.keygen import ProfileKey, ProfileKeygen
from repro.core.profile import Profile, ProfileSchema
from repro.errors import ParameterError
from repro.rs.fuzzy import FuzzyExtractor, FuzzyParams
from repro.utils.rand import SystemRandomSource

SCHEMA = ProfileSchema.uniform(["a", "b", "c", "d", "e", "f"], 1 << 16)
PARAMS = FuzzyParams(num_attributes=6, theta=8)


@pytest.fixture(scope="module")
def keygen(oprf_server):
    return ProfileKeygen(PARAMS, oprf_server, rng=SystemRandomSource(seed=61))


@pytest.fixture(scope="module")
def anchored_profiles():
    rng = SystemRandomSource(seed=62)
    fx = FuzzyExtractor(PARAMS)
    cw = fx.random_codeword(rng)
    center = fx.codeword_center_values(cw, 1 << 16)
    near = [v + 3 for v in center]
    far = [v + 900 for v in center]
    return (
        Profile(1, SCHEMA, tuple(center)),
        Profile(2, SCHEMA, tuple(near)),
        Profile(3, SCHEMA, tuple(far)),
    )


class TestProfileKey:
    def test_sizes_enforced(self):
        with pytest.raises(ParameterError):
            ProfileKey(key=b"short", index=b"x" * 32)
        with pytest.raises(ParameterError):
            ProfileKey(key=b"x" * 32, index=b"short")

    def test_subkeys_are_purpose_bound(self):
        pk = ProfileKey(key=b"k" * 32, index=b"i" * 32)
        assert pk.subkey(b"ope") != pk.subkey(b"auth")
        assert pk.subkey(b"ope") == pk.subkey(b"ope")
        assert len(pk.subkey(b"chain")) == 32


class TestDerivation:
    def test_close_profiles_same_key(self, keygen, anchored_profiles):
        center, near, _ = anchored_profiles
        k1 = keygen.derive(center)
        k2 = keygen.derive(near)
        assert k1.key == k2.key
        assert k1.index == k2.index

    def test_far_profiles_different_key(self, keygen, anchored_profiles):
        center, _, far = anchored_profiles
        assert keygen.derive(center).key != keygen.derive(far).key

    def test_index_is_hash_of_key(self, keygen, anchored_profiles):
        from repro.crypto.kdf import sha256

        key = keygen.derive(anchored_profiles[0])
        assert key.index == sha256(b"smatch-key-index", key.key)

    def test_deterministic(self, keygen, anchored_profiles):
        center, _, _ = anchored_profiles
        assert keygen.derive(center).key == keygen.derive(center).key

    def test_key_material_without_oprf(self, keygen, anchored_profiles):
        """The raw K' differs from the OPRF-strengthened key — an offline
        attacker who guesses the profile cannot reproduce the final key."""
        center, _, _ = anchored_profiles
        k_prime = keygen.derive_from_values(center.values)
        final = keygen.derive(center)
        assert k_prime != final.key
        assert len(k_prime) == 32

    def test_erasures_parameter_accepted(self, keygen, anchored_profiles):
        center, _, _ = anchored_profiles
        key = keygen.derive(center, erasures=[0])
        assert len(key.key) == 32
