"""Tests for the mobile client and device cost models."""

import pytest

from repro.client.client import MobileClient
from repro.client.device import DeviceProfile, NEXUS_ONE, PC_SERVER
from repro.errors import ParameterError, ProtocolError
from repro.net.channel import SecureChannel
from repro.net.messages import UploadMessage
from repro.net.transport import InMemoryNetwork
from repro.server.service import SMatchServer
from repro.utils.instrument import OpCounter


class TestDeviceProfile:
    def test_modexp_cubic_scaling(self):
        assert NEXUS_ONE.modexp_ms(2048) == pytest.approx(
            NEXUS_ONE.modexp_ms_1024 * 8
        )

    def test_client_slower_than_server(self):
        assert NEXUS_ONE.modexp_ms_1024 > PC_SERVER.modexp_ms_1024

    def test_estimate_combines_counts(self):
        counter = OpCounter()
        counter.add("modexp", 2)
        counter.add("hash", 10)
        counter.add("aes_block", 5)
        est = NEXUS_ONE.estimate_ms(counter, modexp_bits=1024)
        expected = (
            2 * NEXUS_ONE.modexp_ms_1024
            + 10 * NEXUS_ONE.hash_ms
            + 5 * NEXUS_ONE.aes_block_ms
        )
        assert est == pytest.approx(expected)

    def test_paillier_charged_at_double_modulus(self):
        counter = OpCounter()
        counter.add("paillier_encrypt", 1)
        est = NEXUS_ONE.estimate_ms(counter, modexp_bits=1024)
        assert est == pytest.approx(NEXUS_ONE.modexp_ms(2048))

    def test_validation(self):
        with pytest.raises(ParameterError):
            DeviceProfile(
                name="bad",
                modexp_ms_1024=0,
                hash_ms=1,
                aes_block_ms=1,
                ope_level_ms=1,
            )
        with pytest.raises(ParameterError):
            NEXUS_ONE.modexp_ms(0)


class TestMobileClient:
    def make_connected(self, enrolled):
        scheme, users, uploads, keys = enrolled
        net = InMemoryNetwork()
        client_ch, server_ch = SecureChannel.pair(
            net.endpoint("phone"), net.endpoint("cloud"), b"session"
        )
        server = SMatchServer(query_k=3)
        client = MobileClient(users[0].profile, scheme, channel=client_ch)
        return client, server, server_ch, users

    def pump(self, server, server_ch):
        """Deliver pending client messages to the server, send responses."""
        while server_ch.pending():
            message = server_ch.recv()
            response = server.handle_message(message)
            if response is not None:
                server_ch.send(response)

    def test_upload_and_query_flow(self, enrolled):
        client, server, server_ch, users = self.make_connected(enrolled)
        client.upload()
        # enroll the rest directly so the server has a population
        scheme = client.scheme
        for u in users[1:]:
            payload, _ = scheme.enroll(u.profile)
            server.handle_upload(UploadMessage(payload=payload))
        self.pump(server, server_ch)
        assert server.uploads_accepted == len(users)

        client.send_query(timestamp=1000)
        self.pump(server, server_ch)
        outcome = client.receive_results()
        assert outcome.query_id == 1
        # all accepted matches verified under the client's own key
        assert set(outcome.accepted).isdisjoint(set(outcome.rejected))

    def test_query_ids_increment(self, enrolled):
        scheme, users, _, _ = enrolled
        client = MobileClient(users[0].profile, scheme)
        assert client.query(0).query_id == 1
        assert client.query(0).query_id == 2

    def test_key_lazily_generated(self, enrolled):
        scheme, users, _, _ = enrolled
        client = MobileClient(users[0].profile, scheme)
        key = client.key
        assert key is client.key  # cached

    def test_build_upload_binds_user(self, enrolled):
        scheme, users, _, _ = enrolled
        client = MobileClient(users[0].profile, scheme)
        payload = client.build_upload()
        assert payload.user_id == users[0].profile.user_id
        assert payload.auth.user_id == payload.user_id

    def test_requires_channel(self, enrolled):
        scheme, users, _, _ = enrolled
        client = MobileClient(users[0].profile, scheme)
        with pytest.raises(ProtocolError):
            client.upload()
        with pytest.raises(ProtocolError):
            client.send_query(0)

    def test_verify_results_needs_key(self, enrolled):
        from repro.errors import SchemeError
        from repro.net.messages import QueryResult

        scheme, users, _, _ = enrolled
        client = MobileClient(users[0].profile, scheme)
        with pytest.raises(SchemeError):
            client.verify_results(
                QueryResult(query_id=1, timestamp=0, entries=())
            )

    def test_mismatched_entry_ids_rejected(self, enrolled):
        from repro.net.messages import QueryResult, ResultEntry

        scheme, users, uploads, keys = enrolled
        client = MobileClient(users[0].profile, scheme)
        client._key = keys[users[0].profile.user_id]
        donor = uploads[users[1].profile.user_id]
        from repro.core.verification import AuthInfo

        entry = ResultEntry(
            user_id=donor.user_id + 1000,
            auth=AuthInfo(user_id=donor.user_id, sealed=donor.auth.sealed),
        )
        outcome = client.verify_results(
            QueryResult(query_id=1, timestamp=0, entries=(entry,))
        )
        assert outcome.rejected == (donor.user_id + 1000,)
        assert outcome.forgery_detected
