"""Tests for random-order attribute chaining."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.chaining import AttributeChainer
from repro.errors import ParameterError


class TestChaining:
    def test_chain_is_permutation(self):
        chainer = AttributeChainer(b"key-1", 6, 16)
        values = [10, 20, 30, 40, 50, 60]
        chained = chainer.chain(values)
        assert sorted(chained) == sorted(values)

    def test_unchain_inverts(self):
        chainer = AttributeChainer(b"key-1", 6, 16)
        values = [1, 2, 3, 4, 5, 6]
        assert chainer.unchain(chainer.chain(values)) == values

    def test_key_determines_order(self):
        a = AttributeChainer(b"key-1", 8, 16)
        b = AttributeChainer(b"key-1", 8, 16)
        assert a.permutation == b.permutation

    def test_different_keys_different_orders(self):
        perms = {
            AttributeChainer(bytes([i]) * 4, 8, 16).permutation
            for i in range(20)
        }
        assert len(perms) > 1

    def test_oversized_value_rejected(self):
        chainer = AttributeChainer(b"key-1", 2, 8)
        with pytest.raises(ParameterError):
            chainer.chain([256, 0])

    def test_wrong_length_rejected(self):
        chainer = AttributeChainer(b"key-1", 3, 8)
        with pytest.raises(ParameterError):
            chainer.chain([1, 2])
        with pytest.raises(ParameterError):
            chainer.unchain([1, 2])

    def test_invalid_construction(self):
        with pytest.raises(ParameterError):
            AttributeChainer(b"k", 0, 8)
        with pytest.raises(ParameterError):
            AttributeChainer(b"k", 3, 0)

    @given(
        st.binary(min_size=1, max_size=16),
        st.lists(
            st.integers(min_value=0, max_value=(1 << 32) - 1),
            min_size=2,
            max_size=12,
        ),
    )
    @settings(max_examples=40)
    def test_roundtrip_property(self, key, values):
        chainer = AttributeChainer(key, len(values), 32)
        assert chainer.unchain(chainer.chain(values)) == values


class TestPacking:
    def test_pack_unpack(self):
        chainer = AttributeChainer(b"key-2", 3, 8)
        chained = chainer.chain([1, 2, 3])
        assert chainer.unpack(chainer.pack(chained)) == chained

    def test_pack_wrong_length(self):
        chainer = AttributeChainer(b"key-2", 3, 8)
        with pytest.raises(ParameterError):
            chainer.pack([1, 2])

    @given(
        st.lists(
            st.integers(min_value=0, max_value=(1 << 64) - 1),
            min_size=2,
            max_size=8,
        )
    )
    @settings(max_examples=30)
    def test_pack_roundtrip(self, values):
        chainer = AttributeChainer(b"key-3", len(values), 64)
        chained = chainer.chain(values)
        assert chainer.unpack(chainer.pack(chained)) == chained
