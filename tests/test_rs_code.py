"""Tests for the Reed-Solomon encoder."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ParameterError
from repro.rs.code import RSCode

CODE = RSCode(n=15, k=9, m=4)
PAPER_CODE = RSCode(n=6, k=2, m=10)  # the fuzzy-keygen shape


class TestConstruction:
    def test_parameters(self):
        assert CODE.t == 3
        assert CODE.n_parity == 6
        assert CODE.generator.degree == 6

    def test_paper_field(self):
        assert PAPER_CODE.field_.size == 1024
        assert PAPER_CODE.t == 2

    def test_invalid_k(self):
        with pytest.raises(ParameterError):
            RSCode(n=15, k=15, m=4)
        with pytest.raises(ParameterError):
            RSCode(n=15, k=0, m=4)

    def test_n_exceeds_field(self):
        with pytest.raises(ParameterError):
            RSCode(n=16, k=2, m=4)

    def test_generator_roots(self):
        gf = CODE.field_
        for i in range(CODE.n_parity):
            assert CODE.generator.eval(gf.alpha_pow(CODE.fcr + i)) == 0


class TestEncoding:
    def test_systematic_prefix(self):
        msg = [1, 2, 3, 4, 5, 6, 7, 8, 9]
        cw = CODE.encode(msg)
        assert cw[:9] == msg
        assert len(cw) == 15

    def test_codeword_has_zero_syndromes(self):
        cw = CODE.encode([5] * 9)
        assert CODE.is_codeword(cw)

    def test_corrupted_word_detected(self):
        cw = CODE.encode(list(range(9)))
        cw[3] ^= 1
        assert not CODE.is_codeword(cw)

    def test_message_of(self):
        msg = [9, 8, 7, 6, 5, 4, 3, 2, 1]
        assert CODE.message_of(CODE.encode(msg)) == msg

    def test_wrong_length_rejected(self):
        with pytest.raises(ParameterError):
            CODE.encode([1, 2, 3])

    def test_symbol_out_of_field_rejected(self):
        with pytest.raises(ParameterError):
            CODE.encode([16] + [0] * 8)

    @given(
        st.lists(
            st.integers(min_value=0, max_value=15), min_size=9, max_size=9
        )
    )
    @settings(max_examples=50)
    def test_all_encodings_are_codewords(self, msg):
        assert CODE.is_codeword(CODE.encode(msg))

    @given(
        st.lists(
            st.integers(min_value=0, max_value=15), min_size=9, max_size=9
        ),
        st.lists(
            st.integers(min_value=0, max_value=15), min_size=9, max_size=9
        ),
    )
    @settings(max_examples=30)
    def test_linearity(self, m1, m2):
        cw1 = CODE.encode(m1)
        cw2 = CODE.encode(m2)
        summed = [a ^ b for a, b in zip(cw1, cw2)]
        assert CODE.is_codeword(summed)
