"""Tests for the attack models (PR-OKPA, frequency analysis, PR-KK)."""

import pytest

from repro.attacks.collusion import (
    collusion_attack,
    shared_key_exposure,
    worst_case_advantage,
)
from repro.attacks.frequency import FrequencyAnalysis
from repro.attacks.okpa import OkpaAdversary, okpa_search_space
from repro.crypto.ope import OPE, OpeParams
from repro.errors import ParameterError
from repro.utils.rand import SystemRandomSource


class TestOkpaSearchSpace:
    def test_paper_example_shape(self):
        """Figure 1: known pairs bracket the target; density sets N."""
        known = [(3, 30), (7, 70)]
        sparse_store = [10, 30, 40, 50, 60, 70, 90]
        assert okpa_search_space(known, sparse_store, 5) == [40, 50, 60]

    def test_exact_hit(self):
        assert okpa_search_space([(5, 55)], [10, 55, 90], 5) == [55]

    def test_no_known_pairs_returns_all(self):
        assert okpa_search_space([], [3, 1, 2], 5) == [1, 2, 3]

    def test_target_below_all_known(self):
        known = [(10, 100)]
        store = [20, 50, 100, 150]
        assert okpa_search_space(known, store, 5) == [20, 50]

    def test_target_above_all_known(self):
        known = [(10, 100)]
        store = [20, 100, 150, 160]
        assert okpa_search_space(known, store, 50) == [150, 160]

    def test_duplicate_known_plaintext_rejected(self):
        with pytest.raises(ParameterError):
            okpa_search_space([(1, 10), (1, 11)], [10, 11], 5)

    def test_denser_store_larger_space(self):
        ope = OPE(b"okpa" + bytes(28), OpeParams(plaintext_bits=12))
        known = [(100, ope.encrypt(100)), (3000, ope.encrypt(3000))]
        sparse = [ope.encrypt(v) for v in range(100, 3001, 500)]
        dense = [ope.encrypt(v) for v in range(100, 3001, 50)]
        n_sparse = len(okpa_search_space(known, sparse, 1500))
        n_dense = len(okpa_search_space(known, dense, 1500))
        assert n_dense > n_sparse


class TestOkpaAdversary:
    def test_play_success_on_tiny_space(self):
        ope = OPE(b"okpa" + bytes(28), OpeParams(plaintext_bits=8))
        adversary = OkpaAdversary(rng=SystemRandomSource(seed=111))
        outcome = adversary.play(
            ope.encrypt,
            population_plaintexts=[10, 20, 30],
            known_plaintexts=[10, 30],
            target_plaintext=20,
        )
        assert outcome.search_space_size == 1
        assert outcome.success
        assert outcome.guess_probability == 1.0

    def test_target_must_be_stored(self):
        ope = OPE(b"okpa" + bytes(28), OpeParams(plaintext_bits=8))
        adversary = OkpaAdversary(rng=SystemRandomSource(seed=112))
        with pytest.raises(ParameterError):
            adversary.play(ope.encrypt, [1, 2], [1], 99)

    def test_average_search_space(self):
        ope = OPE(b"okpa" + bytes(28), OpeParams(plaintext_bits=8))
        adversary = OkpaAdversary(rng=SystemRandomSource(seed=113))
        avg = adversary.average_search_space(
            ope.encrypt,
            population_plaintexts=list(range(0, 100, 10)),
            known_plaintexts=[0, 90],
            targets=[10, 20, 30],
        )
        assert avg > 0


class TestFrequencyAnalysis:
    def test_landmark_recovered_under_deterministic_encryption(self):
        probs = [0.85, 0.1, 0.05]
        rng = SystemRandomSource(seed=114)
        values = [0] * 85 + [1] * 10 + [2] * 5
        rng.shuffle(values)
        ope = OPE(b"freq" + bytes(28), OpeParams(plaintext_bits=4))
        column = [ope.encrypt(v) for v in values]
        analysis = FrequencyAnalysis(probs)
        result = analysis.attack_column(column, values)
        assert result.accuracy > 0.8
        assert analysis.landmark_recovery_rate(column, values, tau=0.8) == 1.0

    def test_randomized_mapping_defeats_attack(self):
        """One-to-N mapping: every ciphertext is (nearly) unique, so the
        frequency rank carries no signal."""
        from repro.core.entropy import AttributeMapping

        probs = [0.85, 0.1, 0.05]
        rng = SystemRandomSource(seed=115)
        values = ([0] * 85 + [1] * 10 + [2] * 5)
        rng.shuffle(values)
        mapping = AttributeMapping(probs, k=32)
        column = [mapping.map_value(v, rng) for v in values]
        analysis = FrequencyAnalysis(probs)
        result = analysis.attack_column(column, values)
        assert result.accuracy < 0.5

    def test_no_landmark_raises(self):
        analysis = FrequencyAnalysis([0.5, 0.5])
        with pytest.raises(ParameterError):
            analysis.landmark_recovery_rate([1, 2], [0, 1], tau=0.8)

    def test_validation(self):
        with pytest.raises(ParameterError):
            FrequencyAnalysis([])
        analysis = FrequencyAnalysis([1.0])
        with pytest.raises(ParameterError):
            analysis.attack_column([1], [0, 1])
        with pytest.raises(ParameterError):
            analysis.attack_column([], [])


class TestCollusion:
    def test_smatch_confines_exposure(self, enrolled):
        _, users, uploads, keys = enrolled
        colluder = users[0].profile.user_id
        outcome = collusion_attack(uploads, colluder, keys[colluder])
        assert colluder in outcome.exposed_users
        assert outcome.advantage < 1.0
        # exposure is exactly the colluder's key group
        group_size = sum(
            1
            for payload in uploads.values()
            if payload.key_index == uploads[colluder].key_index
        )
        assert len(outcome.exposed_users) == group_size

    def test_shared_key_exposes_everyone(self):
        outcome = shared_key_exposure([1, 2, 3, 4], colluder=2)
        assert outcome.advantage == 1.0
        assert outcome.exposed_users == (1, 2, 3, 4)

    def test_worst_case_is_largest_group(self, enrolled):
        _, _, uploads, keys = enrolled
        worst = worst_case_advantage(uploads, keys)
        sizes = {}
        for payload in uploads.values():
            sizes[payload.key_index] = sizes.get(payload.key_index, 0) + 1
        assert worst == pytest.approx(max(sizes.values()) / len(uploads))

    def test_key_must_match_upload(self, enrolled):
        _, users, uploads, keys = enrolled
        a, b = users[0].profile.user_id, users[-1].profile.user_id
        if uploads[a].key_index != uploads[b].key_index:
            with pytest.raises(ParameterError):
                collusion_attack(uploads, a, keys[b])

    def test_unknown_colluder(self, enrolled):
        _, _, uploads, keys = enrolled
        some_key = next(iter(keys.values()))
        with pytest.raises(ParameterError):
            collusion_attack(uploads, 424242, some_key)
