"""Tests for polynomials over GF(2^m)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ParameterError
from repro.gf.field import GF2m
from repro.gf.poly import Poly

GF16 = GF2m.get(4)

coeff_lists = st.lists(
    st.integers(min_value=0, max_value=15), min_size=0, max_size=8
)


def poly(coeffs):
    return Poly(GF16, coeffs)


class TestStructure:
    def test_trailing_zeros_trimmed(self):
        assert poly([1, 2, 0, 0]).coeffs == (1, 2)

    def test_zero_polynomial(self):
        z = Poly.zero(GF16)
        assert z.is_zero()
        assert z.degree == -1

    def test_monomial(self):
        m = Poly.monomial(GF16, 3, coeff=5)
        assert m.degree == 3
        assert m.coeff(3) == 5
        assert m.coeff(0) == 0

    def test_coeff_beyond_degree_is_zero(self):
        assert poly([1]).coeff(10) == 0

    def test_rejects_bad_coefficients(self):
        with pytest.raises(ParameterError):
            poly([16])

    def test_cross_field_rejected(self):
        other = Poly(GF2m.get(8), [1])
        with pytest.raises(ParameterError):
            poly([1]) + other


class TestArithmetic:
    @given(coeff_lists, coeff_lists)
    def test_add_commutative(self, a, b):
        assert poly(a) + poly(b) == poly(b) + poly(a)

    @given(coeff_lists)
    def test_add_self_is_zero(self, a):
        assert (poly(a) + poly(a)).is_zero()

    @given(coeff_lists, coeff_lists)
    def test_mul_commutative(self, a, b):
        assert poly(a) * poly(b) == poly(b) * poly(a)

    @given(coeff_lists, coeff_lists, coeff_lists)
    @settings(max_examples=50)
    def test_mul_distributes(self, a, b, c):
        pa, pb, pc = poly(a), poly(b), poly(c)
        assert pa * (pb + pc) == pa * pb + pa * pc

    def test_mul_degrees_add(self):
        a, b = poly([1, 1]), poly([3, 0, 1])
        assert (a * b).degree == a.degree + b.degree

    def test_scale(self):
        assert poly([1, 2]).scale(3) == poly(
            [GF16.mul(1, 3), GF16.mul(2, 3)]
        )

    def test_shift(self):
        assert poly([1, 2]).shift(2) == poly([0, 0, 1, 2])

    @given(coeff_lists, coeff_lists)
    @settings(max_examples=50)
    def test_divmod_identity(self, a, b):
        pa, pb = poly(a), poly(b)
        if pb.is_zero():
            with pytest.raises(ZeroDivisionError):
                pa.divmod(pb)
            return
        q, r = pa.divmod(pb)
        assert q * pb + r == pa
        assert r.degree < pb.degree


class TestEvaluation:
    @given(coeff_lists, st.integers(min_value=0, max_value=15))
    def test_eval_matches_direct_sum(self, coeffs, x):
        p = poly(coeffs)
        expected = 0
        for i, c in enumerate(coeffs):
            expected ^= GF16.mul(c, GF16.pow(x, i))
        assert p.eval(x) == expected

    def test_eval_many(self):
        p = poly([1, 1])
        assert p.eval_many([0, 1, 2]) == [p.eval(0), p.eval(1), p.eval(2)]

    def test_derivative_char2(self):
        # d/dx (c0 + c1 x + c2 x^2 + c3 x^3) = c1 + c3 x^2 in char 2
        p = poly([5, 7, 9, 11])
        assert p.derivative() == poly([7, 0, 11])

    def test_roots_of_known_product(self):
        # (x - 3)(x - 5) has roots 3 and 5 (char 2: x + 3 etc.)
        p = poly([3, 1]) * poly([5, 1])
        assert p.eval(3) == 0
        assert p.eval(5) == 0
        assert p.eval(7) != 0
