"""Tests for CTR mode and the encrypt-then-MAC composition."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.crypto.aes import AES
from repro.crypto.modes import AeadCiphertext, EtMCipher, ctr_keystream, ctr_xcrypt
from repro.errors import IntegrityError, ParameterError
from repro.utils.rand import SystemRandomSource


class TestCtr:
    def test_nist_sp800_38a_ctr_vector(self):
        # NIST SP 800-38A F.5.1 CTR-AES128
        key = bytes.fromhex("2b7e151628aed2a6abf7158809cf4f3c")
        counter = bytes.fromhex("f0f1f2f3f4f5f6f7f8f9fafbfcfdfeff")
        pt = bytes.fromhex("6bc1bee22e409f96e93d7e117393172a")
        ct = ctr_xcrypt(AES(key), counter, pt)
        assert ct.hex() == "874d6191b620e3261bef6864990db6ce"

    def test_keystream_length(self):
        cipher = AES(bytes(16))
        assert len(ctr_keystream(cipher, bytes(16), 33)) == 33
        assert len(ctr_keystream(cipher, bytes(16), 0)) == 0

    def test_counter_wraps(self):
        cipher = AES(bytes(16))
        ks = ctr_keystream(cipher, b"\xff" * 16, 32)
        assert len(ks) == 32

    def test_xcrypt_is_involution(self):
        cipher = AES(bytes(16))
        nonce = bytes(range(16))
        data = b"some data of arbitrary length!"
        assert ctr_xcrypt(cipher, nonce, ctr_xcrypt(cipher, nonce, data)) == data

    def test_bad_nonce_size(self):
        with pytest.raises(ParameterError):
            ctr_keystream(AES(bytes(16)), b"short", 10)


class TestEtM:
    @given(st.binary(max_size=300), st.binary(max_size=32))
    @settings(max_examples=30, deadline=None)
    def test_seal_open_roundtrip(self, plaintext, aad):
        cipher = EtMCipher(b"master-key")
        rng = SystemRandomSource(seed=9)
        sealed = cipher.seal(plaintext, aad=aad, rng=rng)
        assert cipher.open(sealed, aad=aad) == plaintext

    def test_tampered_body_rejected(self):
        cipher = EtMCipher(b"master-key")
        sealed = cipher.seal(b"hello world", rng=SystemRandomSource(seed=1))
        bad = AeadCiphertext(
            iv=sealed.iv,
            body=bytes([sealed.body[0] ^ 1]) + sealed.body[1:],
            tag=sealed.tag,
        )
        with pytest.raises(IntegrityError):
            cipher.open(bad)

    def test_wrong_aad_rejected(self):
        cipher = EtMCipher(b"master-key")
        sealed = cipher.seal(b"data", aad=b"ctx1", rng=SystemRandomSource(seed=1))
        with pytest.raises(IntegrityError):
            cipher.open(sealed, aad=b"ctx2")

    def test_wrong_key_rejected(self):
        sealed = EtMCipher(b"key-a").seal(b"data", rng=SystemRandomSource(seed=1))
        with pytest.raises(IntegrityError):
            EtMCipher(b"key-b").open(sealed)

    def test_encode_decode(self):
        cipher = EtMCipher(b"master-key")
        sealed = cipher.seal(b"payload", rng=SystemRandomSource(seed=2))
        decoded = AeadCiphertext.decode(sealed.encode())
        assert decoded == sealed
        assert cipher.open(decoded) == b"payload"

    def test_decode_too_short(self):
        with pytest.raises(ParameterError):
            AeadCiphertext.decode(b"x" * 10)

    def test_wire_size(self):
        cipher = EtMCipher(b"master-key")
        sealed = cipher.seal(b"12345", rng=SystemRandomSource(seed=3))
        assert sealed.wire_size == 16 + 32 + 5
        assert len(sealed.encode()) == sealed.wire_size

    def test_fresh_iv_per_seal(self):
        cipher = EtMCipher(b"master-key")
        rng = SystemRandomSource(seed=4)
        a = cipher.seal(b"same", rng=rng)
        b = cipher.seal(b"same", rng=rng)
        assert a.iv != b.iv and a.body != b.body

    def test_key_size_validation(self):
        with pytest.raises(ParameterError):
            EtMCipher(b"master", key_size=20)
