"""Tests for the span-analytics layer (repro.obs.analysis) and its gates.

The load-bearing invariant, asserted against both synthetic records and a
live trace: folded self-times re-aggregate to **exactly** the root's
attributed duration, integer microseconds, despite per-span truncation.
On top of that: orphan handling, zero-duration spans, deep (>1500-span)
traces through every iterative walker, the flamegraph HTML, the top table,
the critical path, the trace diff naming a synthetically slowed subtree,
and the two CI gates that consume these reports
(``tools/check_perf_trend.py`` attribution, ``tools/check_obs_artifacts``
emit-site scanning).
"""

from __future__ import annotations

import json

import pytest

from repro.errors import ParameterError
from repro.obs.analysis import (
    DIFF_SCHEMA,
    SpanNode,
    build_forest,
    critical_path,
    diff_traces,
    flamegraph_html,
    folded_stacks,
    parse_folded,
    render_critical_path,
    render_diff,
    render_folded,
    render_top,
    top_table,
    walk_forest,
)
from repro.obs.trace import span, tracing


def _rec(span_id, parent, name, start_us, duration_us, ops=None, bytes_io=None):
    return {
        "id": span_id,
        "parent": parent,
        "name": name,
        "attrs": {},
        "start_us": start_us,
        "duration_us": duration_us,
        "ops": ops or {},
        "bytes": bytes_io or {},
    }


def _live_records(depth=0):
    """A real traced run: nested spans with ops, exported via to_jsonl."""
    with tracing("root", kind="test") as tracer:
        with span("enroll"):
            with span("keygen"):
                sum(range(200))
            with span("encrypt"):
                sum(range(200))
        with span("query"):
            sum(range(100))
    return [json.loads(line) for line in tracer.to_jsonl().splitlines()]


class TestBuildForest:
    def test_truncation_clamped_in_sibling_order(self):
        # children's recorded durations sum past the parent: 60 + 45 > 100.
        # the clamp attributes in file order: a keeps 60, b gets the
        # remaining 40 (5us clipped), and the parent's self time is 0.
        records = [
            _rec(1, None, "root", 0, 100),
            _rec(2, 1, "a", 0, 60),
            _rec(3, 1, "b", 60, 45),
        ]
        (root,) = build_forest(records)
        a, b = root.children
        assert [c.name for c in root.children] == ["a", "b"]
        assert (a.total_us, a.clipped_us) == (60, 0)
        assert (b.total_us, b.clipped_us) == (40, 5)
        assert root.self_us == 0
        folded = folded_stacks(records)
        assert sum(folded.values()) == 100

    def test_orphan_parents_become_roots(self):
        # a worker trace sliced out of context: parent id 99 never appears
        records = [
            _rec(1, None, "root", 0, 50),
            _rec(2, 99, "stray", 0, 30),
        ]
        roots = build_forest(records)
        assert [r.name for r in roots] == ["root", "stray"]
        assert roots[1].path == ("stray",)

    def test_zero_duration_spans(self):
        records = [
            _rec(1, None, "root", 0, 0),
            _rec(2, 1, "child", 0, 0),
        ]
        (root,) = build_forest(records)
        assert root.total_us == root.self_us == 0
        assert root.children[0].total_us == 0
        assert sum(folded_stacks(records).values()) == 0

    def test_missing_fields_rejected(self):
        with pytest.raises(ParameterError):
            build_forest([{"id": 1, "parent": None}])
        with pytest.raises(ParameterError):
            build_forest([{"name": "x", "parent": None}])

    def test_deep_chain_no_recursion(self):
        # 1500 levels: every walker here is iterative, so this must not
        # hit the interpreter's ~1000-frame recursion limit
        records = [_rec(1, None, "n0", 0, 3000)]
        for i in range(1, 1500):
            records.append(_rec(i + 1, i, f"n{i}", i, 3000 - 2 * i))
        roots = build_forest(records)
        assert sum(1 for _ in walk_forest(roots)) == 1500
        folded = folded_stacks(records)
        assert sum(folded.values()) == 3000
        assert flamegraph_html(records).count('class="frame"') == 1500
        assert len(critical_path(records)) == 1500

    def test_live_trace_folds_to_exact_root_duration(self):
        records = _live_records()
        (root,) = build_forest(records)
        folded = folded_stacks(records)
        assert sum(folded.values()) == root.record["duration_us"]
        assert set(folded) >= {"root;enroll;keygen", "root;enroll;encrypt"}


class TestFolded:
    def test_round_trip(self):
        folded = folded_stacks(_live_records())
        assert parse_folded(render_folded(folded)) == folded

    def test_parse_accumulates_duplicate_paths(self):
        assert parse_folded("a;b 3\na;b 4\n") == {"a;b": 7}

    def test_parse_rejects_malformed(self):
        with pytest.raises(ParameterError):
            parse_folded("justonefield\n")
        with pytest.raises(ValueError):
            parse_folded("a;b notanumber\n")


class TestFlamegraph:
    def test_html_is_self_contained_and_escaped(self):
        records = [
            _rec(1, None, "root", 0, 100, ops={"modexp": 3}),
            _rec(2, 1, "<evil> & \"co\"", 0, 40),
        ]
        html = flamegraph_html(records, title="t <x>")
        assert html.startswith("<!DOCTYPE html>")
        assert "<script" not in html and "http" not in html
        assert "&lt;evil&gt; &amp; &quot;co&quot;" in html
        assert "<evil>" not in html
        assert "<title>t &lt;x&gt;</title>" in html
        assert "modexp=3" in html
        assert "2 frames, root total 100us" in html

    def test_widths_are_integer_permille(self):
        records = [
            _rec(1, None, "root", 0, 1000),
            _rec(2, 1, "third", 0, 333),
        ]
        html = flamegraph_html(records)
        assert "width:33.3%" in html  # 333000 // 1000 = 333 permille
        assert "width:100.0%" in html


class TestTopTable:
    def test_aggregates_by_name_and_nets_ops(self):
        records = [
            _rec(1, None, "root", 0, 100, ops={"hash": 10}),
            _rec(2, 1, "phase", 0, 30, ops={"hash": 6}),
            _rec(3, 1, "phase", 30, 30, ops={"hash": 2}),
        ]
        rows = top_table(records)
        by_name = {row["name"]: row for row in rows}
        phase = by_name["phase"]
        assert phase["calls"] == 2
        assert phase["self_us"] == 60
        # root's recorded hash=10 includes the children's 8: net is 2
        assert by_name["root"]["ops"] == {"hash": 2}
        assert phase["ops"] == {"hash": 8}
        assert rows[0]["name"] == "phase"  # ranked by self time
        text = render_top(rows, limit=1)
        assert "phase" in text and "root" not in text

    def test_empty(self):
        assert render_top(top_table([])) == "(no spans)"


class TestCriticalPath:
    def test_follows_widest_child(self):
        records = [
            _rec(1, None, "root", 0, 100),
            _rec(2, 1, "small", 0, 20),
            _rec(3, 1, "big", 20, 70),
            _rec(4, 3, "leaf", 20, 50),
        ]
        chain = critical_path(records)
        assert [n.name for n in chain] == ["root", "big", "leaf"]
        text = render_critical_path(chain)
        assert "root" in text and "big" in text and "(70.0% of root)" in text

    def test_empty(self):
        assert critical_path([]) == []
        assert render_critical_path([]) == "(empty trace)"


def _base_and_slowed(slow_by_us=500):
    """Two aligned traces; ``encrypt`` under enroll is slower in the second."""
    base = [
        _rec(1, None, "run", 0, 1000, ops={"modexp": 4}),
        _rec(2, 1, "enroll", 0, 700),
        _rec(3, 2, "keygen", 0, 300),
        _rec(4, 2, "encrypt", 300, 350, ops={"ope_level": 64}),
        _rec(5, 1, "query", 700, 250),
    ]
    current = [
        _rec(1, None, "run", 0, 1000 + slow_by_us, ops={"modexp": 4}),
        _rec(2, 1, "enroll", 0, 700 + slow_by_us),
        _rec(3, 2, "keygen", 0, 300),
        _rec(4, 2, "encrypt", 300, 350 + slow_by_us, ops={"ope_level": 96}),
        _rec(5, 1, "query", 700 + slow_by_us, 250),
    ]
    return base, current


class TestDiff:
    def test_slowed_subtree_named_as_top_regression(self):
        base, current = _base_and_slowed()
        report = diff_traces(base, current)
        assert report["schema"] == DIFF_SCHEMA
        assert report["delta_root_us"] == 500
        top = report["top_regression"]
        # the slowdown lives in encrypt's *self* time; the inflated totals
        # of run/enroll must not steal the attribution
        assert top["path"] == "run;enroll;encrypt"
        assert top["delta_self_us"] == 500
        by_path = {row["path"]: row for row in report["paths"]}
        assert by_path["run"]["delta_self_us"] == 0
        assert by_path["run;enroll"]["delta_total_us"] == 500
        assert by_path["run;enroll;encrypt"]["delta_ops"] == {"ope_level": 32}
        text = render_diff(report)
        assert "top regression: run;enroll;encrypt self +500us" in text

    def test_identical_traces_have_no_regression(self):
        base, _ = _base_and_slowed()
        report = diff_traces(base, base)
        assert report["top_regression"] is None
        assert report["delta_root_us"] == 0
        assert "none" in render_diff(report)

    def test_report_is_json_serializable_integers(self):
        base, current = _base_and_slowed()
        report = diff_traces(base, current)
        round_tripped = json.loads(json.dumps(report))
        assert round_tripped == report

        def walk(value):
            if isinstance(value, dict):
                for v in value.values():
                    walk(v)
            elif isinstance(value, list):
                for v in value:
                    walk(v)
            else:
                assert value is None or isinstance(value, (str, int))

        walk(report)


class TestPerfTrendAttribution:
    """A failing gate prints the span-path diff naming the slowed subtree."""

    @staticmethod
    def _artifact(path, per_op_us):
        path.write_text(
            json.dumps(
                {
                    "ops": {"enroll": {"per_op_us": per_op_us}},
                    "speedups": {"ope_cache_encrypt": 1.0},
                    "calibration_us": 1000,
                }
            )
        )

    def test_failing_floor_prints_attribution(self, tmp_path, capsys):
        from tools.check_perf_trend import main

        current, baseline = tmp_path / "c.json", tmp_path / "b.json"
        self._artifact(current, 100)
        self._artifact(baseline, 100)
        base_trace, cur_trace = _base_and_slowed()
        trace_b = tmp_path / "trace.base.jsonl"
        trace_c = tmp_path / "trace.cur.jsonl"
        trace_b.write_text("\n".join(json.dumps(r) for r in base_trace) + "\n")
        trace_c.write_text("\n".join(json.dumps(r) for r in cur_trace) + "\n")
        code = main(
            [
                str(current),
                str(baseline),
                "--min-speedup",
                "ope_cache_encrypt=2.0",
                "--trace",
                str(trace_c),
                "--trace-baseline",
                str(trace_b),
            ]
        )
        err = capsys.readouterr().err
        assert code == 1
        assert "FAIL speedup 'ope_cache_encrypt' below floor" in err
        assert "attribution (span-path trace diff):" in err
        assert "top regression: run;enroll;encrypt" in err

    def test_passing_gate_prints_no_attribution(self, tmp_path, capsys):
        from tools.check_perf_trend import main

        current, baseline = tmp_path / "c.json", tmp_path / "b.json"
        self._artifact(current, 100)
        self._artifact(baseline, 100)
        code = main([str(current), str(baseline)])
        captured = capsys.readouterr()
        assert code == 0
        assert "attribution" not in captured.err


class TestEmitSiteScanner:
    """check_obs_artifacts --scan-sources: the registry is the only source."""

    @staticmethod
    def _scan(tree):
        from tools.check_obs_artifacts import scan_emit_sites

        problems = []
        count = scan_emit_sites(tree, problems)
        return count, problems

    def test_registered_literal_and_imported_constant_pass(self, tmp_path):
        (tmp_path / "good.py").write_text(
            "from repro.obs.metrics import M_SERVER_UPLOADS, metric_inc\n"
            "metric_inc(M_SERVER_UPLOADS)\n"
            'metric_inc("smatch_server_uploads_total")\n'
        )
        count, problems = self._scan(tmp_path)
        assert count == 2 and problems == []

    def test_unregistered_literal_fails(self, tmp_path):
        (tmp_path / "typo.py").write_text(
            "from repro.obs.metrics import metric_inc\n"
            'metric_inc("smatch_server_uplaods_total")\n'
        )
        _, problems = self._scan(tmp_path)
        assert len(problems) == 1 and "unregistered" in problems[0]

    def test_constant_not_imported_from_registry_fails(self, tmp_path):
        (tmp_path / "local.py").write_text(
            "from repro.obs.metrics import metric_inc\n"
            'MY_METRIC = "smatch_server_uploads_total"\n'
            "metric_inc(MY_METRIC)\n"
        )
        _, problems = self._scan(tmp_path)
        assert len(problems) == 1 and "not imported" in problems[0]

    def test_dynamic_name_fails(self, tmp_path):
        (tmp_path / "dyn.py").write_text(
            "from repro.obs.metrics import metric_inc\n"
            'metric_inc("smatch_" + "server_uploads_total")\n'
        )
        _, problems = self._scan(tmp_path)
        assert len(problems) == 1 and "dynamic" in problems[0]

    def test_real_tree_is_clean(self):
        from pathlib import Path

        count, problems = self._scan(
            Path(__file__).resolve().parents[1] / "src" / "repro"
        )
        assert problems == []
        assert count >= 30  # the swept emit sites across server/net/crypto


class TestSpanNodeShape:
    def test_properties_reflect_record(self):
        node = SpanNode(
            record=_rec(7, None, "x", 0, 5, ops={"hash": 1}, bytes_io={"sent": 9}),
            path=("x",),
        )
        assert node.name == "x"
        assert node.duration_us == 5
        assert node.ops == {"hash": 1}
        assert node.bytes_io == {"sent": 9}
        assert node.folded_path() == "x"
