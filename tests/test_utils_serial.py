"""Tests for the length-prefixed wire codec."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import ProtocolError
from repro.utils.serial import FieldReader, FieldWriter


class TestRoundtrip:
    def test_mixed_fields(self):
        w = FieldWriter()
        w.write_int(42).write_str("hello").write_bytes(b"\x00\x01")
        r = FieldReader(w.getvalue())
        assert r.read_int() == 42
        assert r.read_str() == "hello"
        assert r.read_bytes() == b"\x00\x01"
        assert r.at_end()

    def test_zero_int(self):
        w = FieldWriter()
        w.write_int(0)
        assert FieldReader(w.getvalue()).read_int() == 0

    def test_empty_bytes(self):
        w = FieldWriter()
        w.write_bytes(b"")
        assert FieldReader(w.getvalue()).read_bytes() == b""

    @given(st.lists(st.integers(min_value=0, max_value=1 << 128), max_size=10))
    def test_int_lists(self, values):
        w = FieldWriter()
        for v in values:
            w.write_int(v)
        r = FieldReader(w.getvalue())
        assert [r.read_int() for _ in values] == values
        r.expect_end()

    @given(st.binary(max_size=200))
    def test_bytes_roundtrip(self, data):
        w = FieldWriter()
        w.write_bytes(data)
        assert FieldReader(w.getvalue()).read_bytes() == data

    def test_raw_field_splice(self):
        inner = FieldWriter().write_int(7).write_str("mid")
        w = FieldWriter()
        w.write_int(1).write_raw_fields(inner.getvalue()).write_int(2)
        r = FieldReader(w.getvalue())
        assert [r.read_int(), r.read_int(), r.read_str(), r.read_int()] == [
            1,
            7,
            "mid",
            2,
        ]
        r.expect_end()
        assert len(w) == len(w.getvalue())


class TestErrors:
    def test_negative_int_rejected(self):
        with pytest.raises(ProtocolError):
            FieldWriter().write_int(-1)

    def test_truncated_header(self):
        with pytest.raises(ProtocolError):
            FieldReader(b"\x00\x00").read_bytes()

    def test_truncated_body(self):
        with pytest.raises(ProtocolError):
            FieldReader(b"\x00\x00\x00\x05ab").read_bytes()

    def test_trailing_bytes_detected(self):
        w = FieldWriter()
        w.write_int(1)
        reader = FieldReader(w.getvalue() + b"junk")
        reader.read_int()
        with pytest.raises(ProtocolError):
            reader.expect_end()

    def test_invalid_utf8(self):
        w = FieldWriter()
        w.write_bytes(b"\xff\xfe")
        with pytest.raises(ProtocolError):
            FieldReader(w.getvalue()).read_str()

    def test_len_tracks_written(self):
        w = FieldWriter()
        w.write_bytes(b"abc")
        assert len(w) == 4 + 3
