"""Cross-backend equivalence and failure-surfacing tests (repro.parallel).

The contract under test: for seeded work, every backend — serial, thread,
process — produces **byte-identical** results for any worker count and any
chunking, because chunk boundaries are a pure function of (batch size,
chunk_size) and results are collected in submission order.  On top of that:
the batched OPRF path returns identical evaluations across backends, a
crashing worker surfaces a typed :class:`~repro.errors.WorkerCrashError`
without deadlocking (and the pool recovers), and the resolution /
deprecation plumbing behaves.
"""

from __future__ import annotations

import os

import pytest

from repro.core.profile import Profile, ProfileSchema
from repro.core.scheme import SMatch, SMatchParams
from repro.crypto.oprf import RsaOprfServer
from repro.errors import (
    ParallelError,
    ParameterError,
    WorkerCrashError,
)
from repro.net.messages import UploadMessage
from repro.net.oprf_messages import BatchedBlindEvalRequest
from repro.parallel import (
    ProcessBackend,
    SerialBackend,
    TaskEnvelope,
    ThreadBackend,
    balanced_chunk_size,
    default_backend,
    partition_chunks,
    resolve_backend,
    set_default_backend,
)
from repro.server.keyservice import KeyGenService
from repro.server.service import SMatchServer
from repro.utils.rand import SystemRandomSource

SCHEMA = ProfileSchema.uniform(["a", "b", "c"], 1 << 12)


def _scheme() -> SMatch:
    return SMatch(
        SMatchParams(schema=SCHEMA, theta=8, plaintext_bits=64),
        rng=SystemRandomSource(41),
    )


@pytest.fixture(scope="module")
def profiles():
    return [
        Profile(i, SCHEMA, (40 + i, 400 + 3 * i, 4000 + 7 * i))
        for i in range(1, 10)
    ]


def _assert_same(result_a, result_b):
    uploads_a, keys_a = result_a
    uploads_b, keys_b = result_b
    assert set(uploads_a) == set(uploads_b)
    for uid in uploads_a:
        assert uploads_a[uid] == uploads_b[uid]
        assert keys_a[uid].key == keys_b[uid].key
        assert keys_a[uid].index == keys_b[uid].index


# -- deterministic partitioning ------------------------------------------------


class TestPartitioning:
    def test_contiguous_chunks(self):
        assert partition_chunks([1, 2, 3, 4, 5], 2) == [[1, 2], [3, 4], [5]]
        assert partition_chunks([], 3) == []

    def test_chunk_size_validated(self):
        with pytest.raises(ParameterError):
            partition_chunks([1], 0)

    def test_balanced_chunk_size(self):
        assert balanced_chunk_size(10, 4) == 3
        assert balanced_chunk_size(0, 4) == 1
        assert balanced_chunk_size(5, 1) == 5
        with pytest.raises(ParameterError):
            balanced_chunk_size(5, 0)


# -- cross-backend enrollment equivalence --------------------------------------


class TestEnrollmentEquivalence:
    @pytest.fixture(scope="class")
    def serial_result(self, profiles):
        return _scheme().enroll_population(profiles, backend="serial", seed=77)

    @pytest.mark.parametrize("workers", [1, 2, 4])
    @pytest.mark.parametrize("chunk_size", [None, 1, 3])
    def test_thread_backend_matches_serial(
        self, profiles, serial_result, workers, chunk_size
    ):
        result = _scheme().enroll_population(
            profiles,
            backend=ThreadBackend(workers),
            seed=77,
            chunk_size=chunk_size,
        )
        _assert_same(serial_result, result)

    @pytest.mark.parametrize("workers,chunk_size", [(2, None), (2, 2), (3, 1)])
    def test_process_backend_matches_serial(
        self, profiles, serial_result, workers, chunk_size
    ):
        with ProcessBackend(workers, mp_context="fork") as backend:
            assert backend.shm_enabled  # arena transport is the default
            result = _scheme().enroll_population(
                profiles, backend=backend, seed=77, chunk_size=chunk_size
            )
        _assert_same(serial_result, result)

    def test_process_backend_matches_serial_without_shm(
        self, profiles, serial_result
    ):
        # same batch with the arena transport forced off: byte-identical
        # either way, so the transport is pure mechanism
        with ProcessBackend(2, mp_context="fork", shm=False) as backend:
            result = _scheme().enroll_population(
                profiles, backend=backend, seed=77, chunk_size=2
            )
        _assert_same(serial_result, result)

    def test_other_seed_differs(self, profiles, serial_result):
        other = _scheme().enroll_population(
            profiles, backend="serial", seed=78
        )
        uploads_a, _ = serial_result
        uploads_b, _ = other
        assert any(uploads_a[uid] != uploads_b[uid] for uid in uploads_a)

    def test_unseeded_backend_run_deterministic_under_seeded_scheme(
        self, profiles
    ):
        a = _scheme().enroll_population(profiles, backend=ThreadBackend(2))
        b = _scheme().enroll_population(profiles, backend=ThreadBackend(3))
        _assert_same(a, b)


# -- batched OPRF equivalence --------------------------------------------------


class TestBatchedOprfEquivalence:
    @pytest.fixture(scope="class")
    def oprf_and_batch(self):
        rng = SystemRandomSource(3)
        oprf = RsaOprfServer(bits=512, rng=rng)
        blinded = tuple(rng.getrandbits(64) for _ in range(12))
        return oprf, blinded

    @pytest.mark.parametrize(
        "backend_factory",
        [
            lambda: None,  # serial inline path
            lambda: SerialBackend(),
            lambda: ThreadBackend(3),
            lambda: ProcessBackend(2, mp_context="fork"),
        ],
    )
    def test_batched_eval_identical(self, oprf_and_batch, backend_factory):
        oprf, blinded = oprf_and_batch
        reference = tuple(oprf.evaluate_blinded(b) for b in blinded)
        service = KeyGenService(
            oprf_server=oprf,
            max_requests_per_window=100,
            backend=backend_factory(),
            parallel_threshold=4,
        )
        response = service.handle_message(
            "c", BatchedBlindEvalRequest(request_id=1, blinded=blinded)
        )
        assert response.evaluated == reference
        assert service.evaluations_served == len(blinded)

    def test_small_batches_stay_serial(self, oprf_and_batch):
        oprf, blinded = oprf_and_batch

        class ExplodingBackend:
            name = "exploding"
            workers = 4

            def map_chunks(self, envelope, chunks):
                raise AssertionError("small batch must not fan out")

            def close(self):
                pass

        service = KeyGenService(
            oprf_server=oprf,
            max_requests_per_window=100,
            backend=ExplodingBackend(),
            parallel_threshold=8,
        )
        response = service.handle_message(
            "c", BatchedBlindEvalRequest(request_id=1, blinded=blinded[:3])
        )
        assert response.evaluated == tuple(
            oprf.evaluate_blinded(b) for b in blinded[:3]
        )


# -- bulk matching -------------------------------------------------------------


class TestQueryBulk:
    @pytest.fixture(scope="class")
    def server_and_users(self):
        scheme = SMatch(
            SMatchParams(schema=SCHEMA, theta=1, plaintext_bits=64),
            rng=SystemRandomSource(41),
        )
        # identical attribute values -> one key group for everyone
        profiles = [Profile(i, SCHEMA, (40, 400, 4000)) for i in range(1, 9)]
        uploads, _ = scheme.enroll_population(
            profiles, backend="serial", seed=9
        )
        server = SMatchServer(query_k=3)
        for payload in uploads.values():
            server.handle_upload(UploadMessage(payload=payload))
        return server, sorted(uploads)

    def test_bulk_matches_per_user_match(self, server_and_users):
        server, users = server_and_users
        singles = {u: server.matcher.match(u, 3) for u in users}
        assert server.matcher.query_bulk(users, 3) == singles

    @pytest.mark.parametrize("chunk_size", [1, 3, None])
    def test_bulk_identical_across_backends(self, server_and_users, chunk_size):
        server, users = server_and_users
        serial = server.matcher.query_bulk(
            users, 3, backend="serial", chunk_size=chunk_size
        )
        threaded = server.matcher.query_bulk(
            users, 3, backend=ThreadBackend(3), chunk_size=chunk_size
        )
        with ProcessBackend(2, mp_context="fork") as backend:
            processed = server.matcher.query_bulk(
                users, 3, backend=backend, chunk_size=chunk_size
            )
        assert serial == threaded == processed

    def test_bulk_identical_without_shm_context(self, server_and_users):
        # the shared-segment context shipping is mechanism only: forcing
        # the per-worker pickle path changes nothing about the results
        server, users = server_and_users
        serial = server.matcher.query_bulk(users, 3, backend="serial")
        with ProcessBackend(2, mp_context="fork", shm=False) as backend:
            assert (
                server.matcher.query_bulk(users, 3, backend=backend) == serial
            )

    def test_unknown_user_rejected_up_front(self, server_and_users):
        from repro.errors import MatchingError

        server, users = server_and_users
        with pytest.raises(MatchingError):
            server.matcher.query_bulk(users + [99999], 3)


# -- failure surfacing ---------------------------------------------------------


def _crash_task(context, chunk):
    os._exit(13)


def _double_task(context, chunk):
    return [value * 2 for value in chunk]


class TestFailureSurfacing:
    def test_worker_crash_raises_typed_error_without_deadlock(self):
        with ProcessBackend(2, mp_context="fork") as backend:
            envelope = TaskEnvelope(fn=_crash_task, label="crash-test")
            with pytest.raises(WorkerCrashError):
                backend.map_chunks(envelope, [[1], [2], [3]])
            # the broken pool was discarded: the next call restarts workers
            healthy = TaskEnvelope(fn=_double_task, label="recovery")
            assert backend.map_chunks(healthy, [[1, 2], [3]]) == [[2, 4], [6]]

    def test_unpicklable_envelope_is_a_typed_error(self):
        local_fn = lambda context, chunk: chunk  # noqa: E731
        with ProcessBackend(2, mp_context="fork") as backend:
            with pytest.raises(ParallelError):
                backend.map_chunks(
                    TaskEnvelope(fn=local_fn, label="unpicklable"), [[1]]
                )

    def test_task_exceptions_propagate_unchanged(self):
        def boom(context, chunk):
            raise ParameterError("inner failure")

        backend = ThreadBackend(2)
        with pytest.raises(ParameterError):
            backend.map_chunks(TaskEnvelope(fn=boom, label="boom"), [[1], [2]])
        backend.close()


# -- resolution and defaults ---------------------------------------------------


class TestResolution:
    def test_names_resolve(self):
        assert resolve_backend("serial").name == "serial"
        assert resolve_backend("thread", 3).workers == 3
        assert resolve_backend("process", 2).workers == 2
        backend = SerialBackend()
        assert resolve_backend(backend) is backend

    def test_unknown_name_rejected(self):
        with pytest.raises(ParameterError):
            resolve_backend("gpu")
        with pytest.raises(ParameterError):
            resolve_backend(42)

    def test_env_variable_default(self, monkeypatch):
        set_default_backend(None)
        monkeypatch.delenv("SMATCH_BACKEND", raising=False)
        assert default_backend() is None
        monkeypatch.setenv("SMATCH_BACKEND", "thread")
        backend = default_backend()
        assert backend is not None and backend.name == "thread"
        # cached per name across call sites
        assert default_backend() is backend

    def test_explicit_default_wins_over_env(self, monkeypatch):
        monkeypatch.setenv("SMATCH_BACKEND", "thread")
        try:
            installed = set_default_backend("serial")
            assert default_backend() is installed
        finally:
            set_default_backend(None)

    def test_workers_validated(self):
        with pytest.raises(ParameterError):
            ThreadBackend(0)
        with pytest.raises(ParameterError):
            ProcessBackend(2, max_inflight=0)


# -- cross-backend telemetry equivalence ---------------------------------------


def _telemetry_scheme() -> SMatch:
    # expansion_bits > 0 gives the OPE descent real split points, so the
    # node cache is exercised and its counters are non-trivially non-zero
    return SMatch(
        SMatchParams(
            schema=SCHEMA, theta=8, plaintext_bits=32, ope_expansion_bits=8
        ),
        rng=SystemRandomSource(41),
    )


@pytest.fixture(scope="module")
def distinct_profiles():
    # every pair far outside theta: each profile lands in its own key
    # group, so the OPE cache namespaces (keyed per ProfileKey) are
    # chunk-local and hit/miss totals cannot depend on which worker's
    # cache served a lookup — the property that makes the counters
    # backend-invariant
    return [
        Profile(
            i,
            SCHEMA,
            (400 * i % 4096, (700 * i + 13) % 4096, (1100 * i + 29) % 4096),
        )
        for i in range(1, 10)
    ]


def _traced_enroll(backend, distinct_profiles):
    """Enroll under a fresh tracer + registry; returns (uploads, counters,
    span records, root ops)."""
    from repro.obs.metrics import (
        MetricsRegistry,
        disable_metrics,
        enable_metrics,
    )
    from repro.obs.trace import tracing

    registry = enable_metrics(MetricsRegistry())
    try:
        with tracing("test.enroll") as tracer:
            uploads, _ = _telemetry_scheme().enroll_population(
                distinct_profiles, backend=backend, seed=99, chunk_size=3
            )
        records = [
            __import__("json").loads(line)
            for line in tracer.to_jsonl().splitlines()
        ]
        counters = registry.snapshot()["counters"]
    finally:
        disable_metrics()
    root_ops = next(r["ops"] for r in records if r["parent"] is None)
    return uploads, counters, records, root_ops


class TestTelemetryEquivalence:
    """Counters and span forests are truthful across execution backends.

    ``smatch_parallel_*``, ``smatch_ope_cache_*_total``, and
    ``smatch_enroll_*`` measure the *work*, so a seeded batch must report
    identical totals whether it ran serially, on GIL threads, or fanned
    out to worker processes; only ``smatch_obs_worker_spans_total`` (the
    collection mechanism) legitimately differs, and gauges like cache
    ``entries`` may (one big serial cache vs per-worker caches merged by
    max).  Worker spans splice into the parent trace under the submitting
    span, tagged with the worker's identity.
    """

    _WORK_PREFIXES = ("smatch_parallel_", "smatch_ope_cache_", "smatch_enroll_")
    #: transport-mechanism counters: like smatch_obs_worker_spans_total,
    #: the shared-memory arena tallies measure how results *moved*, not the
    #: work itself, so they legitimately exist only on the process backend
    _MECHANISM_PREFIXES = ("smatch_parallel_shm_",)

    @classmethod
    def _work_counters(cls, counters):
        return {
            name: value
            for name, value in counters.items()
            if name.startswith(cls._WORK_PREFIXES)
            and not name.startswith(cls._MECHANISM_PREFIXES)
        }

    @pytest.fixture(scope="class")
    def serial_telemetry(self, distinct_profiles):
        return _traced_enroll(SerialBackend(), distinct_profiles)

    @pytest.mark.parametrize("kind", ["thread", "process"])
    def test_counters_match_serial(
        self, kind, serial_telemetry, distinct_profiles
    ):
        if kind == "thread":
            backend = ThreadBackend(4)
        else:
            backend = ProcessBackend(4, mp_context="fork")
        with backend:
            uploads, counters, _, root_ops = _traced_enroll(
                backend, distinct_profiles
            )
        s_uploads, s_counters, _, s_root_ops = serial_telemetry
        assert uploads == s_uploads
        assert self._work_counters(counters) == self._work_counters(s_counters)
        # the cache genuinely ran: equality of zeros would prove nothing
        assert counters["smatch_ope_cache_hits_total"] > 0
        assert counters["smatch_parallel_chunks_total"] == 3
        assert counters["smatch_parallel_tasks_total"] == 9
        # ops folded through spliced worker spans reach the root intact
        assert root_ops == s_root_ops

    def test_process_worker_spans_spliced_and_tagged(self, distinct_profiles):
        with ProcessBackend(4, mp_context="fork") as backend:
            _, counters, records, _ = _traced_enroll(
                backend, distinct_profiles
            )
        chunk_spans = [r for r in records if r["name"] == "parallel.chunk"]
        assert len(chunk_spans) == 3  # one per chunk
        map_ids = {r["id"] for r in records if r["name"] == "parallel.map"}
        for record in chunk_spans:
            assert record["parent"] in map_ids
            assert record["attrs"]["worker"].startswith("pid-")
            assert record["attrs"]["label"] == "scheme.enroll_population"
        # every spliced span (chunk roots plus the worker-side subtrees
        # under them) is counted by the collection-mechanism metric
        parents = {r["id"]: r.get("parent") for r in records}
        chunk_ids = {r["id"] for r in chunk_spans}

        def in_worker_subtree(span_id):
            while span_id is not None:
                if span_id in chunk_ids:
                    return True
                span_id = parents.get(span_id)
            return False

        spliced = sum(1 for r in records if in_worker_subtree(r["id"]))
        assert counters["smatch_obs_worker_spans_total"] == spliced >= 3

    def test_thread_worker_spans_not_lost(self, distinct_profiles):
        # regression guard: thread workers run off the submitting thread,
        # so without capture+splice their spans silently vanished
        with ThreadBackend(4) as backend:
            _, counters, records, _ = _traced_enroll(
                backend, distinct_profiles
            )
        chunk_spans = [r for r in records if r["name"] == "parallel.chunk"]
        assert len(chunk_spans) == 3
        for record in chunk_spans:
            assert record["attrs"]["worker"]  # thread name
        assert counters["smatch_obs_worker_spans_total"] >= 3
        # per-chunk enroll work nests under the spliced chunk spans
        chunk_ids = {r["id"] for r in chunk_spans}
        assert any(r["parent"] in chunk_ids for r in records)

    def test_serial_has_no_worker_span_accounting(self, serial_telemetry):
        _, counters, records, _ = serial_telemetry
        assert "smatch_obs_worker_spans_total" not in counters
        assert all("worker" not in r["attrs"] for r in records)

    def test_envelope_obs_false_disables_capture(self, distinct_profiles):
        from repro.obs.trace import tracing

        chunks = partition_chunks(list(range(6)), chunk_size=2)
        envelope = TaskEnvelope(
            fn=lambda _, chunk: [x * x for x in chunk],
            context=None,
            label="square",
            obs=False,
        )
        with ThreadBackend(2) as backend, tracing("off") as tracer:
            results = backend.map_chunks(envelope, chunks)
        assert [x for chunk in results for x in chunk] == [
            x * x for x in range(6)
        ]
        names = {s.name for s in tracer.root.walk()}
        assert "parallel.chunk" not in names

    def test_envelope_obs_true_forces_capture(self, distinct_profiles):
        from repro.obs.trace import tracing

        chunks = partition_chunks(list(range(4)), chunk_size=2)
        envelope = TaskEnvelope(
            fn=lambda _, chunk: list(chunk),
            context=None,
            label="identity",
            obs=True,
        )
        with ThreadBackend(2) as backend, tracing("on") as tracer:
            backend.map_chunks(envelope, chunks)
        names = [s.name for s in tracer.root.walk()]
        assert names.count("parallel.chunk") == 2
