"""Moderate-scale integration: hundreds of users, full pipeline.

The paper pitches S-MATCH as "a privacy-preserving profile matching scheme
in large scale mobile social networks"; these tests exercise the system at
a few hundred users (bounded so the suite stays fast) and check that the
structural properties — grouping, matching, verification, server-side
asymptotics — hold beyond toy sizes.
"""

import time

import pytest

from repro.datasets import WEIBO, ClusteredPopulation
from repro.experiments.common import build_scheme
from repro.net.messages import QueryRequest, UploadMessage
from repro.server.service import SMatchServer
from repro.utils.rand import SystemRandomSource

NUM_USERS = 300


@pytest.fixture(scope="module")
def big_world():
    rng = SystemRandomSource(seed=888)
    pop = ClusteredPopulation(WEIBO, theta=8, rng=rng)
    users = pop.generate(NUM_USERS)
    scheme = build_scheme(WEIBO, schema=pop.schema, seed=888)
    server = SMatchServer(query_k=5)
    keys = {}
    for user in users:
        payload, key = scheme.enroll(user.profile)
        keys[user.profile.user_id] = key
        server.handle_upload(UploadMessage(payload=payload))
    return pop, users, scheme, server, keys


class TestScale:
    def test_everyone_enrolled(self, big_world):
        _, users, _, server, _ = big_world
        assert len(server.store) == NUM_USERS

    def test_group_structure(self, big_world):
        _, _, _, server, _ = big_world
        sizes = server.store.group_sizes()
        assert sum(sizes) == NUM_USERS
        # clusters are capped at 6 in generation; merged groups stay small
        assert sizes[0] <= 30

    def test_queries_at_scale(self, big_world):
        _, users, scheme, server, keys = big_world
        sampled = users[:: max(1, NUM_USERS // 40)]
        verified_total = 0
        for user in sampled:
            uid = user.profile.user_id
            result = server.handle_query(
                QueryRequest(query_id=uid, timestamp=0, user_id=uid)
            )
            for entry in result.entries:
                if scheme.verify(entry.auth, keys[uid]):
                    verified_total += 1
        assert verified_total > 0

    def test_warm_queries_fast(self, big_world):
        """Cached group orders make repeat queries cheap (O(log V))."""
        _, users, _, server, _ = big_world
        uid = users[0].profile.user_id
        request = QueryRequest(query_id=1, timestamp=0, user_id=uid)
        server.handle_query(request)  # warm the cache
        start = time.perf_counter()
        for _ in range(50):
            server.handle_query(request)
        per_query_ms = (time.perf_counter() - start) / 50 * 1e3
        assert per_query_ms < 5.0

    def test_collusion_advantage_small_at_scale(self, big_world):
        from repro.attacks.games import PrKkGame

        _, users, _, server, keys = big_world
        uploads = server.store.all_profiles()
        game = PrKkGame(uploads, keys)
        uid = users[0].profile.user_id
        assert game.play(uid).advantage <= 0.1  # m << N (Theorem 2 regime)
