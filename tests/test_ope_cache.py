"""Tests for the OPE node cache: LRU mechanics and bit-exact equivalence.

The load-bearing property is the correctness contract of
:mod:`repro.crypto.ope_cache`: an :class:`OPE` instance backed by a cache —
cold, warm, shared, or capacity-starved — produces exactly the ciphertexts
of an uncached instance under the same key, in both split modes.
"""

import math
import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.crypto.ope import (
    OPE,
    OpeParams,
    _hypergeometric_logpmf,
    _hypergeometric_ppf,
)
from repro.crypto.ope_cache import OpeNodeCache
from repro.errors import ParameterError
from repro.obs.metrics import disable_metrics, enable_metrics

KEY = b"ope-cache-test-key-32-bytes....."


def _keys(seed):
    return random.Random(seed).randbytes(32)


class TestCacheMechanics:
    def test_negative_capacity_rejected(self):
        with pytest.raises(ParameterError):
            OpeNodeCache(capacity=-1)

    def test_zero_capacity_always_misses(self):
        cache = OpeNodeCache(capacity=0)
        token = (b"ns", 0, 0, 7, 0, 100)
        cache.put(token, 42)
        assert cache.get(token) is None
        assert len(cache) == 0
        hits, misses, evictions = cache.stats()
        assert (hits, misses, evictions) == (0, 1, 0)

    def test_hit_miss_tallies(self):
        cache = OpeNodeCache(capacity=4)
        token = (b"ns", 0, 0, 7, 0, 100)
        assert cache.get(token) is None
        cache.put(token, 42)
        assert cache.get(token) == 42
        hits, misses, _ = cache.stats()
        assert (hits, misses) == (1, 1)

    def test_lru_eviction_order(self):
        cache = OpeNodeCache(capacity=2)
        t1, t2, t3 = ((b"ns", 0, i, i, 0, 9) for i in range(3))
        cache.put(t1, 1)
        cache.put(t2, 2)
        cache.get(t1)  # t1 becomes most-recent; t2 is now the LRU entry
        cache.put(t3, 3)
        assert cache.get(t2) is None
        assert cache.get(t1) == 1
        assert cache.get(t3) == 3
        assert cache.stats()[2] == 1  # one eviction

    def test_clear_keeps_lifetime_tallies(self):
        cache = OpeNodeCache(capacity=4)
        token = (b"ns", 1, 5, 0, 0, 9)
        cache.put(token, 7)
        cache.get(token)
        cache.clear()
        assert len(cache) == 0
        assert cache.get(token) is None
        hits, misses, _ = cache.stats()
        assert (hits, misses) == (1, 1)

    def test_flush_metrics_exports_counters(self):
        registry = enable_metrics()
        try:
            cache = OpeNodeCache(capacity=2)
            token = (b"ns", 0, 0, 1, 0, 3)
            cache.get(token)
            cache.put(token, 9)
            cache.get(token)
            cache.flush_metrics()
            snapshot = registry.snapshot()
            assert snapshot["counters"]["smatch_ope_cache_hits_total"] == 1
            assert snapshot["counters"]["smatch_ope_cache_misses_total"] == 1
            assert snapshot["gauges"]["smatch_ope_cache_entries"] == 1
        finally:
            disable_metrics()


class TestCachedEqualsUncached:
    """Bit-for-bit equivalence of cached and uncached descent, both modes."""

    @given(st.integers(min_value=0, max_value=2**32))
    @settings(max_examples=20, deadline=None)
    def test_uniform_mode(self, seed):
        rnd = random.Random(seed)
        key = _keys(seed)
        params = OpeParams(plaintext_bits=32, expansion_bits=16)
        plain = OPE(key, params)
        cached = OPE(key, params, cache=OpeNodeCache())
        values = [rnd.randrange(params.domain_size) for _ in range(12)]
        values += values[:4]  # revisits exercise the warm hit path
        assert [cached.encrypt(v) for v in values] == [
            plain.encrypt(v) for v in values
        ]

    @given(st.integers(min_value=0, max_value=2**32))
    @settings(max_examples=10, deadline=None)
    def test_hypergeometric_mode(self, seed):
        rnd = random.Random(seed)
        key = _keys(seed)
        params = OpeParams(
            plaintext_bits=10, expansion_bits=4, split="hypergeometric"
        )
        plain = OPE(key, params)
        cached = OPE(key, params, cache=OpeNodeCache())
        values = [rnd.randrange(params.domain_size) for _ in range(8)]
        values += values[:3]
        assert [cached.encrypt(v) for v in values] == [
            plain.encrypt(v) for v in values
        ]

    def test_shared_cache_never_crosses_keys(self):
        shared = OpeNodeCache()
        params = OpeParams(plaintext_bits=16, expansion_bits=8)
        key_a, key_b = _keys(1), _keys(2)
        a_shared = OPE(key_a, params, cache=shared)
        b_shared = OPE(key_b, params, cache=shared)
        a_plain = OPE(key_a, params)
        b_plain = OPE(key_b, params)
        for value in range(0, 2**16, 2**11):
            assert a_shared.encrypt(value) == a_plain.encrypt(value)
            assert b_shared.encrypt(value) == b_plain.encrypt(value)

    def test_capacity_starved_cache_still_exact(self):
        params = OpeParams(plaintext_bits=24, expansion_bits=8)
        key = _keys(3)
        plain = OPE(key, params)
        tiny = OPE(key, params, cache=OpeNodeCache(capacity=4))
        rnd = random.Random(3)
        for _ in range(40):
            value = rnd.randrange(params.domain_size)
            assert tiny.encrypt(value) == plain.encrypt(value)

    def test_decrypt_round_trip_through_cache(self):
        params = OpeParams(plaintext_bits=16, expansion_bits=8)
        ope = OPE(_keys(4), params, cache=OpeNodeCache())
        for value in (0, 1, 2**15, 2**16 - 1):
            assert ope.decrypt(ope.encrypt(value)) == value


def _cdf_reference(k, total, good, draws):
    """CDF up to ``k`` by direct log-gamma PMF summation."""
    lo = max(0, draws - (total - good))
    return sum(
        math.exp(_hypergeometric_logpmf(j, total, good, draws))
        for j in range(lo, k + 1)
    )


class TestHypergeometricRecurrence:
    """The ratio-recurrence PPF still inverts the log-gamma CDF.

    The recurrence and a per-step log-gamma walk differ by float ULPs, so
    when ``u`` lands within rounding distance of a CDF jump the two walks
    may legitimately stop one step apart; the robust statement is the
    quantile bracket ``CDF(k-1) < u <= CDF(k)`` up to accumulated rounding.
    """

    EPS = 1e-9

    @given(
        st.integers(min_value=2, max_value=4000),
        st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
        st.integers(min_value=0, max_value=2**32),
    )
    @settings(max_examples=60, deadline=None)
    def test_recurrence_inverts_lgamma_cdf(self, total, u, seed):
        rnd = random.Random(seed)
        good = rnd.randint(1, total - 1)
        draws = rnd.randint(1, total - 1)
        lo = max(0, draws - (total - good))
        hi = min(draws, good)
        k = _hypergeometric_ppf(u, total, good, draws)
        assert lo <= k <= hi
        assert _cdf_reference(k, total, good, draws) + self.EPS >= u
        if k > lo:
            assert _cdf_reference(k - 1, total, good, draws) < u + self.EPS

    def test_support_endpoints(self):
        # u = 0 maps to the lower support end
        assert _hypergeometric_ppf(0.0, 100, 30, 40) == 0
        # draws exceed the bad pool: the lower support end is positive
        assert _hypergeometric_ppf(0.0, 10, 8, 9) == 7
        # u = 1 lands where the accumulated mass reaches 1.0 in floats,
        # which is within the support by construction
        assert _hypergeometric_ppf(1.0, 100, 30, 40) <= 30
