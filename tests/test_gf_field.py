"""Tests for GF(2^m) arithmetic, including hypothesis-checked field axioms."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import ParameterError
from repro.gf.field import GF1024, GF2m

GF16 = GF2m.get(4)
GF256 = GF2m.get(8)

elems16 = st.integers(min_value=0, max_value=15)
nonzero16 = st.integers(min_value=1, max_value=15)


class TestConstruction:
    def test_cache_returns_same_instance(self):
        assert GF2m.get(4) is GF2m.get(4)

    def test_paper_field(self):
        assert GF1024.m == 10
        assert GF1024.size == 1024
        assert GF1024.order == 1023

    def test_unsupported_size(self):
        with pytest.raises(ParameterError):
            GF2m(1)
        with pytest.raises(ParameterError):
            GF2m(17)

    def test_element_validation(self):
        with pytest.raises(ParameterError):
            GF16.mul(16, 1)
        with pytest.raises(ParameterError):
            GF16.add(-1, 0)


class TestAxioms:
    @given(elems16, elems16, elems16)
    def test_add_associative_commutative(self, a, b, c):
        assert GF16.add(a, b) == GF16.add(b, a)
        assert GF16.add(GF16.add(a, b), c) == GF16.add(a, GF16.add(b, c))

    @given(elems16)
    def test_add_self_inverse(self, a):
        assert GF16.add(a, a) == 0

    @given(elems16, elems16, elems16)
    def test_mul_associative_commutative(self, a, b, c):
        assert GF16.mul(a, b) == GF16.mul(b, a)
        assert GF16.mul(GF16.mul(a, b), c) == GF16.mul(a, GF16.mul(b, c))

    @given(elems16, elems16, elems16)
    def test_distributive(self, a, b, c):
        assert GF16.mul(a, GF16.add(b, c)) == GF16.add(
            GF16.mul(a, b), GF16.mul(a, c)
        )

    @given(elems16)
    def test_identities(self, a):
        assert GF16.add(a, 0) == a
        assert GF16.mul(a, 1) == a
        assert GF16.mul(a, 0) == 0

    @given(nonzero16)
    def test_inverse(self, a):
        assert GF16.mul(a, GF16.inv(a)) == 1

    @given(nonzero16, nonzero16)
    def test_div_is_mul_inv(self, a, b):
        assert GF16.div(a, b) == GF16.mul(a, GF16.inv(b))


class TestPowers:
    def test_alpha_generates_group(self):
        seen = {GF256.alpha_pow(i) for i in range(GF256.order)}
        assert seen == set(range(1, 256))

    def test_log_inverts_alpha_pow(self):
        for e in (0, 1, 100, 254):
            assert GF256.log_alpha(GF256.alpha_pow(e)) == e % GF256.order

    def test_pow_matches_repeated_mul(self):
        x = 7
        acc = 1
        for e in range(10):
            assert GF16.pow(x, e) == acc
            acc = GF16.mul(acc, x)

    def test_pow_zero_cases(self):
        assert GF16.pow(0, 0) == 1
        assert GF16.pow(0, 5) == 0
        with pytest.raises(ZeroDivisionError):
            GF16.pow(0, -1)

    def test_zero_division(self):
        with pytest.raises(ZeroDivisionError):
            GF16.inv(0)
        with pytest.raises(ZeroDivisionError):
            GF16.div(3, 0)
        with pytest.raises(ZeroDivisionError):
            GF16.log_alpha(0)
