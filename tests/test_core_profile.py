"""Tests for profiles, schemas, and the Definition-3 distance."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.profile import (
    AttributeSpec,
    Profile,
    ProfileSchema,
    profile_distance,
)
from repro.errors import ParameterError

SCHEMA = ProfileSchema.uniform(["a", "b", "c"], 100)


class TestAttributeSpec:
    def test_valid(self):
        spec = AttributeSpec("age", 120)
        assert spec.check_value(0) == 0
        assert spec.check_value(119) == 119

    def test_out_of_range(self):
        spec = AttributeSpec("age", 120)
        with pytest.raises(ParameterError):
            spec.check_value(120)
        with pytest.raises(ParameterError):
            spec.check_value(-1)

    def test_invalid_construction(self):
        with pytest.raises(ParameterError):
            AttributeSpec("", 10)
        with pytest.raises(ParameterError):
            AttributeSpec("x", 0)


class TestSchema:
    def test_uniform(self):
        assert len(SCHEMA) == 3
        assert SCHEMA.names == ["a", "b", "c"]

    def test_of(self):
        s = ProfileSchema.of(AttributeSpec("x", 2), AttributeSpec("y", 3))
        assert s.index_of("y") == 1

    def test_duplicate_names_rejected(self):
        with pytest.raises(ParameterError):
            ProfileSchema.uniform(["a", "a"], 5)

    def test_empty_rejected(self):
        with pytest.raises(ParameterError):
            ProfileSchema(attributes=())

    def test_unknown_name(self):
        with pytest.raises(ParameterError):
            SCHEMA.index_of("zzz")

    def test_check_values(self):
        assert SCHEMA.check_values([1, 2, 3]) == (1, 2, 3)
        with pytest.raises(ParameterError):
            SCHEMA.check_values([1, 2])
        with pytest.raises(ParameterError):
            SCHEMA.check_values([1, 2, 100])


class TestProfile:
    def test_construction(self):
        p = Profile(7, SCHEMA, (1, 2, 3))
        assert p.user_id == 7
        assert p.value_of("b") == 2
        assert p.as_dict() == {"a": 1, "b": 2, "c": 3}

    def test_with_values(self):
        p = Profile(7, SCHEMA, (1, 2, 3)).with_values((4, 5, 6))
        assert p.values == (4, 5, 6)
        assert p.user_id == 7

    def test_invalid_user_id(self):
        with pytest.raises(ParameterError):
            Profile(0, SCHEMA, (1, 2, 3))

    def test_invalid_values(self):
        with pytest.raises(ParameterError):
            Profile(1, SCHEMA, (1, 2))


class TestDistance:
    def test_is_max_norm(self):
        a = Profile(1, SCHEMA, (10, 20, 30))
        b = Profile(2, SCHEMA, (12, 27, 30))
        assert profile_distance(a, b) == 7

    def test_zero_for_identical_values(self):
        a = Profile(1, SCHEMA, (5, 5, 5))
        b = Profile(2, SCHEMA, (5, 5, 5))
        assert profile_distance(a, b) == 0

    def test_symmetry(self):
        a = Profile(1, SCHEMA, (1, 50, 99))
        b = Profile(2, SCHEMA, (9, 40, 0))
        assert profile_distance(a, b) == profile_distance(b, a)

    @given(
        st.lists(st.integers(min_value=0, max_value=99), min_size=3, max_size=3),
        st.lists(st.integers(min_value=0, max_value=99), min_size=3, max_size=3),
        st.lists(st.integers(min_value=0, max_value=99), min_size=3, max_size=3),
    )
    @settings(max_examples=40)
    def test_triangle_inequality(self, va, vb, vc):
        a, b, c = (
            Profile(1, SCHEMA, tuple(va)),
            Profile(2, SCHEMA, tuple(vb)),
            Profile(3, SCHEMA, tuple(vc)),
        )
        assert profile_distance(a, c) <= profile_distance(a, b) + profile_distance(b, c)

    def test_schema_mismatch(self):
        other = ProfileSchema.uniform(["a", "b"], 100)
        with pytest.raises(ParameterError):
            profile_distance(
                Profile(1, SCHEMA, (1, 2, 3)), Profile(2, other, (1, 2))
            )
