"""Tests for dataset-spec JSON serialization."""

import json

import pytest

from repro.datasets import INFOCOM06, SIGCOMM09, WEIBO, analyze_spec
from repro.datasets.io import load_spec, save_spec, spec_from_dict, spec_to_dict
from repro.errors import DatasetError


class TestRoundtrip:
    @pytest.mark.parametrize("spec", [INFOCOM06, SIGCOMM09, WEIBO])
    def test_dict_roundtrip_preserves_statistics(self, spec):
        restored = spec_from_dict(spec_to_dict(spec))
        assert restored.name == spec.name
        assert restored.num_nodes == spec.num_nodes
        original = analyze_spec(spec)
        rebuilt = analyze_spec(restored)
        assert rebuilt.entropy_avg == pytest.approx(original.entropy_avg)
        assert rebuilt.landmarks_06 == original.landmarks_06

    def test_file_roundtrip(self, tmp_path):
        path = tmp_path / "infocom.json"
        save_spec(INFOCOM06, path)
        restored = load_spec(path)
        assert restored.attributes == INFOCOM06.attributes

    def test_json_is_plain(self, tmp_path):
        path = tmp_path / "spec.json"
        save_spec(SIGCOMM09, path)
        data = json.loads(path.read_text())
        assert data["format"] == "smatch-dataset-spec"
        assert len(data["attributes"]) == 6


class TestValidation:
    def test_wrong_format_rejected(self):
        with pytest.raises(DatasetError):
            spec_from_dict({"format": "other", "version": 1})

    def test_wrong_version_rejected(self):
        data = spec_to_dict(INFOCOM06)
        data["version"] = 99
        with pytest.raises(DatasetError):
            spec_from_dict(data)

    def test_missing_field_rejected(self):
        data = spec_to_dict(INFOCOM06)
        del data["attributes"]
        with pytest.raises(DatasetError):
            spec_from_dict(data)

    def test_invalid_json_file(self, tmp_path):
        path = tmp_path / "broken.json"
        path.write_text("{not json")
        with pytest.raises(DatasetError):
            load_spec(path)

    def test_custom_spec_usable(self):
        """A user-authored spec drives the whole pipeline."""
        data = {
            "format": "smatch-dataset-spec",
            "version": 1,
            "name": "Custom",
            "num_nodes": 50,
            "attributes": [
                {
                    "name": "a",
                    "family": "zipf",
                    "cardinality": 16,
                    "target_entropy": 3.0,
                    "landmark_window": None,
                },
                {
                    "name": "b",
                    "family": "dominant",
                    "cardinality": 4,
                    "target_entropy": 1.0,
                    "landmark_window": [0.8, 1.0],
                },
                {
                    "name": "c",
                    "family": "uniform",
                    "cardinality": 8,
                    "target_entropy": 3.0,
                    "landmark_window": None,
                },
            ],
            "paper": {
                "entropy_avg": 2.33,
                "entropy_max": 3.0,
                "entropy_min": 1.0,
                "landmarks_06": 1,
                "landmarks_08": 0,
            },
        }
        spec = spec_from_dict(data)
        from repro.datasets.synthetic import ClusteredPopulation
        from repro.utils.rand import SystemRandomSource

        pop = ClusteredPopulation(
            spec, theta=8, rng=SystemRandomSource(seed=31)
        )
        users = pop.generate(10)
        assert len(users) == 10
