"""Structural (statistics-free) response-shape tests for the key service.

A timing-oracle test based on measured durations would be flaky by
construction; these tests instead pin the *structure* that makes the
observable behavior uniform:

* every success path out of ``KeyGenService.handle_message`` is a wire
  message built by a message constructor — never ad-hoc bytes whose shape
  could vary per branch;
* every error path raises a typed ``ProtocolError`` (one uniform failure
  surface), never a hand-rolled response;
* all OPRF wire messages serialize through the same ``FieldWriter``
  routine, starting with the message tag, so success responses are
  shape-identical up to field contents;
* the batched path validates the whole batch *before* the first modexp —
  the regression guard for the mid-batch rejection timing leak.
"""

from __future__ import annotations

import ast
import inspect
import textwrap

import pytest

from repro.net import oprf_messages
from repro.server import keyservice


def _parse(module) -> ast.Module:
    return ast.parse(textwrap.dedent(inspect.getsource(module)))


def _method(tree: ast.Module, cls: str, name: str) -> ast.FunctionDef:
    for node in ast.walk(tree):
        if isinstance(node, ast.ClassDef) and node.name == cls:
            for item in node.body:
                if isinstance(item, ast.FunctionDef) and item.name == name:
                    return item
    raise AssertionError(f"{cls}.{name} not found")


def _call_name(node: ast.expr) -> str:
    if isinstance(node, ast.Call):
        func = node.func
        if isinstance(func, ast.Name):
            return func.id
        if isinstance(func, ast.Attribute):
            return func.attr
    return ""


@pytest.fixture(scope="module")
def handle_message() -> ast.FunctionDef:
    return _method(_parse(keyservice), "KeyGenService", "handle_message")


class TestHandlerResponseShape:
    def test_every_success_return_is_a_wire_message(self, handle_message):
        returns = [
            node
            for node in ast.walk(handle_message)
            if isinstance(node, ast.Return) and node.value is not None
        ]
        assert len(returns) >= 3  # key info, single eval, batched eval
        for node in returns:
            name = _call_name(node.value)
            assert name.endswith(("Response", "Info")), (
                f"line {node.lineno}: handler returns {ast.dump(node.value)[:80]}"
                " instead of a wire-message constructor"
            )

    def test_every_error_path_raises_protocol_error(self, handle_message):
        raises = [
            node for node in ast.walk(handle_message) if isinstance(node, ast.Raise)
        ]
        assert raises, "handler must reject unknown/invalid messages"
        for node in raises:
            assert _call_name(node.exc) == "ProtocolError", (
                f"line {node.lineno}: error path must raise the uniform "
                "ProtocolError, not build a bespoke response"
            )

    def test_single_and_batch_paths_build_same_response_family(self):
        # both evaluation responses carry the same field set and therefore
        # flow through the same encoder shape
        single = oprf_messages.OprfResponse.__dataclass_fields__
        batched = oprf_messages.BatchedBlindEvalResponse.__dataclass_fields__
        assert set(single) == {"request_id", "evaluated"}
        assert set(batched) == {"request_id", "evaluated"}


class TestEncoderUniformity:
    def test_all_oprf_messages_share_the_fieldwriter_routine(self):
        tree = _parse(oprf_messages)
        encoders = [
            (cls.name, item)
            for cls in ast.walk(tree)
            if isinstance(cls, ast.ClassDef)
            for item in cls.body
            if isinstance(item, ast.FunctionDef) and item.name == "encode"
        ]
        assert len(encoders) >= 6
        for cls_name, encode in encoders:
            calls = [_call_name(n) for n in ast.walk(encode) if isinstance(n, ast.Call)]
            assert "FieldWriter" in calls, f"{cls_name}.encode bypasses FieldWriter"
            # the first serialized field is the message tag, uniformly
            writes = [
                n
                for n in ast.walk(encode)
                if isinstance(n, ast.Call) and _call_name(n).startswith("write_")
            ]
            first = min(writes, key=lambda n: (n.lineno, n.col_offset))
            assert _call_name(first) == "write_int"
            assert isinstance(first.args[0], ast.Attribute)
            assert first.args[0].attr == "TAG", (
                f"{cls_name}.encode must write the tag first"
            )


class TestBatchTimingGuard:
    def test_batch_range_check_precedes_first_evaluation(self, handle_message):
        source_lines = {
            "range_check": None,
            "evaluation": None,
        }
        for node in ast.walk(handle_message):
            if isinstance(node, ast.Call):
                name = _call_name(node)
                if name == "any" and source_lines["range_check"] is None:
                    source_lines["range_check"] = node.lineno
                if name == "evaluate_blinded":
                    line = node.lineno
                    if (
                        source_lines["evaluation"] is None
                        or line > source_lines["evaluation"]
                    ):
                        source_lines["evaluation"] = line
        assert source_lines["range_check"] is not None, (
            "batched path must pre-validate blinded values in range — "
            "rejecting mid-batch leaks the index of the first bad element"
        )
        assert source_lines["range_check"] < source_lines["evaluation"]

    def test_batch_rejection_consumes_no_evaluations(self):
        from repro.crypto.oprf import RsaOprfServer
        from repro.errors import ProtocolError
        from repro.net.oprf_messages import BatchedBlindEvalRequest

        service = keyservice.KeyGenService(
            oprf_server=RsaOprfServer(bits=512), max_requests_per_window=10
        )
        bad = BatchedBlindEvalRequest(
            request_id=7,
            blinded=(1, 2, service.oprf.public_key.n),  # last one out of range
        )
        with pytest.raises(ProtocolError):
            service.handle_message("client", bad)
        assert service.evaluations_served == 0
