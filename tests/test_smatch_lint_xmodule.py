"""Whole-program smatch-lint: cross-module flows, SML010/011, the cache.

The per-rule unit tests in ``test_smatch_lint.py`` exercise single source
snippets through :func:`lint_source`.  Everything here needs the program
view: fixture mini-packages written to disk, linted through
:func:`lint_paths` so imports resolve and summaries flow across module
boundaries.
"""

from __future__ import annotations

import json
import textwrap
from pathlib import Path

import pytest

from tools.smatch_lint import cache as lint_cache
from tools.smatch_lint.engine import lint_paths, lint_source
from tools.smatch_lint.modgraph import Program, module_identity


def write_package(root: Path, files: dict) -> Path:
    """Materialize a mini-package: ``files`` maps repo-relative paths to
    source; every package directory gets an ``__init__.py`` so module
    identity resolves the way it does in the real tree."""
    for rel, source in files.items():
        target = root / rel
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(textwrap.dedent(source), encoding="utf-8")
        package_dir = target.parent
        while package_dir != root and package_dir.name != "src":
            init = package_dir / "__init__.py"
            if not init.exists():
                init.write_text("", encoding="utf-8")
            package_dir = package_dir.parent
    return root / "src"


def codes(violations) -> list:
    return [v.code for v in violations]


def by_path(violations, fragment: str) -> list:
    return [v for v in violations if fragment in v.path]


# ---------------------------------------------------------------------------
# cross-module taint summaries (the tentpole acceptance fixtures)
# ---------------------------------------------------------------------------


class TestCrossModuleFlows:
    def test_secret_through_imported_helper_fires_sml007(self, tmp_path):
        # the acceptance fixture: secret -> imported helper -> branch
        src = write_package(
            tmp_path,
            {
                "src/repro/server/helpers.py": """
                    def passthrough(value, other):
                        mixed = value
                        return mixed
                """,
                "src/repro/server/handler.py": """
                    from repro.server.helpers import passthrough


                    def handle(profile_key, public_len):
                        if passthrough(profile_key, public_len):
                            return b"y"
                        return b"n"
                """,
            },
        )
        violations, _ = lint_paths([src])
        hits = by_path(violations, "handler.py")
        assert codes(hits) == ["SML007"], "\n".join(v.render() for v in violations)
        assert "profile_key" in hits[0].message

    def test_constant_time_twin_is_clean(self, tmp_path):
        # identical shape, but the helper launders through constant_time_eq:
        # the callee summary proves the return is public, so no finding —
        # strictly more precise than the old conservative unknown-call union
        src = write_package(
            tmp_path,
            {
                "src/repro/server/helpers.py": """
                    from repro.utils.ct import constant_time_eq


                    def verify(value, expected):
                        return constant_time_eq(value, expected)
                """,
                "src/repro/server/handler.py": """
                    from repro.server.helpers import verify


                    def handle(profile_key, expected):
                        if verify(profile_key, expected):
                            return b"y"
                        return b"n"
                """,
            },
        )
        violations, _ = lint_paths([src])
        assert violations == [], "\n".join(v.render() for v in violations)

    def test_from_import_alias_resolves(self, tmp_path):
        src = write_package(
            tmp_path,
            {
                "src/repro/server/helpers.py": """
                    def passthrough(value):
                        return value
                """,
                "src/repro/server/handler.py": """
                    from repro.server.helpers import passthrough as fwd


                    def handle(session_key):
                        if fwd(session_key):
                            return b"y"
                        return b"n"
                """,
            },
        )
        violations, _ = lint_paths([src])
        assert codes(by_path(violations, "handler.py")) == ["SML007"]

    def test_reexport_through_package_init(self, tmp_path):
        src = write_package(
            tmp_path,
            {
                "src/repro/server/helpers.py": """
                    def passthrough(value):
                        return value
                """,
                "src/repro/server/handler.py": """
                    from repro.server import passthrough


                    def handle(session_key):
                        if passthrough(session_key):
                            return b"y"
                        return b"n"
                """,
            },
        )
        (src / "repro" / "server" / "__init__.py").write_text(
            "from repro.server.helpers import passthrough\n", encoding="utf-8"
        )
        violations, _ = lint_paths([src])
        assert codes(by_path(violations, "handler.py")) == ["SML007"]

    def test_module_attribute_call_resolves(self, tmp_path):
        src = write_package(
            tmp_path,
            {
                "src/repro/server/helpers.py": """
                    def passthrough(value):
                        return value
                """,
                "src/repro/server/handler.py": """
                    from repro.server import helpers


                    def handle(session_key):
                        if helpers.passthrough(session_key):
                            return b"y"
                        return b"n"
                """,
            },
        )
        violations, _ = lint_paths([src])
        assert codes(by_path(violations, "handler.py")) == ["SML007"]

    def test_method_on_imported_class(self, tmp_path):
        src = write_package(
            tmp_path,
            {
                "src/repro/server/helpers.py": """
                    class Checker:
                        def probe(self, value):
                            return value
                """,
                "src/repro/server/handler.py": """
                    from repro.server.helpers import Checker


                    def handle(session_key):
                        checker = Checker()
                        if checker.probe(session_key):
                            return b"y"
                        return b"n"
                """,
            },
        )
        violations, _ = lint_paths([src])
        assert codes(by_path(violations, "handler.py")) == ["SML007"]

    def test_imported_returns_secret_taints_caller(self, tmp_path):
        # the callee mints the secret (registered API); the caller never
        # names anything secret — only the summary can catch this
        src = write_package(
            tmp_path,
            {
                "src/repro/server/helpers.py": """
                    def fresh_material(context):
                        return hkdf(context, b"info")
                """,
                "src/repro/server/handler.py": """
                    from repro.server.helpers import fresh_material


                    def handle(context):
                        material = fresh_material(context)
                        if material:
                            return b"y"
                        return b"n"
                """,
            },
        )
        violations, _ = lint_paths([src])
        hits = by_path(violations, "handler.py")
        assert codes(hits) == ["SML007"]
        assert "fresh_material" in hits[0].message

    def test_secret_annotation_crosses_modules(self, tmp_path):
        # '# smatch-lint: secret' in the callee makes the caller's branch
        # a finding: annotations feed the exported summary too
        src = write_package(
            tmp_path,
            {
                "src/repro/server/helpers.py": """
                    def load_material(store):
                        material = store.fetch()  # smatch-lint: secret
                        return material
                """,
                "src/repro/server/handler.py": """
                    from repro.server.helpers import load_material


                    def handle(store):
                        if load_material(store):
                            return b"y"
                        return b"n"
                """,
            },
        )
        violations, _ = lint_paths([src])
        assert codes(by_path(violations, "handler.py")) == ["SML007"]

    def test_per_module_entry_point_stays_conservative(self):
        # lint_source has no program view: the imported call is unknown and
        # argument taint flows through — documented fallback behavior
        found = lint_source(
            textwrap.dedent(
                """
                from somewhere import helper


                def handle(session_key):
                    if helper(session_key):
                        return b"y"
                    return b"n"
                """
            ),
            "src/repro/server/handler.py",
        )
        assert codes(found) == ["SML007"]


# ---------------------------------------------------------------------------
# SML010: process-boundary serialization
# ---------------------------------------------------------------------------

PARALLEL_PATH = "src/repro/parallel/work.py"


def check(source: str, path: str = PARALLEL_PATH):
    return lint_source(textwrap.dedent(source), path)


class TestProcessBoundaryRule:
    def test_secret_task_context_fires(self):
        src = """
            def fan_out(backend, session_key, items):
                envelope = TaskEnvelope(fn=work, context=session_key, label="x")
                return backend.map_chunks(envelope, items)
        """
        found = check(src)
        assert codes(found) == ["SML010"]
        assert "process boundary" in found[0].message

    def test_pickle_dumps_of_secret_fires(self):
        src = """
            import pickle


            def snapshot(session_key):
                return pickle.dumps(session_key)
        """
        assert codes(check(src)) == ["SML010"]

    def test_pool_initargs_fires(self):
        src = """
            def start(pool_cls, mac_key):
                return pool_cls(initializer=setup, initargs=(mac_key,))
        """
        found = check(src)
        assert codes(found) == ["SML010"]
        assert "initargs" in found[0].message

    def test_getstate_returning_secret_fires(self):
        src = """
            class Spec:
                def __getstate__(self):
                    return {"k": self.session_key}
        """
        found = check(src)
        assert codes(found) == ["SML010"]
        assert "__getstate__" in found[0].message or "pickling" in found[0].message

    def test_arena_put_record_of_secret_fires(self):
        # the result arena is shared memory: writing a raw secret into a
        # slot publishes it to every process attached to the segment
        src = """
            def emit(arena, session_key):
                return arena.put_record(session_key)
        """
        found = check(src)
        assert codes(found) == ["SML010"]
        assert "process boundary" in found[0].message

    def test_arena_put_record_of_sealed_value_is_clean(self):
        src = """
            def emit(arena, session_key):
                sealed_payload = seal(session_key)
                return arena.put_record(sealed_payload)
        """
        assert check(src) == []

    def test_arena_put_record_of_blinded_output_is_clean(self):
        src = """
            def emit(arena, oprf, blinded_value):
                evaluated = oprf.evaluate_blinded(blinded_value)
                return arena.put_record(evaluated)
        """
        assert check(src) == []

    def test_sealed_context_is_clean(self):
        src = """
            def fan_out(backend, session_key, items):
                sealed_ctx = seal(session_key)
                envelope = TaskEnvelope(fn=work, context=sealed_ctx, label="x")
                return backend.map_chunks(envelope, items)
        """
        assert check(src) == []

    def test_blinded_oprf_output_is_clean(self):
        # evaluate_blinded output is wire_ok: masked by the client's
        # blinding factor, approved to cross process boundaries
        src = """
            import pickle


            def snapshot(oprf, blinded_value):
                evaluated = oprf.evaluate_blinded(blinded_value)
                return pickle.dumps(evaluated)
        """
        assert check(src) == []

    def test_suppressed(self):
        src = """
            import pickle


            def snapshot(session_key):
                return pickle.dumps(session_key)  # smatch-lint: disable=SML010
        """
        assert check(src) == []

    def test_out_of_scope_path_is_clean(self):
        src = """
            import pickle


            def snapshot(session_key):
                return pickle.dumps(session_key)
        """
        assert check(src, "src/repro/analysis/report.py") == []

    def test_timing_rules_still_see_blinded_values(self):
        # wire_ok lifts the boundary rules only: a blinded value steering
        # a branch is still a timing leak
        src = """
            def decide(oprf, blinded_value):
                evaluated = oprf.evaluate_blinded(blinded_value)
                if evaluated:
                    return b"y"
                return b"n"
        """
        assert codes(check(src, "src/repro/server/h.py")) == ["SML007"]


# ---------------------------------------------------------------------------
# SML011: parallel-task determinism
# ---------------------------------------------------------------------------


class TestParallelDeterminismRule:
    def test_set_iteration_fires(self):
        src = """
            def merge_chunk(items):
                out = []
                for item in set(items):
                    out.append(item)
                return out
        """
        found = check(src)
        assert codes(found) == ["SML011"]
        assert "unordered" in found[0].message

    def test_set_literal_comprehension_fires(self):
        src = """
            def merge_chunk(items):
                return [x for x in {1, 2, 3}]
        """
        assert codes(check(src)) == ["SML011"]

    def test_frozenset_for_loop_fires(self):
        src = """
            def merge_chunk(counts):
                for key in frozenset(counts):
                    pass
        """
        assert codes(check(src)) == ["SML011"]

    def test_wall_clock_fires(self):
        src = """
            import time


            def stamp_chunk(items):
                return [(time.monotonic_ns(), item) for item in items]
        """
        found = check(src)
        assert codes(found) == ["SML011"]
        assert "wall-clock" in found[0].message

    def test_unseeded_randomness_fires(self):
        src = """
            import os


            def jitter_chunk(items):
                return [(os.urandom(8), item) for item in items]
        """
        found = check(src)
        assert codes(found) == ["SML011"]
        assert "randomness" in found[0].message

    def test_unseeded_source_ctor_fires(self):
        src = """
            from repro.utils.rand import SystemRandomSource


            def enroll_chunk(specs):
                rng = SystemRandomSource()
                return [rng, specs]
        """
        found = check(src)
        assert codes(found) == ["SML011"]
        assert "seed" in found[0].message

    def test_sorted_iteration_is_clean(self):
        src = """
            def merge_chunk(items):
                out = []
                for item in sorted(set(items)):
                    out.append(item)
                return out
        """
        assert check(src) == []

    def test_seeded_source_is_clean(self):
        src = """
            from repro.utils.rand import SystemRandomSource


            def enroll_chunk(specs, seed):
                rng = SystemRandomSource(seed)
                return [rng, specs]
        """
        assert check(src) == []

    def test_non_task_function_is_clean(self):
        src = """
            def summarize(items):
                return sum(1 for _ in set(items))
        """
        assert check(src) == []

    def test_out_of_scope_path_is_clean(self):
        src = """
            def merge_chunk(items):
                return list(set(items))
        """
        assert check(src, "src/repro/analysis/agg.py") == []

    def test_suppressed(self):
        src = """
            def merge_chunk(items):
                return [x for x in set(items)]  # smatch-lint: disable=SML011
        """
        assert check(src) == []


# ---------------------------------------------------------------------------
# the incremental summary cache
# ---------------------------------------------------------------------------

LEAKY_HELPER = """
    def passthrough(value):
        return value
"""

SAFE_HELPER = """
    from repro.utils.ct import constant_time_eq


    def passthrough(value):
        return constant_time_eq(value, b"probe")
"""

HANDLER = """
    from repro.server.helpers import passthrough


    def handle(session_key):
        if passthrough(session_key):
            return b"y"
        return b"n"
"""


class TestSummaryCache:
    def test_warm_run_reproduces_results(self, tmp_path):
        src = write_package(
            tmp_path,
            {
                "src/repro/server/helpers.py": LEAKY_HELPER,
                "src/repro/server/handler.py": HANDLER,
            },
        )
        cache_dir = tmp_path / "cache"
        cold, checked_cold = lint_paths([src], cache_dir=cache_dir)
        warm, checked_warm = lint_paths([src], cache_dir=cache_dir)
        assert (cold, checked_cold) == (warm, checked_warm)
        assert codes(by_path(cold, "handler.py")) == ["SML007"]
        assert (cache_dir / "cache.json").is_file()

    def test_editing_a_dependency_invalidates_importers(self, tmp_path):
        # handler.py never changes; flipping its *dependency* between the
        # leaky and laundering helper must flip the handler finding —
        # transitive invalidation, not per-file caching
        src = write_package(
            tmp_path,
            {
                "src/repro/server/helpers.py": SAFE_HELPER,
                "src/repro/server/handler.py": HANDLER,
            },
        )
        cache_dir = tmp_path / "cache"
        clean, _ = lint_paths([src], cache_dir=cache_dir)
        assert clean == []
        (src / "repro" / "server" / "helpers.py").write_text(
            textwrap.dedent(LEAKY_HELPER), encoding="utf-8"
        )
        dirty, _ = lint_paths([src], cache_dir=cache_dir)
        assert codes(by_path(dirty, "handler.py")) == ["SML007"]
        (src / "repro" / "server" / "helpers.py").write_text(
            textwrap.dedent(SAFE_HELPER), encoding="utf-8"
        )
        clean_again, _ = lint_paths([src], cache_dir=cache_dir)
        assert clean_again == []

    def test_engine_version_bust(self, tmp_path, monkeypatch):
        src = write_package(
            tmp_path,
            {"src/repro/server/handler.py": HANDLER.replace("passthrough(", "bool(")},
        )
        cache_dir = tmp_path / "cache"
        lint_paths([src], cache_dir=cache_dir)
        first = json.loads((cache_dir / "cache.json").read_text())
        monkeypatch.setattr(lint_cache, "ENGINE_VERSION", "smatch-lint-next")
        violations, _ = lint_paths([src], cache_dir=cache_dir)
        assert violations == []
        second = json.loads((cache_dir / "cache.json").read_text())
        assert first["fingerprint"] != second["fingerprint"]

    def test_unused_suppression_namespace_is_distinct(self, tmp_path):
        # the same tree linted with and without unused-suppression
        # reporting must not share cached violation lists
        src = write_package(
            tmp_path,
            {
                "src/repro/server/handler.py": """
                    import secrets  # smatch-lint: disable=SML001
                """,
            },
        )
        cache_dir = tmp_path / "cache"
        plain, _ = lint_paths([src], cache_dir=cache_dir)
        assert plain == []
        flagged, _ = lint_paths(
            [src], cache_dir=cache_dir, report_unused_suppressions=True
        )
        assert codes(flagged) == ["SML000"]


# ---------------------------------------------------------------------------
# module graph plumbing
# ---------------------------------------------------------------------------


class TestModuleGraph:
    def test_module_identity_walks_packages(self, tmp_path):
        src = write_package(
            tmp_path, {"src/repro/server/deep/worker.py": "x = 1\n"}
        )
        name, root = module_identity(src / "repro" / "server" / "deep" / "worker.py")
        assert name == "repro.server.deep.worker"
        assert root == src.resolve()

    def test_relative_imports_resolve_in_closure(self, tmp_path):
        src = write_package(
            tmp_path,
            {
                "src/repro/server/helpers.py": "def f():\n    return 1\n",
                "src/repro/server/handler.py": (
                    "from .helpers import f\n\n\ndef g():\n    return f()\n"
                ),
            },
        )
        files = [
            (p, p.as_posix(), p.read_text(encoding="utf-8"))
            for p in sorted(src.rglob("*.py"))
        ]
        program = Program.build(files)
        handler = program.modules["repro.server.handler"]
        assert handler.bindings["f"].module == "repro.server.helpers"
        assert "repro.server.helpers" in handler.deps

    def test_cycles_terminate(self, tmp_path):
        src = write_package(
            tmp_path,
            {
                "src/repro/server/a.py": (
                    "from repro.server import b\n\n\ndef fa(x):\n    return b.fb(x)\n"
                ),
                "src/repro/server/b.py": (
                    "from repro.server import a\n\n\ndef fb(x):\n    return a.fa(x)\n"
                ),
            },
        )
        violations, checked = lint_paths([src])
        assert checked == 4  # a.py, b.py, and the two package __init__s
        assert violations == []
        files = [
            (p, p.as_posix(), p.read_text(encoding="utf-8"))
            for p in sorted(src.rglob("*.py"))
        ]
        program = Program.build(files)
        sccs = program.sccs_topological()
        assert ["repro.server.a", "repro.server.b"] in sccs


class TestShardDurabilitySinks:
    """The shard WAL/snapshot files are replayed into restarted worker
    processes, so their write APIs are SML010 boundary sinks."""

    SHARD_PATH = "src/repro/server/sharding/widget.py"

    def test_wal_append_of_secret_fires(self):
        src = """
            def log(wal, session_key):
                wal.append_record(session_key)
        """
        found = check(src, self.SHARD_PATH)
        assert codes(found) == ["SML010"]
        assert "process boundary" in found[0].message

    def test_wal_append_of_ciphertext_is_clean(self):
        src = """
            def log(wal, session_key):
                sealed_payload = seal(session_key)
                wal.append_record(sealed_payload)
        """
        assert check(src, self.SHARD_PATH) == []

    def test_snapshot_write_of_secret_fires(self):
        src = """
            def persist(directory, seq, mac_key):
                return write_snapshot(directory, seq, 0, True, mac_key, ())
        """
        found = check(src, self.SHARD_PATH)
        assert codes(found) == ["SML010"]

    def test_snapshot_write_of_public_groups_is_clean(self):
        src = """
            def persist(directory, seq, group_table):
                return write_snapshot(directory, seq, 0, True, group_table, ())
        """
        assert check(src, self.SHARD_PATH) == []
