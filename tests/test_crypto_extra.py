"""Additional crypto vectors and cross-cutting invariants."""

from hypothesis import given, settings, strategies as st

from repro.crypto.aes import AES
from repro.crypto.modes import ctr_xcrypt
from repro.crypto.ope import OPE, OpeParams
from repro.utils.rand import SystemRandomSource


class TestCtrMultiBlockVectors:
    """NIST SP 800-38A F.5.1: all four CTR-AES128 blocks."""

    KEY = bytes.fromhex("2b7e151628aed2a6abf7158809cf4f3c")
    COUNTER = bytes.fromhex("f0f1f2f3f4f5f6f7f8f9fafbfcfdfeff")
    PLAIN = bytes.fromhex(
        "6bc1bee22e409f96e93d7e117393172a"
        "ae2d8a571e03ac9c9eb76fac45af8e51"
        "30c81c46a35ce411e5fbc1191a0a52ef"
        "f69f2445df4f9b17ad2b417be66c3710"
    )
    CIPHER = bytes.fromhex(
        "874d6191b620e3261bef6864990db6ce"
        "9806f66b7970fdff8617187bb9fffdff"
        "5ae4df3edbd5d35e5b4f09020db03eab"
        "1e031dda2fbe03d1792170a0f3009cee"
    )

    def test_four_block_message(self):
        assert ctr_xcrypt(AES(self.KEY), self.COUNTER, self.PLAIN) == self.CIPHER

    def test_partial_final_block(self):
        out = ctr_xcrypt(AES(self.KEY), self.COUNTER, self.PLAIN[:40])
        assert out == self.CIPHER[:40]


class TestOpeCrossInstance:
    def test_same_key_same_function_across_instances(self):
        params = OpeParams(plaintext_bits=20)
        key = b"cross-instance-key-32-bytes-pad!"
        a = OPE(key, params)
        b = OPE(key, params)
        for m in (0, 1, 123456, (1 << 20) - 1):
            assert a.encrypt(m) == b.encrypt(m)

    def test_different_params_different_function(self):
        key = b"cross-instance-key-32-bytes-pad!"
        narrow = OPE(key, OpeParams(plaintext_bits=16, expansion_bits=8))
        wide = OPE(key, OpeParams(plaintext_bits=16, expansion_bits=24))
        assert narrow.encrypt(1234) != wide.encrypt(1234)

    @given(st.integers(min_value=1, max_value=6))
    @settings(max_examples=6, deadline=None)
    def test_tiny_domains_bijective(self, bits):
        """On a fully enumerable domain, Enc is a strict order-isomorphism."""
        ope = OPE(b"tiny-domain-key-32-bytes-padding", OpeParams(plaintext_bits=bits))
        cts = [ope.encrypt(m) for m in range(1 << bits)]
        assert cts == sorted(cts)
        assert len(set(cts)) == len(cts)
        for m, c in enumerate(cts):
            assert ope.decrypt(c) == m


class TestSubkeyIndependence:
    """Purpose-bound subkeys never collide across purposes or keys."""

    def test_purposes_disjoint(self):
        from repro.core.keygen import ProfileKey

        key = ProfileKey(key=b"a" * 32, index=b"b" * 32)
        purposes = [b"ope", b"chain", b"auth", b"other"]
        outputs = {key.subkey(p) for p in purposes}
        assert len(outputs) == len(purposes)

    def test_keys_disjoint(self):
        from repro.core.keygen import ProfileKey

        k1 = ProfileKey(key=b"a" * 32, index=b"x" * 32)
        k2 = ProfileKey(key=b"c" * 32, index=b"y" * 32)
        assert k1.subkey(b"ope") != k2.subkey(b"ope")


class TestPaillierChains:
    def test_long_additive_chain(self):
        from repro.crypto.fixtures import fixed_paillier_keypair

        kp = fixed_paillier_keypair(256)
        rng = SystemRandomSource(seed=1001)
        values = [rng.randrange(0, 1 << 32) for _ in range(20)]
        acc = kp.public.encrypt(0, rng)
        for v in values:
            acc = kp.public.add(acc, kp.public.encrypt(v, rng))
        assert kp.decrypt(acc) == sum(values)

    def test_mixed_operations(self):
        from repro.crypto.fixtures import fixed_paillier_keypair

        kp = fixed_paillier_keypair(256)
        rng = SystemRandomSource(seed=1002)
        # 3*(x + 5) - x computed homomorphically = 2x + 15
        x = 1234
        cx = kp.public.encrypt(x, rng)
        expr = kp.public.mul_plain(kp.public.add_plain(cx, 5), 3)
        expr = kp.public.add(
            expr, kp.public.mul_plain(cx, kp.public.n - 1)
        )
        assert kp.decrypt(expr) == 2 * x + 15
