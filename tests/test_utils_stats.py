"""Tests for repro.utils.stats (paper Eq. 1 and Definition 2)."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.errors import ParameterError
from repro.utils.stats import (
    empirical_entropy,
    entropy_from_counts,
    entropy_from_probs,
    landmark_values,
    perfect_entropy,
    value_frequencies,
)


class TestEntropy:
    def test_uniform_two_values_is_one_bit(self):
        assert entropy_from_counts({"a": 5, "b": 5}) == pytest.approx(1.0)

    def test_deterministic_is_zero(self):
        assert entropy_from_counts({"a": 10}) == pytest.approx(0.0)

    def test_uniform_n_values(self):
        counts = {i: 3 for i in range(16)}
        assert entropy_from_counts(counts) == pytest.approx(4.0)

    def test_matches_probs_form(self):
        counts = {0: 30, 1: 40, 2: 20, 3: 10}
        assert entropy_from_counts(counts) == pytest.approx(
            entropy_from_probs([0.3, 0.4, 0.2, 0.1])
        )

    def test_empirical_entropy(self):
        assert empirical_entropy("aabb") == pytest.approx(1.0)

    def test_empty_rejected(self):
        with pytest.raises(ParameterError):
            entropy_from_counts({})

    def test_negative_counts_rejected(self):
        with pytest.raises(ParameterError):
            entropy_from_counts({"a": -1, "b": 2})

    def test_probs_must_sum_to_one(self):
        with pytest.raises(ParameterError):
            entropy_from_probs([0.5, 0.4])

    @given(
        st.lists(st.integers(min_value=1, max_value=1000), min_size=1, max_size=20)
    )
    def test_entropy_bounds(self, counts_list):
        counts = {i: c for i, c in enumerate(counts_list)}
        h = entropy_from_counts(counts)
        assert -1e-9 <= h <= math.log2(len(counts)) + 1e-9

    def test_perfect_entropy_is_identity(self):
        assert perfect_entropy(64) == 64.0
        assert perfect_entropy(0) == 0.0


class TestLandmarks:
    def test_detects_dominant_value(self):
        counts = {"x": 90, "y": 5, "z": 5}
        found = landmark_values(counts, 0.6)
        assert found == [("x", 0.9)]

    def test_threshold_is_strict(self):
        counts = {"x": 60, "y": 40}
        assert landmark_values(counts, 0.6) == []

    def test_sorted_by_probability(self):
        # only possible with tau < 0.5 to have two landmarks
        counts = {"a": 45, "b": 40, "c": 15}
        found = landmark_values(counts, 0.3)
        assert [v for v, _ in found] == ["a", "b"]

    def test_invalid_tau(self):
        with pytest.raises(ParameterError):
            landmark_values({"a": 1}, 1.5)

    def test_value_frequencies(self):
        assert value_frequencies([1, 1, 2]) == {1: 2, 2: 1}
