"""Additional scheme-level behaviours: order methods, weights, stability."""

import pytest

from repro.core.scheme import SMatch, SMatchParams
from repro.crypto.fixtures import fixed_rsa_keypair
from repro.crypto.oprf import RsaOprfServer
from repro.datasets import INFOCOM06, ClusteredPopulation
from repro.utils.rand import SystemRandomSource


@pytest.fixture(scope="module")
def value_method_world():
    """A population matched with the paper's worked-example 'value' method."""
    rng = SystemRandomSource(seed=1100)
    pop = ClusteredPopulation(INFOCOM06, theta=8, rng=rng)
    users = pop.generate(24)
    scheme_rng = SystemRandomSource(seed=1101)
    scheme = SMatch(
        SMatchParams(
            schema=pop.schema,
            theta=8,
            plaintext_bits=64,
            order_method="value",
        ),
        oprf_server=RsaOprfServer(
            keypair=fixed_rsa_keypair(1024), rng=scheme_rng
        ),
        rng=scheme_rng,
    )
    uploads, keys = scheme.enroll_population([u.profile for u in users])
    return pop, users, scheme, uploads, keys


class TestValueOrderMethod:
    def test_matching_works(self, value_method_world):
        _, users, scheme, uploads, _ = value_method_world
        groups = {}
        for uid, payload in uploads.items():
            groups.setdefault(payload.key_index, {})[uid] = payload
        biggest = max(groups.values(), key=len)
        if len(biggest) < 3:
            pytest.skip("no big group")
        uid = next(iter(biggest))
        result = scheme.match_in_group(biggest, uid, k=2)
        assert len(result) == 2
        assert set(result) <= set(biggest) - {uid}

    def test_verification_unaffected_by_order_method(self, value_method_world):
        _, users, scheme, uploads, keys = value_method_world
        groups = {}
        for uid, payload in uploads.items():
            groups.setdefault(payload.key_index, []).append(uid)
        multi = [g for g in groups.values() if len(g) >= 2]
        if not multi:
            pytest.skip("no group of size >= 2")
        a, b = multi[0][0], multi[0][1]
        assert scheme.verify(uploads[b].auth, keys[a])


class TestWeightedSchemeMatching:
    def test_weights_change_neighbour_choice(self, value_method_world):
        _, users, scheme, uploads, _ = value_method_world
        groups = {}
        for uid, payload in uploads.items():
            groups.setdefault(payload.key_index, {})[uid] = payload
        biggest = max(groups.values(), key=len)
        if len(biggest) < 4:
            pytest.skip("need a group of >= 4")
        uid = next(iter(biggest))
        d = len(scheme.params.schema)
        unweighted = scheme.match_in_group(biggest, uid, k=2)
        weighted = scheme.match_in_group(
            biggest, uid, k=2, weights=[1.0] + [0.001] * (d - 1)
        )
        # both are valid result sets from the same group
        assert set(unweighted) <= set(biggest)
        assert set(weighted) <= set(biggest)

    def test_max_distance_weighted(self, value_method_world):
        _, users, scheme, uploads, _ = value_method_world
        groups = {}
        for uid, payload in uploads.items():
            groups.setdefault(payload.key_index, {})[uid] = payload
        biggest = max(groups.values(), key=len)
        if len(biggest) < 2:
            pytest.skip("no group of size >= 2")
        uid = next(iter(biggest))
        d = len(scheme.params.schema)
        # the 'value' method sums weighted 64-bit ciphertexts, so a radius
        # covering the whole group needs ~ d * 2^64 * weight_scale
        everyone = scheme.match_within_distance(
            biggest, uid, 10**28, weights=[1.0] * d
        )
        assert set(everyone) == set(biggest) - {uid}


class TestUploadStability:
    def test_reenrollment_same_group(self, value_method_world):
        """Re-enrolling an unchanged profile lands in the same key group
        (the chain ciphertexts differ — the one-to-N mapping is random —
        but the fuzzy key is deterministic)."""
        _, users, scheme, uploads, _ = value_method_world
        profile = users[0].profile
        payload2, _ = scheme.enroll(profile)
        assert payload2.key_index == uploads[profile.user_id].key_index
        assert payload2.chain != uploads[profile.user_id].chain

    def test_auth_rerandomized_per_enrollment(self, value_method_world):
        _, users, scheme, uploads, _ = value_method_world
        profile = users[1].profile
        payload2, _ = scheme.enroll(profile)
        assert (
            payload2.auth.sealed.body
            != uploads[profile.user_id].auth.sealed.body
        )
