"""Tests for server-store persistence."""

import pytest

from repro.errors import ProtocolError
from repro.net.messages import QueryRequest, UploadMessage
from repro.server.persistence import (
    dump_store_bytes,
    load_store,
    load_store_bytes,
    save_store,
)
from repro.server.service import SMatchServer
from repro.server.storage import ProfileStore


@pytest.fixture
def loaded_store(enrolled):
    _, _, uploads, _ = enrolled
    store = ProfileStore()
    for payload in uploads.values():
        store.put(payload)
    return store


class TestRoundtrip:
    def test_bytes_roundtrip(self, loaded_store):
        restored = load_store_bytes(dump_store_bytes(loaded_store))
        assert len(restored) == len(loaded_store)
        assert restored.group_sizes() == loaded_store.group_sizes()
        for uid, payload in loaded_store.all_profiles().items():
            assert restored.get(uid) == payload

    def test_file_roundtrip(self, loaded_store, tmp_path):
        path = tmp_path / "store.bin"
        written = save_store(loaded_store, path)
        assert path.stat().st_size == written
        restored = load_store(path)
        assert restored.all_profiles() == loaded_store.all_profiles()

    def test_empty_store(self):
        restored = load_store_bytes(dump_store_bytes(ProfileStore()))
        assert len(restored) == 0

    def test_restored_server_answers_queries(self, enrolled, tmp_path):
        scheme, users, uploads, keys = enrolled
        server = SMatchServer(query_k=3)
        for payload in uploads.values():
            server.handle_upload(UploadMessage(payload=payload))
        path = tmp_path / "state.bin"
        save_store(server.store, path)

        fresh = SMatchServer(query_k=3)
        fresh.store = load_store(path)
        from repro.server.matcher import ServerMatcher

        fresh.matcher = ServerMatcher(fresh.store)
        uid = users[0].profile.user_id
        original = server.handle_query(
            QueryRequest(query_id=1, timestamp=0, user_id=uid)
        )
        restored = fresh.handle_query(
            QueryRequest(query_id=1, timestamp=0, user_id=uid)
        )
        assert {e.user_id for e in original.entries} == {
            e.user_id for e in restored.entries
        }


class TestCorruption:
    def test_bad_magic(self):
        with pytest.raises(ProtocolError):
            load_store_bytes(b"\x00\x00\x00\x04junk")

    def test_flipped_payload_bit_detected(self, loaded_store):
        data = bytearray(dump_store_bytes(loaded_store))
        data[-1] ^= 0x01
        with pytest.raises(ProtocolError):
            load_store_bytes(bytes(data))

    def test_wrong_version(self, loaded_store):
        data = dump_store_bytes(loaded_store)
        # version field follows the magic field; rewrite it
        from repro.utils.serial import FieldReader, FieldWriter

        reader = FieldReader(data)
        magic = reader.read_bytes()
        reader.read_int()
        digest = reader.read_bytes()
        payload = reader.read_bytes()
        w = FieldWriter()
        w.write_bytes(magic)
        w.write_int(99)
        w.write_bytes(digest)
        w.write_bytes(payload)
        with pytest.raises(ProtocolError):
            load_store_bytes(w.getvalue())

    def test_truncated_file(self, loaded_store):
        data = dump_store_bytes(loaded_store)
        with pytest.raises(ProtocolError):
            load_store_bytes(data[: len(data) // 2])
