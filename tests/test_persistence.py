"""Tests for server-store persistence."""

import pytest

from repro.errors import ProtocolError
from repro.net.messages import QueryRequest, UploadMessage
from repro.server.persistence import (
    dump_store_bytes,
    load_store,
    load_store_bytes,
    save_store,
)
from repro.server.service import SMatchServer
from repro.server.storage import ProfileStore


@pytest.fixture
def loaded_store(enrolled):
    _, _, uploads, _ = enrolled
    store = ProfileStore()
    for payload in uploads.values():
        store.put(payload)
    return store


class TestRoundtrip:
    def test_bytes_roundtrip(self, loaded_store):
        restored = load_store_bytes(dump_store_bytes(loaded_store))
        assert len(restored) == len(loaded_store)
        assert restored.group_sizes() == loaded_store.group_sizes()
        for uid, payload in loaded_store.all_profiles().items():
            assert restored.get(uid) == payload

    def test_file_roundtrip(self, loaded_store, tmp_path):
        path = tmp_path / "store.bin"
        written = save_store(loaded_store, path)
        assert path.stat().st_size == written
        restored = load_store(path)
        assert restored.all_profiles() == loaded_store.all_profiles()

    def test_empty_store(self):
        restored = load_store_bytes(dump_store_bytes(ProfileStore()))
        assert len(restored) == 0

    def test_restored_server_answers_queries(self, enrolled, tmp_path):
        scheme, users, uploads, keys = enrolled
        server = SMatchServer(query_k=3)
        for payload in uploads.values():
            server.handle_upload(UploadMessage(payload=payload))
        path = tmp_path / "state.bin"
        save_store(server.store, path)

        fresh = SMatchServer(query_k=3)
        fresh.store = load_store(path)
        from repro.server.matcher import ServerMatcher

        fresh.matcher = ServerMatcher(fresh.store)
        uid = users[0].profile.user_id
        original = server.handle_query(
            QueryRequest(query_id=1, timestamp=0, user_id=uid)
        )
        restored = fresh.handle_query(
            QueryRequest(query_id=1, timestamp=0, user_id=uid)
        )
        assert {e.user_id for e in original.entries} == {
            e.user_id for e in restored.entries
        }


class TestCorruption:
    def test_bad_magic(self):
        with pytest.raises(ProtocolError):
            load_store_bytes(b"\x00\x00\x00\x04junk")

    def test_flipped_payload_bit_detected(self, loaded_store):
        data = bytearray(dump_store_bytes(loaded_store))
        data[-1] ^= 0x01
        with pytest.raises(ProtocolError):
            load_store_bytes(bytes(data))

    def test_wrong_version(self, loaded_store):
        data = dump_store_bytes(loaded_store)
        # version field follows the magic field; rewrite it
        from repro.utils.serial import FieldReader, FieldWriter

        reader = FieldReader(data)
        magic = reader.read_bytes()
        reader.read_int()
        digest = reader.read_bytes()
        payload = reader.read_bytes()
        w = FieldWriter()
        w.write_bytes(magic)
        w.write_int(99)
        w.write_bytes(digest)
        w.write_bytes(payload)
        with pytest.raises(ProtocolError):
            load_store_bytes(w.getvalue())

    def test_truncated_file(self, loaded_store):
        data = dump_store_bytes(loaded_store)
        with pytest.raises(ProtocolError):
            load_store_bytes(data[: len(data) // 2])


class TestMatcherAttach:
    """save -> load -> attach -> churn -> query (the re-bind satellite)."""

    @staticmethod
    def _crowded_group(store):
        for key_index, members in store.groups():
            if len(members) >= 3:
                return key_index, members
        pytest.skip("population produced no group with 3+ members")

    def test_save_load_attach_churn_query(self, enrolled, tmp_path):
        import dataclasses

        from repro.server.matcher import ServerMatcher

        _, _, uploads, _ = enrolled
        server = SMatchServer(query_k=3)
        for payload in uploads.values():
            server.handle_upload(UploadMessage(payload=payload))
        path = tmp_path / "state.bin"
        save_store(server.store, path)

        # reload and RE-BIND the existing matcher instead of rebuilding it
        server.store = load_store(path)
        server.matcher.attach(server.store)

        _, members = self._crowded_group(server.store)
        uid_query, uid_remove, uid_drift = sorted(members)[:3]
        # warm the group index, then churn through the re-attached store
        server.handle_query(
            QueryRequest(query_id=1, timestamp=0, user_id=uid_query)
        )
        server.store.remove(uid_remove)
        drifted = dataclasses.replace(
            members[uid_drift],
            chain=tuple(c + 1 for c in members[uid_drift].chain),
        )
        server.store.put(drifted)
        churned = server.handle_query(
            QueryRequest(query_id=2, timestamp=0, user_id=uid_query)
        )

        # oracle: a cold matcher over the same final contents
        oracle_store = ProfileStore()
        for payload in server.store.all_profiles().values():
            oracle_store.put(payload)
        oracle = ServerMatcher(oracle_store)
        assert [e.user_id for e in churned.entries] == oracle.match(
            uid_query, 3
        )
        assert uid_remove not in {e.user_id for e in churned.entries}

    def test_reattach_same_store_is_idempotent(self, loaded_store):
        from repro.server.matcher import ServerMatcher

        matcher = ServerMatcher(loaded_store)
        for _ in range(3):
            matcher.attach(loaded_store)
        _, members = self._crowded_group(loaded_store)
        uid_query, uid_remove = sorted(members)[:2]
        matcher.match(uid_query, 3)  # warm the group index
        before = matcher.group_generation(uid_query)
        # one mutation must land exactly one event — double subscription
        # would double-deliver and bump the generation twice
        loaded_store.remove(uid_remove)
        assert matcher.group_generation(uid_query) == before + 1

    def test_attach_new_store_drops_stale_indexes(self, enrolled):
        from repro.server.matcher import ServerMatcher

        _, _, uploads, _ = enrolled
        store = ProfileStore()
        for payload in uploads.values():
            store.put(payload)
        matcher = ServerMatcher(store)
        _, members = self._crowded_group(store)
        uid_query, uid_gone = sorted(members)[:2]
        matcher.match(uid_query, 3)  # warm against the old store

        replacement = load_store_bytes(dump_store_bytes(store))
        replacement.remove(uid_gone)
        matcher.attach(replacement)
        assert uid_gone not in matcher.match(uid_query, 3)
        # and events from the new store flow to the re-attached matcher
        generation_probe = matcher.group_generation(uid_query)
        replacement.remove(sorted(replacement.group_of(uid_query))[-1])
        assert matcher.group_generation(uid_query) != generation_probe
