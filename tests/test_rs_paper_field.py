"""Reed-Solomon at the paper's field size: GF(2^10), n up to 1023."""


from repro.gf.field import GF1024
from repro.rs.code import RSCode
from repro.rs.decoder import decode
from repro.utils.rand import SystemRandomSource


class TestPaperFieldCodes:
    def test_full_length_code(self):
        """An (n=1023, k=1003) code over GF(2^10): t = 10 symbol errors."""
        rng = SystemRandomSource(seed=1200)
        code = RSCode(n=1023, k=1003, m=10)
        assert code.t == 10
        message = [rng.randrange(0, 1024) for _ in range(1003)]
        cw = code.encode(message)
        assert code.is_codeword(cw)
        received = list(cw)
        for pos in rng.sample(range(1023), 10):
            received[pos] ^= rng.randrange(1, 1024)
        assert decode(code, received) == cw

    def test_profile_shaped_codes(self):
        """The fuzzy-keygen shapes: (6, 2) and (17, 7) over GF(2^10)."""
        rng = SystemRandomSource(seed=1201)
        for n, k in ((6, 2), (17, 7)):
            code = RSCode(n=n, k=k, m=10)
            message = [rng.randrange(0, 1024) for _ in range(k)]
            cw = code.encode(message)
            received = list(cw)
            for pos in rng.sample(range(n), code.t):
                received[pos] ^= rng.randrange(1, 1024)
            assert decode(code, received) == cw

    def test_field_order(self):
        assert GF1024.order == 1023
        # alpha generates the full multiplicative group
        seen = set()
        x = 1
        for _ in range(GF1024.order):
            seen.add(x)
            x = GF1024.mul(x, 2)
        assert len(seen) == 1023

    def test_deep_erasure_recovery(self):
        """(31, 15) code: recover from the full 16-erasure budget."""
        rng = SystemRandomSource(seed=1202)
        code = RSCode(n=31, k=15, m=10)
        message = [rng.randrange(0, 1024) for _ in range(15)]
        cw = code.encode(message)
        erasures = rng.sample(range(31), 16)
        received = list(cw)
        for pos in erasures:
            received[pos] = rng.randrange(0, 1024)
        assert decode(code, received, erasures=erasures) == cw
