"""Fuzz-style robustness tests: hostile bytes never crash the parsers."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.crypto.modes import AeadCiphertext, EtMCipher
from repro.errors import ReproError
from repro.server.persistence import dump_store_bytes, load_store_bytes
from repro.server.storage import ProfileStore
from repro.utils.serial import FieldReader


class TestPersistenceFuzz:
    @given(st.binary(max_size=300))
    @settings(max_examples=80)
    def test_random_bytes_rejected_cleanly(self, raw):
        try:
            load_store_bytes(raw)
        except ReproError:
            pass

    @given(
        pos=st.integers(min_value=0, max_value=200),
        xor=st.integers(min_value=0, max_value=255),
    )
    @settings(max_examples=60)
    def test_single_byte_corruption_detected(self, enrolled, pos, xor):
        _, _, uploads, _ = enrolled
        store = ProfileStore()
        store.put(next(iter(uploads.values())))
        data = bytearray(dump_store_bytes(store))
        pos %= len(data)
        if xor == 0:
            return  # no-op corruption
        data[pos] ^= xor
        try:
            restored = load_store_bytes(bytes(data))
            # extremely unlikely, but if it parses it must be consistent
            assert len(restored) <= 1
        except ReproError:
            pass


class TestAeadFuzz:
    @given(st.binary(min_size=48, max_size=200))
    @settings(max_examples=60)
    def test_random_ciphertexts_never_open(self, raw):
        cipher = EtMCipher(b"fuzz-key")
        sealed = AeadCiphertext.decode(raw)
        with pytest.raises(ReproError):
            cipher.open(sealed)

    @given(st.binary(max_size=47))
    @settings(max_examples=30)
    def test_short_ciphertexts_rejected(self, raw):
        with pytest.raises(ReproError):
            AeadCiphertext.decode(raw)


class TestFieldReaderFuzz:
    @given(st.binary(max_size=200))
    @settings(max_examples=80)
    def test_reader_never_overreads(self, raw):
        reader = FieldReader(raw)
        try:
            while not reader.at_end():
                reader.read_bytes()
        except ReproError:
            pass
