"""Tests for the Auth/Vf verification protocol."""

import pytest

from repro.core.keygen import ProfileKey
from repro.core.verification import AuthInfo, Verifier
from repro.crypto.modes import AeadCiphertext
from repro.errors import ParameterError
from repro.utils.rand import SystemRandomSource


@pytest.fixture(scope="module")
def verifier():
    return Verifier()


@pytest.fixture(scope="module")
def key():
    return ProfileKey(key=b"p" * 32, index=b"q" * 32)


@pytest.fixture(scope="module")
def other_key():
    return ProfileKey(key=b"z" * 32, index=b"w" * 32)


@pytest.fixture
def prng():
    return SystemRandomSource(seed=71)


class TestAuthVf:
    def test_completeness(self, verifier, key, prng):
        """Same profile key => Vf accepts (theta-close users verify)."""
        secret = verifier.make_secret(prng)
        auth = verifier.auth(42, secret, key, rng=prng)
        assert verifier.verify(auth, key)

    def test_wrong_key_rejected(self, verifier, key, other_key, prng):
        secret = verifier.make_secret(prng)
        auth = verifier.auth(42, secret, key, rng=prng)
        assert not verifier.verify(auth, other_key)

    def test_id_binding(self, verifier, key, prng):
        """An authenticator spliced under a different claimed ID fails —
        the malicious-server swap attack."""
        secret = verifier.make_secret(prng)
        auth = verifier.auth(42, secret, key, rng=prng)
        spliced = AuthInfo(user_id=43, sealed=auth.sealed)
        assert not verifier.verify(spliced, key)

    def test_forged_bytes_rejected(self, verifier, key, prng):
        forged = AuthInfo(
            user_id=42,
            sealed=AeadCiphertext(
                iv=prng.randbytes(16),
                body=prng.randbytes(96),
                tag=prng.randbytes(32),
            ),
        )
        assert not verifier.verify(forged, key)

    def test_tampered_body_rejected(self, verifier, key, prng):
        secret = verifier.make_secret(prng)
        auth = verifier.auth(42, secret, key, rng=prng)
        tampered = AuthInfo(
            user_id=42,
            sealed=AeadCiphertext(
                iv=auth.sealed.iv,
                body=bytes([auth.sealed.body[0] ^ 1]) + auth.sealed.body[1:],
                tag=auth.sealed.tag,
            ),
        )
        assert not verifier.verify(tampered, key)

    def test_different_secrets_different_auth(self, verifier, key, prng):
        a = verifier.auth(42, verifier.make_secret(prng), key, rng=prng)
        b = verifier.auth(42, verifier.make_secret(prng), key, rng=prng)
        assert a.sealed.body != b.sealed.body
        assert verifier.verify(a, key) and verifier.verify(b, key)

    def test_invalid_user_id(self, verifier, key, prng):
        with pytest.raises(ParameterError):
            verifier.auth(0, 1234, key, rng=prng)

    def test_wire_size_accounts_overhead(self, verifier, key, prng):
        auth = verifier.auth(42, verifier.make_secret(prng), key, rng=prng)
        # element + 32-byte hash + AEAD overhead (16 IV + 32 tag)
        expected = verifier.group.element_size + 32 + 48
        assert auth.wire_size == expected

    def test_secret_stays_hidden(self, verifier, key, prng):
        """The plaintext inside ciph reveals p^s, not s (DL-hard)."""
        secret = verifier.make_secret(prng)
        auth = verifier.auth(42, secret, key, rng=prng)
        from repro.crypto.modes import EtMCipher

        plaintext = EtMCipher(key.subkey(b"auth"), key_size=32).open(auth.sealed)
        width = verifier.group.element_size
        t1 = int.from_bytes(plaintext[:width], "big")
        assert t1 == verifier.group.power_of_g(secret)
        assert secret.to_bytes(64, "big") not in plaintext
