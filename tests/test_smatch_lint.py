"""Tests for the smatch-lint static analyzer (tools/smatch_lint).

Each rule gets three fixtures: a positive hit, a clean pass, and a
suppressed hit.  On top sit CLI-level tests (text/JSON formats, exit
codes, seeded-violation detection) and the gate that matters most: the
live ``src/`` tree must be violation-free.
"""

from __future__ import annotations

import json
import textwrap
from pathlib import Path

import pytest

from tools.smatch_lint.cli import main
from tools.smatch_lint.engine import lint_paths, lint_source

REPO_ROOT = Path(__file__).resolve().parent.parent

CRYPTO_PATH = "src/repro/crypto/widget.py"
CORE_PATH = "src/repro/core/widget.py"


def codes(violations):
    return [v.code for v in violations]


def check(source: str, path: str = CORE_PATH):
    return lint_source(textwrap.dedent(source), path)


class TestSml001RandomImports:
    def test_import_random_flagged(self):
        found = check("import random\n")
        assert codes(found) == ["SML001"]
        assert "repro.utils.rand" in found[0].message

    def test_from_random_flagged(self):
        assert codes(check("from random import shuffle\n")) == ["SML001"]

    def test_aliased_import_flagged(self):
        assert codes(check("import random as rnd\n")) == ["SML001"]

    def test_facade_module_is_exempt(self):
        assert check("import random\n", "src/repro/utils/rand.py") == []

    def test_other_imports_clean(self):
        assert check("import secrets\nimport os\n") == []

    def test_suppression(self):
        src = "import random  # smatch-lint: disable=SML001\n"
        assert check(src) == []


class TestSml002SecretEquality:
    def test_secret_name_eq_flagged(self):
        found = check("def f(key, other):\n    return key == other\n")
        assert codes(found) == ["SML002"]
        assert "constant_time_eq" in found[0].message

    def test_attribute_and_noteq_flagged(self):
        src = """\
        def f(self, payload):
            if self._mac_key != payload:
                return True
        """
        assert codes(check(src)) == ["SML002"]

    def test_subscript_unwrapped(self):
        assert codes(check("def f(tags, x):\n    return tags[0] == x\n")) == [
            "SML002"
        ]

    def test_public_override_clean(self):
        src = """\
        def f(payload, mine):
            return payload.key_index == mine or payload.public_key == mine
        """
        assert check(src) == []

    def test_length_check_clean(self):
        assert check("def f(key):\n    return len(key) == 32\n") == []

    def test_is_none_clean(self):
        assert check("def f(key):\n    return key is None\n") == []

    def test_suppression(self):
        src = "def f(key, b):\n    return key == b  # smatch-lint: disable=SML002\n"
        assert check(src) == []


class TestSml003FloatArithmetic:
    def test_float_literal_flagged(self):
        assert codes(check("x = 0.5\n", CRYPTO_PATH)) == ["SML003"]

    def test_true_division_flagged(self):
        found = check("def f(a, b):\n    return a / b\n", CRYPTO_PATH)
        assert codes(found) == ["SML003"]
        assert found[0].line == 2

    def test_float_call_flagged(self):
        assert codes(check("def f(x):\n    return float(x)\n", CRYPTO_PATH)) == [
            "SML003"
        ]

    def test_aug_div_flagged(self):
        assert codes(check("def f(x):\n    x /= 2\n", CRYPTO_PATH)) == ["SML003"]

    def test_floor_division_clean(self):
        assert check("def f(a, b):\n    return a // b\n", CRYPTO_PATH) == []

    def test_ope_allowlisted(self):
        assert check("x = 0.5\n", "src/repro/crypto/ope.py") == []

    def test_outside_tcb_clean(self):
        assert check("x = 0.5\n", "src/repro/experiments/widget.py") == []

    def test_suppression(self):
        src = "x = 1 / 3  # smatch-lint: disable=SML003\n"
        assert check(src, CRYPTO_PATH) == []


class TestSml004ImportLayering:
    def test_absolute_import_flagged(self):
        found = check("from repro.server import storage\n", CRYPTO_PATH)
        assert codes(found) == ["SML004"]
        assert "repro.server" in found[0].message

    def test_plain_import_flagged(self):
        assert codes(check("import repro.net.channel\n", CRYPTO_PATH)) == [
            "SML004"
        ]

    def test_relative_import_flagged(self):
        # from crypto/widget.py, `from ..client import x` is repro.client
        assert codes(check("from ..client import device\n", CRYPTO_PATH)) == [
            "SML004"
        ]

    def test_relative_sibling_clean(self):
        assert check("from .kdf import hkdf\n", CRYPTO_PATH) == []

    def test_utils_import_clean(self):
        assert check("from repro.utils.ct import constant_time_eq\n", CRYPTO_PATH) == []

    def test_outside_tcb_clean(self):
        assert check("from repro.server import storage\n", "src/repro/sim/w.py") == []

    def test_suppression_file_wide(self):
        src = (
            "# smatch-lint: disable-file=SML004\n"
            "from repro.server import storage\n"
        )
        assert check(src, CRYPTO_PATH) == []


class TestSml005ExceptionHygiene:
    def test_bare_except_flagged(self):
        src = """\
        def f():
            try:
                g()
            except:
                pass
        """
        found = check(src)
        assert codes(found) == ["SML005"]
        assert "bare" in found[0].message

    def test_swallowed_exception_flagged(self):
        src = """\
        def f():
            try:
                g()
            except Exception:
                pass
        """
        assert codes(check(src)) == ["SML005"]

    def test_assert_flagged(self):
        found = check("def f(x):\n    assert x > 0\n")
        assert codes(found) == ["SML005"]
        assert "repro.errors" in found[0].message

    def test_typed_handler_clean(self):
        src = """\
        def f():
            try:
                g()
            except ValueError:
                pass
        """
        assert check(src) == []

    def test_broad_handler_with_reraise_clean(self):
        src = """\
        def f():
            try:
                g()
            except Exception:
                raise RuntimeError("wrapped")
        """
        assert check(src) == []

    def test_tests_exempt_from_assert_ban(self):
        assert check("def f(x):\n    assert x\n", "tests/test_widget.py") == []

    def test_suppression(self):
        src = "def f(x):\n    assert x  # smatch-lint: disable=SML005\n"
        assert check(src) == []


class TestSml006SecretLogging:
    def test_secret_fstring_to_logger_flagged(self):
        src = """\
        def f(log, key):
            log.info(f"derived {key}")
        """
        found = check(src)
        assert codes(found) == ["SML006"]
        assert "logging call" in found[0].message

    def test_secret_kwarg_to_logger_flagged(self):
        src = """\
        def f(_log, mac_key):
            _log.debug("derived", value=mac_key)
        """
        assert codes(check(src)) == ["SML006"]

    def test_secret_method_receiver_flagged(self):
        src = """\
        def f(logger, key):
            logger.warning("derived %s", key.hex())
        """
        assert codes(check(src)) == ["SML006"]

    def test_self_logger_attribute_flagged(self):
        src = """\
        def f(self, tag):
            self._log.error(f"bad tag {tag!r}")
        """
        assert codes(check(src)) == ["SML006"]

    def test_secret_in_exception_message_flagged(self):
        src = """\
        def f(key):
            raise ValueError(f"bad key {key}")
        """
        found = check(src)
        assert codes(found) == ["SML006"]
        assert "exception message" in found[0].message

    def test_length_is_public_clean(self):
        src = """\
        def f(log, key):
            log.info("derived key_len=%d", len(key))
            raise ValueError(f"need 32 bytes, got {len(key)}")
        """
        assert check(src) == []

    def test_public_names_clean(self):
        src = """\
        def f(log, payload):
            log.info("stored", index=payload.key_index, user=payload.user_id)
        """
        assert check(src) == []

    def test_non_logger_receiver_clean(self):
        src = """\
        def f(store, key):
            store.info(key)
        """
        assert check(src) == []

    def test_exception_without_secret_clean(self):
        src = """\
        def f(client):
            raise ValueError(f"client {client!r} over budget")
        """
        assert check(src) == []

    def test_suppression(self):
        src = (
            "def f(log, key):\n"
            "    log.info(f\"{key}\")  # smatch-lint: disable=SML006\n"
        )
        assert check(src) == []


SERVER_PATH = "src/repro/server/handler.py"
NET_PATH = "src/repro/net/framing.py"


class TestSml007TaintTiming:
    def test_secret_param_branch_flagged(self):
        src = """\
        def handle(request, profile_key):
            if profile_key == request.blob:
                return b"match"
            return b"no"
        """
        found = check(src, SERVER_PATH)
        assert "SML007" in codes(found)
        assert any("profile_key" in v.message for v in found)

    def test_multi_hop_through_helper_flagged(self):
        # secret -> local -> helper return -> branch: three hops, still caught
        src = """\
        def _mix(value, salt):
            return value + salt

        def handle(request, profile_key):
            local = profile_key
            derived = _mix(local, b"salt")
            if derived == request.blob:
                return b"match"
            return b"no"
        """
        found = check(src, SERVER_PATH)
        assert codes(found) == ["SML007"]
        assert "via local -> derived" in found[0].message

    def test_constant_time_twin_clean(self):
        # the same flow, laundered through constant_time_eq: no finding
        src = """\
        from repro.utils.ct import constant_time_eq

        def _mix(value, salt):
            return value + salt

        def handle(request, profile_key):
            local = profile_key
            derived = _mix(local, b"salt")
            if constant_time_eq(derived, request.blob):
                return b"match"
            return b"no"
        """
        assert check(src, SERVER_PATH) == []

    def test_secret_loop_bound_flagged(self):
        src = """\
        def handle(secret_rounds):
            total = 0
            for _ in range(secret_rounds):
                total += 1
            return total
        """
        found = check(src, SERVER_PATH)
        assert "SML007" in codes(found)

    def test_annotation_source_flagged(self):
        src = """\
        def handle(request):
            material = request.payload  # smatch-lint: secret
            if material:
                return b"y"
            return b"n"
        """
        found = check(src, SERVER_PATH)
        assert codes(found) == ["SML007"]
        assert "smatch-lint: secret" in found[0].message

    def test_registered_source_call_flagged(self):
        src = """\
        def handle(self, request):
            material = self.keygen.derive(request.values)
            while material:
                material = material[1:]
            return b"done"
        """
        assert "SML007" in codes(check(src, SERVER_PATH))

    def test_reassignment_kills_taint(self):
        src = """\
        def handle(profile_key):
            value = profile_key
            value = b"public"
            if value:
                return b"y"
            return b"n"
        """
        assert check(src, SERVER_PATH) == []

    def test_hash_sanitizer_clean(self):
        src = """\
        def handle(profile_key):
            commitment = sha256(profile_key)
            if commitment:
                return b"y"
            return b"n"
        """
        assert check(src, SERVER_PATH) == []

    def test_outside_scope_clean(self):
        src = """\
        def handle(profile_key, blob):
            if profile_key:
                return b"y"
            return b"n"
        """
        assert check(src, "src/repro/experiments/widget.py") == []

    def test_uppercase_constant_clean(self):
        src = """\
        def encode(self, w):
            if self.TAG:
                w.note(self.TAG)
        """
        assert check(src, NET_PATH) == []

    def test_suppression(self):
        src = """\
        def handle(profile_key):
            if profile_key:  # smatch-lint: disable=SML007
                return b"y"
            return b"n"
        """
        assert check(src, SERVER_PATH) == []


class TestSml008TaintWire:
    def test_secret_to_serializer_flagged(self):
        src = """\
        def encode(writer, session_key):
            writer.write_bytes(session_key)
        """
        found = check(src, NET_PATH)
        assert codes(found) == ["SML008"]
        assert "write_bytes" in found[0].message

    def test_secret_into_message_ctor_flagged(self):
        src = """\
        def reply(request, mac_key):
            return StatusResponse(request_id=request.request_id, proof=mac_key)
        """
        found = check(src, SERVER_PATH)
        assert codes(found) == ["SML008"]
        assert "StatusResponse" in found[0].message

    def test_sealed_payload_clean(self):
        # ciphertext from an approved encrypt call may cross the wire
        src = """\
        def send(channel, cipher, session_key, payload):
            sealed = cipher.seal(payload, key=session_key)
            channel.send(sealed)
        """
        assert check(src, NET_PATH) == []

    def test_public_fields_clean(self):
        src = """\
        def encode(writer, payload):
            writer.write_int(payload.user_id)
            writer.write_bytes(payload.key_index)
        """
        assert check(src, NET_PATH) == []

    def test_outside_scope_clean(self):
        src = """\
        def encode(writer, session_key):
            writer.write_bytes(session_key)
        """
        assert check(src, "src/repro/experiments/widget.py") == []

    def test_suppression(self):
        src = """\
        def encode(writer, session_key):
            writer.write_bytes(session_key)  # smatch-lint: disable=SML008
        """
        assert check(src, NET_PATH) == []


class TestSml009TaintSize:
    def test_bytes_allocation_flagged(self):
        src = """\
        def pad(session_key):
            return bytes(session_key[0])
        """
        found = check(src, NET_PATH)
        assert codes(found) == ["SML009"]
        assert "bytes()" in found[0].message

    def test_sequence_repetition_flagged(self):
        src = """\
        def pad(secret_width):
            return b"\\x00" * secret_width
        """
        found = check(src, NET_PATH)
        assert codes(found) == ["SML009"]
        assert "repetition" in found[0].message

    def test_range_padding_loop_flagged(self):
        src = """\
        def pad(out, secret_width):
            for _ in range(secret_width):
                out.append(0)
        """
        assert "SML009" in codes(check(src, NET_PATH))

    def test_to_bytes_width_flagged(self):
        src = """\
        def encode(value, secret_width):
            return value.to_bytes(secret_width, "big")
        """
        found = check(src, NET_PATH)
        assert codes(found) == ["SML009"]
        assert "to_bytes" in found[0].message

    def test_len_launder_clean(self):
        src = """\
        def pad(session_key):
            return b"\\x00" * len(session_key)
        """
        assert check(src, NET_PATH) == []

    def test_public_size_clean(self):
        src = """\
        def pad(block_size):
            return bytes(block_size)
        """
        assert check(src, NET_PATH) == []

    def test_suppression(self):
        src = """\
        def pad(secret_width):
            return bytes(secret_width)  # smatch-lint: disable=SML009
        """
        assert check(src, NET_PATH) == []


class TestUnusedSuppressionReporting:
    def unused(self, source: str, path: str = CORE_PATH):
        return lint_source(
            textwrap.dedent(source), path, report_unused_suppressions=True
        )

    def test_used_suppression_not_reported(self):
        src = "import random  # smatch-lint: disable=SML001\n"
        assert self.unused(src) == []

    def test_stale_line_suppression_reported(self):
        src = "import secrets  # smatch-lint: disable=SML001\n"
        found = self.unused(src)
        assert codes(found) == ["SML000"]
        assert "unused suppression of SML001" in found[0].message

    def test_stale_file_wide_suppression_reported(self):
        src = "# smatch-lint: disable-file=SML003\nx = 1\n"
        found = self.unused(src, CRYPTO_PATH)
        assert codes(found) == ["SML000"]
        assert "file-wide" in found[0].message

    def test_path_ignored_rule_not_reported_as_unused(self):
        # SML001 does not run under tests/, so a suppression there is
        # not provably stale and must not be flagged
        src = "import random  # smatch-lint: disable=SML001\n"
        assert self.unused(src, "tests/test_widget.py") == []

    def test_default_mode_stays_quiet(self):
        src = "import secrets  # smatch-lint: disable=SML001\n"
        assert check(src) == []


class TestPathRuleIgnores:
    def test_tests_exempt_from_sml001_and_sml002(self):
        src = """\
        import random

        def test_roundtrip(key, derived_key):
            assert key == derived_key
        """
        assert check(src, "tests/test_widget.py") == []

    def test_tests_still_get_taint_rules(self):
        src = """\
        def encode(writer, session_key):
            writer.write_bytes(session_key)
        """
        assert codes(check(src, "tests/repro/net/test_framing.py")) == ["SML008"]


class TestSuppressionDirectives:
    def test_file_wide_scope(self):
        src = (
            "# smatch-lint: disable-file=SML001\n"
            "import random\n"
            "import random as r2\n"
        )
        assert check(src) == []

    def test_line_scope_does_not_leak(self):
        src = (
            "import random  # smatch-lint: disable=SML001\n"
            "import random as r2\n"
        )
        assert codes(check(src)) == ["SML001"]

    def test_multiple_codes_one_directive(self):
        src = (
            "def f(key, b):\n"
            "    assert key == b  # smatch-lint: disable=SML002,SML005\n"
        )
        assert check(src) == []

    def test_unknown_code_reported(self):
        src = "x = 1  # smatch-lint: disable=SML999\n"
        found = check(src)
        assert codes(found) == ["SML000"]
        assert "SML999" in found[0].message

    def test_syntax_error_reported(self):
        found = check("def f(:\n")
        assert codes(found) == ["SML000"]


class TestLiveTree:
    def test_src_tree_is_violation_free(self):
        violations, files_checked = lint_paths([REPO_ROOT / "src"])
        assert files_checked > 50
        assert violations == [], "\n".join(v.render() for v in violations)

    def test_tools_tree_is_violation_free(self):
        violations, _ = lint_paths([REPO_ROOT / "tools"])
        assert violations == [], "\n".join(v.render() for v in violations)

    def test_tests_tree_is_violation_free(self):
        violations, files_checked = lint_paths([REPO_ROOT / "tests"])
        assert files_checked > 10
        assert violations == [], "\n".join(v.render() for v in violations)

    def test_no_stale_suppressions_anywhere(self):
        violations, _ = lint_paths(
            [REPO_ROOT / "src", REPO_ROOT / "tools", REPO_ROOT / "tests"],
            report_unused_suppressions=True,
        )
        assert violations == [], "\n".join(v.render() for v in violations)

    def test_no_file_wide_suppressions_in_handlers(self):
        # the acceptance bar for the taint and concurrency rules: reviewed
        # line-level waivers only — never a blanket file-level one in the
        # boundary (net/, server/) or shared-state (parallel/, obs/) packages
        for directory in ("net", "server", "parallel", "obs"):
            for path in (REPO_ROOT / "src" / "repro" / directory).rglob("*.py"):
                assert "disable-file" not in path.read_text(encoding="utf-8"), path


class TestCli:
    @pytest.fixture()
    def seeded_file(self, tmp_path):
        bad = tmp_path / "src" / "repro" / "crypto" / "bad.py"
        bad.parent.mkdir(parents=True)
        bad.write_text("import random\nx = 1 / 3\n", encoding="utf-8")
        return bad

    def test_exit_zero_on_clean_file(self, tmp_path, capsys):
        clean = tmp_path / "clean.py"
        clean.write_text("x = 1\n", encoding="utf-8")
        assert main([str(clean)]) == 0
        assert "clean" in capsys.readouterr().err

    def test_exit_one_and_precise_report(self, seeded_file, capsys):
        assert main([str(seeded_file)]) == 1
        out = capsys.readouterr().out
        assert f"{seeded_file}:1:1: SML001" in out
        assert f"{seeded_file}:2:5: SML003" in out

    def test_json_format(self, seeded_file, capsys):
        assert main(["--format", "json", str(seeded_file)]) == 1
        report = json.loads(capsys.readouterr().out)
        assert report["files_checked"] == 1
        assert report["counts"] == {"SML001": 1, "SML003": 1}
        assert {v["code"] for v in report["violations"]} == {"SML001", "SML003"}
        assert all(
            {"path", "line", "col", "message"} <= set(v) for v in report["violations"]
        )

    def test_select_and_ignore(self, seeded_file):
        assert main(["--select", "SML001", str(seeded_file)]) == 1
        assert main(["--ignore", "SML001,SML003", str(seeded_file)]) == 0

    def test_unknown_code_is_usage_error(self, seeded_file):
        assert main(["--select", "SML9", str(seeded_file)]) == 2

    def test_missing_path_is_usage_error(self, tmp_path):
        assert main([str(tmp_path / "nope.py")]) == 2

    def test_no_paths_is_usage_error(self):
        assert main([]) == 2

    def test_list_rules(self, capsys):
        assert main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for code in (
            "SML001",
            "SML002",
            "SML003",
            "SML004",
            "SML005",
            "SML006",
            "SML007",
            "SML008",
            "SML009",
        ):
            assert code in out

    def test_report_unused_suppressions_flag(self, tmp_path, capsys):
        stale = tmp_path / "stale.py"
        stale.write_text(
            "import secrets  # smatch-lint: disable=SML001\n", encoding="utf-8"
        )
        assert main([str(stale)]) == 0
        assert main(["--report-unused-suppressions", str(stale)]) == 1
        assert "unused suppression" in capsys.readouterr().out

    def test_taint_debug_dump(self, tmp_path, capsys):
        handler = tmp_path / "src" / "repro" / "server" / "h.py"
        handler.parent.mkdir(parents=True)
        handler.write_text(
            "def handle(profile_key):\n"
            "    if profile_key:\n"
            "        return b'y'\n"
            "    return b'n'\n",
            encoding="utf-8",
        )
        assert main(["--taint-debug", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "handle" in out
        assert "branch@2" in out
        assert "profile_key" in out
