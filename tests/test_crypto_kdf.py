"""Tests for hashing / KDF / PRF helpers."""

import hashlib
import hmac as hmac_mod

import pytest
from hypothesis import given, settings, strategies as st

from repro.crypto.kdf import hash_to_int, hash_to_range, hkdf, prf, sha256
from repro.errors import ParameterError


class TestSha256:
    def test_matches_hashlib(self):
        assert sha256(b"abc") == hashlib.sha256(b"abc").digest()

    def test_concatenates_parts(self):
        assert sha256(b"ab", b"c") == sha256(b"abc")

    def test_counts_op(self):
        from repro.utils.instrument import counting

        with counting() as c:
            sha256(b"x")
        assert c.get("hash") == 1


class TestHkdf:
    def test_rfc5869_case_1(self):
        # RFC 5869 test case 1
        ikm = bytes.fromhex("0b" * 22)
        salt = bytes.fromhex("000102030405060708090a0b0c")
        info = bytes.fromhex("f0f1f2f3f4f5f6f7f8f9")
        okm = hkdf(ikm, info=info, salt=salt, length=42)
        assert okm.hex() == (
            "3cb25f25faacd57a90434f64d0362f2a"
            "2d2d0a90cf1a5a4c5db02d56ecc4c5bf"
            "34007208d5b887185865"
        )

    def test_length_control(self):
        assert len(hkdf(b"ikm", length=100)) == 100

    def test_distinct_infos_diverge(self):
        assert hkdf(b"k", info=b"a") != hkdf(b"k", info=b"b")

    def test_invalid_length(self):
        with pytest.raises(ParameterError):
            hkdf(b"k", length=0)

    @given(st.binary(min_size=1, max_size=64))
    @settings(max_examples=20)
    def test_deterministic(self, ikm):
        assert hkdf(ikm, info=b"x") == hkdf(ikm, info=b"x")


class TestPrf:
    def test_is_hmac_sha256(self):
        assert prf(b"key", b"msg") == hmac_mod.new(
            b"key", b"msg", hashlib.sha256
        ).digest()

    def test_multi_part(self):
        assert prf(b"key", b"m", b"sg") == prf(b"key", b"msg")


class TestHashToInt:
    def test_bit_bound(self):
        for bits in (1, 8, 255, 256, 300, 1024):
            v = hash_to_int(b"data", bits)
            assert 0 <= v < (1 << bits)

    def test_deterministic(self):
        assert hash_to_int(b"x", 512) == hash_to_int(b"x", 512)

    def test_invalid_bits(self):
        with pytest.raises(ParameterError):
            hash_to_int(b"x", 0)

    @given(st.binary(max_size=64), st.integers(min_value=1, max_value=10**30))
    @settings(max_examples=40)
    def test_hash_to_range_bound(self, data, modulus):
        assert 0 <= hash_to_range(data, modulus) < modulus

    def test_hash_to_range_invalid(self):
        with pytest.raises(ParameterError):
            hash_to_range(b"x", 0)
