#!/usr/bin/env python3
"""Verification in action: catching a compromised matching server.

The paper's malicious-server model: a compromised server "does not follow
the designated protocol but returns fake profile matching results".  This
example runs the same query against an honest server and three forging
servers, and shows the client's Vf check rejecting every forged entry while
accepting honest ones.

Run:  python examples/malicious_server_detection.py
"""

from repro.client.client import MobileClient
from repro.datasets import SIGCOMM09, ClusteredPopulation
from repro.experiments.common import build_scheme
from repro.net.messages import QueryRequest, UploadMessage
from repro.server.adversary import MaliciousBehavior, MaliciousServer
from repro.server.service import SMatchServer
from repro.utils.rand import SystemRandomSource


def run_query(server, scheme, querier, keys):
    request = QueryRequest(query_id=1, timestamp=0, user_id=querier.user_id)
    result = server.handle_query(request)
    client = MobileClient(querier, scheme)
    client._key = keys[querier.user_id]
    return client.verify_results(result), result


def main() -> None:
    rng = SystemRandomSource(seed=13)
    population = ClusteredPopulation(SIGCOMM09, theta=8, rng=rng)
    users = population.generate(40)
    scheme = build_scheme(SIGCOMM09, schema=population.schema, seed=13)
    uploads, keys = scheme.enroll_population([u.profile for u in users])
    querier = users[0].profile

    servers = [("honest", SMatchServer(query_k=5))]
    for behavior in (
        MaliciousBehavior.FAKE_USERS,
        MaliciousBehavior.FORGED_AUTH,
        MaliciousBehavior.SWAPPED_AUTH,
    ):
        servers.append(
            (behavior.value, MaliciousServer(behavior, query_k=5, rng=rng))
        )

    for name, server in servers:
        for payload in uploads.values():
            server.handle_upload(UploadMessage(payload=payload))
        outcome, raw = run_query(server, scheme, querier, keys)
        print(
            f"{name:>12}: returned {len(raw.entries)} entries, "
            f"accepted {len(outcome.accepted)}, "
            f"rejected {len(outcome.rejected)}"
            + ("  <-- forgery detected!" if outcome.forgery_detected else "")
        )
        if name == "honest":
            assert not outcome.forgery_detected
        elif raw.entries:
            # every forged entry must fail verification
            assert not outcome.accepted, f"{name} forgeries slipped through"

    print(
        "\nThe verification protocol (reversed fuzzy commitment) rejected "
        "every forged result:\n"
        "  - fake_users:  authenticators sealed under foreign fuzzy keys\n"
        "  - forged_auth: fabricated bytes fail authenticated decryption\n"
        "  - swapped_auth: the hash binds p^(s*ID) to the claimed user ID"
    )


if __name__ == "__main__":
    main()
