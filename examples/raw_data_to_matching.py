#!/usr/bin/env python3
"""From raw social data to private matches.

The paper's §V-A names three sources of profile data: user input (labels),
device capture (GPS), and behaviour analysis (keyword frequencies — the
Weibo interest definition).  This example starts from exactly that raw
material — strings, coordinates, post histories — builds profiles with
`repro.profiles`, and runs the private matching end to end.

Run:  python examples/raw_data_to_matching.py
"""

from repro.core.scheme import SMatch, SMatchParams
from repro.net.messages import QueryRequest, UploadMessage
from repro.profiles import (
    CategoricalEncoder,
    KeywordInterestEncoder,
    LocationGridEncoder,
    ProfileBuilder,
)
from repro.server.service import SMatchServer
from repro.utils.rand import SystemRandomSource

RAW_USERS = {
    1: ("Ada", "Ph.D.", (52.5200, 13.4050),  # Berlin
        ["synthesizers and techno all night", "techno techno techno",
         "modular synth build log"]),
    2: ("Ben", "Ph.D.", (52.5310, 13.3849),  # also Berlin
        ["new techno mix out now", "club night synth techno set"]),
    3: ("Chloe", "M.S.", (52.5105, 13.4200),  # Berlin again
        ["techno podcast episode", "synth jam", "techno!"]),
    4: ("Dan", "B.S.", (37.7749, -122.4194),  # San Francisco
        ["morning surf report", "surfboard wax review", "surf surf surf"]),
    5: ("Eve", "B.S.", (37.8044, -122.2712),  # Oakland
        ["weekend surf trip", "new surfboard day", "surf forecast"]),
}


def main() -> None:
    rng = SystemRandomSource(seed=77)

    builder = (
        ProfileBuilder()
        .add_categorical(
            "education",
            CategoricalEncoder(
                ["high school", "B.S.", "M.S.", "Ph.D."], spacing=6
            ),
        )
        .add_location("home", LocationGridEncoder(cells_per_axis=2048))
        .add_interest(
            "electronic_music",
            KeywordInterestEncoder(
                ["techno", "synth", "synthesizers", "modular"],
                max_level=63,
                counts_per_level=1,
            ),
        )
        .add_interest(
            "surfing",
            KeywordInterestEncoder(
                ["surf", "surfboard", "waves"], max_level=63,
                counts_per_level=1,
            ),
        )
    )

    scheme = SMatch(
        SMatchParams(
            schema=builder.schema, theta=8, plaintext_bits=64, query_k=2
        ),
        rng=rng,
    )
    server = SMatchServer(query_k=2)

    names = {}
    keys = {}
    for uid, (name, degree, coords, posts) in RAW_USERS.items():
        profile = builder.build(uid, degree, coords, posts, posts)
        names[uid] = name
        payload, key = scheme.enroll(profile)
        keys[uid] = key
        server.handle_upload(UploadMessage(payload=payload))
        print(
            f"{name:>6}: education={degree!r:>14} "
            f"cells={profile.values[1]},{profile.values[2]} "
            f"techno={profile.value_of('electronic_music'):>2} "
            f"surf={profile.value_of('surfing'):>2} "
            f"-> group {payload.key_index.hex()[:8]}"
        )

    print()
    for uid in (1, 4):
        result = server.handle_query(
            QueryRequest(query_id=uid, timestamp=0, user_id=uid)
        )
        verified = [
            names[e.user_id]
            for e in result.entries
            if scheme.verify(e.auth, keys[uid])
        ]
        print(f"{names[uid]}'s verified matches: {verified}")


if __name__ == "__main__":
    main()
