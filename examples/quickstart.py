#!/usr/bin/env python3
"""Quickstart: privacy-preserving profile matching in ~60 lines.

Builds a tiny mobile social service: a handful of users with social
profiles, an untrusted matching server, and one user who wants to find
people like her — without the server ever seeing a profile attribute.

Run:  python examples/quickstart.py
"""

from repro.core.profile import Profile, ProfileSchema
from repro.core.scheme import SMatch, SMatchParams
from repro.net.messages import QueryRequest, UploadMessage
from repro.server.service import SMatchServer
from repro.utils.rand import SystemRandomSource


def main() -> None:
    rng = SystemRandomSource(seed=2014)

    # 1. The shared profile format: every user fills the same attributes.
    schema = ProfileSchema.uniform(
        ["music", "sports", "food", "travel", "books", "movies"],
        cardinality=1 << 14,
    )

    # 2. Configure S-MATCH.  theta bounds "similar": profiles whose values
    #    all lie within theta of each other derive the same fuzzy key.
    scheme = SMatch(
        SMatchParams(schema=schema, theta=8, plaintext_bits=64, query_k=3),
        rng=rng,
    )

    # 3. A small community: two taste clusters.  Fuzzy keygen quantizes
    #    values with step theta + 1 = 9, so we park each cluster's taste
    #    vector on bucket midpoints (9k + 4): members that jitter by up to
    #    +-4 stay in the same bucket and derive the same key.  (Realistic
    #    populations get this structure from repro.datasets.synthetic's
    #    codeword-anchored generator instead of by hand.)
    step = 9

    def midpoints(raw):
        return [(v // step) * step + step // 2 for v in raw]

    def user(uid, base, jitter):
        values = tuple(
            max(0, min(schema.attributes[i].cardinality - 1, base[i] + j))
            for i, j in enumerate(jitter)
        )
        return Profile(uid, schema, values)

    indie = midpoints([4000, 1200, 9000, 3000, 7000, 5000])
    metal = midpoints([12000, 9500, 2000, 11000, 800, 10000])
    alice = user(1, indie, [0, 1, -2, 3, 0, 1])
    bob = user(2, indie, [2, -1, 1, 0, 2, -3])
    carol = user(3, indie, [-3, 2, 0, -1, 1, 2])
    dave = user(4, metal, [1, 0, 2, -2, 0, 1])
    erin = user(5, metal, [0, 3, -1, 1, -2, 0])

    # 4. Everyone encrypts and uploads.  The server stores only OPE
    #    ciphertext chains, hashed key indexes, and sealed authenticators.
    server = SMatchServer(query_k=3)
    keys = {}
    for profile in (alice, bob, carol, dave, erin):
        payload, key = scheme.enroll(profile)
        keys[profile.user_id] = key
        server.handle_upload(UploadMessage(payload=payload))
        print(
            f"user {profile.user_id} uploaded: "
            f"chain head 0x{payload.chain[0]:x}..., "
            f"group {payload.key_index.hex()[:8]}"
        )

    # 5. Alice queries for matches and verifies every claimed result.
    result = server.handle_query(QueryRequest(query_id=1, timestamp=0, user_id=1))
    print(f"\nserver returned {len(result.entries)} candidate matches for Alice")
    for entry in result.entries:
        ok = scheme.verify(entry.auth, keys[1])
        print(f"  user {entry.user_id}: verification {'PASSED' if ok else 'FAILED'}")

    accepted = [
        e.user_id for e in result.entries if scheme.verify(e.auth, keys[1])
    ]
    assert set(accepted) <= {2, 3}, "matches must come from Alice's taste cluster"
    print(f"\nAlice's verified matches: {accepted} (Bob and Carol, not the metalheads)")


if __name__ == "__main__":
    main()
