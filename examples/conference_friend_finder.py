#!/usr/bin/env python3
"""Conference friend finder: the paper's Infocom06 scenario, end to end.

Simulates the setting the Infocom06 dataset came from: conference attendees
run a mobile social app that finds people with similar profiles (position,
country, affiliation, interests).  The full stack is exercised — clustered
population generation, secure channels over an in-memory network, server-side
matching, client-side verification — plus the WiFi latency model to estimate
what a round trip would cost on the paper's 802.11n link.

Run:  python examples/conference_friend_finder.py
"""

from collections import Counter

from repro.client.client import MobileClient
from repro.core.profile import profile_distance
from repro.datasets import INFOCOM06, ClusteredPopulation
from repro.experiments.common import build_scheme
from repro.net.channel import SecureChannel
from repro.net.latency import LatencyModel
from repro.net.messages import UploadMessage
from repro.net.transport import InMemoryNetwork
from repro.server.service import SMatchServer
from repro.utils.rand import SystemRandomSource

THETA = 8
NUM_ATTENDEES = 78  # the real Infocom06 trace size


def main() -> None:
    rng = SystemRandomSource(seed=6)

    # --- generate the attendee population ------------------------------------
    population = ClusteredPopulation(INFOCOM06, theta=THETA, rng=rng)
    attendees = population.generate(NUM_ATTENDEES)
    clusters = Counter(u.categorical for u in attendees)
    print(
        f"{NUM_ATTENDEES} attendees in {len(clusters)} interest clusters "
        f"(largest: {max(clusters.values())})"
    )

    scheme = build_scheme(INFOCOM06, theta=THETA, schema=population.schema, seed=6)
    server = SMatchServer(query_k=5)
    network = InMemoryNetwork()
    link = LatencyModel()  # the paper's 53 Mbps 802.11n link

    # --- everyone uploads over a secure channel ------------------------------
    server_endpoint = network.endpoint("server")
    clients = {}
    upload_bits = 0
    for user in attendees:
        endpoint = network.endpoint(f"phone-{user.profile.user_id}")
        session_key = rng.randbytes(32)
        phone_ch = SecureChannel(endpoint, "server", session_key)
        server_ch = SecureChannel(server_endpoint, endpoint.name, session_key)
        client = MobileClient(user.profile, scheme, channel=phone_ch)
        sent = client.upload()
        upload_bits += sent * 8
        message = server_ch.recv()
        assert isinstance(message, UploadMessage)
        server.handle_upload(message)
        clients[user.profile.user_id] = (client, server_ch)
    print(
        f"enrolled {server.uploads_accepted} users, "
        f"{server.store.num_groups} key groups, "
        f"~{upload_bits / NUM_ATTENDEES:.0f} bits per upload "
        f"({link.transmission_time_s(upload_bits // NUM_ATTENDEES) * 1e3:.2f} ms air time)"
    )

    # --- one attendee looks for similar people -------------------------------
    searcher = attendees[0]
    client, server_ch = clients[searcher.profile.user_id]
    client.send_query(timestamp=1_100)
    response = server.handle_message(server_ch.recv())
    server_ch.send(response)
    outcome = client.receive_results()

    print(f"\nattendee {searcher.profile.user_id} found matches: {outcome.accepted}")
    for uid in outcome.accepted:
        other = attendees[uid - 1]
        dist = profile_distance(searcher.profile, other.profile)
        same_cluster = other.categorical == searcher.categorical
        print(
            f"  user {uid}: profile distance {dist} "
            f"({'same' if same_cluster else 'different'} interest cluster)"
        )
    if outcome.rejected:
        print(f"  rejected (failed verification): {outcome.rejected}")

    # --- sanity: every verified match is actually similar ---------------------
    for uid in outcome.accepted:
        other = attendees[uid - 1]
        assert (
            profile_distance(searcher.profile, other.profile) <= 4 * THETA
        ), "verified matches must be near the searcher"
    print("\nall verified matches are genuinely similar profiles")


if __name__ == "__main__":
    main()
