#!/usr/bin/env python3
"""A week in the life of an S-MATCH deployment.

Simulates the paper's operational model — "each user v updates her encrypted
social profile on the untrusted server periodically" — over a drifting user
population: interests shift a little every tick, devices re-upload on their
period, and queries interleave.  The printout shows what a service operator
would watch: key-group structure, re-upload churn, and the precision of
verified matches holding up under drift.

Run:  python examples/service_lifecycle.py
"""

from repro.datasets import INFOCOM06
from repro.sim import MobileServiceSimulation, SimConfig


def main() -> None:
    config = SimConfig(
        num_users=40,
        steps=14,          # two "weeks" of ticks
        upload_period=4,   # re-upload every 4 ticks
        query_probability=0.3,
        drift_sigma=0.8,   # gentle interest drift per tick
        theta=8,
        seed=21,
    )
    sim = MobileServiceSimulation(INFOCOM06, config)
    print(
        f"{config.num_users} users enrolled into "
        f"{sim.server.store.num_groups} key groups\n"
    )
    print("tick  uploads  moved  queries  verified  precision  groups  max")
    print("----  -------  -----  -------  --------  ---------  ------  ---")
    for _ in range(config.steps):
        m = sim.step()
        precision = (
            f"{m.match_precision:.2f}"
            if m.results_verified
            else "   -"
        )
        print(
            f"{m.step:>4}  {m.uploads:>7}  {m.group_changes:>5}  "
            f"{m.queries:>7}  {m.results_verified:>8}  {precision:>9}  "
            f"{m.num_groups:>6}  {m.largest_group:>3}"
        )

    summary = sim.summary()
    print(
        f"\nsummary: {summary['uploads']} re-uploads, "
        f"{summary['group_change_rate']:.1%} moved groups (drift churn), "
        f"{summary['verified_results']} verified matches at "
        f"{summary['match_precision']:.1%} precision"
    )
    assert summary["match_precision"] > 0.8


if __name__ == "__main__":
    main()
