#!/usr/bin/env python3
"""Why naive PPE fails on social data — the paper's Section IV, live.

Walks the two failure modes that motivate S-MATCH:

1. *Information leakage*: ordered known-plaintext pruning (Fig. 1) and
   landmark frequency analysis against raw low-entropy attributes encrypted
   directly with OPE under one shared key;
2. *Key sharing*: a single colluding user exposing the entire population;

then shows the S-MATCH countermeasures (entropy increase, chaining, fuzzy
keys) shutting each attack down, with numbers.

Run:  python examples/leakage_analysis.py
"""

from repro.attacks.collusion import collusion_attack, shared_key_exposure
from repro.attacks.frequency import FrequencyAnalysis
from repro.attacks.okpa import OkpaAdversary
from repro.core.entropy import AttributeMapping
from repro.crypto.ope import OPE, OpeParams
from repro.datasets import INFOCOM06, ClusteredPopulation
from repro.experiments.common import build_scheme
from repro.utils.rand import SystemRandomSource
from repro.utils.stats import entropy_from_probs


def main() -> None:
    rng = SystemRandomSource(seed=99)

    # the Infocom06 landmark attribute (one dominant value, tau = 0.8)
    idx = next(
        i
        for i, a in enumerate(INFOCOM06.attributes)
        if a.landmark_window == (0.8, 1.0)
    )
    probs = INFOCOM06.distributions()[idx]
    print(
        f"attribute {INFOCOM06.attributes[idx].name!r}: "
        f"{len(probs)} values, entropy {entropy_from_probs(probs):.2f} bits, "
        f"landmark probability {max(probs):.2f}"
    )

    def sample():
        u, acc = rng.random(), 0.0
        for v, p in enumerate(probs):
            acc += p
            if u <= acc:
                return v
        return len(probs) - 1

    values = [sample() for _ in range(200)]

    # --- attack 1: OKPA search-space pruning -----------------------------------
    ope = OPE(rng.randbytes(32), OpeParams(plaintext_bits=8))
    adversary = OkpaAdversary(rng=rng)
    population = sorted(set(values))
    known = population[:1]
    target = population[-1]
    outcome = adversary.play(ope.encrypt, population, known, target)
    print(
        f"\n[OKPA] raw values: search space {outcome.search_space_size} "
        f"-> guess probability {outcome.guess_probability:.2f}"
    )

    mapping = AttributeMapping(probs, k=32)
    mapped = sorted({mapping.map_value(v, rng) for v in values})
    ope32 = OPE(rng.randbytes(32), OpeParams(plaintext_bits=32))
    outcome_mapped = adversary.play(
        ope32.encrypt, mapped, mapped[:1], mapped[-1]
    )
    print(
        f"[OKPA] after big-jump mapping: search space "
        f"{outcome_mapped.search_space_size} "
        f"-> guess probability {outcome_mapped.guess_probability:.4f}"
    )
    assert outcome_mapped.search_space_size >= outcome.search_space_size

    # --- attack 2: landmark frequency analysis -----------------------------------
    analysis = FrequencyAnalysis(probs)
    naive_column = [ope.encrypt(v) for v in values]
    naive = analysis.attack_column(naive_column, values)
    mapped_column = [mapping.map_value(v, rng) for v in values]
    defended = analysis.attack_column(mapped_column, values)
    print(
        f"\n[frequency] naive OPE column: {naive.accuracy:.0%} of users "
        f"deanonymized; after one-to-N mapping: {defended.accuracy:.0%}"
    )
    assert naive.accuracy > defended.accuracy

    # --- attack 3: collusion (PR-KK) ------------------------------------------------
    population_obj = ClusteredPopulation(INFOCOM06, theta=8, rng=rng)
    users = population_obj.generate(40)
    scheme = build_scheme(INFOCOM06, schema=population_obj.schema, seed=99)
    uploads, keys = scheme.enroll_population([u.profile for u in users])
    colluder = users[0].profile.user_id
    fuzzy = collusion_attack(uploads, colluder, keys[colluder])
    shared = shared_key_exposure(list(uploads), colluder)
    print(
        f"\n[PR-KK] one shared key: {len(shared.exposed_users)}/40 users exposed "
        f"(advantage {shared.advantage:.2f})\n"
        f"[PR-KK] S-MATCH fuzzy keys: {len(fuzzy.exposed_users)}/40 exposed "
        f"(advantage {fuzzy.advantage:.2f} = m/N, Theorem 2)"
    )
    assert fuzzy.advantage < shared.advantage


if __name__ == "__main__":
    main()
