"""Figures 4(c)-(e): client computation cost vs plaintext size.

Reproduction targets (shapes, not constants): homoPM's client cost grows
steeply with the plaintext size while PM grows mildly; beyond a crossover
(the paper puts it near 256 bits) PM wins, and at the top sizes the gap is
at least one order of magnitude — the paper's headline claim.
"""

import pytest

from repro.experiments import fig4cde

SIZES = (64, 128, 256, 512, 1024, 2048)


@pytest.mark.parametrize("dataset", ["Infocom06", "Sigcomm09", "Weibo"])
def test_fig4cde_client_cost(dataset, benchmark, save_result):
    result = benchmark.pedantic(
        fig4cde.run, args=(dataset,), kwargs={"sizes": SIZES},
        rounds=1, iterations=1,
    )
    save_result(f"fig4cde_client_cost_{dataset.lower()}", result)

    pm = result.column("PM (ms)")
    pmv = result.column("PM+V (ms)")
    homo = result.column("homoPM (ms)")

    # verification adds cost on top of PM at every size
    assert all(v >= p for p, v in zip(pm, pmv))

    # homoPM grows steeply with k: 2048-bit cost dwarfs 64-bit cost
    assert homo[-1] > homo[0] * 50

    # beyond the crossover PM is cheaper, with >= 10x gap at k >= 1024
    rows = {r["plaintext size (bit)"]: r for r in result.rows}
    for k in (512, 1024, 2048):
        assert rows[k]["PM (ms)"] < rows[k]["homoPM (ms)"]
    assert homo[-1] / pm[-1] >= 10
    assert homo[-2] / pm[-2] >= 10

    # PM cost is keygen-dominated and far flatter than homoPM's growth
    assert pm[-1] / pm[0] < (homo[-1] / homo[0]) / 4


def test_fig4cde_pm_benchmark(benchmark):
    """pytest-benchmark statistics for the PM client pipeline at k=64."""
    costs = benchmark.pedantic(
        fig4cde.client_costs_ms,
        args=(fig4cde.DATASETS["Infocom06"], 64),
        kwargs={"repeats": 1},
        rounds=1,
        iterations=1,
    )
    assert costs["PM"] > 0
