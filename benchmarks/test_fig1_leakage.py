"""Figure 1: OKPA search-space pruning against OPE ciphertext stores."""

from repro.attacks.okpa import OkpaAdversary
from repro.crypto.ope import OPE, OpeParams
from repro.experiments import fig1
from repro.utils.rand import SystemRandomSource


def test_fig1_paper_panels(benchmark, save_result):
    result = fig1.paper_panels()
    save_result("fig1_panels", result)

    by_panel = {row["panel"]: row for row in result.rows}
    # The paper's illustrated numbers: N = 3 sparse, N = 39 dense.
    assert by_panel["(a) sparse"]["search space N"] == 3
    assert by_panel["(b) dense"]["search space N"] == 39

    benchmark(fig1.paper_panels)


def test_fig1_search_space_grows_with_density(benchmark, save_result):
    result = benchmark.pedantic(
        fig1.run,
        kwargs={"densities": (4, 16, 64), "trials": 15},
        rounds=1,
        iterations=1,
    )
    save_result("fig1_generalized", result)
    spaces = result.column("mean search space")
    # leakage shrinks (search space grows) as the store densifies
    assert spaces[0] < spaces[1] < spaces[2]
    # success probability falls correspondingly
    probs = result.column("mean success prob")
    assert probs[0] >= probs[-1]


def test_fig1_adversary_benchmark(benchmark):
    ope = OPE(b"bench" + bytes(27), OpeParams(plaintext_bits=16))
    adversary = OkpaAdversary(rng=SystemRandomSource(seed=5))
    population = list(range(0, 64000, 1000))

    def attack_round():
        return adversary.play(
            ope.encrypt, population, [0, 63000], 32000
        ).search_space_size

    size = benchmark(attack_round)
    assert size > 0
