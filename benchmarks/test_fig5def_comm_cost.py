"""Figures 5(d)-(f): communication cost vs entropy (plaintext size).

Reproduction targets: both curves grow linearly in the plaintext size with
slope d (one N = M ciphertext per attribute); the PM+V curve sits a constant
amount above PM — exactly the authenticator overhead — and Weibo's costs
exceed the 6-attribute datasets' at every size.
"""

import pytest

from repro.experiments import fig5def

SIZES = (64, 128, 256, 512, 1024, 2048)


@pytest.mark.parametrize("dataset", ["Infocom06", "Sigcomm09", "Weibo"])
def test_fig5def_comm_cost(dataset, benchmark, save_result):
    result = benchmark.pedantic(
        fig5def.run, args=(dataset,), kwargs={"sizes": SIZES},
        rounds=1, iterations=1,
    )
    save_result(f"fig5def_comm_cost_{dataset.lower()}", result)

    d = 17 if dataset == "Weibo" else 6
    pm = result.column("PM (bit)")
    pmv = result.column("PM+V (bit)")
    ks = result.column("entropy (bit)")

    # linear in k with slope d (analytic columns are exact)
    for i in range(1, len(ks)):
        assert pm[i] - pm[i - 1] == d * (ks[i] - ks[i - 1])
        # the PM+V - PM gap is the (constant) authenticator overhead
        assert pmv[i] - pm[i] == pmv[0] - pm[0]
    assert pmv[0] > pm[0]

    # the measured wire messages track the Section VII-C formulas
    for row in result.rows:
        analytic = row["PM+V (bit)"]
        measured = row["measured PM+V (bit)"]
        assert measured >= analytic * 0.9
        assert measured <= analytic + 6000  # field framing + length prefixes


def test_fig5def_weibo_costs_most(benchmark):
    tables = benchmark.pedantic(
        lambda: {
            name: fig5def.run(name, sizes=(64, 512, 2048))
            for name in ("Infocom06", "Sigcomm09", "Weibo")
        },
        rounds=1,
        iterations=1,
    )
    for i in range(3):
        assert (
            tables["Weibo"].rows[i]["PM (bit)"]
            > tables["Infocom06"].rows[i]["PM (bit)"]
        )
        assert (
            tables["Weibo"].rows[i]["PM (bit)"]
            > tables["Sigcomm09"].rows[i]["PM (bit)"]
        )


def test_homopm_communication_comparison(benchmark, save_result):
    """Extension: homoPM's wire cost dwarfs S-MATCH's and grows faster."""
    result = benchmark.pedantic(
        fig5def.homopm_comparison, args=("Infocom06",),
        rounds=1, iterations=1,
    )
    save_result("fig5def_homopm_comparison", result)
    ratios = result.column("ratio")
    assert all(r > 1 for r in ratios)
    assert ratios[-1] > ratios[0]  # the gap widens with k
    from repro.analysis import loglog_slope

    ks = result.column("plaintext size (bit)")
    homopm = result.column("homoPM (bit)")
    smatch = result.column("S-MATCH PM (bit)")
    # homoPM comm grows faster than S-MATCH's (its modulus scales with k)
    assert loglog_slope(ks, homopm) > loglog_slope(ks, smatch) * 0.99


def test_fig5def_benchmark(benchmark):
    bits = benchmark.pedantic(
        fig5def.comm_costs_bits,
        args=(fig5def.DATASETS["Infocom06"], 64),
        rounds=1,
        iterations=1,
    )
    assert bits["PM+V"] > bits["PM"]
