"""Table II: dataset properties (entropy statistics and landmark counts)."""

import pytest

from repro.datasets import INFOCOM06, SIGCOMM09, WEIBO, analyze_spec
from repro.experiments import table2

PAPER = {
    "Infocom06": dict(node=78, attrs=6, avg=3.10, mx=5.34, mn=0.82, l06=2, l08=1),
    "Sigcomm09": dict(node=76, attrs=6, avg=3.40, mx=5.62, mn=0.86, l06=3, l08=1),
    "Weibo": dict(node=1_000_000, attrs=17, avg=5.14, mx=9.21, mn=0.54, l06=5, l08=3),
}


def test_table2_dataset_properties(benchmark, save_result):
    result = table2.run()
    save_result("table2_datasets", result)

    for row in result.rows:
        paper = PAPER[row["Dataset"]]
        assert row["Node"] == paper["node"]
        assert row["#Attributes"] == paper["attrs"]
        assert row["Entropy AVG"] == pytest.approx(paper["avg"], abs=0.01)
        assert row["Entropy MAX"] == pytest.approx(paper["mx"], abs=0.01)
        assert row["Entropy MIN"] == pytest.approx(paper["mn"], abs=0.01)
        assert row["Landmark tau=0.6"] == paper["l06"]
        assert row["Landmark tau=0.8"] == paper["l08"]

    benchmark(lambda: [analyze_spec(s) for s in (INFOCOM06, SIGCOMM09, WEIBO)])
