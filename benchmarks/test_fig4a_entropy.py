"""Figure 4(a): entropy after entropy-increase + chaining vs perfect."""

from repro.datasets import INFOCOM06, SIGCOMM09, WEIBO
from repro.experiments import fig4a
from repro.experiments.common import PLAINTEXT_SIZES


def test_fig4a_entropy_curves(benchmark, save_result):
    result = fig4a.run(sizes=PLAINTEXT_SIZES)
    save_result("fig4a_entropy", result)

    for row in result.rows:
        k = row["plaintext size (bit)"]
        for name in ("Infocom06", "Sigcomm09", "Weibo"):
            # below but close to the perfect-entropy limit
            assert row[name] < k
            assert row[name] > k - 16

    # curves increase with the plaintext size
    for name in ("Infocom06", "Sigcomm09", "Weibo"):
        series = result.column(name)
        assert series == sorted(series)

    # Weibo's larger attribute-value counts cost it more entropy headroom
    # at every size (the paper: "the increment of entropy becomes slower")
    for row in result.rows:
        assert row["Weibo"] < row["Infocom06"]
        assert row["Weibo"] < row["Sigcomm09"]

    benchmark(lambda: fig4a.chained_entropy_bits(INFOCOM06, 64))


def test_fig4a_relative_gap_shrinks_with_k(benchmark):
    """The curves converge toward the perfect line relatively as k grows."""
    result = benchmark.pedantic(
        fig4a.run, kwargs={"sizes": (64, 2048)}, rounds=1, iterations=1
    )
    small = result.rows[0]
    large = result.rows[-1]
    for name in ("Infocom06", "Sigcomm09", "Weibo"):
        rel_small = small[name] / 64
        rel_large = large[name] / 2048
        assert rel_large > rel_small
