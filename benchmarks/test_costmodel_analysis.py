"""Section VII-C: the analytic cost model checked against real op counts."""

import pytest

from repro.datasets import INFOCOM06, WEIBO
from repro.experiments import costmodel


@pytest.fixture(scope="module")
def counts6():
    return costmodel.pipeline_op_counts(INFOCOM06, plaintext_bits=64)


def test_costmodel_table(benchmark, save_result):
    save_result("costmodel_op_counts", costmodel.run())
    benchmark.pedantic(costmodel.pipeline_op_counts, rounds=1, iterations=1)


def test_keygen_modexp_is_constant(benchmark, counts6):
    """Paper: '2 modular exponentiations ... for profile key generation'.

    The client performs exactly 2 modexps (blind + response check); the
    total of 4 includes the OPRF server's CRT decryption (2 half-size
    modexps), which the paper books on the RNG server, not the phone.
    """
    assert counts6["keygen"]["modexp"] == 4
    counts_big = benchmark.pedantic(
        costmodel.pipeline_op_counts,
        args=(INFOCOM06,),
        kwargs={"plaintext_bits": 2048},
        rounds=1,
        iterations=1,
    )
    assert counts_big["keygen"]["modexp"] == counts6["keygen"]["modexp"]


def test_keygen_hashes_independent_of_d_and_k(benchmark, counts6):
    """Paper: 'd + 2 hash operations' — an upper bound; our RSD hashes the
    whole fuzzy vector once, so the count is constant in d and k."""
    counts17 = benchmark.pedantic(
        costmodel.pipeline_op_counts,
        args=(WEIBO,),
        kwargs={"plaintext_bits": 64},
        rounds=1,
        iterations=1,
    )
    assert counts6["keygen"]["hash"] == counts17["keygen"]["hash"]
    # and the O(d) InitData structure shows in the mapping counts:
    assert counts6["init_data"]["entropy_map"] == 6
    assert counts17["init_data"]["entropy_map"] == 17


def test_enc_ope_work_scales_with_d_and_k(benchmark, counts6):
    """OPE work: one level per plaintext bit per attribute."""
    assert counts6["enc"]["ope_level"] == 6 * 64
    counts_big = benchmark.pedantic(
        costmodel.pipeline_op_counts,
        args=(INFOCOM06,),
        kwargs={"plaintext_bits": 128},
        rounds=1,
        iterations=1,
    )
    assert counts_big["enc"]["ope_level"] == 6 * 128


def test_verification_is_one_symmetric_op_each(benchmark, counts6):
    """Paper: 'one symmetric encryption operation and one symmetric
    decryption operation ... for the verification protocol'."""
    counts = benchmark.pedantic(
        costmodel.pipeline_op_counts, rounds=1, iterations=1
    )
    # one AES-CTR pass over the (element || hash) plaintext each way
    assert counts["auth"]["aes_block"] == counts["vf"]["aes_block"]
    assert counts["auth"]["modexp"] == 2  # p^s and (p^s)^ID
    assert counts["vf"]["modexp"] == 1  # t1^ID


def test_server_sort_then_search(benchmark):
    """Paper: O(|V| log |V|) sort once, O(log |V|) search per query."""
    from repro.experiments.common import build_population, build_scheme
    from repro.net.messages import QueryRequest, UploadMessage
    from repro.server.service import SMatchServer
    from repro.utils.instrument import counting

    def setup_and_query():
        pop = build_population(INFOCOM06, seed=9)
        users = pop.generate(20)
        scheme = build_scheme(INFOCOM06, schema=pop.schema, seed=9)
        uploads, _ = scheme.enroll_population([u.profile for u in users])
        server = SMatchServer(query_k=3)
        for payload in uploads.values():
            server.handle_upload(UploadMessage(payload=payload))
        uid = users[0].profile.user_id
        with counting() as cold:
            server.handle_query(
                QueryRequest(query_id=1, timestamp=0, user_id=uid)
            )
        with counting() as warm:
            server.handle_query(
                QueryRequest(query_id=2, timestamp=0, user_id=uid)
            )
        return cold, warm

    cold, warm = benchmark.pedantic(setup_and_query, rounds=1, iterations=1)
    assert cold.get("server_sort") == 1
    assert warm.get("server_sort") == 0  # cached order: search only
    assert warm.get("server_search") == 1
