"""Ablation benchmarks for the design choices DESIGN.md calls out."""

from repro.experiments import ablations


def test_chaining_defeats_frequency_analysis(benchmark, save_result):
    result = benchmark.pedantic(
        ablations.chaining_ablation, rounds=1, iterations=1
    )
    save_result("ablation_chaining", result)
    naive, smatch = result.column("attack accuracy")
    assert naive > 0.8  # landmark recovered against the strawman
    assert smatch < 0.3  # near-chance against mapping + chaining
    assert naive / max(smatch, 1e-6) > 3


def test_entropy_increase_blows_up_search_space(benchmark, save_result):
    result = benchmark.pedantic(
        ablations.entropy_increase_ablation, rounds=1, iterations=1
    )
    save_result("ablation_entropy_increase", result)
    raw, mapped = result.rows
    assert raw["mean search space"] <= 4  # low-entropy raw values collapse
    assert mapped["mean search space"] >= 4 * raw["mean search space"]


def test_ope_split_distributions(benchmark, save_result):
    result = benchmark.pedantic(
        ablations.ope_split_ablation, rounds=1, iterations=1
    )
    save_result("ablation_ope_split", result)
    for row in result.rows:
        assert row["order preserved"] is True
    deviations = {
        row["split"]: row["mean |ct - linear| / range"] for row in result.rows
    }
    # both stay bounded away from degenerate behaviour
    assert 0 < deviations["uniform"] < 0.5
    assert 0 < deviations["hypergeometric"] <= 0.5


def test_fuzzy_keys_bound_collusion_damage(benchmark, save_result):
    result = benchmark.pedantic(
        ablations.key_sharing_ablation, rounds=1, iterations=1
    )
    save_result("ablation_key_sharing", result)
    shared, fuzzy, worst = result.rows
    assert shared["advantage"] == 1.0
    assert fuzzy["advantage"] < 1.0
    assert worst["advantage"] < 1.0
    # Theorem 2's regime: m << N
    assert worst["advantage"] <= 0.5


def test_adaptive_ope_range_sizing(benchmark, save_result):
    """Future-work feature: OPE range width adapts to measured entropy."""
    result = benchmark.pedantic(
        ablations.adaptive_ope_ablation, rounds=1, iterations=1
    )
    save_result("ablation_adaptive_ope", result)
    expansions = result.column("expansion bits")
    # lower measured entropy -> more range slack
    assert expansions == sorted(expansions, reverse=True)
    assert all(result.column("order preserved"))


def test_dpe_leaks_more_than_ope(benchmark, save_result):
    """PPE granularity: DPE's Test answers distance queries, OPE's can't."""
    result = benchmark.pedantic(
        ablations.dpe_leakage_ablation, rounds=1, iterations=1
    )
    save_result("ablation_dpe_leakage", result)
    dpe_acc, ope_acc = result.column("closer-pair inference accuracy")
    assert dpe_acc == 1.0
    assert ope_acc < 0.75


def test_erasure_decoding_does_not_hurt(benchmark, save_result):
    result = benchmark.pedantic(
        ablations.erasure_decoding_ablation, rounds=1, iterations=1
    )
    save_result("ablation_erasure_decoding", result)
    plain, erasure = result.rows
    assert erasure["key agreement rate"] >= plain["key agreement rate"] - 0.02
