"""Communication scaling: ZLL13's two-party cost vs S-MATCH (paper §II).

The related-work claim behind Table I: two-party schemes "introduce large
communication cost when extended to a profile matching scheme in large
scale".  Reproduction target: ZLL13's measured wire bits grow linearly in
the community size while S-MATCH's stay constant, with the ratio exceeding
an order of magnitude by N ~= 40.
"""

from repro.experiments import scaling


def test_two_party_scaling(benchmark, save_result):
    result = benchmark.pedantic(
        scaling.run,
        kwargs={"community_sizes": (5, 10, 20, 40)},
        rounds=1,
        iterations=1,
    )
    save_result("scaling_two_party", result)

    zll = result.column("ZLL13 (bit)")
    smatch = result.column("S-MATCH PM+V (bit)")
    sizes = result.column("community size N")

    # S-MATCH cost is independent of N
    assert len(set(smatch)) == 1

    # ZLL13 grows linearly: cost per peer is constant
    per_peer = [z / (n - 1) for z, n in zip(zll, sizes)]
    assert max(per_peer) < min(per_peer) * 1.5

    # by N = 40 the two-party approach costs >= 10x more
    assert result.rows[-1]["ratio"] >= 10
