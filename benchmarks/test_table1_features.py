"""Table I: feature comparison, with live capability demonstrations."""

from repro.baselines.base import SCHEME_CAPABILITIES
from repro.experiments import table1


def test_table1_feature_matrix(benchmark, save_result):
    result = table1.run()
    save_result("table1_features", result)

    # The paper's Table I, row by row.
    rows = {row["Scheme"]: row for row in result.rows}
    assert rows["S-MATCH"]["Category"] == "SE"
    assert rows["S-MATCH"]["Security"] == "M/HBC"
    assert rows["S-MATCH"]["Verification"] == "yes"
    assert rows["S-MATCH"]["Fine-grained Match"] == "yes"
    assert rows["S-MATCH"]["Fuzzy Match"] == "yes"
    assert rows["ZLL13"]["Fuzzy Match"] == "no"
    for scheme in ("ZZS12", "LCY11", "NCD13", "LGD12"):
        assert rows[scheme]["Category"] == "HE"
        assert rows[scheme]["Verification"] == "no"
    for scheme in ("LCY11", "NCD13"):
        assert rows[scheme]["Fine-grained Match"] == "no"

    # Live demonstrations back the implemented rows.
    checks = benchmark(table1.demonstrate_capabilities)
    assert checks == {
        "smatch_fuzzy": True,
        "smatch_verification": True,
        "homopm_fine_grained": True,
        "psi_not_fine_grained": True,
        "zll13_not_fuzzy": True,
        "zll13_verifiable": True,
        "ncd13_not_fine_grained": True,
        "lgd12_fine_grained": True,
        "lgd12_runaway_protected": True,
    }


def test_implemented_schemes_flagged(benchmark):
    implemented = benchmark(
        lambda: {
            name
            for name, cap in SCHEME_CAPABILITIES.items()
            if cap.implemented
        }
    )
    assert implemented == set(SCHEME_CAPABILITIES)  # every Table-I row
