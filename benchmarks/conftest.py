"""Benchmark-suite fixtures.

Each benchmark reproduces one table/figure: it computes the full result
table once, asserts the reproduction criteria (who wins, rough factors,
crossovers — not absolute numbers), prints the table, and saves it under
``benchmarks/results/`` for EXPERIMENTS.md.  The ``benchmark`` fixture is
applied to a representative operation of that experiment.
"""

from __future__ import annotations

import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def results_dir() -> pathlib.Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture
def save_result(results_dir):
    def _save(name: str, table) -> None:
        text = table.format() if hasattr(table, "format") else str(table)
        (results_dir / f"{name}.txt").write_text(text + "\n")
        print("\n" + text)

    return _save
