"""Testbed-calibrated Figs. 4(c)-(e): the crossover on phone-class hardware.

Reproduction target: with the Nexus-One-class per-operation constants, the
PM/homoPM crossover falls in the paper's neighbourhood (between 64 and 512
bits), homoPM reaches the paper's 1e4-1e5 ms range at 2048 bits, and PM
stays within a phone-practical few hundred ms across the sweep — the
magnitudes Fig. 4(c) reports.
"""

from repro.experiments import testbed


def test_testbed_calibrated_crossover(benchmark, save_result):
    result = benchmark.pedantic(
        testbed.run,
        kwargs={"sizes": (64, 128, 256, 512, 1024, 2048)},
        rounds=1,
        iterations=1,
    )
    save_result("testbed_client_cost_infocom06", result)

    rows = {r["plaintext size (bit)"]: r for r in result.rows}

    # crossover in the paper's neighbourhood: homoPM may win at 64 bits but
    # loses from 256 on
    assert rows[64]["homoPM (ms)"] < rows[64]["PM (ms)"] * 3
    for k in (256, 512, 1024, 2048):
        assert rows[k]["PM (ms)"] < rows[k]["homoPM (ms)"]
    # at least one order of magnitude past 512 bits (the headline claim)
    for k in (1024, 2048):
        assert rows[k]["homoPM (ms)"] / rows[k]["PM (ms)"] >= 10

    # paper's absolute ranges on the phone: homoPM reaches 1e4-1e6 ms,
    # PM stays below ~1e3 ms
    assert 1e4 <= rows[2048]["homoPM (ms)"] <= 1e6
    assert rows[2048]["PM (ms)"] < 1e3


def test_server_device_estimates_cheaper(benchmark):
    """The PC profile estimates the same pipelines ~10x cheaper."""
    from repro.client.device import NEXUS_ONE, PC_SERVER

    def both():
        phone = testbed.estimated_client_costs_ms(
            "Infocom06", 256, device=NEXUS_ONE
        )
        pc = testbed.estimated_client_costs_ms(
            "Infocom06", 256, device=PC_SERVER
        )
        return phone, pc

    phone, pc = benchmark.pedantic(both, rounds=1, iterations=1)
    assert pc["PM"] < phone["PM"]
    assert pc["homoPM"] < phone["homoPM"]
