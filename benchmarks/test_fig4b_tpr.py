"""Figure 4(b): true positive rate vs RS-decoder threshold.

Reproduction targets: the TPR at theta = 8 lands near the paper's 97.2% /
95.8% / 93.0% (Infocom06 / Sigcomm09 / Weibo), stays in the figure's
[0.85, 1.0] band everywhere, and does not *improve* materially as the
threshold loosens from 5 to 10.
"""

import math

import pytest

from repro.experiments import fig4b
from repro.experiments.common import ExperimentResult

THETAS = (5, 6, 7, 8, 9, 10)
TOLERANCE = 0.05


def build_table() -> ExperimentResult:
    result = ExperimentResult(
        name="Fig. 4(b): true positive rate vs theta",
        columns=["theta", "Infocom06", "Sigcomm09", "Weibo"],
        notes="Full pipeline, k=5 results, 64-bit plaintexts, seeds 1-5.",
    )
    for theta in THETAS:
        row = {"theta": theta}
        for spec in (fig4b.INFOCOM06, fig4b.SIGCOMM09, fig4b.WEIBO):
            row[spec.name] = fig4b.measure_tpr(
                spec, theta, num_users=60, seeds=(1, 2, 3, 4, 5)
            )
        result.add_row(**row)
    return result


def test_fig4b_tpr(benchmark, save_result):
    tpr_table = benchmark.pedantic(build_table, rounds=1, iterations=1)
    save_result("fig4b_tpr", tpr_table)

    # paper's theta = 8 operating point
    at8 = next(r for r in tpr_table.rows if r["theta"] == 8)
    for name, paper in fig4b.PAPER_TPR_AT_8.items():
        measured = at8[name]
        assert not math.isnan(measured)
        assert abs(measured - paper) <= TOLERANCE, (
            f"{name}: measured {measured:.3f} vs paper {paper} "
            f"(tolerance {TOLERANCE})"
        )

    # the figure's band, and no material improvement with looser thresholds
    for row in tpr_table.rows:
        for name in ("Infocom06", "Sigcomm09", "Weibo"):
            assert 0.85 <= row[name] <= 1.0
    first, last = tpr_table.rows[0], tpr_table.rows[-1]
    for name in ("Infocom06", "Sigcomm09", "Weibo"):
        assert last[name] <= first[name] + 0.04


def test_fig4b_keygen_benchmark(benchmark):
    """Benchmark the fuzzy key-agreement measurement for one cell."""
    rate = benchmark.pedantic(
        fig4b.measure_tpr,
        args=(fig4b.INFOCOM06, 8),
        kwargs={"num_users": 20, "seeds": (3,)},
        rounds=1,
        iterations=1,
    )
    assert 0.8 <= rate <= 1.0
