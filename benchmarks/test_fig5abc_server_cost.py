"""Figures 5(a)-(c): server computation cost vs plaintext size.

Reproduction targets: the PM server cost is nearly flat in the plaintext
size (integer comparisons on OPE ciphertexts), homoPM's online cost grows
steeply with it and with the user count, and across the sweep homoPM is
orders of magnitude more expensive per query.
"""

import pytest

from repro.experiments import fig4cde, fig5abc

SIZES = (64, 128, 256, 512, 1024, 2048)
NUM_USERS = 20


@pytest.mark.parametrize("dataset", ["Infocom06", "Sigcomm09", "Weibo"])
def test_fig5abc_server_cost(dataset, benchmark, save_result):
    result = benchmark.pedantic(
        fig5abc.run,
        args=(dataset,),
        kwargs={"sizes": SIZES, "num_users": NUM_USERS},
        rounds=1,
        iterations=1,
    )
    save_result(f"fig5abc_server_cost_{dataset.lower()}", result)

    pm = result.column("PM (ms)")
    homo = result.column("homoPM (ms)")

    # homoPM grows steeply with plaintext size
    assert homo[-1] > homo[0] * 50
    # PM stays nearly flat (within a small factor across a 32x size sweep)
    assert max(pm) < min(pm) * 8 + 5
    # PM wins by >= 10x from 256-bit plaintexts on
    rows = {r["plaintext size (bit)"]: r for r in result.rows}
    for k in (256, 512, 1024, 2048):
        assert rows[k]["homoPM (ms)"] / rows[k]["PM (ms)"] >= 10


def test_fig5abc_homopm_grows_with_users(benchmark):
    """The paper: homoPM's online cost 'increases by the size of users'."""

    def both():
        small = fig5abc.server_costs_ms(
            fig4cde.DATASETS["Infocom06"], 64, num_users=10
        )
        large = fig5abc.server_costs_ms(
            fig4cde.DATASETS["Infocom06"], 64, num_users=40
        )
        return small, large

    small, large = benchmark.pedantic(both, rounds=1, iterations=1)
    assert large["homoPM"] > small["homoPM"] * 2


def test_fig5abc_pm_benchmark(benchmark):
    costs = benchmark.pedantic(
        fig5abc.server_costs_ms,
        args=(fig4cde.DATASETS["Infocom06"], 64),
        kwargs={"num_users": 15, "repeats": 1},
        rounds=1,
        iterations=1,
    )
    assert costs["PM"] > 0
