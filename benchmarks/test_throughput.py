"""Operational throughput: the numbers a deployment would size against.

Not a paper figure — a genuine pytest-benchmark suite measuring the three
hot paths of a running service at the paper's parameters (64-bit
plaintexts, theta = 8): client enrollment, server query handling, and
client-side verification — plus the head-to-head pairs of the performance
layer (docs/PERFORMANCE.md): OPE encryption with the node cache on vs off,
``enroll_population`` across execution backends (serial vs GIL-bound
threads vs a warmed process pool), churn-then-query with the incremental
matcher vs a forced full resort, and the sharded server tier (upload +
bulk query across process shards) vs the legacy single store.

The suite runs under an active :mod:`repro.obs` metrics registry and ends
by writing ``benchmarks/results/BENCH_throughput.json`` — measured per-op
latencies, the comparison ratios under ``speedups``, a machine-speed
calibration sample, and the metrics snapshot — which
``tools/check_perf_trend.py`` compares against the committed baseline in
CI (and, on a >= 4-core runner, enforces the
``process_enroll_speedup >= 2.0``, ``shm_enroll_speedup >= 1.3``, and
``sharded_upload_query_speedup >= 1.5`` floors; the measured values are
recorded unconditionally).
"""

import dataclasses
import hashlib
import json
import os
import pickle
import time

import pytest

from repro.crypto.kdf import sha256
from repro.datasets import INFOCOM06
from repro.experiments.common import build_population, build_scheme
from repro.net.messages import QueryRequest, UploadMessage
from repro.obs.metrics import disable_metrics, enable_metrics
from repro.parallel import (
    ArenaWriter,
    BulkMatchContext,
    ContextSegment,
    ProcessBackend,
    ResultArena,
    ThreadBackend,
)
from repro.server.matcher import ServerMatcher
from repro.server.service import SMatchServer
from repro.server.sharding import ShardedTier
from repro.server.storage import ProfileStore

#: Worker count for the multicore head-to-heads (capped: oversubscribing a
#: small runner just measures scheduler thrash).
BENCH_WORKERS = min(4, os.cpu_count() or 1)

#: Shard count for the sharded-tier head-to-head: one shard per bench
#: worker, but never fewer than two (a one-shard "sharded" run measures
#: only the routing overhead, not the fan-out).
BENCH_SHARDS = max(2, BENCH_WORKERS)

#: Population multiplier for the sharded head-to-head: the 40-user world
#: tiled ``SHARD_TILE_COPIES`` times.  Copies map onto
#: ``SHARD_GROUP_TILES`` distinct key-index tiles per original group, so
#: the tiled groups are both *numerous* (placement spread across the
#: shards) and *large* (copies / tiles members per original member —
#: enough that the per-group rescore work a churn batch triggers
#: dominates the coordinator's fan-out overhead).
SHARD_TILE_COPIES = 128
SHARD_GROUP_TILES = 4


def _tiled_payloads(uploads, copies, group_tiles):
    """Tile the world's payloads with fresh uids over ``group_tiles`` groups."""
    tiled = []
    for copy in range(copies):
        for uid in sorted(uploads):
            payload = uploads[uid]
            new_uid = uid + 1_000_000 * copy
            tiled.append(
                dataclasses.replace(
                    payload,
                    user_id=new_uid,
                    # the authenticator is bound to its uid; rebind the
                    # copy (the bench never runs Vf on tiled entries)
                    auth=dataclasses.replace(payload.auth, user_id=new_uid),
                    key_index=sha256(
                        b"bench-shard-tile",
                        (copy % group_tiles).to_bytes(4, "big")
                        + payload.key_index,
                    ),
                )
            )
    return tiled


@pytest.fixture(scope="module")
def metrics_registry():
    registry = enable_metrics()
    yield registry
    disable_metrics()


@pytest.fixture(scope="module")
def world(metrics_registry):
    pop = build_population(INFOCOM06, seed=33)
    users = pop.generate(40)
    scheme = build_scheme(INFOCOM06, schema=pop.schema, seed=33)
    uploads, keys = scheme.enroll_population([u.profile for u in users])
    server = SMatchServer(query_k=5)
    for payload in uploads.values():
        server.handle_upload(UploadMessage(payload=payload))
    return pop, users, scheme, uploads, keys, server


@pytest.fixture(scope="module")
def ope_worlds(metrics_registry):
    """Two schemes with a real (expanded-range) OPE: node cache on and off.

    The default throughput world runs the paper's N = M setting where OPE
    degenerates to the identity, so the cache comparison needs the expanded
    range (16 extra bits) that gives the descent actual split points.
    """
    pop = build_population(INFOCOM06, seed=33)
    profile = pop.generate(1)[0].profile
    on = build_scheme(
        INFOCOM06, schema=pop.schema, seed=33, ope_expansion_bits=16
    )
    off = build_scheme(
        INFOCOM06,
        schema=pop.schema,
        seed=33,
        ope_expansion_bits=16,
        ope_cache=False,
    )
    key = on.keygen(profile)
    mapped = on.init_data(profile)
    on.encrypt(profile, key, mapped)  # warm the cache once
    return on, off, profile, key, mapped


def _timed_us(fn, *args, iterations=5):
    """Total/mean wall time of ``iterations`` calls, integer microseconds."""
    start = time.perf_counter_ns()
    for _ in range(iterations):
        fn(*args)
    total_us = (time.perf_counter_ns() - start) // 1000
    return {
        "iterations": iterations,
        "total_us": total_us,
        "per_op_us": total_us // iterations,
    }


def _calibration_us():
    """A fixed pure-Python workload timing machine speed, for trend scaling."""
    start = time.perf_counter_ns()
    digest = b"\x00" * 32
    for _ in range(2000):
        digest = hashlib.sha256(digest).digest()
    acc = 0
    for i in range(200_000):
        acc = (acc * 31 + i) & 0xFFFFFFFF
    return max(1, (time.perf_counter_ns() - start) // 1000)


def _biggest_group(server):
    """(key_index, members dict) of the largest key group."""
    return max(server.store.groups(), key=lambda pair: len(pair[1]))


def test_enrollment_throughput(benchmark, world):
    _, users, scheme, _, _, _ = world
    profile = users[0].profile
    payload, _ = benchmark(scheme.enroll, profile)
    assert payload.user_id == profile.user_id


def test_warm_query_throughput(benchmark, world):
    _, users, _, _, _, server = world
    request = QueryRequest(
        query_id=1, timestamp=0, user_id=users[0].profile.user_id
    )
    server.handle_query(request)  # warm the sort cache
    result = benchmark(server.handle_query, request)
    assert result.query_id == 1


def test_cold_query_throughput(benchmark, world):
    _, users, _, _, _, server = world
    request = QueryRequest(
        query_id=2, timestamp=0, user_id=users[0].profile.user_id
    )

    def cold_query():
        server.matcher.invalidate()
        return server.handle_query(request)

    result = benchmark(cold_query)
    assert result.query_id == 2


def test_verification_throughput(benchmark, world):
    _, users, scheme, uploads, keys, server = world
    uid = users[0].profile.user_id
    result = server.handle_query(
        QueryRequest(query_id=3, timestamp=0, user_id=uid)
    )
    if not result.entries:
        pytest.skip("query user is in a singleton group")
    entry = result.entries[0]
    verdict = benchmark(scheme.verify, entry.auth, keys[uid])
    assert isinstance(verdict, bool)


def test_upload_message_encode_throughput(benchmark, world):
    _, _, _, uploads, _, _ = world
    payload = next(iter(uploads.values()))
    message = UploadMessage(payload=payload)
    encoded = benchmark(message.encode)
    assert len(encoded) > 0


def test_ope_cache_speeds_up_encrypt(benchmark, ope_worlds):
    """The warmed node cache beats the raw HMAC descent by >= 2x."""
    on, off, profile, key, mapped = ope_worlds
    cached = _timed_us(on.encrypt, profile, key, mapped, iterations=20)
    uncached = _timed_us(off.encrypt, profile, key, mapped, iterations=20)
    assert on.encrypt(profile, key, mapped) == off.encrypt(profile, key, mapped)
    benchmark.pedantic(on.encrypt, args=(profile, key, mapped), rounds=5)
    assert cached["per_op_us"] * 2 <= uncached["per_op_us"], (cached, uncached)


def test_incremental_matcher_beats_resort(benchmark, world):
    """Churn + query via incremental maintenance beats a forced resort 2x."""
    _, _, _, uploads, _, server = world
    _, members = _biggest_group(server)
    if len(members) < 3:
        pytest.skip("no group big enough for churn benchmarking")
    ids = iter(members)
    query_uid, churn_uid = next(ids), next(ids)
    request = QueryRequest(query_id=5, timestamp=0, user_id=query_uid)
    churn_payload = uploads[churn_uid]
    server.handle_query(request)  # warm the group index

    def churn_incremental():
        server.store.remove(churn_uid)
        server.handle_upload(UploadMessage(payload=churn_payload))
        return server.handle_query(request)

    def churn_resort():
        server.store.remove(churn_uid)
        server.handle_upload(UploadMessage(payload=churn_payload))
        server.matcher.invalidate()
        return server.handle_query(request)

    incremental = _timed_us(churn_incremental, iterations=30)
    resort = _timed_us(churn_resort, iterations=30)
    server.handle_query(request)  # leave the index warm for later tests
    benchmark.pedantic(churn_incremental, rounds=5)
    assert incremental["per_op_us"] * 2 <= resort["per_op_us"], (
        incremental,
        resort,
    )


def test_emit_bench_artifact(world, ope_worlds, metrics_registry, results_dir):
    """Write BENCH_throughput.json: latencies, speedups, metrics snapshot."""
    pop, users, scheme, uploads, keys, server = world
    uid = users[0].profile.user_id
    request = QueryRequest(query_id=9, timestamp=0, user_id=uid)
    server.handle_query(request)  # warm the group index

    def cold_query():
        server.matcher.invalidate()
        server.handle_query(request)

    # -- OPE node cache: warmed hit path vs raw HMAC descent ----------------
    cache_on, cache_off, ope_profile, ope_key, ope_mapped = ope_worlds
    encrypt_on = _timed_us(
        cache_on.encrypt, ope_profile, ope_key, ope_mapped, iterations=20
    )
    encrypt_off = _timed_us(
        cache_off.encrypt, ope_profile, ope_key, ope_mapped, iterations=20
    )

    # -- batch enrollment: serial vs thread vs process backends, same seed --
    # Op names enroll_population_w1/w4 predate the backend API and are kept
    # for baseline continuity (check_perf_trend compares shared op names).
    profiles = [u.profile for u in users]
    enroll_w1 = _timed_us(
        lambda: scheme.enroll_population(profiles, backend="serial", seed=77),
        iterations=1,
    )
    thread_backend = ThreadBackend(BENCH_WORKERS)
    enroll_w4 = _timed_us(
        lambda: scheme.enroll_population(
            profiles, backend=thread_backend, seed=77
        ),
        iterations=1,
    )
    thread_backend.close()
    with ProcessBackend(BENCH_WORKERS) as process_backend:
        # Warm the pool first so the measurement captures steady-state
        # fan-out, not one-time worker spawn + key-material transfer.
        scheme.enroll_population(
            profiles[:BENCH_WORKERS], backend=process_backend, seed=77
        )
        enroll_proc = _timed_us(
            lambda: scheme.enroll_population(
                profiles, backend=process_backend, seed=77
            ),
            iterations=1,
        )

    # -- matcher churn: incremental maintenance vs forced resort ------------
    _, members = _biggest_group(server)
    ids = iter(members)
    churn_query_uid, churn_uid = next(ids), next(ids)
    churn_request = QueryRequest(
        query_id=11, timestamp=0, user_id=churn_query_uid
    )
    churn_payload = uploads[churn_uid]
    server.handle_query(churn_request)

    def churn_incremental():
        server.store.remove(churn_uid)
        server.handle_upload(UploadMessage(payload=churn_payload))
        server.handle_query(churn_request)

    def churn_resort():
        server.store.remove(churn_uid)
        server.handle_upload(UploadMessage(payload=churn_payload))
        server.matcher.invalidate()
        server.handle_query(churn_request)

    churn_inc = _timed_us(churn_incremental, iterations=30)
    churn_res = _timed_us(churn_resort, iterations=30)

    # -- zero-copy result transport: pickle vs shared-memory arena ----------
    # PR-5 worst case: chunk_size = 1, every future carries one
    # (uid, payload, key) tuple.  Worker-side products (full pickles /
    # sealed arena slots) are staged up front — on a multicore runner the
    # workers produce them concurrently — so the head-to-head times the
    # parent's serial intake: chunk unpickle (plus arena resolve) and one
    # downstream wire encode per profile (the store-and-forward path,
    # where a lazy arena view splices its bytes instead of re-encoding).
    transport_items = [(u, uploads[u], keys[u]) for u in sorted(uploads)]
    full_blobs = [
        pickle.dumps([item], protocol=pickle.HIGHEST_PROTOCOL)
        for item in transport_items
    ]
    arena = ResultArena(slots=len(transport_items))
    tiny_blobs = []
    slot_descs = []
    for index, (user_id, payload, key) in enumerate(transport_items):
        desc = arena.slot_descriptor(index)
        writer = ArenaWriter(desc)
        ref = writer.put_record(payload)
        writer.seal()
        tiny_blobs.append(
            pickle.dumps([(user_id, ref, key)], protocol=pickle.HIGHEST_PROTOCOL)
        )
        slot_descs.append(desc)

    def pickle_intake():
        out = []
        for blob in full_blobs:
            ((_, payload, _),) = pickle.loads(blob)
            out.append(UploadMessage(payload=payload).encode())
        return out

    def arena_intake():
        out = []
        for blob, desc in zip(tiny_blobs, slot_descs):
            ((_, view, _),) = arena.resolve(pickle.loads(blob), desc, "bench")
            out.append(UploadMessage(payload=view).encode())
        return out

    assert pickle_intake() == arena_intake()  # byte-identical forwarding
    shm_pickle = shm_arena = None
    for _ in range(3):  # interleaved best-of-3: the ratio gates CI
        sample_pickle = _timed_us(pickle_intake, iterations=10)
        sample_arena = _timed_us(arena_intake, iterations=10)
        if shm_pickle is None or sample_pickle["per_op_us"] < shm_pickle["per_op_us"]:
            shm_pickle = sample_pickle
        if shm_arena is None or sample_arena["per_op_us"] < shm_arena["per_op_us"]:
            shm_arena = sample_arena
    arena.close()

    # -- warm-start context shipping: per-worker pickle vs one segment ------
    # The bulk-match context (frozen score orders + memberships) either
    # gets pickled into every worker pipe, or written once to a shared
    # segment that each worker decodes at pool warm-start.
    bulk_users = [u.profile.user_id for u in users]
    orders = {}
    score_tables = {}
    memberships = {}
    handles = {}
    for user_id in bulk_users:
        key_index = server.store.get(user_id).key_index
        handle = handles.get(key_index)
        if handle is None:
            ordered, scores = server.matcher._group_index(key_index).snapshot()
            handle = handles[key_index] = len(handles)
            orders[handle] = tuple(ordered)
            score_tables[handle] = scores
        memberships[user_id] = (handle, score_tables[handle][user_id])
    # Tile the 40-user world's settled orders up to ~4096 entries: the
    # proximity-matching populations the transport layer targets (see
    # docs/PERFORMANCE.md) — at the raw world size the comparison only
    # measures the segment-create syscall floor, not the shipping cost.
    base_entries = max(1, sum(len(order) for order in orders.values()))
    tile = max(1, 4096 // base_entries)
    bulk_context = BulkMatchContext(
        orders={
            handle: tuple(
                (score, user_id + 1_000_000 * copy)
                for copy in range(tile)
                for score, user_id in order
            )
            for handle, order in orders.items()
        },
        memberships=memberships,
        k=server.query_k,
    )

    def ship_context_pickle():
        for _ in range(BENCH_WORKERS):
            pickle.loads(
                pickle.dumps(bulk_context, protocol=pickle.HIGHEST_PROTOCOL)
            )

    def ship_context_shm():
        segment = ContextSegment.create(bulk_context)
        worker_handle = segment.handle()
        try:
            for _ in range(BENCH_WORKERS):
                worker_handle.load()
        finally:
            segment.close()

    ship_pickle = _timed_us(ship_context_pickle, iterations=10)
    ship_shm = _timed_us(ship_context_shm, iterations=10)

    # -- sharded server tier: one store vs BENCH_SHARDS process shards ------
    # A churn-then-bulk-query round against (a) the legacy single
    # ProfileStore + ServerMatcher with a serial bulk query, and (b) a
    # ShardedTier whose shard workers sort, match, and assemble result
    # entries in their own processes.  Both engines are pre-loaded with
    # the full tiled population (pools spawned, group indexes settled), so
    # a timed iteration is the steady-state serving shape: one drifted
    # re-upload per group — dirtying every group, which the following
    # queries must rescore — then a bulk query over a per-group sample.
    # The rescore work is per-shard-local and scales with group size; the
    # coordinator only ships the small churn batch, the query uids, and
    # k-entry results, which is what lets the shard fan-out win.
    shard_payloads = _tiled_payloads(
        uploads, SHARD_TILE_COPIES, SHARD_GROUP_TILES
    )
    shard_groups = {}
    for payload in shard_payloads:
        shard_groups.setdefault(payload.key_index, []).append(payload)
    churn_members = [members[0] for members in shard_groups.values()]
    shard_query_uids = [
        member.user_id
        for members in shard_groups.values()
        for member in members[1:3]
    ]

    def _drift(payload, bump):
        return dataclasses.replace(
            payload, chain=tuple(c + bump for c in payload.chain)
        )

    legacy_store = ProfileStore()
    legacy_matcher = ServerMatcher(legacy_store)
    for payload in shard_payloads:
        legacy_store.put(payload)
    legacy_bump = [0]

    def legacy_upload_query():
        legacy_bump[0] += 1
        for payload in churn_members:
            legacy_store.put(_drift(payload, legacy_bump[0]))
        return legacy_matcher.query_bulk(
            shard_query_uids, server.query_k, backend="serial"
        )

    with ShardedTier(shards=BENCH_SHARDS, mode="process") as shard_tier:
        shard_tier.put_batch(shard_payloads)
        tier_bump = [0]

        def sharded_upload_query():
            tier_bump[0] += 1
            shard_tier.put_batch(
                [_drift(p, tier_bump[0]) for p in churn_members]
            )
            return shard_tier.query_bulk(shard_query_uids, k=server.query_k)

        # both engines run the identical op sequence; the first (warm-up)
        # iteration doubles as the equivalence check
        legacy_result = legacy_upload_query()
        sharded_result = sharded_upload_query()
        assert {
            user_id: [e.user_id for e in entries]
            for user_id, entries in sharded_result.items()
        } == legacy_result  # same matches before timing the engines
        shard_legacy = _timed_us(legacy_upload_query, iterations=3)
        shard_tier_timing = _timed_us(sharded_upload_query, iterations=3)

    some_payload = uploads[uid]
    ops = {
        "enroll": _timed_us(scheme.enroll, users[0].profile, iterations=3),
        "warm_query": _timed_us(server.handle_query, request),
        "cold_query": _timed_us(cold_query),
        "verify": _timed_us(scheme.verify, some_payload.auth, keys[uid]),
        "enroll_encrypt_cache_on": encrypt_on,
        "enroll_encrypt_cache_off": encrypt_off,
        "enroll_population_w1": enroll_w1,
        "enroll_population_w4": enroll_w4,
        "enroll_population_process": enroll_proc,
        "churn_query_incremental": churn_inc,
        "churn_query_resort": churn_res,
        "shm_enroll_intake_pickle": shm_pickle,
        "shm_enroll_intake_arena": shm_arena,
        "bulk_context_ship_pickle": ship_pickle,
        "bulk_context_ship_shm": ship_shm,
        "sharded_upload_query_legacy": shard_legacy,
        "sharded_upload_query_tier": shard_tier_timing,
    }

    def ratio(numer, denom):
        return round(numer["per_op_us"] / max(1, denom["per_op_us"]), 3)

    speedups = {
        # OPE-encryption stage of enrollment (full enrollment is
        # OPRF-modexp-bound; see docs/PERFORMANCE.md for the breakdown)
        "ope_cache_encrypt": ratio(encrypt_off, encrypt_on),
        "incremental_churn_query": ratio(churn_res, churn_inc),
        # informational: thread workers are GIL-bound in pure Python, the
        # ThreadBackend contract is determinism, not wall-clock
        "parallel_enroll_w4": ratio(enroll_w1, enroll_w4),
        # the real multicore win: a warmed process pool sidesteps the GIL
        # for the OPRF modexps.  CI enforces >= 2.0 on >= 4-core runners
        # via --min-speedup; recorded unconditionally for trend visibility.
        "process_enroll_speedup": ratio(enroll_w1, enroll_proc),
        # zero-copy result transport (parent-side intake + forward, PR-5
        # worst-case chunk_size=1).  CI enforces >= 1.3 on >= 4-core
        # runners via --min-speedup; recorded unconditionally.
        "shm_enroll_speedup": ratio(shm_pickle, shm_arena),
        # one shared context segment vs BENCH_WORKERS pickled pipe copies;
        # informational — the win scales with the worker count, so a
        # small runner (BENCH_WORKERS == 1) can legitimately report < 1.
        "shm_bulk_match_speedup": ratio(ship_pickle, ship_shm),
        # the sharded server tier: upload + bulk-query against
        # BENCH_SHARDS process shards vs the legacy single store.  CI
        # enforces >= 1.5 on >= 4-core runners via --min-speedup; on a
        # small runner the fan-out overhead dominates and the recorded
        # value can legitimately sit below 1.
        "sharded_upload_query_speedup": ratio(
            shard_legacy, shard_tier_timing
        ),
    }

    if cache_on.ope_cache is not None:
        cache_on.ope_cache.flush_metrics()

    artifact = {
        "suite": "throughput",
        "params": {
            "dataset": INFOCOM06.name,
            "num_users": len(users),
            "plaintext_bits": scheme.params.plaintext_bits,
            "theta": scheme.params.theta,
            "query_k": server.query_k,
            "ope_comparison_expansion_bits": 16,
            "bench_workers": BENCH_WORKERS,
            "bench_shards": BENCH_SHARDS,
            "shard_tile_copies": SHARD_TILE_COPIES,
            "shard_group_tiles": SHARD_GROUP_TILES,
        },
        "calibration_us": _calibration_us(),
        "ops": ops,
        "speedups": speedups,
        "metrics": metrics_registry.snapshot(),
    }
    path = results_dir / "BENCH_throughput.json"
    path.write_text(json.dumps(artifact, indent=2, sort_keys=True) + "\n")
    parsed = json.loads(path.read_text())
    assert parsed["ops"]["enroll"]["per_op_us"] > 0
    assert parsed["speedups"]["ope_cache_encrypt"] >= 2.0
    assert parsed["speedups"]["incremental_churn_query"] >= 2.0
    assert parsed["metrics"]["counters"]["smatch_server_uploads_total"] >= len(users)


def test_emit_trace_artifact(world, results_dir):
    """Record one traced bench round and write benchmarks/results/trace.jsonl.

    The trace is the attribution artifact for the perf gate: when a floor
    in ``tools/check_perf_trend.py`` fails, CI diffs this file against the
    committed ``benchmarks/baselines/trace.baseline.jsonl`` (same seeded
    workload, so the span-path forests align) and names the most-regressed
    subtree.  Refresh policy: regenerate the baseline by copying this
    file over it in the same PR as any deliberate pipeline-shape or
    performance change — never to paper over an unexplained regression.
    """
    from repro.obs.analysis import (
        build_forest,
        folded_stacks,
        parse_folded,
        render_folded,
    )
    from repro.obs.trace import span, tracing

    pop, users, scheme, uploads, keys, server = world
    profiles = [u.profile for u in users[:8]]
    with tracing("bench.throughput", suite="throughput") as tracer:
        with span("bench.enroll", population=len(profiles)):
            fresh_uploads, fresh_keys = scheme.enroll_population(
                profiles, backend="serial", seed=77
            )
        with span("bench.upload"):
            bench_server = SMatchServer(query_k=5)
            for payload in fresh_uploads.values():
                bench_server.handle_upload(UploadMessage(payload=payload))
        uid = profiles[0].user_id
        with span("bench.query"):
            result = bench_server.handle_query(
                QueryRequest(query_id=21, timestamp=0, user_id=uid)
            )
        with span("bench.verify"):
            for entry in result.entries:
                scheme.verify(entry.auth, fresh_keys[uid])
    text = tracer.to_jsonl()
    (results_dir / "trace.jsonl").write_text(text, encoding="utf-8")

    records = [json.loads(line) for line in text.splitlines()]
    names = {record["name"] for record in records}
    assert {"bench.throughput", "bench.enroll", "bench.upload", "bench.query"} <= names
    assert "scheme.enroll" in names  # the pipeline spans nest under the bench phases
    # conservation law the analysis layer guarantees: folded self-times
    # re-aggregate to exactly the root duration, integer microseconds
    roots = build_forest(records)
    assert len(roots) == 1
    folded = parse_folded(render_folded(folded_stacks(records)))
    assert sum(folded.values()) == roots[0].record["duration_us"]
