"""Operational throughput: the numbers a deployment would size against.

Not a paper figure — a genuine pytest-benchmark suite measuring the three
hot paths of a running service at the paper's parameters (64-bit
plaintexts, theta = 8): client enrollment, server query handling, and
client-side verification.
"""

import pytest

from repro.datasets import INFOCOM06
from repro.experiments.common import build_population, build_scheme
from repro.net.messages import QueryRequest, UploadMessage
from repro.server.service import SMatchServer


@pytest.fixture(scope="module")
def world():
    pop = build_population(INFOCOM06, seed=33)
    users = pop.generate(40)
    scheme = build_scheme(INFOCOM06, schema=pop.schema, seed=33)
    uploads, keys = scheme.enroll_population([u.profile for u in users])
    server = SMatchServer(query_k=5)
    for payload in uploads.values():
        server.handle_upload(UploadMessage(payload=payload))
    return pop, users, scheme, uploads, keys, server


def test_enrollment_throughput(benchmark, world):
    _, users, scheme, _, _, _ = world
    profile = users[0].profile
    payload, _ = benchmark(scheme.enroll, profile)
    assert payload.user_id == profile.user_id


def test_warm_query_throughput(benchmark, world):
    _, users, _, _, _, server = world
    request = QueryRequest(
        query_id=1, timestamp=0, user_id=users[0].profile.user_id
    )
    server.handle_query(request)  # warm the sort cache
    result = benchmark(server.handle_query, request)
    assert result.query_id == 1


def test_cold_query_throughput(benchmark, world):
    _, users, _, _, _, server = world
    request = QueryRequest(
        query_id=2, timestamp=0, user_id=users[0].profile.user_id
    )

    def cold_query():
        server.matcher.invalidate()
        return server.handle_query(request)

    result = benchmark(cold_query)
    assert result.query_id == 2


def test_verification_throughput(benchmark, world):
    _, users, scheme, uploads, keys, server = world
    uid = users[0].profile.user_id
    result = server.handle_query(
        QueryRequest(query_id=3, timestamp=0, user_id=uid)
    )
    if not result.entries:
        pytest.skip("query user is in a singleton group")
    entry = result.entries[0]
    verdict = benchmark(scheme.verify, entry.auth, keys[uid])
    assert isinstance(verdict, bool)


def test_upload_message_encode_throughput(benchmark, world):
    _, _, _, uploads, _, _ = world
    payload = next(iter(uploads.values()))
    message = UploadMessage(payload=payload)
    encoded = benchmark(message.encode)
    assert len(encoded) > 0
