"""Operational throughput: the numbers a deployment would size against.

Not a paper figure — a genuine pytest-benchmark suite measuring the three
hot paths of a running service at the paper's parameters (64-bit
plaintexts, theta = 8): client enrollment, server query handling, and
client-side verification.

The suite runs under an active :mod:`repro.obs` metrics registry and ends
by writing ``benchmarks/results/BENCH_throughput.json`` — measured per-op
latencies plus the metrics snapshot — so the perf trajectory accumulates a
machine-readable artifact per PR.
"""

import json
import time

import pytest

from repro.datasets import INFOCOM06
from repro.experiments.common import build_population, build_scheme
from repro.net.messages import QueryRequest, UploadMessage
from repro.obs.metrics import disable_metrics, enable_metrics
from repro.server.service import SMatchServer


@pytest.fixture(scope="module")
def metrics_registry():
    registry = enable_metrics()
    yield registry
    disable_metrics()


@pytest.fixture(scope="module")
def world(metrics_registry):
    pop = build_population(INFOCOM06, seed=33)
    users = pop.generate(40)
    scheme = build_scheme(INFOCOM06, schema=pop.schema, seed=33)
    uploads, keys = scheme.enroll_population([u.profile for u in users])
    server = SMatchServer(query_k=5)
    for payload in uploads.values():
        server.handle_upload(UploadMessage(payload=payload))
    return pop, users, scheme, uploads, keys, server


def _timed_us(fn, *args, iterations=5):
    """Total/mean wall time of ``iterations`` calls, integer microseconds."""
    start = time.perf_counter_ns()
    for _ in range(iterations):
        fn(*args)
    total_us = (time.perf_counter_ns() - start) // 1000
    return {
        "iterations": iterations,
        "total_us": total_us,
        "per_op_us": total_us // iterations,
    }


def test_enrollment_throughput(benchmark, world):
    _, users, scheme, _, _, _ = world
    profile = users[0].profile
    payload, _ = benchmark(scheme.enroll, profile)
    assert payload.user_id == profile.user_id


def test_warm_query_throughput(benchmark, world):
    _, users, _, _, _, server = world
    request = QueryRequest(
        query_id=1, timestamp=0, user_id=users[0].profile.user_id
    )
    server.handle_query(request)  # warm the sort cache
    result = benchmark(server.handle_query, request)
    assert result.query_id == 1


def test_cold_query_throughput(benchmark, world):
    _, users, _, _, _, server = world
    request = QueryRequest(
        query_id=2, timestamp=0, user_id=users[0].profile.user_id
    )

    def cold_query():
        server.matcher.invalidate()
        return server.handle_query(request)

    result = benchmark(cold_query)
    assert result.query_id == 2


def test_verification_throughput(benchmark, world):
    _, users, scheme, uploads, keys, server = world
    uid = users[0].profile.user_id
    result = server.handle_query(
        QueryRequest(query_id=3, timestamp=0, user_id=uid)
    )
    if not result.entries:
        pytest.skip("query user is in a singleton group")
    entry = result.entries[0]
    verdict = benchmark(scheme.verify, entry.auth, keys[uid])
    assert isinstance(verdict, bool)


def test_upload_message_encode_throughput(benchmark, world):
    _, _, _, uploads, _, _ = world
    payload = next(iter(uploads.values()))
    message = UploadMessage(payload=payload)
    encoded = benchmark(message.encode)
    assert len(encoded) > 0


def test_emit_bench_artifact(world, metrics_registry, results_dir):
    """Write BENCH_throughput.json: per-op latencies + metrics snapshot."""
    _, users, scheme, uploads, keys, server = world
    uid = users[0].profile.user_id
    request = QueryRequest(query_id=9, timestamp=0, user_id=uid)
    server.handle_query(request)  # warm the sort cache

    def cold_query():
        server.matcher.invalidate()
        server.handle_query(request)

    some_payload = uploads[uid]
    ops = {
        "enroll": _timed_us(scheme.enroll, users[0].profile, iterations=3),
        "warm_query": _timed_us(server.handle_query, request),
        "cold_query": _timed_us(cold_query),
        "verify": _timed_us(scheme.verify, some_payload.auth, keys[uid]),
    }
    artifact = {
        "suite": "throughput",
        "params": {
            "dataset": INFOCOM06.name,
            "num_users": len(users),
            "plaintext_bits": scheme.params.plaintext_bits,
            "theta": scheme.params.theta,
            "query_k": server.query_k,
        },
        "ops": ops,
        "metrics": metrics_registry.snapshot(),
    }
    path = results_dir / "BENCH_throughput.json"
    path.write_text(json.dumps(artifact, indent=2, sort_keys=True) + "\n")
    parsed = json.loads(path.read_text())
    assert parsed["ops"]["enroll"]["per_op_us"] > 0
    assert parsed["metrics"]["counters"]["smatch_server_uploads_total"] >= len(users)
