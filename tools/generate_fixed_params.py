"""Generate the fixed crypto parameters embedded in repro.crypto.fixed_params.

Run offline once; output is written to src/repro/crypto/fixed_params.py.
"""
import sys, time
from repro.ntheory.primes import generate_prime, generate_safe_prime
from repro.utils.rand import SystemRandomSource

rng = SystemRandomSource(seed=20260705)

paillier_sizes = [256, 384, 640, 1152, 2176, 4224]
rsa_sizes = [512, 1024, 2048]
safe_sizes = [512]

out = ['"""Precomputed prime parameters for tests and benchmarks.',
       '',
       'Generated once by tools/generate_fixed_params.py (seeded, reproducible).',
       'These are fixtures: deployments must generate fresh keys with',
       'PaillierKeyPair.generate / RSAKeyPair.generate / SchnorrGroup.generate.',
       '"""',
       '']
out.append("PAILLIER_PRIMES = {")
for bits in paillier_sizes:
    t = time.time()
    while True:
        p = generate_prime(bits // 2, rng)
        q = generate_prime(bits - bits // 2, rng)
        if p != q and (p * q).bit_length() == bits:
            break
    out.append(f"    {bits}: ({p}, {q}),")
    print(f"paillier {bits}: {time.time()-t:.1f}s", file=sys.stderr, flush=True)
out.append("}")
out.append("")
out.append("RSA_PRIMES = {")
for bits in rsa_sizes:
    t = time.time()
    while True:
        p = generate_prime(bits // 2, rng)
        q = generate_prime(bits - bits // 2, rng)
        if p != q and (p * q).bit_length() == bits:
            break
    out.append(f"    {bits}: ({p}, {q}),")
    print(f"rsa {bits}: {time.time()-t:.1f}s", file=sys.stderr, flush=True)
out.append("}")
out.append("")
out.append("SAFE_PRIMES = {")
for bits in safe_sizes:
    t = time.time()
    p = generate_safe_prime(bits, rng)
    out.append(f"    {bits}: {p},")
    print(f"safe {bits}: {time.time()-t:.1f}s", file=sys.stderr, flush=True)
out.append("}")
out.append("")

with open("/root/repo/src/repro/crypto/fixed_params.py", "w") as f:
    f.write("\n".join(out))
print("done", file=sys.stderr)
