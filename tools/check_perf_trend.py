"""CI gate: compare a fresh throughput-bench artifact against the baseline.

Usage::

    PYTHONPATH=src python -m pytest benchmarks/test_throughput.py -q
    python -m tools.check_perf_trend \
        benchmarks/results/BENCH_throughput.json \
        benchmarks/baselines/BENCH_throughput.baseline.json \
        --min-speedup ope_cache_encrypt=2.0 \
        --min-speedup incremental_churn_query=2.0

Two families of checks:

* **Trend**: every op present in both artifacts must not regress by more
  than ``--tolerance`` (default 50%) after scaling the baseline by the
  ratio of the two runs' ``calibration_us`` samples — a fixed pure-Python
  workload timed on each machine, which factors the raw speed difference
  between the CI runner and the machine that committed the baseline out of
  the comparison.  Deltas below ``--min-delta-us`` (default 100µs) are
  ignored: at microsecond scale the scheduler noise exceeds any signal.
* **Floors**: each repeatable ``--min-speedup NAME=VALUE`` flag asserts
  ``artifact["speedups"][NAME] >= VALUE`` — the head-to-head ratios the
  performance layer (docs/PERFORMANCE.md) must keep delivering regardless
  of machine speed.

When any check fails and ``--trace CURRENT --trace-baseline BASELINE``
point at the two runs' ``trace.jsonl`` files, the gate additionally prints
the span-path diff attribution (``repro.obs.analysis.diff_traces``) naming
the single most-regressed subtree — the same report ``repro obs diff``
produces — so a red gate says *where* the time went, not just that it
went.

Exit codes: 0 all checks pass, 1 a regression or missing floor, 2 usage
error (bad flags, unreadable/invalid artifacts).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Dict, List, Tuple

DEFAULT_TOLERANCE = 0.5
DEFAULT_MIN_DELTA_US = 100


def load_artifact(path: Path) -> Dict:
    """Parse one BENCH_throughput.json; raises ValueError on bad shape."""
    try:
        artifact = json.loads(path.read_text())
    except OSError as exc:
        raise ValueError(f"{path}: unreadable ({exc})") from exc
    except json.JSONDecodeError as exc:
        raise ValueError(f"{path}: invalid JSON ({exc})") from exc
    ops = artifact.get("ops")
    if not isinstance(ops, dict) or not ops:
        raise ValueError(f"{path}: artifact has no ops table")
    for name, entry in ops.items():
        per_op = entry.get("per_op_us") if isinstance(entry, dict) else None
        if not isinstance(per_op, int) or per_op < 0:
            raise ValueError(
                f"{path}: ops[{name!r}] has no usable per_op_us"
            )
    calibration = artifact.get("calibration_us")
    if not isinstance(calibration, int) or calibration < 1:
        raise ValueError(f"{path}: artifact has no calibration_us sample")
    return artifact


def parse_min_speedups(flags: List[str]) -> Dict[str, float]:
    """Parse repeated ``NAME=VALUE`` flags; raises ValueError on bad shape."""
    floors: Dict[str, float] = {}
    for flag in flags:
        name, sep, raw = flag.partition("=")
        if not sep or not name:
            raise ValueError(f"--min-speedup {flag!r} is not NAME=VALUE")
        try:
            floors[name] = float(raw)
        except ValueError as exc:
            raise ValueError(
                f"--min-speedup {flag!r}: {raw!r} is not a number"
            ) from exc
    return floors


def check_trend(
    current: Dict,
    baseline: Dict,
    tolerance: float,
    min_delta_us: int,
    problems: List[str],
) -> List[Tuple[str, int, float]]:
    """Compare shared ops; returns (name, measured, allowed) rows checked."""
    scale = current["calibration_us"] / baseline["calibration_us"]
    rows = []
    for name in sorted(set(current["ops"]) & set(baseline["ops"])):
        measured = current["ops"][name]["per_op_us"]
        base = baseline["ops"][name]["per_op_us"] * scale
        allowed = base * (1.0 + tolerance)
        rows.append((name, measured, allowed))
        if measured <= allowed:
            continue
        if measured - base < min_delta_us:
            continue  # sub-noise absolute delta; ignore the percentage
        problems.append(
            f"op {name!r} regressed: {measured}us > {allowed:.0f}us "
            f"allowed (baseline {base:.0f}us machine-scaled x{scale:.2f}, "
            f"tolerance {tolerance:.0%})"
        )
    if not rows:
        problems.append("no ops shared between artifact and baseline")
    return rows


def check_speedups(
    current: Dict, floors: Dict[str, float], problems: List[str]
) -> None:
    """Assert each required speedup floor against the artifact."""
    speedups = current.get("speedups", {})
    for name, floor in sorted(floors.items()):
        value = speedups.get(name)
        if not isinstance(value, (int, float)):
            problems.append(f"artifact has no speedup named {name!r}")
            continue
        if value < floor:
            problems.append(
                f"speedup {name!r} below floor: {value} < {floor}"
            )


def load_trace(path: Path) -> List[Dict]:
    """Parse a trace.jsonl into span records; raises ValueError when bad."""
    try:
        text = path.read_text(encoding="utf-8")
    except OSError as exc:
        raise ValueError(f"{path}: unreadable ({exc})") from exc
    records: List[Dict] = []
    for line in text.splitlines():
        if not line.strip():
            continue
        try:
            records.append(json.loads(line))
        except json.JSONDecodeError as exc:
            raise ValueError(f"{path}: invalid JSONL ({exc})") from exc
    if not records:
        raise ValueError(f"{path}: empty trace")
    return records


def attribute_failure(
    trace_current: Path, trace_baseline: Path
) -> List[str]:
    """Lines attributing a failed gate to the most-regressed span subtree."""
    # imported lazily: the gate itself must stay runnable without PYTHONPATH
    # tweaks when only the artifact checks are requested
    try:
        from repro.obs.analysis import diff_traces, render_diff
    except ImportError:
        return [
            "attribution: repro.obs.analysis not importable "
            "(run with PYTHONPATH=src)"
        ]
    try:
        base_records = load_trace(trace_baseline)
        current_records = load_trace(trace_current)
    except ValueError as exc:
        return [f"attribution: {exc}"]
    report = diff_traces(base_records, current_records)
    lines = ["attribution (span-path trace diff):"]
    lines.extend("  " + line for line in render_diff(report).splitlines())
    return lines


def main(argv: List[str]) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m tools.check_perf_trend",
        description=(
            "Compare BENCH_throughput.json against the committed baseline."
        ),
    )
    parser.add_argument("current", type=Path, help="fresh bench artifact")
    parser.add_argument("baseline", type=Path, help="committed baseline")
    parser.add_argument(
        "--tolerance",
        type=float,
        default=DEFAULT_TOLERANCE,
        help="allowed fractional regression per op (default 0.5 = 50%%)",
    )
    parser.add_argument(
        "--min-delta-us",
        type=int,
        default=DEFAULT_MIN_DELTA_US,
        help="ignore regressions smaller than this many microseconds",
    )
    parser.add_argument(
        "--min-speedup",
        action="append",
        default=[],
        metavar="NAME=VALUE",
        help="require artifact speedups[NAME] >= VALUE (repeatable)",
    )
    parser.add_argument(
        "--trace",
        type=Path,
        default=None,
        help="current run's trace.jsonl, used to attribute a failure",
    )
    parser.add_argument(
        "--trace-baseline",
        type=Path,
        default=None,
        help="baseline trace.jsonl to diff --trace against on failure",
    )
    try:
        args = parser.parse_args(argv)
    except SystemExit as exc:
        return 2 if exc.code else 0

    try:
        floors = parse_min_speedups(args.min_speedup)
        current = load_artifact(args.current)
        baseline = load_artifact(args.baseline)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.tolerance < 0 or args.min_delta_us < 0:
        print("error: tolerance and min-delta-us must be >= 0", file=sys.stderr)
        return 2

    problems: List[str] = []
    rows = check_trend(
        current, baseline, args.tolerance, args.min_delta_us, problems
    )
    check_speedups(current, floors, problems)

    if problems:
        for problem in problems:
            print(f"FAIL {problem}", file=sys.stderr)
        if args.trace is not None and args.trace_baseline is not None:
            for line in attribute_failure(args.trace, args.trace_baseline):
                print(line, file=sys.stderr)
        return 1
    print(
        f"ok: {len(rows)} ops within {args.tolerance:.0%} of baseline, "
        f"{len(floors)} speedup floors held"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
