"""Repository tooling (fixture generators, the smatch-lint static analyzer)."""
