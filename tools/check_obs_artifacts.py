"""CI gate: validate the telemetry artifacts of an instrumented run.

Usage::

    python -m repro simulate --users 8 --steps 2 --obs-dir obs-artifacts
    python -m tools.check_obs_artifacts obs-artifacts --scan-sources src/repro

Checks that ``trace.jsonl`` parses line-by-line, that parent links resolve
to earlier spans, that durations and tallies are sane non-negative
integers, and that the spans cover the paper's pipeline phases (profile
build, entropy increase, fuzzy keygen + OPRF, OPE encryption, server
upload handling, verification).  Also checks ``metrics.json`` /
``metrics.prom`` exist and agree on the upload counter.

Metric names are validated against the **single registry** in
:mod:`repro.obs.metrics` (the ``METRICS`` catalog the emitting code also
imports its ``M_*`` constants from) — a name outside the registry is
almost always a typo that would silently split a time series.  With
``--scan-sources DIR`` the gate additionally walks the source tree's ASTs
and fails on any ``metric_inc`` / ``metric_set`` / ``metric_observe``
call whose metric-name argument is neither a registered literal nor a
name imported from :mod:`repro.obs.metrics`.

Exit codes: 0 all checks pass, 1 a check failed, 2 usage error.
"""

from __future__ import annotations

import argparse
import ast
import json
import sys
from pathlib import Path
from typing import FrozenSet, List

_REPO_ROOT = Path(__file__).resolve().parents[1]
if str(_REPO_ROOT / "src") not in sys.path:
    sys.path.insert(0, str(_REPO_ROOT / "src"))

from repro.obs.metrics import metric_names  # noqa: E402

# Every phase the Section-III pipeline must traverse in one simulation
# round.  Query-dependent spans (server.handle_query, match.score_table)
# are deliberately absent: queries are probabilistic in the simulation.
REQUIRED_SPANS = (
    "simulate",
    "sim.run",
    "sim.step",
    "profile.build",
    "scheme.enroll",
    "keygen.fuzzy_extract",
    "keygen.oprf",
    "scheme.init_data",
    "scheme.encrypt",
    "ope.encrypt",
    "verification.auth",
    "server.handle_upload",
)

_SPAN_INT_FIELDS = ("start_us", "duration_us")

#: The single source of truth (repro.obs.metrics.METRICS) — the
#: hand-maintained whitelist this used to be needed editing in three
#: consecutive PRs before it was generated.
KNOWN_METRICS: FrozenSet[str] = metric_names()

#: The module-level emit helpers whose first argument is a metric name.
_EMIT_HELPERS = ("metric_inc", "metric_set", "metric_observe")

_REGISTRY_MODULE = "repro.obs.metrics"


def check_trace(path: Path, problems: List[str]) -> None:
    """Validate trace.jsonl structure, parent links, and phase coverage."""
    try:
        lines = path.read_text().splitlines()
    except OSError as exc:
        problems.append(f"{path}: unreadable ({exc})")
        return
    if not lines:
        problems.append(f"{path}: empty trace")
        return

    spans = []
    for lineno, line in enumerate(lines, start=1):
        try:
            record = json.loads(line)
        except json.JSONDecodeError as exc:
            problems.append(f"{path}:{lineno}: invalid JSON ({exc})")
            return
        spans.append(record)

    ids = set()
    names = set()
    for lineno, record in enumerate(spans, start=1):
        where = f"{path}:{lineno}"
        name = record.get("name")
        if not isinstance(name, str) or not name:
            problems.append(f"{where}: span has no name")
            continue
        names.add(name)
        span_id = record.get("id")
        if not isinstance(span_id, int):
            problems.append(f"{where}: span {name!r} has no integer id")
        else:
            ids.add(span_id)
        parent = record.get("parent")
        if parent is not None and parent not in ids:
            problems.append(
                f"{where}: span {name!r} parent {parent!r} does not "
                "resolve to an earlier span"
            )
        for field in _SPAN_INT_FIELDS:
            value = record.get(field)
            if not isinstance(value, int) or value < 0:
                problems.append(
                    f"{where}: span {name!r} field {field}={value!r} is not "
                    "a non-negative integer"
                )
        for tally in ("ops", "bytes"):
            mapping = record.get(tally, {})
            if not isinstance(mapping, dict):
                problems.append(f"{where}: span {name!r} {tally} is not a mapping")
                continue
            for op_name, count in mapping.items():
                if not isinstance(count, int) or count < 0:
                    problems.append(
                        f"{where}: span {name!r} {tally}[{op_name!r}]="
                        f"{count!r} is not a non-negative integer"
                    )

    roots = [s for s in spans if s.get("parent") is None]
    if len(roots) != 1:
        problems.append(f"{path}: expected exactly one root span, found {len(roots)}")

    missing = [phase for phase in REQUIRED_SPANS if phase not in names]
    if missing:
        problems.append(
            f"{path}: pipeline phases missing from trace: {', '.join(missing)}"
        )


def check_metrics(directory: Path, problems: List[str]) -> None:
    """Validate metrics.json / metrics.prom exist and agree."""
    json_path = directory / "metrics.json"
    prom_path = directory / "metrics.prom"
    try:
        snapshot = json.loads(json_path.read_text())
    except (OSError, json.JSONDecodeError) as exc:
        problems.append(f"{json_path}: unreadable or invalid ({exc})")
        return
    for family in ("counters", "gauges", "histograms"):
        for name in snapshot.get(family, {}):
            if name not in KNOWN_METRICS:
                problems.append(
                    f"{json_path}: unknown metric name {name!r} in {family} "
                    "(typo, or register it in repro.obs.metrics.METRICS)"
                )
    counters = snapshot.get("counters", {})
    uploads = counters.get("smatch_server_uploads_total", 0)
    if not isinstance(uploads, int) or uploads < 1:
        problems.append(
            f"{json_path}: smatch_server_uploads_total={uploads!r}; an "
            "instrumented simulation round must record at least one upload"
        )
    try:
        prom_text = prom_path.read_text()
    except OSError as exc:
        problems.append(f"{prom_path}: unreadable ({exc})")
        return
    expected_line = f"smatch_server_uploads_total {uploads}"
    if expected_line not in prom_text:
        problems.append(
            f"{prom_path}: expected exposition line {expected_line!r} "
            "matching metrics.json"
        )


def scan_emit_sites(root: Path, problems: List[str]) -> int:
    """AST-walk ``root`` for emit-helper calls with unregistered names.

    A call like ``metric_inc("smatch_typo_total")`` fails unless the
    literal is in the registry; ``metric_inc(M_SERVER_UPLOADS)`` passes
    when the name was imported from :mod:`repro.obs.metrics` (constants
    there are registered by construction).  Anything dynamic (f-strings,
    attribute lookups, locals) fails — metric names must be static so the
    time series set is knowable offline.  Returns the number of emit
    sites inspected.
    """
    inspected = 0
    for py in sorted(root.rglob("*.py")):
        try:
            tree = ast.parse(py.read_text(encoding="utf-8"), filename=str(py))
        except SyntaxError as exc:
            problems.append(f"{py}: unparseable ({exc})")
            continue
        registry_names = set()
        for node in ast.walk(tree):
            if isinstance(node, ast.ImportFrom) and node.module == _REGISTRY_MODULE:
                registry_names.update(
                    alias.asname or alias.name for alias in node.names
                )
        for node in ast.walk(tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            callee = None
            if isinstance(func, ast.Name):
                callee = func.id
            elif isinstance(func, ast.Attribute):
                callee = func.attr
            if callee not in _EMIT_HELPERS or not node.args:
                continue
            inspected += 1
            where = f"{py}:{node.lineno}"
            name_arg = node.args[0]
            if isinstance(name_arg, ast.Constant) and isinstance(
                name_arg.value, str
            ):
                if name_arg.value not in KNOWN_METRICS:
                    problems.append(
                        f"{where}: {callee} emits unregistered metric "
                        f"{name_arg.value!r} (register it in "
                        "repro.obs.metrics.METRICS, or better, import its "
                        "M_* constant)"
                    )
            elif isinstance(name_arg, ast.Name):
                if name_arg.id not in registry_names:
                    problems.append(
                        f"{where}: {callee} metric name {name_arg.id!r} is "
                        f"not imported from {_REGISTRY_MODULE} — emit sites "
                        "must use the registry's M_* constants"
                    )
            else:
                problems.append(
                    f"{where}: {callee} metric name is not a static "
                    "literal or registry constant; dynamic names make the "
                    "time-series set unknowable offline"
                )
    return inspected


def main(argv: List[str]) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m tools.check_obs_artifacts",
        description="Validate telemetry artifacts and metric emit sites.",
    )
    parser.add_argument(
        "directory",
        type=Path,
        nargs="?",
        default=None,
        help="obs artifact directory (trace.jsonl + metrics.json/prom)",
    )
    parser.add_argument(
        "--scan-sources",
        type=Path,
        default=None,
        metavar="DIR",
        help="also AST-scan this source tree for unregistered emit sites",
    )
    try:
        args = parser.parse_args(argv)
    except SystemExit as exc:
        return 2 if exc.code else 0
    if args.directory is None and args.scan_sources is None:
        print(
            "error: nothing to do (pass an obs dir and/or --scan-sources)",
            file=sys.stderr,
        )
        return 2

    problems: List[str] = []
    summary: List[str] = []

    if args.directory is not None:
        trace_path = args.directory / "trace.jsonl"
        if not trace_path.exists():
            print(f"error: {trace_path} does not exist", file=sys.stderr)
            return 1
        check_trace(trace_path, problems)
        check_metrics(args.directory, problems)
        summary.append(
            f"{trace_path} covers all {len(REQUIRED_SPANS)} pipeline phases"
        )

    if args.scan_sources is not None:
        if not args.scan_sources.exists():
            print(
                f"error: {args.scan_sources} does not exist", file=sys.stderr
            )
            return 2
        inspected = scan_emit_sites(args.scan_sources, problems)
        summary.append(
            f"{inspected} emit sites under {args.scan_sources} use "
            f"registered names ({len(KNOWN_METRICS)} in the registry)"
        )

    if problems:
        for problem in problems:
            print(f"FAIL {problem}", file=sys.stderr)
        return 1
    print("ok: " + "; ".join(summary))
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
