"""CI gate: validate the telemetry artifacts of an instrumented run.

Usage::

    python -m repro simulate --users 8 --steps 2 --obs-dir obs-artifacts
    python -m tools.check_obs_artifacts obs-artifacts

Checks that ``trace.jsonl`` parses line-by-line, that parent links resolve
to earlier spans, that durations and tallies are sane non-negative
integers, and that the spans cover the paper's pipeline phases (profile
build, entropy increase, fuzzy keygen + OPRF, OPE encryption, server
upload handling, verification).  Also checks ``metrics.json`` /
``metrics.prom`` exist and agree on the upload counter.

Exit codes: 0 all checks pass, 1 a check failed, 2 usage error.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path
from typing import List

# Every phase the Section-III pipeline must traverse in one simulation
# round.  Query-dependent spans (server.handle_query, match.score_table)
# are deliberately absent: queries are probabilistic in the simulation.
REQUIRED_SPANS = (
    "simulate",
    "sim.run",
    "sim.step",
    "profile.build",
    "scheme.enroll",
    "keygen.fuzzy_extract",
    "keygen.oprf",
    "scheme.init_data",
    "scheme.encrypt",
    "ope.encrypt",
    "verification.auth",
    "server.handle_upload",
)

_SPAN_INT_FIELDS = ("start_us", "duration_us")

# Every metric name the instrumented tree may emit (docs/OBSERVABILITY.md
# naming scheme).  An unknown name in metrics.json is almost always a typo
# at one of two call sites that will silently split a time series.
KNOWN_METRICS = frozenset(
    {
        "smatch_server_uploads_total",
        "smatch_server_queries_total",
        "smatch_server_results_total",
        "smatch_matcher_groups_indexed",
        "smatch_matcher_group_generation",
        "smatch_keyservice_evaluations_total",
        "smatch_keyservice_batched_evaluations_total",
        "smatch_keyservice_batches_total",
        "smatch_keyservice_rejections_total",
        "smatch_net_messages_total",
        "smatch_net_message_bytes",
        "smatch_channel_messages_total",
        "smatch_channel_sent_bytes",
        "smatch_channel_received_bytes",
        "smatch_ope_cache_hits_total",
        "smatch_ope_cache_misses_total",
        "smatch_ope_cache_evictions_total",
        "smatch_ope_cache_entries",
        "smatch_enroll_batch_profiles_total",
        "smatch_enroll_batch_chunks_total",
        "smatch_server_handler_latency_us",
        "smatch_parallel_tasks_total",
        "smatch_parallel_chunks_total",
        "smatch_parallel_worker_restarts_total",
        "smatch_parallel_queue_depth",
        "smatch_matcher_bulk_queries_total",
    }
)


def check_trace(path: Path, problems: List[str]) -> None:
    """Validate trace.jsonl structure, parent links, and phase coverage."""
    try:
        lines = path.read_text().splitlines()
    except OSError as exc:
        problems.append(f"{path}: unreadable ({exc})")
        return
    if not lines:
        problems.append(f"{path}: empty trace")
        return

    spans = []
    for lineno, line in enumerate(lines, start=1):
        try:
            record = json.loads(line)
        except json.JSONDecodeError as exc:
            problems.append(f"{path}:{lineno}: invalid JSON ({exc})")
            return
        spans.append(record)

    ids = set()
    names = set()
    for lineno, record in enumerate(spans, start=1):
        where = f"{path}:{lineno}"
        name = record.get("name")
        if not isinstance(name, str) or not name:
            problems.append(f"{where}: span has no name")
            continue
        names.add(name)
        span_id = record.get("id")
        if not isinstance(span_id, int):
            problems.append(f"{where}: span {name!r} has no integer id")
        else:
            ids.add(span_id)
        parent = record.get("parent")
        if parent is not None and parent not in ids:
            problems.append(
                f"{where}: span {name!r} parent {parent!r} does not "
                "resolve to an earlier span"
            )
        for field in _SPAN_INT_FIELDS:
            value = record.get(field)
            if not isinstance(value, int) or value < 0:
                problems.append(
                    f"{where}: span {name!r} field {field}={value!r} is not "
                    "a non-negative integer"
                )
        for tally in ("ops", "bytes"):
            mapping = record.get(tally, {})
            if not isinstance(mapping, dict):
                problems.append(f"{where}: span {name!r} {tally} is not a mapping")
                continue
            for op_name, count in mapping.items():
                if not isinstance(count, int) or count < 0:
                    problems.append(
                        f"{where}: span {name!r} {tally}[{op_name!r}]="
                        f"{count!r} is not a non-negative integer"
                    )

    roots = [s for s in spans if s.get("parent") is None]
    if len(roots) != 1:
        problems.append(f"{path}: expected exactly one root span, found {len(roots)}")

    missing = [phase for phase in REQUIRED_SPANS if phase not in names]
    if missing:
        problems.append(
            f"{path}: pipeline phases missing from trace: {', '.join(missing)}"
        )


def check_metrics(directory: Path, problems: List[str]) -> None:
    """Validate metrics.json / metrics.prom exist and agree."""
    json_path = directory / "metrics.json"
    prom_path = directory / "metrics.prom"
    try:
        snapshot = json.loads(json_path.read_text())
    except (OSError, json.JSONDecodeError) as exc:
        problems.append(f"{json_path}: unreadable or invalid ({exc})")
        return
    for family in ("counters", "gauges", "histograms"):
        for name in snapshot.get(family, {}):
            if name not in KNOWN_METRICS:
                problems.append(
                    f"{json_path}: unknown metric name {name!r} in {family} "
                    "(typo, or add it to KNOWN_METRICS in "
                    "tools/check_obs_artifacts.py)"
                )
    counters = snapshot.get("counters", {})
    uploads = counters.get("smatch_server_uploads_total", 0)
    if not isinstance(uploads, int) or uploads < 1:
        problems.append(
            f"{json_path}: smatch_server_uploads_total={uploads!r}; an "
            "instrumented simulation round must record at least one upload"
        )
    try:
        prom_text = prom_path.read_text()
    except OSError as exc:
        problems.append(f"{prom_path}: unreadable ({exc})")
        return
    expected_line = f"smatch_server_uploads_total {uploads}"
    if expected_line not in prom_text:
        problems.append(
            f"{prom_path}: expected exposition line {expected_line!r} "
            "matching metrics.json"
        )


def main(argv: List[str]) -> int:
    if len(argv) != 1:
        print(
            "usage: python -m tools.check_obs_artifacts <obs-dir>",
            file=sys.stderr,
        )
        return 2
    directory = Path(argv[0])
    trace_path = directory / "trace.jsonl"
    if not trace_path.exists():
        print(f"error: {trace_path} does not exist", file=sys.stderr)
        return 1

    problems: List[str] = []
    check_trace(trace_path, problems)
    check_metrics(directory, problems)

    if problems:
        for problem in problems:
            print(f"FAIL {problem}", file=sys.stderr)
        return 1
    print(f"ok: {trace_path} covers all {len(REQUIRED_SPANS)} pipeline phases")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
