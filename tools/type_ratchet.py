"""Per-module mypy strictness ratchet.

``mypy src/repro`` with a blanket lenient baseline can only say "no new
errors anywhere"; it cannot stop an already-clean module from quietly
regressing, and it gives no signal about which modules are ready for
strict checking.  This tool makes the baseline *per module* and one-way:

* every module's error count is recorded in
  ``tools/type_ratchet_baseline.json`` (committed);
* ``--check`` recomputes the counts and fails when any module got worse
  than its baseline — improvements are fine and should be locked in with
  ``--update``;
* modules matched by a strict override in ``pyproject.toml`` must stay at
  **zero**, baseline or not;
* ``--suggest`` lists clean modules not yet promoted, so the strict set
  only ever grows.

Two metrics are tracked per module:

* ``annotation_gaps`` — functions missing parameter or return
  annotations, counted from the AST.  This is the locally-enforceable
  projection of ``disallow_untyped_defs`` and needs no third-party
  tooling, so the ratchet bites even where mypy is not installed.
* ``mypy_errors`` — real mypy error counts, bucketed per module, when
  mypy is importable (CI installs it; the count is ``null`` =
  "unmeasured" otherwise and never fails a check).

Usage::

    python tools/type_ratchet.py --check            # CI gate
    python tools/type_ratchet.py --update           # lock in improvements
    python tools/type_ratchet.py --suggest          # promotion candidates
    python tools/type_ratchet.py --check --json-out report.json
"""

from __future__ import annotations

import argparse
import ast
import fnmatch
import json
import re
import sys
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

REPO_ROOT = Path(__file__).resolve().parent.parent
BASELINE_PATH = REPO_ROOT / "tools" / "type_ratchet_baseline.json"
PYPROJECT_PATH = REPO_ROOT / "pyproject.toml"

#: (filesystem root, dotted-name prefix, strip leading dirs)
_SOURCE_ROOTS: Tuple[Tuple[str, str], ...] = (
    ("src/repro", "repro"),
    ("tools", "tools"),
)


def iter_modules(root: Path = REPO_ROOT) -> List[Tuple[str, Path]]:
    """All (dotted module name, path) pairs under the source roots."""
    modules: List[Tuple[str, Path]] = []
    for rel_root, prefix in _SOURCE_ROOTS:
        base = root / rel_root
        if not base.is_dir():
            continue
        for path in sorted(base.rglob("*.py")):
            if "__pycache__" in path.parts:
                continue
            rel = path.relative_to(base)
            parts = list(rel.parts)
            parts[-1] = parts[-1][: -len(".py")]
            if parts[-1] == "__init__":
                parts = parts[:-1]
            name = ".".join([prefix, *parts]) if parts else prefix
            modules.append((name, path))
    return modules


def annotation_gaps(source: str, path: str = "<module>") -> List[str]:
    """Functions with unannotated parameters or return types.

    The AST projection of ``disallow_untyped_defs``: each offending
    function contributes one entry (``name:line``).  ``self``/``cls``
    first parameters are exempt, matching mypy's behavior.
    """
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        return [f"<syntax error>:{exc.lineno or 1}"]
    gaps: List[str] = []
    for node in ast.walk(tree):
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        args = node.args
        ordered = [*args.posonlyargs, *args.args]
        params = list(ordered)
        if params and params[0].arg in ("self", "cls"):
            params = params[1:]
        params += list(args.kwonlyargs)
        if args.vararg:
            params.append(args.vararg)
        if args.kwarg:
            params.append(args.kwarg)
        missing_param = any(p.annotation is None for p in params)
        missing_return = node.returns is None
        if missing_param or missing_return:
            gaps.append(f"{node.name}:{node.lineno}")
    return gaps


def strict_patterns(pyproject: Path = PYPROJECT_PATH) -> List[str]:
    """Module globs with ``ignore_errors = false`` overrides in pyproject.

    Uses :mod:`tomllib` when available (3.11+); otherwise a conservative
    regex fallback good enough for this repo's pyproject shape.
    """
    text = pyproject.read_text(encoding="utf-8")
    try:
        import tomllib
    except ModuleNotFoundError:
        tomllib = None  # py<3.11: fall through to the regex fallback
    if tomllib is not None:
        data = tomllib.loads(text)
        patterns: List[str] = []
        for override in data.get("tool", {}).get("mypy", {}).get("overrides", []):
            if override.get("ignore_errors") is False:
                module = override.get("module", [])
                if isinstance(module, str):
                    module = [module]
                patterns.extend(module)
        return patterns
    patterns = []
    for block in re.split(r"\[\[tool\.mypy\.overrides\]\]", text)[1:]:
        block = block.split("[", 1)[0]  # stop at the next table header
        if not re.search(r"ignore_errors\s*=\s*false", block):
            continue
        module_match = re.search(r"module\s*=\s*\[(?P<items>[^\]]*)\]", block, re.S)
        if module_match:
            patterns.extend(re.findall(r"\"([^\"]+)\"", module_match.group("items")))
    return patterns


def is_strict(module: str, patterns: Sequence[str]) -> bool:
    """True when a module matches any strict override glob."""
    return any(fnmatch.fnmatchcase(module, pattern) for pattern in patterns)


def mypy_error_counts(paths: Sequence[Path]) -> Optional[Dict[str, int]]:
    """Per-file mypy error counts, or ``None`` when mypy is unavailable."""
    try:
        from mypy import api
    except ModuleNotFoundError:
        return None
    stdout, _stderr, _status = api.run(
        ["--no-error-summary", *[str(p) for p in paths]]
    )
    counts: Dict[str, int] = {}
    for line in stdout.splitlines():
        # "<path>:<line>: error: ..." — note: bucketing only needs the path
        parts = line.split(":", 2)
        if len(parts) == 3 and " error" in parts[2][:10]:
            key = Path(parts[0]).as_posix()
            counts[key] = counts.get(key, 0) + 1
    return counts


def measure(root: Path = REPO_ROOT, with_mypy: bool = True) -> Dict[str, Dict[str, object]]:
    """Current per-module metrics."""
    modules = iter_modules(root)
    mypy_counts = (
        mypy_error_counts([path for _name, path in modules]) if with_mypy else None
    )
    report: Dict[str, Dict[str, object]] = {}
    for name, path in modules:
        gaps = annotation_gaps(path.read_text(encoding="utf-8"), str(path))
        entry: Dict[str, object] = {
            "annotation_gaps": len(gaps),
            "mypy_errors": None,
        }
        if gaps:
            entry["gap_functions"] = gaps
        if mypy_counts is not None:
            rel = path.relative_to(root).as_posix()
            entry["mypy_errors"] = mypy_counts.get(rel, mypy_counts.get(str(path), 0))
        report[name] = entry
    return report


def load_baseline(path: Path = BASELINE_PATH) -> Dict[str, Dict[str, object]]:
    """The committed baseline (empty when missing)."""
    if not path.exists():
        return {}
    data = json.loads(path.read_text(encoding="utf-8"))
    modules = data.get("modules", {})
    return modules if isinstance(modules, dict) else {}


def save_baseline(
    report: Dict[str, Dict[str, object]], path: Path = BASELINE_PATH
) -> None:
    """Write the baseline file (sorted, human-diffable)."""
    slim = {
        name: {
            "annotation_gaps": entry["annotation_gaps"],
            "mypy_errors": entry["mypy_errors"],
        }
        for name, entry in sorted(report.items())
    }
    payload = {
        "comment": (
            "Per-module type-checking baseline; regenerate with "
            "`python tools/type_ratchet.py --update`. Counts may only go down."
        ),
        "modules": slim,
    }
    path.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")


def check(
    report: Dict[str, Dict[str, object]],
    baseline: Dict[str, Dict[str, object]],
    patterns: Sequence[str],
) -> List[str]:
    """Regressions as human-readable failure lines (empty == pass)."""
    failures: List[str] = []
    for name, entry in sorted(report.items()):
        gaps = int(entry["annotation_gaps"])  # type: ignore[arg-type]
        mypy_errors = entry["mypy_errors"]
        base = baseline.get(name, {})
        base_gaps = base.get("annotation_gaps")
        base_mypy = base.get("mypy_errors")
        strict = is_strict(name, patterns)
        detail = ""
        if entry.get("gap_functions"):
            detail = f" ({', '.join(entry['gap_functions'])})"  # type: ignore[arg-type]
        if strict and gaps:
            failures.append(
                f"{name}: strict module has {gaps} unannotated function(s){detail}"
            )
        elif isinstance(base_gaps, int) and gaps > base_gaps:
            failures.append(
                f"{name}: annotation gaps went up {base_gaps} -> {gaps}{detail}"
            )
        if isinstance(mypy_errors, int):
            if strict and mypy_errors:
                failures.append(f"{name}: strict module has {mypy_errors} mypy error(s)")
            elif isinstance(base_mypy, int) and mypy_errors > base_mypy:
                failures.append(
                    f"{name}: mypy errors went up {base_mypy} -> {mypy_errors}"
                )
    return failures


def suggest(
    report: Dict[str, Dict[str, object]], patterns: Sequence[str]
) -> List[str]:
    """Non-strict modules already clean — candidates for promotion."""
    candidates = []
    for name, entry in sorted(report.items()):
        if is_strict(name, patterns):
            continue
        if entry["annotation_gaps"] != 0:
            continue
        if isinstance(entry["mypy_errors"], int) and entry["mypy_errors"] != 0:
            continue
        candidates.append(name)
    return candidates


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python tools/type_ratchet.py",
        description="Per-module mypy strictness ratchet.",
    )
    parser.add_argument(
        "--check", action="store_true", help="fail on any per-module regression"
    )
    parser.add_argument(
        "--update", action="store_true", help="rewrite the committed baseline"
    )
    parser.add_argument(
        "--suggest",
        action="store_true",
        help="list clean modules ready for strict promotion",
    )
    parser.add_argument(
        "--json-out",
        metavar="PATH",
        type=Path,
        help="write the full per-module report as JSON (CI artifact)",
    )
    parser.add_argument(
        "--no-mypy",
        action="store_true",
        help="skip mypy even when installed (annotation gaps only)",
    )
    args = parser.parse_args(argv)
    if not (args.check or args.update or args.suggest or args.json_out):
        parser.print_usage(sys.stderr)
        print("error: pick at least one of --check/--update/--suggest", file=sys.stderr)
        return 2

    # globals resolved at call time so tests can point the tool at a
    # scratch repo by monkeypatching REPO_ROOT / BASELINE_PATH / PYPROJECT_PATH
    report = measure(root=REPO_ROOT, with_mypy=not args.no_mypy)
    patterns = strict_patterns(PYPROJECT_PATH)
    measured_mypy = any(isinstance(e["mypy_errors"], int) for e in report.values())
    if not measured_mypy and not args.no_mypy:
        print(
            "type-ratchet: mypy not installed — checking annotation gaps only",
            file=sys.stderr,
        )

    if args.json_out:
        args.json_out.write_text(
            json.dumps(
                {"strict_patterns": list(patterns), "modules": report}, indent=2
            )
            + "\n",
            encoding="utf-8",
        )

    if args.suggest:
        for name in suggest(report, patterns):
            print(name)

    if args.update:
        baseline = load_baseline(BASELINE_PATH)
        if not measured_mypy:
            # keep previously measured mypy counts instead of erasing them
            for name, entry in report.items():
                prior = baseline.get(name, {}).get("mypy_errors")
                if entry["mypy_errors"] is None and isinstance(prior, int):
                    entry["mypy_errors"] = prior
        save_baseline(report, BASELINE_PATH)
        print(f"type-ratchet: baseline updated ({len(report)} modules)")

    if args.check:
        failures = check(report, load_baseline(BASELINE_PATH), patterns)
        for failure in failures:
            print(f"type-ratchet: {failure}", file=sys.stderr)
        total_gaps = sum(int(e["annotation_gaps"]) for e in report.values())  # type: ignore[arg-type]
        strict_count = sum(1 for name in report if is_strict(name, patterns))
        print(
            f"type-ratchet: {len(report)} modules, {strict_count} strict, "
            f"{total_gaps} annotation gap(s), {len(failures)} regression(s)"
        )
        return 1 if failures else 0
    return 0


if __name__ == "__main__":
    sys.exit(main())
