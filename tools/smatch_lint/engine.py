"""Lint engine: file discovery, suppression parsing, rule dispatch.

Comment directives (mirrors the familiar ``# noqa`` shape but named, so a
grep for ``smatch-lint:`` audits every waiver):

* ``some_code()  # smatch-lint: disable=SML002`` — suppress the listed
  rule(s) on that line only; comma-separate multiple codes.
* ``# smatch-lint: disable-file=SML003`` — anywhere in a file, suppress the
  rule(s) for the whole file.
* ``key = derive(...)  # smatch-lint: secret`` — mark the assignment on
  this line as a taint *source* for the SML007–SML009 secret-flow rules
  (for secrets whose names the heuristics cannot see).

Directives naming unknown rule codes are themselves reported (as
``SML000``), so typos cannot silently waive nothing.  Suppressions that no
longer match any finding can be flagged with
``--report-unused-suppressions`` and should be removed.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Set, Tuple

from tools.smatch_lint import cache as lint_cache
from tools.smatch_lint import summaries as program_summaries
from tools.smatch_lint.config import DEFAULT_CONFIG, LintConfig
from tools.smatch_lint.modgraph import Program
from tools.smatch_lint.rules import RULE_CODES, RULES, RuleContext

__all__ = ["Violation", "lint_source", "lint_paths", "iter_python_files"]

_DIRECTIVE_RE = re.compile(
    r"#\s*smatch-lint:\s*disable(?P<scope>-file)?\s*=\s*(?P<codes>[A-Za-z0-9_,\s]+)"
)

_SECRET_RE = re.compile(r"#\s*smatch-lint:\s*secret\b")


@dataclass(frozen=True, order=True)
class Violation:
    """One finding: ``path:line:col: code message``."""

    path: str
    line: int
    col: int
    code: str
    message: str

    def render(self) -> str:
        """The canonical single-line report format."""
        return f"{self.path}:{self.line}:{self.col}: {self.code} {self.message}"

    def as_dict(self) -> Dict[str, object]:
        """JSON-friendly representation."""
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "code": self.code,
            "message": self.message,
        }


def _parse_directives(
    source: str, path: str
) -> Tuple[Dict[int, Set[str]], Dict[str, int], Set[int], List[Violation]]:
    """Extract suppressions and secret annotations from comments.

    Returns ``(per_line, file_wide, secret_lines, problems)`` where
    ``file_wide`` maps each file-wide-suppressed code to the directive's
    line (for unused-suppression reporting).
    """
    per_line: Dict[int, Set[str]] = {}
    file_wide: Dict[str, int] = {}
    secret_lines: Set[int] = set()
    problems: List[Violation] = []
    try:
        tokens = list(tokenize.generate_tokens(io.StringIO(source).readline))
    except (tokenize.TokenError, IndentationError, SyntaxError):
        return per_line, file_wide, secret_lines, problems  # ast.parse reports it
    for tok in tokens:
        if tok.type != tokenize.COMMENT:
            continue
        if _SECRET_RE.search(tok.string):
            secret_lines.add(tok.start[0])
            continue
        match = _DIRECTIVE_RE.search(tok.string)
        if not match:
            continue
        codes = {c.strip().upper() for c in match.group("codes").split(",") if c.strip()}
        unknown = codes - set(RULE_CODES)
        if unknown:
            problems.append(
                Violation(
                    path=path,
                    line=tok.start[0],
                    col=tok.start[1] + 1,
                    code="SML000",
                    message=(
                        "suppression names unknown rule(s) "
                        f"{', '.join(sorted(unknown))} — nothing is waived"
                    ),
                )
            )
        known = codes & set(RULE_CODES)
        if match.group("scope"):
            for code in known:
                file_wide.setdefault(code, tok.start[0])
        else:
            per_line.setdefault(tok.start[0], set()).update(known)
    return per_line, file_wide, secret_lines, problems


def lint_source(
    source: str,
    path: str,
    config: LintConfig = DEFAULT_CONFIG,
    *,
    report_unused_suppressions: bool = False,
) -> List[Violation]:
    """Lint one source string as if it lived at ``path``.

    ``path`` is normalized to POSIX form; rules use it for their
    path-scoped behavior (facade allowlists, TCB membership, taint
    scope, ...).  With ``report_unused_suppressions``, directives that
    waived nothing are reported as ``SML000`` findings so stale waivers
    get swept out of the tree.

    This is the *per-module* entry point: imported callees are unknown
    (conservatively tainted).  :func:`lint_paths` runs in whole-program
    mode, resolving calls through the import graph.
    """
    return _check_file(
        source,
        path,
        config,
        report_unused_suppressions=report_unused_suppressions,
    )


def _check_file(
    source: str,
    path: str,
    config: LintConfig = DEFAULT_CONFIG,
    *,
    report_unused_suppressions: bool = False,
    imports: Optional[object] = None,
    tree: Optional[ast.Module] = None,
    taint_result: Optional[object] = None,
) -> List[Violation]:
    """Shared rule-dispatch core for per-module and whole-program modes.

    ``imports`` is a resolver from :mod:`tools.smatch_lint.summaries`;
    ``tree``/``taint_result`` let the whole-program driver reuse its
    parsed AST and already-computed taint analysis.
    """
    posix = path.replace("\\", "/")
    if tree is None:
        try:
            tree = ast.parse(source, filename=posix)
        except SyntaxError as exc:
            return [
                Violation(
                    path=posix,
                    line=exc.lineno or 1,
                    col=(exc.offset or 0) or 1,
                    code="SML000",
                    message=f"syntax error: {exc.msg}",
                )
            ]
    per_line, file_wide, secret_lines, violations = _parse_directives(source, posix)
    ctx = RuleContext(
        path=posix,
        config=config,
        secret_lines=frozenset(secret_lines),
        imports=imports,
    )
    if taint_result is not None:
        ctx.cache["taint"] = taint_result
    path_ignored = config.ignored_rules_for_path(posix)
    used_file_wide: Set[str] = set()
    used_per_line: Dict[int, Set[str]] = {}
    ran_codes: Set[str] = set()
    for rule_cls in RULES:
        rule = rule_cls()
        if rule.code in path_ignored:
            continue
        ran_codes.add(rule.code)
        for line, col, message in rule.check(tree, ctx):
            if rule.code in file_wide:
                used_file_wide.add(rule.code)
                continue
            if rule.code in per_line.get(line, ()):
                used_per_line.setdefault(line, set()).add(rule.code)
                continue
            violations.append(
                Violation(path=posix, line=line, col=col, code=rule.code, message=message)
            )
    if report_unused_suppressions:
        for line, codes in sorted(per_line.items()):
            for code in sorted(codes & ran_codes):
                if code in used_per_line.get(line, ()) or code in file_wide:
                    continue
                violations.append(
                    Violation(
                        path=posix,
                        line=line,
                        col=1,
                        code="SML000",
                        message=(
                            f"unused suppression of {code} — nothing on this "
                            "line triggers it; remove the stale directive"
                        ),
                    )
                )
        for code, line in sorted(file_wide.items()):
            if code in used_file_wide or code not in ran_codes:
                continue
            violations.append(
                Violation(
                    path=posix,
                    line=line,
                    col=1,
                    code="SML000",
                    message=(
                        f"unused file-wide suppression of {code} — no finding "
                        "in this file triggers it; remove the stale directive"
                    ),
                )
            )
    return sorted(violations)


def iter_python_files(paths: Iterable[Path]) -> List[Path]:
    """Expand files/directories into a sorted, de-duplicated module list."""
    found: Set[Path] = set()
    for path in paths:
        if path.is_dir():
            found.update(
                p
                for p in path.rglob("*.py")
                if "__pycache__" not in p.parts
                and not any(part.startswith(".") for part in p.parts)
            )
        else:
            found.add(path)
    return sorted(found)


def lint_paths(
    paths: Iterable[Path],
    config: LintConfig = DEFAULT_CONFIG,
    *,
    report_unused_suppressions: bool = False,
    cache_dir: Optional[Path] = None,
) -> Tuple[List[Violation], int]:
    """Lint every python file under ``paths`` in whole-program mode.

    Returns ``(violations, files_checked)``.  Paths are reported relative
    to the current working directory when possible (matching how the CLI
    is normally invoked from the repo root).

    The import closure of the requested files is built first; modules
    reachable only through imports contribute taint summaries (so a
    server handler calling into ``repro.core`` sees the callee's real
    flows) but are not themselves reported.  Results are cached per
    module keyed by a transitive content fingerprint — in memory always,
    and on disk under ``cache_dir`` when given — so warm runs only
    re-analyze modules whose import cone actually changed.
    """
    violations: List[Violation] = []
    files = iter_python_files(paths)
    cwd = Path.cwd()
    requested: List[Tuple[Path, str, str]] = []
    for file_path in files:
        try:
            rel = file_path.resolve().relative_to(cwd)
        except ValueError:
            rel = file_path
        source = file_path.read_text(encoding="utf-8")
        requested.append((file_path, rel.as_posix(), source))

    program = Program.build(requested, extra_roots=(cwd, cwd / "src"))

    store = lint_cache.SummaryStore(
        lint_cache.analysis_fingerprint(
            config, RULE_CODES, report_unused_suppressions
        ),
        disk_path=(Path(cache_dir) / "cache.json") if cache_dir else None,
    )
    hashes = {
        name: lint_cache.content_hash(node.display_path, node.source)
        for name, node in program.modules.items()
    }
    fingerprints = lint_cache.transitive_fingerprints(program, hashes)

    # secret annotations are taint sources even in closure-only modules
    secret_lines: Dict[str, frozenset] = {}
    for name, node in program.modules.items():
        _pl, _fw, lines, _problems = _parse_directives(
            node.source, node.display_path
        )
        secret_lines[name] = frozenset(lines)

    preloaded = {}
    for name in program.modules:
        stored = store.summary(name, fingerprints[name])
        if stored is not None:
            preloaded[name] = program_summaries.ModuleSummary.from_dict(stored)

    analysis = program_summaries.analyze_program(
        program, config, secret_lines, preloaded
    )

    for file_path, display, source in requested:
        node = program.node_for_path(file_path)
        if node is None or node.display_path != display:
            # unparseable (the syntax error is the finding) or shadowed by
            # a same-named module: lint standalone, without summaries
            violations.extend(
                _check_file(
                    source,
                    display,
                    config,
                    report_unused_suppressions=report_unused_suppressions,
                )
            )
            continue
        tfp = fingerprints[node.name]
        cached = store.violations(node.name, tfp)
        if cached is not None:
            violations.extend(
                Violation(
                    path=str(entry["path"]),
                    line=int(entry["line"]),  # type: ignore[arg-type]
                    col=int(entry["col"]),  # type: ignore[arg-type]
                    code=str(entry["code"]),
                    message=str(entry["message"]),
                )
                for entry in cached
            )
            continue
        env = program_summaries.ImportEnv(node, program, analysis.summaries)
        file_violations = _check_file(
            source,
            display,
            config,
            report_unused_suppressions=report_unused_suppressions,
            imports=env,
            tree=node.tree,
            taint_result=analysis.taints.get(node.name),
        )
        violations.extend(file_violations)
        store.store(
            node.name,
            tfp,
            analysis.summaries[node.name].as_dict(),
            [v.as_dict() for v in file_violations],
        )

    # closure-only modules persist their summaries so a future edit of a
    # *requested* file reuses them without re-analysis
    for name in program.modules:
        if name in analysis.summaries:
            store.store(
                name, fingerprints[name], analysis.summaries[name].as_dict(), None
            )
    store.save()
    return sorted(violations), len(files)
