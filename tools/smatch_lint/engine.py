"""Lint engine: file discovery, suppression parsing, rule dispatch.

Comment directives (mirrors the familiar ``# noqa`` shape but named, so a
grep for ``smatch-lint:`` audits every waiver):

* ``some_code()  # smatch-lint: disable=SML002`` — suppress the listed
  rule(s) on that line only; comma-separate multiple codes.
* ``# smatch-lint: disable-file=SML003`` — anywhere in a file, suppress the
  rule(s) for the whole file.
* ``key = derive(...)  # smatch-lint: secret`` — mark the assignment on
  this line as a taint *source* for the SML007–SML009 secret-flow rules
  (for secrets whose names the heuristics cannot see).

Directives naming unknown rule codes are themselves reported (as
``SML000``), so typos cannot silently waive nothing.  Suppressions that no
longer match any finding can be flagged with
``--report-unused-suppressions`` and should be removed.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterable, List, Set, Tuple

from tools.smatch_lint.config import DEFAULT_CONFIG, LintConfig
from tools.smatch_lint.rules import RULE_CODES, RULES, RuleContext

__all__ = ["Violation", "lint_source", "lint_paths", "iter_python_files"]

_DIRECTIVE_RE = re.compile(
    r"#\s*smatch-lint:\s*disable(?P<scope>-file)?\s*=\s*(?P<codes>[A-Za-z0-9_,\s]+)"
)

_SECRET_RE = re.compile(r"#\s*smatch-lint:\s*secret\b")


@dataclass(frozen=True, order=True)
class Violation:
    """One finding: ``path:line:col: code message``."""

    path: str
    line: int
    col: int
    code: str
    message: str

    def render(self) -> str:
        """The canonical single-line report format."""
        return f"{self.path}:{self.line}:{self.col}: {self.code} {self.message}"

    def as_dict(self) -> Dict[str, object]:
        """JSON-friendly representation."""
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "code": self.code,
            "message": self.message,
        }


def _parse_directives(
    source: str, path: str
) -> Tuple[Dict[int, Set[str]], Dict[str, int], Set[int], List[Violation]]:
    """Extract suppressions and secret annotations from comments.

    Returns ``(per_line, file_wide, secret_lines, problems)`` where
    ``file_wide`` maps each file-wide-suppressed code to the directive's
    line (for unused-suppression reporting).
    """
    per_line: Dict[int, Set[str]] = {}
    file_wide: Dict[str, int] = {}
    secret_lines: Set[int] = set()
    problems: List[Violation] = []
    try:
        tokens = list(tokenize.generate_tokens(io.StringIO(source).readline))
    except (tokenize.TokenError, IndentationError, SyntaxError):
        return per_line, file_wide, secret_lines, problems  # ast.parse reports it
    for tok in tokens:
        if tok.type != tokenize.COMMENT:
            continue
        if _SECRET_RE.search(tok.string):
            secret_lines.add(tok.start[0])
            continue
        match = _DIRECTIVE_RE.search(tok.string)
        if not match:
            continue
        codes = {c.strip().upper() for c in match.group("codes").split(",") if c.strip()}
        unknown = codes - set(RULE_CODES)
        if unknown:
            problems.append(
                Violation(
                    path=path,
                    line=tok.start[0],
                    col=tok.start[1] + 1,
                    code="SML000",
                    message=(
                        "suppression names unknown rule(s) "
                        f"{', '.join(sorted(unknown))} — nothing is waived"
                    ),
                )
            )
        known = codes & set(RULE_CODES)
        if match.group("scope"):
            for code in known:
                file_wide.setdefault(code, tok.start[0])
        else:
            per_line.setdefault(tok.start[0], set()).update(known)
    return per_line, file_wide, secret_lines, problems


def lint_source(
    source: str,
    path: str,
    config: LintConfig = DEFAULT_CONFIG,
    *,
    report_unused_suppressions: bool = False,
) -> List[Violation]:
    """Lint one source string as if it lived at ``path``.

    ``path`` is normalized to POSIX form; rules use it for their
    path-scoped behavior (facade allowlists, TCB membership, taint
    scope, ...).  With ``report_unused_suppressions``, directives that
    waived nothing are reported as ``SML000`` findings so stale waivers
    get swept out of the tree.
    """
    posix = path.replace("\\", "/")
    try:
        tree = ast.parse(source, filename=posix)
    except SyntaxError as exc:
        return [
            Violation(
                path=posix,
                line=exc.lineno or 1,
                col=(exc.offset or 0) or 1,
                code="SML000",
                message=f"syntax error: {exc.msg}",
            )
        ]
    per_line, file_wide, secret_lines, violations = _parse_directives(source, posix)
    ctx = RuleContext(
        path=posix, config=config, secret_lines=frozenset(secret_lines)
    )
    path_ignored = config.ignored_rules_for_path(posix)
    used_file_wide: Set[str] = set()
    used_per_line: Dict[int, Set[str]] = {}
    ran_codes: Set[str] = set()
    for rule_cls in RULES:
        rule = rule_cls()
        if rule.code in path_ignored:
            continue
        ran_codes.add(rule.code)
        for line, col, message in rule.check(tree, ctx):
            if rule.code in file_wide:
                used_file_wide.add(rule.code)
                continue
            if rule.code in per_line.get(line, ()):
                used_per_line.setdefault(line, set()).add(rule.code)
                continue
            violations.append(
                Violation(path=posix, line=line, col=col, code=rule.code, message=message)
            )
    if report_unused_suppressions:
        for line, codes in sorted(per_line.items()):
            for code in sorted(codes & ran_codes):
                if code in used_per_line.get(line, ()) or code in file_wide:
                    continue
                violations.append(
                    Violation(
                        path=posix,
                        line=line,
                        col=1,
                        code="SML000",
                        message=(
                            f"unused suppression of {code} — nothing on this "
                            "line triggers it; remove the stale directive"
                        ),
                    )
                )
        for code, line in sorted(file_wide.items()):
            if code in used_file_wide or code not in ran_codes:
                continue
            violations.append(
                Violation(
                    path=posix,
                    line=line,
                    col=1,
                    code="SML000",
                    message=(
                        f"unused file-wide suppression of {code} — no finding "
                        "in this file triggers it; remove the stale directive"
                    ),
                )
            )
    return sorted(violations)


def iter_python_files(paths: Iterable[Path]) -> List[Path]:
    """Expand files/directories into a sorted, de-duplicated module list."""
    found: Set[Path] = set()
    for path in paths:
        if path.is_dir():
            found.update(
                p
                for p in path.rglob("*.py")
                if "__pycache__" not in p.parts
                and not any(part.startswith(".") for part in p.parts)
            )
        else:
            found.add(path)
    return sorted(found)


def lint_paths(
    paths: Iterable[Path],
    config: LintConfig = DEFAULT_CONFIG,
    *,
    report_unused_suppressions: bool = False,
) -> Tuple[List[Violation], int]:
    """Lint every python file under ``paths``.

    Returns ``(violations, files_checked)``.  Paths are reported relative
    to the current working directory when possible (matching how the CLI
    is normally invoked from the repo root).
    """
    violations: List[Violation] = []
    files = iter_python_files(paths)
    cwd = Path.cwd()
    for file_path in files:
        try:
            rel = file_path.resolve().relative_to(cwd)
        except ValueError:
            rel = file_path
        source = file_path.read_text(encoding="utf-8")
        violations.extend(
            lint_source(
                source,
                rel.as_posix(),
                config,
                report_unused_suppressions=report_unused_suppressions,
            )
        )
    return sorted(violations), len(files)
