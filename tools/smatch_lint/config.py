"""Lint configuration: the repo-specific knobs every rule reads.

The defaults encode this repository's layout and threat model.  Tests (and
any future monorepo split) can construct a :class:`LintConfig` with different
values; the CLI always uses :data:`DEFAULT_CONFIG`.

All path entries are POSIX-style *suffixes* matched against the linted
file's normalized path, so the tool behaves identically whether invoked as
``python -m tools.smatch_lint src/`` or pointed at a single file.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Pattern, Tuple

__all__ = ["LintConfig", "DEFAULT_CONFIG"]


#: Identifier fragments that mark a value as secret for SML002.  Matched
#: case-insensitively against whole underscore-delimited name segments, so
#: ``session_key`` and ``mac_key`` hit but ``monkeypatch`` does not.
_SECRET_NAME_RE = re.compile(
    r"(?:^|_)(?:key|keys|secret|secrets|tag|tags|mac|digest|digests"
    r"|token|tokens|witness|witnesses|unblinder|kup|k_prime|oprf_output)"
    r"(?:_|$)",
    re.IGNORECASE,
)

#: Identifier fragments that mark a name as *public* even when it also
#: matches the secret pattern: ``key_index`` (the published h(Kup)),
#: ``public_key``, ``key_size`` and friends are not secret material.
_PUBLIC_NAME_RE = re.compile(
    r"(?:^|_)(?:public|pub|index|indexes|indices|size|sizes|len|length"
    r"|bits|bit|id|ids|idx|kind|name|names|type|count|info|schema)"
    r"(?:_|$)",
    re.IGNORECASE,
)

#: Identifier segments that mark a receiver as a logger for SML006:
#: ``_log``, ``logger``, ``logging``, ``audit_log`` all hit.
_LOGGER_NAME_RE = re.compile(
    r"(?:^|_)(?:log|logs|logger|loggers|logging)(?:_|$)",
    re.IGNORECASE,
)


@dataclass(frozen=True)
class LintConfig:
    """Tunable parameters for all smatch-lint rules."""

    #: SML001 — the only module allowed to import :mod:`random` (the
    #: seeded-CSPRNG facade everything else must go through).
    rand_facade_suffixes: Tuple[str, ...] = ("repro/utils/rand.py",)

    #: SML002 — name heuristics for secret / explicitly-public identifiers.
    secret_name_re: Pattern[str] = field(default=_SECRET_NAME_RE)
    public_name_re: Pattern[str] = field(default=_PUBLIC_NAME_RE)

    #: SML003 / SML004 — directories forming the exact-arithmetic trusted
    #: computing base, as path fragments.
    tcb_dir_fragments: Tuple[str, ...] = (
        "repro/crypto/",
        "repro/gf/",
        "repro/ntheory/",
    )

    #: SML003 — TCB files allowed to use floats (the OPE hypergeometric
    #: sampler needs log-gamma arithmetic; its outputs are re-quantized).
    float_allowlist_suffixes: Tuple[str, ...] = ("repro/crypto/ope.py",)

    #: SML004 — packages the TCB must never import (untrusted / IO layers).
    forbidden_layer_packages: Tuple[str, ...] = (
        "repro.server",
        "repro.net",
        "repro.client",
        "repro.experiments",
    )

    #: SML005 — paths exempt from the assert ban (test code asserts freely).
    assert_exempt_fragments: Tuple[str, ...] = ("tests/", "conftest.py")

    #: SML006 — receiver-name heuristic for logger objects.
    logger_name_re: Pattern[str] = field(default=_LOGGER_NAME_RE)

    #: SML006 — calls whose result is public even when fed secret values
    #: (a length or type name leaks no key material).
    value_laundering_calls: Tuple[str, ...] = ("len", "type", "bool", "isinstance")

    def is_rand_facade(self, posix_path: str) -> bool:
        """True when ``posix_path`` is the randomness facade module."""
        return posix_path.endswith(self.rand_facade_suffixes)

    def is_tcb_path(self, posix_path: str) -> bool:
        """True when the file belongs to the trusted computing base."""
        return any(frag in posix_path for frag in self.tcb_dir_fragments)

    def is_float_allowlisted(self, posix_path: str) -> bool:
        """True when the TCB file may use float arithmetic."""
        return posix_path.endswith(self.float_allowlist_suffixes)

    def is_assert_exempt(self, posix_path: str) -> bool:
        """True when the assert ban does not apply (test code)."""
        return any(frag in posix_path for frag in self.assert_exempt_fragments)

    def is_secret_name(self, identifier: str) -> bool:
        """Apply the SML002 heuristic to a bare identifier."""
        if self.public_name_re.search(identifier):
            return False
        return bool(self.secret_name_re.search(identifier))

    def is_logger_name(self, identifier: str) -> bool:
        """True when an identifier plausibly names a logger (SML006)."""
        return bool(self.logger_name_re.search(identifier))


DEFAULT_CONFIG = LintConfig()
