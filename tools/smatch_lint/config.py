"""Lint configuration: the repo-specific knobs every rule reads.

The defaults encode this repository's layout and threat model.  Tests (and
any future monorepo split) can construct a :class:`LintConfig` with different
values; the CLI always uses :data:`DEFAULT_CONFIG`.

All path entries are POSIX-style *suffixes* matched against the linted
file's normalized path, so the tool behaves identically whether invoked as
``python -m tools.smatch_lint src/`` or pointed at a single file.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import FrozenSet, Optional, Pattern, Tuple

__all__ = ["LintConfig", "DEFAULT_CONFIG"]


#: Identifier fragments that mark a value as secret for SML002.  Matched
#: case-insensitively against whole underscore-delimited name segments, so
#: ``session_key`` and ``mac_key`` hit but ``monkeypatch`` does not.
_SECRET_NAME_RE = re.compile(
    r"(?:^|_)(?:key|keys|secret|secrets|tag|tags|mac|digest|digests"
    r"|token|tokens|witness|witnesses|unblinder|kup|k_prime|oprf_output)"
    r"(?:_|$)",
    re.IGNORECASE,
)

#: Identifier fragments that mark a name as *public* even when it also
#: matches the secret pattern: ``key_index`` (the published h(Kup)),
#: ``public_key``, ``key_size`` and friends are not secret material.
_PUBLIC_NAME_RE = re.compile(
    r"(?:^|_)(?:public|pub|index|indexes|indices|size|sizes|len|length"
    r"|bits|bit|id|ids|idx|kind|name|names|type|count|info|schema)"
    r"(?:_|$)",
    re.IGNORECASE,
)

#: Identifier segments that mark a receiver as a logger for SML006:
#: ``_log``, ``logger``, ``logging``, ``audit_log`` all hit.
_LOGGER_NAME_RE = re.compile(
    r"(?:^|_)(?:log|logs|logger|loggers|logging)(?:_|$)",
    re.IGNORECASE,
)

#: Constructors whose instances are wire messages (SML008): any tainted
#: value handed to one of these becomes part of a response's observable
#: encoding.  Matched against the bare class name at the call site.
_WIRE_MESSAGE_CTOR_RE = re.compile(
    r"(?:Message|Request|Response|Result|Entry|Info)$"
)

#: Function names that denote parallel task units (SML011): the chunk
#: functions shipped to worker processes and the pool worker plumbing.
#: Matched against whole underscore-delimited trailing segments, so
#: ``enroll_chunk``, ``bulk_match_chunk``, and ``_initialize_worker`` hit.
_PARALLEL_TASK_NAME_RE = re.compile(r"(?:^|_)(?:chunk|task|worker)s?$")

#: Identifier segments that mark a name as a lock for SML012/SML014:
#: ``_lock``, ``registry_lock``, ``mutex`` all hit.  Used for module-level
#: lock globals and for attributes on objects of unknown classes.
_LOCK_NAME_RE = re.compile(r"(?:^|_)(?:lock|locks|rlock|mutex)$", re.IGNORECASE)


@dataclass(frozen=True)
class LintConfig:
    """Tunable parameters for all smatch-lint rules."""

    #: SML001 — the only module allowed to import :mod:`random` (the
    #: seeded-CSPRNG facade everything else must go through).
    rand_facade_suffixes: Tuple[str, ...] = ("repro/utils/rand.py",)

    #: SML002 — name heuristics for secret / explicitly-public identifiers.
    secret_name_re: Pattern[str] = field(default=_SECRET_NAME_RE)
    public_name_re: Pattern[str] = field(default=_PUBLIC_NAME_RE)

    #: SML003 / SML004 — directories forming the exact-arithmetic trusted
    #: computing base, as path fragments.  ``repro/parallel/`` joins the
    #: set because its task envelopes ship key material into worker
    #: processes: it must stay float-free and must never import the
    #: untrusted server/net/client layers (execution policy only).
    tcb_dir_fragments: Tuple[str, ...] = (
        "repro/crypto/",
        "repro/gf/",
        "repro/ntheory/",
        "repro/parallel/",
    )

    #: SML003 — TCB files allowed to use floats (the OPE hypergeometric
    #: sampler needs log-gamma arithmetic; its outputs are re-quantized).
    float_allowlist_suffixes: Tuple[str, ...] = ("repro/crypto/ope.py",)

    #: SML004 — packages the TCB must never import (untrusted / IO layers).
    forbidden_layer_packages: Tuple[str, ...] = (
        "repro.server",
        "repro.net",
        "repro.client",
        "repro.experiments",
    )

    #: SML005 — paths exempt from the assert ban (test code asserts freely).
    assert_exempt_fragments: Tuple[str, ...] = ("tests/", "conftest.py")

    #: SML006 — receiver-name heuristic for logger objects.
    logger_name_re: Pattern[str] = field(default=_LOGGER_NAME_RE)

    #: SML006 — calls whose result is public even when fed secret values
    #: (a length or type name leaks no key material).
    value_laundering_calls: Tuple[str, ...] = ("len", "type", "bool", "isinstance")

    # -- SML007–SML009: secret-flow taint tracking --------------------------------

    #: Path fragments where the taint rules apply: the honest-but-curious
    #: server's message handlers, whose timing, wire fields, and response
    #: sizes the §IV adversary observes.
    taint_scope_fragments: Tuple[str, ...] = (
        "repro/net/",
        "repro/server/",
    )

    #: Registered secret-bearing APIs: calling any of these yields secret
    #: material (taint sources beyond the name heuristics).  ``ProfileKey``
    #: and the KDF family produce key material; ``blind`` mints the OPRF
    #: blinding factor; ``evaluate_blinded``/``unblinded_evaluate`` apply
    #: the key service's private RSA exponent.
    taint_source_calls: Tuple[str, ...] = (
        "ProfileKey",
        "ProfileKeygen",
        "derive",
        "derive_from_values",
        "subkey",
        "hkdf",
        "prf",
        "blind",
        "evaluate_blinded",
        "unblinded_evaluate",
    )

    #: Secret-bearing *method* names only matched on attribute calls —
    #: ``cipher.open(...)`` yields plaintext, but the ``open`` builtin
    #: (a bare name) opens files and stays clean.
    taint_source_methods: Tuple[str, ...] = ("open",)

    #: Sanitizers: calls whose results are public regardless of inputs.
    #: ``constant_time_eq`` yields the protocol-mandated accept/reject
    #: bit; hashing commits without revealing; the value launders above
    #: are folded in by :meth:`is_taint_sanitizer`.
    taint_sanitizer_calls: Tuple[str, ...] = (
        "constant_time_eq",
        "sha256",
        "sha384",
        "sha512",
        "sha3_256",
        "blake2b",
        "blake2s",
        "hash_to_int",
        "hash_to_range",
        "digest",
        "hexdigest",
        "redact",
    )

    #: Approved encrypt/blind calls for SML008: their outputs are
    #: ciphertext (or blinded group elements) and may legitimately reach
    #: serialization and transport sinks.
    wire_approved_calls: Tuple[str, ...] = (
        "seal",
        "encrypt",
        "encrypt_block",
        "ctr_xcrypt",
    )

    #: Serialization / transport sinks for SML008: tainted values must not
    #: reach these (``repro.utils.serial`` encoders, transport ``send``,
    #: ``struct.pack``).
    wire_sink_calls: Tuple[str, ...] = (
        "write_int",
        "write_bytes",
        "write_str",
        "send",
        "sendall",
        "pack",
    )

    #: SML008 — wire-message constructor name pattern (see module docs).
    wire_message_ctor_re: Pattern[str] = field(default=_WIRE_MESSAGE_CTOR_RE)

    #: SML009 — calls whose (first) argument sets an observable size:
    #: ``bytes(n)`` / ``bytearray(n)`` allocate n zero bytes, ``range(n)``
    #: drives padding and batch loops.
    size_sink_calls: Tuple[str, ...] = ("bytes", "bytearray", "range")

    # -- SML010: process-boundary serialization ------------------------------------

    #: Sources whose outputs are secret-derived but *masked*: the OPRF
    #: blind evaluation returns x^d mod N on a value still hidden by the
    #: client's blinding factor r^e, so the result may cross wire and
    #: process boundaries (SML008/SML010) while remaining secret for the
    #: timing/size rules.  The precise replacement for the two line-level
    #: SML008 waivers the keyservice response path used to carry.
    wire_masked_calls: Tuple[str, ...] = ("evaluate_blinded",)

    #: Path fragments where SML010 applies: everywhere a task envelope or
    #: pickle payload can be minted — the parallel layer itself, the
    #: server handlers that fan work out, and the enrollment core.
    boundary_scope_fragments: Tuple[str, ...] = (
        "repro/net/",
        "repro/server/",
        "repro/parallel/",
        "repro/core/",
    )

    #: Calls whose arguments are serialized across a process boundary:
    #: ``pickle.dumps``/``dump``, task-envelope constructors, pool
    #: ``submit``, shared-memory segments, the result arena's write
    #: API (``put_record`` copies the encoded value into a segment any
    #: process attached to the arena can read), and the shard durability
    #: sinks — ``append_record`` frames a value into a shard's on-disk
    #: WAL and ``write_snapshot`` persists whole group tables, both of
    #: which outlive the process and are replayed into restarted shard
    #: workers, so tainted material must never reach them unencrypted.
    boundary_sink_calls: Tuple[str, ...] = (
        "dumps",
        "dump",
        "TaskEnvelope",
        "SharedMemory",
        "ShareableList",
        "put_record",
        "append_record",
        "write_snapshot",
    )

    #: Keyword arguments that ship their value into worker processes even
    #: though the surrounding call is not itself a sink (``Pool(...,
    #: initargs=(ctx,))`` pickles the tuple into every worker).
    boundary_kwargs: Tuple[str, ...] = ("initargs",)

    # -- SML011: parallel determinism ----------------------------------------------

    #: Path fragments where the cross-backend byte-identical contract
    #: holds; SML011 audits task-unit functions here.
    parallel_scope_fragments: Tuple[str, ...] = ("repro/parallel/",)

    #: Function-name pattern for parallel task units (see module docs).
    parallel_task_name_re: Pattern[str] = field(default=_PARALLEL_TASK_NAME_RE)

    #: Wall-clock reads (``time.time()``, ``datetime.now()``, ...): their
    #: values differ per worker and per run, so any result derived from
    #: them breaks byte-identical replay.
    nondet_time_calls: Tuple[str, ...] = (
        "time",
        "time_ns",
        "monotonic",
        "monotonic_ns",
        "perf_counter",
        "perf_counter_ns",
        "now",
        "utcnow",
    )

    #: Unseeded randomness calls: OS entropy and global-RNG draws cannot
    #: be replayed, so task units must derive randomness from the seeds
    #: carried in their specs.
    nondet_random_calls: Tuple[str, ...] = (
        "random",
        "randint",
        "randrange",
        "getrandbits",
        "choice",
        "shuffle",
        "sample",
        "token_bytes",
        "token_hex",
        "urandom",
    )

    #: Seedable randomness-source constructors: calling one *without* a
    #: seed argument inside a task unit draws OS entropy per worker.
    seedable_source_ctors: Tuple[str, ...] = ("SystemRandomSource",)

    # -- SML012–SML015: concurrency safety ------------------------------------------

    #: Path fragments where the concurrency rules (SML012/014/015) apply:
    #: the whole package — since PR 5 any layer may run under thread or
    #: process pools, so lock discipline is not a parallel/-only concern.
    concurrency_scope_fragments: Tuple[str, ...] = ("repro/",)

    #: Lock-name heuristic (module-level lock globals, lock-ish attributes).
    lock_name_re: Pattern[str] = field(default=_LOCK_NAME_RE)

    #: Constructors whose result is a mutual-exclusion lock (SML012 infers
    #: a class's lock fields from ``self.X = threading.Lock()`` assigns).
    lock_ctor_names: Tuple[str, ...] = ("Lock", "RLock")

    #: Constructors whose instances must never be captured into process-pool
    #: ``initargs`` or task contexts (SML014): fork-inherited lock state is
    #: the canonical pool deadlock, thread-locals and tracers are orphaned
    #: copies in the child, and a live ``SharedMemory`` handle pickles its
    #: *name*, silently detaching from the mapping it claims to hold.
    unforkable_ctor_names: Tuple[str, ...] = (
        "Lock",
        "RLock",
        "Condition",
        "Semaphore",
        "BoundedSemaphore",
        "local",
        "Tracer",
        "SharedMemory",
    )

    #: Method names that may block on another thread/process while called
    #: (SML014 flags them inside a lock-held region — the held lock then
    #: participates in any wait cycle).  Attribute calls only; ``str.join``
    #: and friends are excluded by the non-constant-receiver check.
    blocking_call_names: Tuple[str, ...] = (
        "acquire",
        "join",
        "submit",
        "map_chunks",
        "result",
        "recv",
        "shutdown",
    )

    #: Constructors/displays of mutable containers for SML013's module-level
    #: shared-state inference.
    mutable_ctor_names: Tuple[str, ...] = (
        "dict",
        "list",
        "set",
        "bytearray",
        "OrderedDict",
        "defaultdict",
        "deque",
        "Counter",
    )

    #: Method names that mutate their receiver in place (SML012/SML013
    #: treat ``self.F.append(...)`` / ``CACHE.pop()`` as writes).
    mutating_method_names: Tuple[str, ...] = (
        "append",
        "extend",
        "insert",
        "pop",
        "popitem",
        "clear",
        "update",
        "add",
        "remove",
        "discard",
        "setdefault",
        "move_to_end",
        "sort",
        "reverse",
        "appendleft",
        "popleft",
    )

    #: SML015 — resource constructors paired with the method that releases
    #: them.  ``SharedMemory`` counts only when called with ``create=True``
    #: (attaching is borrowing); ``ArenaWriter``'s release is its commit
    #: point ``seal()`` (docs/PERFORMANCE.md §5 ownership protocol).
    #: The sharded server tier joins the pair set: an open ``ShardWal``
    #: holds an fd and uncommitted frames, a ``ShardState`` owns one, a
    #: ``ProcessShard`` pins a warm single-worker pool, and a
    #: ``ShardedTier`` owns all of the above plus the fan-out thread pool.
    resource_release_methods: Tuple[Tuple[str, str], ...] = (
        ("SharedMemory", "close"),
        ("ResultArena", "close"),
        ("ContextSegment", "close"),
        ("ArenaWriter", "seal"),
        ("ShardWal", "close"),
        ("ShardState", "close"),
        ("ProcessShard", "close"),
        ("ShardedTier", "close"),
    )

    #: Per-path rule ignore sets: ``(path fragment, rule codes)`` pairs.
    #: Test code asserts on equality of freshly derived keys (that *is*
    #: the test) and seeds module-level randomness for reproducibility, so
    #: SML001/SML002 stay off under ``tests/``; everything else applies.
    path_rule_ignores: Tuple[Tuple[str, Tuple[str, ...]], ...] = (
        ("tests/", ("SML001", "SML002")),
    )

    def is_rand_facade(self, posix_path: str) -> bool:
        """True when ``posix_path`` is the randomness facade module."""
        return posix_path.endswith(self.rand_facade_suffixes)

    def is_tcb_path(self, posix_path: str) -> bool:
        """True when the file belongs to the trusted computing base."""
        return any(frag in posix_path for frag in self.tcb_dir_fragments)

    def is_float_allowlisted(self, posix_path: str) -> bool:
        """True when the TCB file may use float arithmetic."""
        return posix_path.endswith(self.float_allowlist_suffixes)

    def is_assert_exempt(self, posix_path: str) -> bool:
        """True when the assert ban does not apply (test code)."""
        return any(frag in posix_path for frag in self.assert_exempt_fragments)

    def is_secret_name(self, identifier: str) -> bool:
        """Apply the SML002 heuristic to a bare identifier."""
        if self.public_name_re.search(identifier):
            return False
        return bool(self.secret_name_re.search(identifier))

    def is_logger_name(self, identifier: str) -> bool:
        """True when an identifier plausibly names a logger (SML006)."""
        return bool(self.logger_name_re.search(identifier))

    # -- SML007–SML009 helpers ----------------------------------------------------

    def is_taint_scope(self, posix_path: str) -> bool:
        """True when the taint rules apply to this file."""
        return any(frag in posix_path for frag in self.taint_scope_fragments)

    def is_taint_source_call(self, name: str, is_method: bool = False) -> bool:
        """True when a call to ``name`` yields secret material."""
        if name in self.taint_source_calls:
            return True
        return is_method and name in self.taint_source_methods

    def is_taint_sanitizer(self, name: str) -> bool:
        """True when a call to ``name`` launders taint (public result)."""
        return (
            name in self.taint_sanitizer_calls
            or name in self.value_laundering_calls
            or name in self.wire_approved_calls
        )

    def is_wire_sink(self, name: str) -> bool:
        """True when a call to ``name`` writes to the wire (SML008)."""
        return name in self.wire_sink_calls

    def is_wire_message_ctor(self, name: str) -> bool:
        """True when ``name`` constructs a wire message (SML008)."""
        return bool(self.wire_message_ctor_re.search(name))

    def is_size_sink(self, name: str) -> bool:
        """True when a call's first argument sets a size (SML009)."""
        return name in self.size_sink_calls

    def is_wire_masked(self, name: str) -> bool:
        """True when a source call's output is blinded/sealed (wire-safe)."""
        return name in self.wire_masked_calls

    def is_boundary_scope(self, posix_path: str) -> bool:
        """True when SML010 applies to this file."""
        return any(frag in posix_path for frag in self.boundary_scope_fragments)

    def is_boundary_sink(self, name: str) -> bool:
        """True when a call serializes its arguments across processes."""
        return name in self.boundary_sink_calls

    def is_boundary_kwarg(self, keyword: str) -> bool:
        """True when a keyword argument ships its value into workers."""
        return keyword in self.boundary_kwargs

    def is_parallel_scope(self, posix_path: str) -> bool:
        """True when SML011 applies to this file."""
        return any(frag in posix_path for frag in self.parallel_scope_fragments)

    def is_parallel_task_name(self, name: str) -> bool:
        """True when a function name denotes a parallel task unit."""
        return bool(self.parallel_task_name_re.search(name))

    # -- SML012–SML015 helpers ----------------------------------------------------

    def is_concurrency_scope(self, posix_path: str) -> bool:
        """True when SML012/SML014/SML015 apply to this file."""
        return any(frag in posix_path for frag in self.concurrency_scope_fragments)

    def is_lock_name(self, identifier: str) -> bool:
        """True when an identifier plausibly names a lock (SML012/SML014)."""
        return bool(self.lock_name_re.search(identifier))

    def is_lock_ctor(self, name: str) -> bool:
        """True when calling ``name`` constructs a lock (SML012)."""
        return name in self.lock_ctor_names

    def is_unforkable_ctor(self, name: str) -> bool:
        """True when instances of ``name`` must not cross a fork (SML014)."""
        return name in self.unforkable_ctor_names

    def is_blocking_call(self, name: str) -> bool:
        """True when method ``name`` may block on other workers (SML014)."""
        return name in self.blocking_call_names

    def is_mutable_ctor(self, name: str) -> bool:
        """True when calling ``name`` builds a mutable container (SML013)."""
        return name in self.mutable_ctor_names

    def is_mutating_method(self, name: str) -> bool:
        """True when method ``name`` mutates its receiver in place."""
        return name in self.mutating_method_names

    def resource_release_for(self, ctor: str) -> Optional[str]:
        """The releasing method for resource constructor ``ctor`` (SML015)."""
        for name, release in self.resource_release_methods:
            if name == ctor:
                return release
        return None

    def ignored_rules_for_path(self, posix_path: str) -> FrozenSet[str]:
        """Rule codes switched off for this path (test-specific set)."""
        ignored = set()
        for fragment, codes in self.path_rule_ignores:
            if fragment in posix_path:
                ignored.update(codes)
        return frozenset(ignored)


DEFAULT_CONFIG = LintConfig()
