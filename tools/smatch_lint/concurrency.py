"""Lockset-style concurrency analysis behind SML012–SML015.

Four related checks over one shared AST pass (memoized per file via
``ctx.cache``), mirroring how :mod:`tools.smatch_lint.taint` backs the
SML007–SML010 family:

* **SML012 — lock discipline.**  For every class, infer its *lock fields*
  (attributes assigned ``threading.Lock()`` / ``RLock()``) and its
  *guarded fields* (attributes written somewhere under ``with
  self._lock:``).  Any read or write of a guarded field on a path not
  lexically dominated by the lock acquisition is a race candidate — the
  classic Eraser lockset algorithm restricted to ``self``-attribute
  state.  Private helpers whose every intra-class call site holds the
  lock are *lock-assuming* (``_flush_locked`` style): their own accesses
  are clean, but an unlocked call to one is a finding, and the helper set
  is exported in the module summary so cross-module callers are audited
  too.
* **SML013 — escape-to-task.**  Module-level mutable containers in
  ``repro/parallel/`` mutated inside function bodies without a module
  lock held, plus ``global`` rebinding inside parallel task units.
  Import-time mutation (single-threaded by the import lock) is exempt.
* **SML014 — fork/deadlock hazards.**  Locks, ``threading.local``,
  tracers, or live ``SharedMemory`` handles captured into process-pool
  ``initargs`` or task-envelope contexts (fork-inherited lock state is
  the canonical pool deadlock), and blocking calls (``submit``,
  ``acquire``, ``result``, ...) issued while a lock is held.
* **SML015 — shared-memory lifecycle.**  A CFG path check that every
  resource created by ``SharedMemory(create=True)`` / ``ResultArena`` /
  ``ContextSegment`` / ``ArenaWriter`` reaches its release (``close()``,
  or the ``seal()`` commit point for writers) or escapes ownership on
  every non-raising path, and that attached (non-owner) segments are
  never ``unlink()``-ed.

The per-class facts (:class:`ClassConcurrency`) ride the whole-program
module summaries, so a module that imports ``OpeNodeCache`` and pokes at
``cache._entries`` without the cache's lock is flagged from the *caller's*
file — the same cross-module application machinery the taint engine uses.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import (
    Callable,
    Dict,
    FrozenSet,
    Iterator,
    List,
    Optional,
    Protocol,
    Sequence,
    Set,
    Tuple,
)

from tools.smatch_lint.cfg import build_cfg
from tools.smatch_lint.config import LintConfig

__all__ = [
    "ClassConcurrency",
    "Finding",
    "ModuleConcurrency",
    "analyze_module",
    "collect_class_facts",
]

#: methods whose unguarded self-attribute access is not a race: they run
#: before the instance is published (``__init__``/``__new__``), during
#: teardown, or on a pickling copy in another process
_EXEMPT_METHODS = frozenset(
    {
        "__init__",
        "__new__",
        "__del__",
        "__getstate__",
        "__setstate__",
        "__reduce__",
        "__reduce_ex__",
    }
)

#: statement fields holding nested statement lists (never expression trees)
_STMT_LIST_FIELDS = frozenset({"body", "orelse", "finalbody", "handlers", "cases"})

FuncDef = ast.FunctionDef  # appeased alias; AsyncFunctionDef handled via tuple
_FUNC_TYPES = (ast.FunctionDef, ast.AsyncFunctionDef)


@dataclass(frozen=True)
class Finding:
    """One concurrency finding, tagged with the rule that owns it."""

    rule: str
    line: int
    col: int
    message: str


@dataclass(frozen=True)
class ClassConcurrency:
    """The exported lockset facts of one class (rides module summaries)."""

    name: str
    #: attributes holding a ``threading.Lock``/``RLock``
    lock_fields: FrozenSet[str] = frozenset()
    #: attributes written under a held lock somewhere in the class
    guarded_fields: FrozenSet[str] = frozenset()
    #: private methods whose every intra-class call site holds the lock —
    #: they assume the lock and must only be called with it held
    locked_helpers: FrozenSet[str] = frozenset()

    def as_dict(self) -> Dict[str, object]:
        """JSON-friendly form for the on-disk summary cache."""
        return {
            "locks": sorted(self.lock_fields),
            "guarded": sorted(self.guarded_fields),
            "helpers": sorted(self.locked_helpers),
        }

    @classmethod
    def from_dict(cls, name: str, data: Dict[str, object]) -> "ClassConcurrency":
        locks = data.get("locks", [])
        guarded = data.get("guarded", [])
        helpers = data.get("helpers", [])
        return cls(
            name=name,
            lock_fields=frozenset(str(v) for v in locks),  # type: ignore[union-attr]
            guarded_fields=frozenset(str(v) for v in guarded),  # type: ignore[union-attr]
            locked_helpers=frozenset(str(v) for v in helpers),  # type: ignore[union-attr]
        )


@dataclass
class ModuleConcurrency:
    """Everything the concurrency pass learned about one module."""

    classes: Dict[str, ClassConcurrency] = field(default_factory=dict)
    findings: List[Finding] = field(default_factory=list)


# -- small AST helpers -----------------------------------------------------------


def _at(node: ast.AST) -> Tuple[int, int]:
    return getattr(node, "lineno", 1), getattr(node, "col_offset", 0) + 1


def _call_name(func: ast.expr) -> Optional[str]:
    """The bare callee name of a call's ``func`` (``threading.Lock`` -> ``Lock``)."""
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return None


def _name_chain(node: ast.expr) -> Optional[Tuple[str, ...]]:
    """``pkg.mod.Cls`` as a name tuple, or ``None`` for non-name chains."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(node.id)
    return tuple(reversed(parts))


def _is_lock_ctor_call(node: ast.expr, config: LintConfig) -> bool:
    """True for ``threading.Lock()`` / ``RLock()`` style constructor calls."""
    if not isinstance(node, ast.Call):
        return False
    name = _call_name(node.func)
    return name is not None and config.is_lock_ctor(name)


def _own_exprs(stmt: ast.AST) -> List[ast.AST]:
    """A statement's expression children, excluding nested statement lists."""
    exprs: List[ast.AST] = []
    for field_name, value in ast.iter_fields(stmt):
        if field_name in _STMT_LIST_FIELDS:
            continue
        if isinstance(value, ast.AST):
            exprs.append(value)
        elif isinstance(value, list):
            exprs.extend(v for v in value if isinstance(v, ast.AST))
    return exprs


def _walk_held(
    stmts: Sequence[ast.stmt],
    held: bool,
    is_lock_item: Callable[[ast.expr], bool],
    visit: Callable[[ast.stmt, bool], None],
) -> None:
    """Visit every statement with its lexical lock-held state.

    ``with <lock>:`` bodies run with ``held=True``; nested function bodies
    restart at ``held=False`` (they execute later, when the lock may not be
    held); nothing releases a lock mid-``with`` (the repo idiom is
    ``with``-only, never paired ``acquire``/``release``).
    """
    for stmt in stmts:
        if isinstance(stmt, _FUNC_TYPES):
            _walk_held(stmt.body, False, is_lock_item, visit)
            continue
        if isinstance(stmt, ast.ClassDef):
            _walk_held(stmt.body, held, is_lock_item, visit)
            continue
        visit(stmt, held)
        inner = held
        if isinstance(stmt, (ast.With, ast.AsyncWith)) and any(
            is_lock_item(item.context_expr) for item in stmt.items
        ):
            inner = True
        for field_name in ("body", "orelse", "finalbody"):
            sub = getattr(stmt, field_name, None)
            if sub:
                _walk_held(sub, inner, is_lock_item, visit)
        for handler in getattr(stmt, "handlers", None) or []:
            _walk_held(handler.body, inner, is_lock_item, visit)
        for case in getattr(stmt, "cases", None) or []:
            _walk_held(case.body, inner, is_lock_item, visit)


# -- receiver-keyed access scanning ----------------------------------------------

#: one attribute access: (receiver key, attr, line, col)
_Access = Tuple[str, str, int, int]


class _AccessSink:
    """Collects reads/writes/method-calls on a set of tracked receivers."""

    def __init__(
        self, receiver_of: Callable[[ast.expr], Optional[str]], config: LintConfig
    ) -> None:
        self._receiver_of = receiver_of
        self._config = config
        self.reads: List[_Access] = []
        self.writes: List[_Access] = []
        self.calls: List[_Access] = []

    def _tracked_attr(self, node: ast.AST) -> Optional[Tuple[str, str]]:
        if not isinstance(node, ast.Attribute):
            return None
        recv = self._receiver_of(node.value)
        if recv is None:
            return None
        return recv, node.attr

    def scan_target(self, target: ast.expr) -> None:
        """Classify one assignment/deletion target."""
        if isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                self.scan_target(elt)
            return
        if isinstance(target, ast.Starred):
            self.scan_target(target.value)
            return
        hit = self._tracked_attr(target)
        if hit is not None:
            line, col = _at(target)
            self.writes.append((hit[0], hit[1], line, col))
            return
        if isinstance(target, ast.Subscript):
            # ``self._entries[k] = v`` mutates the container behind the attr
            hit = self._tracked_attr(target.value)
            if hit is not None:
                line, col = _at(target)
                self.writes.append((hit[0], hit[1], line, col))
                self.scan_value(target.slice)
                return
        self.scan_value(target)

    def scan_value(self, node: ast.AST) -> None:
        """Collect reads, mutating-method writes, and method calls."""
        consumed: Set[int] = set()
        for sub in ast.walk(node):
            if not (isinstance(sub, ast.Call) and isinstance(sub.func, ast.Attribute)):
                continue
            func = sub.func
            hit = self._tracked_attr(func)
            if hit is not None:
                # ``recv.method(...)`` — a call, not a field access
                line, col = _at(func)
                self.calls.append((hit[0], func.attr, line, col))
                consumed.add(id(func))
                continue
            if self._config.is_mutating_method(func.attr):
                inner = self._tracked_attr(func.value)
                if inner is not None:
                    # ``recv.field.append(...)`` mutates the field in place
                    line, col = _at(func.value)
                    self.writes.append((inner[0], inner[1], line, col))
                    consumed.add(id(func.value))
        for sub in ast.walk(node):
            if id(sub) in consumed:
                continue
            hit = self._tracked_attr(sub)
            if hit is not None:
                line, col = _at(sub)
                self.reads.append((hit[0], hit[1], line, col))

    def scan_statement(self, stmt: ast.stmt) -> None:
        """Dispatch one simple statement into target/value scanning."""
        if isinstance(stmt, ast.Assign):
            for target in stmt.targets:
                self.scan_target(target)
            self.scan_value(stmt.value)
        elif isinstance(stmt, ast.AugAssign):
            self.scan_target(stmt.target)
            # an augmented target is also a read, but reporting one finding
            # per site is what we want — the write entry covers it
            self.scan_value(stmt.value)
        elif isinstance(stmt, ast.AnnAssign):
            self.scan_target(stmt.target)
            if stmt.value is not None:
                self.scan_value(stmt.value)
        elif isinstance(stmt, ast.Delete):
            for target in stmt.targets:
                self.scan_target(target)
        else:
            for expr in _own_exprs(stmt):
                self.scan_value(expr)


def _self_receiver(node: ast.expr) -> Optional[str]:
    if isinstance(node, ast.Name) and node.id == "self":
        return "self"
    return None


# -- SML012: per-class lockset inference -----------------------------------------


@dataclass
class _MethodFacts:
    """Accesses and intra-class calls of one method, with held states."""

    name: str
    #: (attr, line, col, is_write, held)
    accesses: List[Tuple[str, int, int, bool, bool]] = field(default_factory=list)
    #: (callee, line, col, held)
    calls: List[Tuple[str, int, int, bool]] = field(default_factory=list)


class _ClassAnalysis:
    """Lockset facts plus per-method access records for one class."""

    def __init__(self, node: ast.ClassDef, config: LintConfig) -> None:
        self.node = node
        self.config = config
        self.lock_fields = self._find_lock_fields()
        self.methods: Dict[str, _MethodFacts] = {}
        if self.lock_fields:
            for method in self._method_defs():
                if method.name in _EXEMPT_METHODS:
                    continue
                self.methods[method.name] = self._method_facts(method)
        self.guarded_fields = self._guarded_fields()
        self.assumed_held = self._assumed_held()

    def _method_defs(self) -> Iterator[ast.AST]:
        for stmt in self.node.body:
            if isinstance(stmt, _FUNC_TYPES):
                yield stmt

    def _find_lock_fields(self) -> FrozenSet[str]:
        found: Set[str] = set()
        for method in self._method_defs():
            for sub in ast.walk(method):
                if not isinstance(sub, (ast.Assign, ast.AnnAssign)):
                    continue
                value = sub.value
                if value is None or not _is_lock_ctor_call(value, self.config):
                    continue
                targets = (
                    sub.targets if isinstance(sub, ast.Assign) else [sub.target]
                )
                for target in targets:
                    if (
                        isinstance(target, ast.Attribute)
                        and isinstance(target.value, ast.Name)
                        and target.value.id == "self"
                    ):
                        found.add(target.attr)
        return frozenset(found)

    def _is_lock_item(self, expr: ast.expr) -> bool:
        return (
            isinstance(expr, ast.Attribute)
            and isinstance(expr.value, ast.Name)
            and expr.value.id == "self"
            and expr.attr in self.lock_fields
        )

    def _method_facts(self, method: ast.AST) -> _MethodFacts:
        facts = _MethodFacts(name=getattr(method, "name", "<lambda>"))

        def visit(stmt: ast.stmt, held: bool) -> None:
            sink = _AccessSink(_self_receiver, self.config)
            sink.scan_statement(stmt)
            for _recv, attr, line, col in sink.writes:
                if attr not in self.lock_fields:
                    facts.accesses.append((attr, line, col, True, held))
            for _recv, attr, line, col in sink.reads:
                if attr not in self.lock_fields:
                    facts.accesses.append((attr, line, col, False, held))
            for _recv, attr, line, col in sink.calls:
                facts.calls.append((attr, line, col, held))

        body = getattr(method, "body", [])
        _walk_held(body, False, self._is_lock_item, visit)
        return facts

    def _guarded_fields(self) -> FrozenSet[str]:
        guarded: Set[str] = set()
        for facts in self.methods.values():
            for attr, _line, _col, is_write, held in facts.accesses:
                if is_write and held:
                    guarded.add(attr)
        return frozenset(guarded)

    def _assumed_held(self) -> Dict[str, bool]:
        """Private methods whose every intra-class call site holds the lock.

        Fixpoint over the call graph so a helper called only from other
        lock-assuming helpers is itself lock-assuming (bounded by the
        method count; the relation is monotone).
        """
        assumed = {name: False for name in self.methods}
        call_sites: Dict[str, List[Tuple[str, bool]]] = {}
        for caller, facts in self.methods.items():
            for callee, _line, _col, held in facts.calls:
                if callee in self.methods:
                    call_sites.setdefault(callee, []).append((caller, held))
        for _ in range(len(self.methods) + 1):
            changed = False
            for name in self.methods:
                if assumed[name] or not name.startswith("_"):
                    continue
                sites = call_sites.get(name)
                if not sites:
                    continue
                if all(held or assumed[caller] for caller, held in sites):
                    assumed[name] = True
                    changed = True
            if not changed:
                break
        return assumed

    def facts(self) -> ClassConcurrency:
        return ClassConcurrency(
            name=self.node.name,
            lock_fields=self.lock_fields,
            guarded_fields=self.guarded_fields,
            locked_helpers=frozenset(
                name for name, held in self.assumed_held.items() if held
            ),
        )

    def findings(self) -> Iterator[Finding]:
        if not self.lock_fields or not self.guarded_fields:
            return
        lock = sorted(self.lock_fields)[0]
        for name, facts in self.methods.items():
            if self.assumed_held.get(name):
                continue  # callers hold the lock for the whole body
            for attr, line, col, is_write, held in facts.accesses:
                if held or attr not in self.guarded_fields:
                    continue
                verb = "written" if is_write else "read"
                yield Finding(
                    "SML012",
                    line,
                    col,
                    f"field 'self.{attr}' of {self.node.name!r} is {verb} "
                    f"without holding 'self.{lock}' — it is lock-guarded "
                    "elsewhere, so this access can race; take the lock or "
                    "move the access into a locked helper",
                )
            for callee, line, col, held in facts.calls:
                if held or not self.assumed_held.get(callee):
                    continue
                yield Finding(
                    "SML012",
                    line,
                    col,
                    f"call to lock-assuming helper 'self.{callee}()' without "
                    f"holding 'self.{lock}' — every other call site takes "
                    "the lock first; this one races the guarded state",
                )


def collect_class_facts(
    tree: ast.AST, config: LintConfig
) -> Dict[str, ClassConcurrency]:
    """Per-class lockset facts of one module (exported via summaries).

    Only classes that actually own a lock field are reported — classes
    without locks carry no discipline to enforce.
    """
    facts: Dict[str, ClassConcurrency] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.ClassDef):
            analysis = _ClassAnalysis(node, config)
            if analysis.lock_fields:
                facts[node.name] = analysis.facts()
    return facts


# -- SML012 cross-module application ----------------------------------------------


def _infer_instance_facts(
    func: ast.AST,
    local_classes: Dict[str, ClassConcurrency],
    imports: Optional[object],
) -> Dict[str, ClassConcurrency]:
    """Flow-insensitive map of local variable -> lockset facts.

    ``obj = OpeNodeCache(...)`` binds ``obj`` to the class's facts when the
    class is local or resolvable through the import graph.
    """
    inferred: Dict[str, ClassConcurrency] = {}
    resolver = getattr(imports, "resolve_class_facts", None)
    for sub in ast.walk(func):
        if not isinstance(sub, ast.Assign) or not isinstance(sub.value, ast.Call):
            continue
        if len(sub.targets) != 1 or not isinstance(sub.targets[0], ast.Name):
            continue
        chain = _name_chain(sub.value.func)
        if chain is None:
            continue
        facts: Optional[ClassConcurrency] = None
        if len(chain) == 1:
            facts = local_classes.get(chain[0])
        if facts is None and resolver is not None:
            resolved = resolver(chain)
            if isinstance(resolved, ClassConcurrency):
                facts = resolved
        if facts is not None and facts.lock_fields:
            inferred[sub.targets[0].id] = facts
    return inferred


def _cross_instance_findings(
    tree: ast.AST,
    local_classes: Dict[str, ClassConcurrency],
    ctx: "_CtxLike",
) -> Iterator[Finding]:
    """Audit mutation of *other* objects' guarded state (delegated mutation).

    Within each function, variables bound to instances of lock-owning
    classes are tracked; writing one of their guarded fields, or calling a
    lock-assuming helper, without ``with obj.<lock>:`` held is the same
    race SML012 flags intra-class — just spelled from the caller's side.
    """
    for func in ast.walk(tree):
        if not isinstance(func, _FUNC_TYPES):
            continue
        instances = _infer_instance_facts(func, local_classes, ctx.imports)
        if not instances:
            continue

        def receiver(node: ast.expr) -> Optional[str]:
            if isinstance(node, ast.Name) and node.id in instances:
                return node.id
            return None

        def is_lock_item(expr: ast.expr) -> bool:
            return (
                isinstance(expr, ast.Attribute)
                and isinstance(expr.value, ast.Name)
                and expr.value.id in instances
                and expr.attr in instances[expr.value.id].lock_fields
            )

        found: List[Finding] = []

        def visit(stmt: ast.stmt, held: bool) -> None:
            if held:
                # single-lock tracking: any tracked lock held covers the
                # region (one lock per guarded object is the repo idiom)
                return
            sink = _AccessSink(receiver, ctx.config)
            sink.scan_statement(stmt)
            for recv, attr, line, col in sink.writes:
                facts = instances[recv]
                if attr in facts.guarded_fields:
                    lock = sorted(facts.lock_fields)[0]
                    found.append(
                        Finding(
                            "SML012",
                            line,
                            col,
                            f"field {recv}.{attr} of {facts.name!r} is "
                            f"mutated without holding {recv}.{lock} — the "
                            "class guards it with a lock; use the locked "
                            "API instead of poking its state",
                        )
                    )
            for recv, attr, line, col in sink.calls:
                facts = instances[recv]
                if attr in facts.locked_helpers:
                    lock = sorted(facts.lock_fields)[0]
                    found.append(
                        Finding(
                            "SML012",
                            line,
                            col,
                            f"call to lock-assuming helper {recv}.{attr}() "
                            f"without holding {recv}.{lock} — the helper "
                            "expects its class lock to be held",
                        )
                    )

        _walk_held(func.body, False, is_lock_item, visit)
        yield from found


# -- SML013: module-level shared state in the parallel layer ----------------------


def _is_mutable_value(node: Optional[ast.expr], config: LintConfig) -> bool:
    if node is None:
        return False
    if isinstance(node, (ast.Dict, ast.List, ast.Set, ast.DictComp, ast.ListComp, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        name = _call_name(node.func)
        return name is not None and config.is_mutable_ctor(name)
    return False


def _task_escape_findings(tree: ast.AST, ctx: "_CtxLike") -> Iterator[Finding]:
    """SML013: unguarded mutation of module-level mutable state."""
    config = ctx.config
    if not isinstance(tree, ast.Module):
        return
    mutable_globals: Set[str] = set()
    module_locks: Set[str] = set()
    for stmt in tree.body:
        targets: List[ast.expr] = []
        value: Optional[ast.expr] = None
        if isinstance(stmt, ast.Assign):
            targets, value = stmt.targets, stmt.value
        elif isinstance(stmt, ast.AnnAssign):
            targets, value = [stmt.target], stmt.value
        for target in targets:
            if not isinstance(target, ast.Name):
                continue
            if _is_lock_ctor_call(value, config) if value is not None else False:
                module_locks.add(target.id)
            elif _is_mutable_value(value, config):
                mutable_globals.add(target.id)

    def is_lock_item(expr: ast.expr) -> bool:
        if isinstance(expr, ast.Name):
            return expr.id in module_locks or config.is_lock_name(expr.id)
        return False

    for func in ast.walk(tree):
        if not isinstance(func, _FUNC_TYPES):
            continue
        declared_global: Set[str] = set()
        for sub in ast.walk(func):
            if isinstance(sub, ast.Global):
                declared_global.update(sub.names)
        is_task_unit = config.is_parallel_task_name(func.name)

        def receiver(node: ast.expr) -> Optional[str]:
            if isinstance(node, ast.Name) and node.id in mutable_globals:
                return node.id
            return None

        found: List[Finding] = []

        def visit(stmt: ast.stmt, held: bool) -> None:
            if is_task_unit and isinstance(stmt, (ast.Assign, ast.AugAssign)):
                targets = (
                    stmt.targets if isinstance(stmt, ast.Assign) else [stmt.target]
                )
                for target in targets:
                    if isinstance(target, ast.Name) and target.id in declared_global:
                        line, col = _at(stmt)
                        found.append(
                            Finding(
                                "SML013",
                                line,
                                col,
                                f"parallel task unit rebinds module global "
                                f"{target.id!r} — worker-visible shared "
                                "state; thread it through the task context "
                                "or guard the write",
                            )
                        )
            if held:
                return
            for target_name, line, col in _global_mutations(stmt, receiver, config):
                found.append(
                    Finding(
                        "SML013",
                        line,
                        col,
                        f"module-level mutable {target_name!r} is mutated "
                        "without a lock in the parallel layer — tasks and "
                        "pool threads share this state; guard it with a "
                        "module lock or make it read-only",
                    )
                )

        _walk_held(func.body, False, is_lock_item, visit)
        yield from found


def _global_mutations(
    stmt: ast.stmt,
    receiver: Callable[[ast.expr], Optional[str]],
    config: LintConfig,
) -> Iterator[Tuple[str, int, int]]:
    """Mutations of tracked module-level names within one statement."""

    def tracked_base(node: ast.expr) -> Optional[str]:
        # ``CACHE[k]`` / ``CACHE[k][j]`` — unwrap subscripts to the name
        while isinstance(node, ast.Subscript):
            node = node.value
        return receiver(node)

    if isinstance(stmt, (ast.Assign, ast.AugAssign, ast.Delete)):
        targets: List[ast.expr]
        if isinstance(stmt, ast.Assign):
            targets = list(stmt.targets)
        elif isinstance(stmt, ast.AugAssign):
            targets = [stmt.target]
        else:
            targets = list(stmt.targets)
        for target in targets:
            if isinstance(target, ast.Subscript):
                name = tracked_base(target)
                if name is not None:
                    line, col = _at(target)
                    yield name, line, col
    for expr in _own_exprs(stmt):
        # own expressions only: nested statements are visited separately
        for sub in ast.walk(expr):
            if not (
                isinstance(sub, ast.Call) and isinstance(sub.func, ast.Attribute)
            ):
                continue
            if not config.is_mutating_method(sub.func.attr):
                continue
            name = tracked_base(sub.func.value)
            if name is not None:
                line, col = _at(sub)
                yield name, line, col


# -- SML014: fork-capture and blocking-under-lock ---------------------------------


def _fork_hazard_findings(
    tree: ast.AST, classes: Dict[str, ClassConcurrency], ctx: "_CtxLike"
) -> Iterator[Finding]:
    config = ctx.config

    # (a) unforkable values reaching pool initargs / task-envelope contexts
    for func in ast.walk(tree):
        if not isinstance(func, _FUNC_TYPES):
            continue
        tracked: Dict[str, str] = {}
        for sub in ast.walk(func):
            if (
                isinstance(sub, ast.Assign)
                and len(sub.targets) == 1
                and isinstance(sub.targets[0], ast.Name)
                and isinstance(sub.value, ast.Call)
            ):
                name = _call_name(sub.value.func)
                if name is not None and config.is_unforkable_ctor(name):
                    tracked[sub.targets[0].id] = name

        def describe_capture(expr: ast.expr) -> Optional[str]:
            """Why ``expr`` must not cross a fork, or ``None`` if it may."""
            if isinstance(expr, ast.Name) and expr.id in tracked:
                return f"{tracked[expr.id]} instance {expr.id!r}"
            if isinstance(expr, ast.Call):
                name = _call_name(expr.func)
                if name is not None and config.is_unforkable_ctor(name):
                    return f"freshly constructed {name}"
            if isinstance(expr, ast.Attribute) and config.is_lock_name(expr.attr):
                return f"lock-named attribute {expr.attr!r}"
            if isinstance(expr, ast.Name) and config.is_lock_name(expr.id):
                return f"lock-named value {expr.id!r}"
            return None

        for sub in ast.walk(func):
            if not isinstance(sub, ast.Call):
                continue
            for keyword in sub.keywords:
                if keyword.arg is None or not config.is_boundary_kwarg(keyword.arg):
                    continue
                values = (
                    list(keyword.value.elts)
                    if isinstance(keyword.value, (ast.Tuple, ast.List))
                    else [keyword.value]
                )
                for value in values:
                    why = describe_capture(value)
                    if why is not None:
                        line, col = _at(value)
                        yield Finding(
                            "SML014",
                            line,
                            col,
                            f"{why} captured into {keyword.arg!r} — "
                            "fork-inherited lock/handle state deadlocks or "
                            "detaches in the child; build it inside the "
                            "worker initializer instead",
                        )
            ctor = _call_name(sub.func)
            if ctor == "TaskEnvelope":
                context_args = [kw.value for kw in sub.keywords if kw.arg == "context"]
                if not context_args and len(sub.args) > 1:
                    context_args = [sub.args[1]]
                for value in context_args:
                    why = describe_capture(value)
                    if why is not None:
                        line, col = _at(value)
                        yield Finding(
                            "SML014",
                            line,
                            col,
                            f"{why} shipped as a task-envelope context — "
                            "contexts are pickled into worker processes; "
                            "send a picklable stand-in and rebuild the "
                            "handle worker-side",
                        )

    # (b) blocking calls while a lock is held
    lock_fields_anywhere: FrozenSet[str] = frozenset(
        attr for facts in classes.values() for attr in facts.lock_fields
    )

    def is_lock_item(expr: ast.expr) -> bool:
        if isinstance(expr, ast.Name):
            return config.is_lock_name(expr.id)
        if isinstance(expr, ast.Attribute):
            return expr.attr in lock_fields_anywhere or config.is_lock_name(expr.attr)
        return False

    blocking: List[Finding] = []

    def visit(stmt: ast.stmt, held: bool) -> None:
        if not held:
            return
        for expr in _own_exprs(stmt):
            for sub in ast.walk(expr):
                if not (
                    isinstance(sub, ast.Call) and isinstance(sub.func, ast.Attribute)
                ):
                    continue
                if not config.is_blocking_call(sub.func.attr):
                    continue
                if isinstance(sub.func.value, ast.Constant):
                    continue  # ``", ".join(...)`` — not a thread join
                line, col = _at(sub)
                blocking.append(
                    Finding(
                        "SML014",
                        line,
                        col,
                        f"blocking call .{sub.func.attr}() while a lock is "
                        "held — the held lock joins any wait cycle "
                        "(classic pool deadlock); release the lock before "
                        "waiting on other workers",
                    )
                )

    for func in ast.walk(tree):
        if isinstance(func, _FUNC_TYPES):
            _walk_held(func.body, False, is_lock_item, visit)
    yield from blocking


# -- SML015: shared-memory resource lifecycle -------------------------------------


def _creator_of(call: ast.Call, config: LintConfig) -> Optional[str]:
    """The resource constructor a call invokes, or ``None``.

    ``SharedMemory`` only counts with ``create=True`` (attaching borrows);
    ``ContextSegment.create(...)`` resolves to ``ContextSegment``.
    """
    name = _call_name(call.func)
    if name == "create" and isinstance(call.func, ast.Attribute):
        base = call.func.value
        if isinstance(base, ast.Name) and config.resource_release_for(base.id):
            return base.id
    if name is None or config.resource_release_for(name) is None:
        return None
    if name == "SharedMemory":
        for keyword in call.keywords:
            if keyword.arg == "create" and (
                isinstance(keyword.value, ast.Constant)
                and keyword.value.value is True
            ):
                return name
        return None
    return name


def _is_attach_call(call: ast.Call, config: LintConfig) -> bool:
    """Attach-style acquisition: a borrowed handle that must not unlink."""
    name = _call_name(call.func)
    if name is None:
        return False
    if name == "SharedMemory":
        return _creator_of(call, config) is None
    return "attach" in name.lower()


def _stmt_releases(stmt: ast.AST, var: str, release: str) -> bool:
    for sub in ast.walk(stmt):
        if (
            isinstance(sub, ast.Call)
            and isinstance(sub.func, ast.Attribute)
            and sub.func.attr == release
            and isinstance(sub.func.value, ast.Name)
            and sub.func.value.id == var
        ):
            return True
    return False


def _stmt_escapes(stmt: ast.AST, var: str) -> bool:
    """Ownership transfer: the resource outlives this function legitimately."""

    def mentions(node: Optional[ast.AST]) -> bool:
        if node is None:
            return False
        return any(
            isinstance(sub, ast.Name) and sub.id == var for sub in ast.walk(node)
        )

    if isinstance(stmt, ast.Return):
        return mentions(stmt.value)
    if isinstance(stmt, (ast.With, ast.AsyncWith)):
        return any(mentions(item.context_expr) for item in stmt.items)
    for sub in ast.walk(stmt):
        if isinstance(sub, (ast.Yield, ast.YieldFrom)) and mentions(sub):
            return True
        if isinstance(sub, ast.Call):
            if any(mentions(arg) for arg in sub.args):
                return True
            if any(mentions(kw.value) for kw in sub.keywords):
                return True
        if isinstance(sub, ast.Assign) and mentions(sub.value):
            return True  # aliased or stored — ownership moved conservatively
        if isinstance(sub, (ast.Tuple, ast.List, ast.Set, ast.Dict)) and mentions(sub):
            return True
    return False


def _shm_lifecycle_findings(tree: ast.AST, ctx: "_CtxLike") -> Iterator[Finding]:
    config = ctx.config
    for func in ast.walk(tree):
        if not isinstance(func, _FUNC_TYPES):
            continue
        graph = build_cfg(func)
        creations: List[Tuple[int, str, str, ast.stmt]] = []
        attach_vars: Set[str] = set()
        for sub in ast.walk(func):
            if not isinstance(sub, ast.Assign) or not isinstance(sub.value, ast.Call):
                continue
            if len(sub.targets) != 1 or not isinstance(sub.targets[0], ast.Name):
                continue
            var = sub.targets[0].id
            ctor = _creator_of(sub.value, config)
            if ctor is not None:
                idx = graph.index_of.get(id(sub))
                if idx is not None:
                    creations.append((idx, var, ctor, sub))
            elif _is_attach_call(sub.value, config):
                attach_vars.add(var)

        # (a) owners must release (or hand off) on every non-raising path
        for idx, var, ctor, create_stmt in creations:
            release = config.resource_release_for(ctor) or "close"
            if _stmt_escapes(create_stmt, var):
                continue  # aliased away in the creating statement itself
            seen: Set[int] = {idx}
            queue: List[int] = [idx]
            leaked = False
            while queue and not leaked:
                node_idx = queue.pop()
                for dst, kind in graph.succs.get(node_idx, []):
                    if kind in ("except", "raise"):
                        continue
                    if dst == graph.EXIT:
                        leaked = True
                        break
                    if dst in seen:
                        continue
                    seen.add(dst)
                    stmt = graph.statement(dst)
                    if stmt is not None and (
                        _stmt_releases(stmt, var, release)
                        or _stmt_escapes(stmt, var)
                    ):
                        continue  # this path is settled; stop expanding it
                    queue.append(dst)
            if leaked:
                line, col = _at(create_stmt)
                yield Finding(
                    "SML015",
                    line,
                    col,
                    f"{ctor} {var!r} may reach function exit without "
                    f".{release}() on a non-raising path — the segment "
                    "outlives the process and leaks; use a with block or "
                    "try/finally"
                    + (
                        " (seal() is the slot's commit point: an unsealed "
                        "slot reads as a worker crash)"
                        if release == "seal"
                        else ""
                    ),
                )

        # (b) attached (non-owner) handles must never unlink the segment
        for sub in ast.walk(func):
            if (
                isinstance(sub, ast.Call)
                and isinstance(sub.func, ast.Attribute)
                and sub.func.attr == "unlink"
                and isinstance(sub.func.value, ast.Name)
                and sub.func.value.id in attach_vars
            ):
                line, col = _at(sub)
                yield Finding(
                    "SML015",
                    line,
                    col,
                    f"unlink() on attached segment {sub.func.value.id!r} — "
                    "only the creating owner unlinks (exactly-once "
                    "protocol); attachers just close()",
                )


# -- the module-level entry point -------------------------------------------------


class _CtxLike(Protocol):
    """Structural view of RuleContext (duck-typed to avoid an import cycle)."""

    @property
    def path(self) -> str: ...

    @property
    def config(self) -> LintConfig: ...

    @property
    def cache(self) -> Dict[str, object]: ...

    @property
    def imports(self) -> Optional[object]: ...


def analyze_module(tree: ast.AST, ctx: "_CtxLike") -> ModuleConcurrency:
    """All concurrency facts and findings for one module (memoized).

    Every SML012–SML015 rule shares this one pass through ``ctx.cache``,
    exactly as the taint rules share :func:`taint.analyze_module`.
    """
    cached = ctx.cache.get("concurrency")
    if isinstance(cached, ModuleConcurrency):
        return cached
    config = ctx.config
    result = ModuleConcurrency()
    in_concurrency_scope = config.is_concurrency_scope(ctx.path)
    if in_concurrency_scope:
        result.classes = collect_class_facts(tree, config)
        for node in ast.walk(tree):
            if isinstance(node, ast.ClassDef):
                analysis = _ClassAnalysis(node, config)
                result.findings.extend(analysis.findings())
        result.findings.extend(
            _cross_instance_findings(tree, result.classes, ctx)
        )
        result.findings.extend(
            _fork_hazard_findings(tree, result.classes, ctx)
        )
        result.findings.extend(_shm_lifecycle_findings(tree, ctx))
    if config.is_parallel_scope(ctx.path):
        result.findings.extend(_task_escape_findings(tree, ctx))
    result.findings.sort(key=lambda f: (f.line, f.col, f.rule, f.message))
    ctx.cache["concurrency"] = result
    return result
