"""Entry point for ``python -m tools.smatch_lint``."""

from __future__ import annotations

import sys

from tools.smatch_lint.cli import main

if __name__ == "__main__":
    sys.exit(main())
