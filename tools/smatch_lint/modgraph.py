"""Import resolution and the module dependency graph.

PR 4's taint engine stops at the file boundary: a call to an imported
helper is an *unknown* call, conservatively assumed to pass every argument
taint through and to introduce none.  That is both imprecise (a helper
that launders its input through ``constant_time_eq`` still looks tainted)
and unsound in the direction that matters (a helper that *returns* secret
material looks clean when called with clean arguments).  Whole-program
analysis needs to know, for every module, which other analyzed modules it
imports and what each imported name refers to — this module builds that
layer on stdlib ``ast`` alone.

Three pieces:

* **module identity** — a file's dotted module name and the package root
  imports resolve against, derived the way Python itself does it: walk up
  from the file while ``__init__.py`` exists (:func:`module_identity`).
  ``src/repro/server/keyservice.py`` → ``repro.server.keyservice`` rooted
  at ``src/``; ``tools/smatch_lint/engine.py`` → rooted at the repo root.
* **import bindings** — per module, every local name an ``import`` /
  ``from ... import`` statement binds, resolved to an absolute target
  (:class:`ImportBinding`): the module it names and, for ``from x import
  y`` where ``y`` is not itself a module, the attribute.  Aliases
  (``import a.b as c``, ``from x import y as z``) and relative imports
  are resolved here so downstream consumers only ever see absolute names.
* **the graph** — :class:`Program` holds every module reachable from the
  requested files through resolvable imports (the *closure*; imports that
  do not land on an analyzed root, e.g. the stdlib, are simply absent),
  plus Tarjan SCCs in dependency-first topological order so summaries can
  be computed bottom-up with bounded iteration inside each cycle.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

__all__ = [
    "ImportBinding",
    "ModuleNode",
    "Program",
    "module_identity",
]


@dataclass(frozen=True)
class ImportBinding:
    """What one locally bound name imported from elsewhere refers to.

    ``module`` is the absolute dotted module the binding targets; ``attr``
    is the attribute taken from it (``from x import y`` → ``attr="y"``) or
    ``None`` when the binding *is* the module (``import x as z`` or
    ``from pkg import submodule``).
    """

    module: str
    attr: Optional[str] = None


@dataclass
class ModuleNode:
    """One analyzed module: identity, parsed tree, and import facts."""

    name: str
    path: Path
    #: POSIX path used in reports (relative to cwd when possible)
    display_path: str
    source: str
    tree: ast.Module
    #: local binding name -> what it imports
    bindings: Dict[str, ImportBinding] = field(default_factory=dict)
    #: absolute names of imported modules that resolved inside the program
    deps: Set[str] = field(default_factory=set)
    #: True when the module was explicitly requested (reported), False
    #: when it joined the program only as an import target (summaries only)
    requested: bool = False


def module_identity(path: Path) -> Tuple[str, Path]:
    """The dotted module name of ``path`` and its package root.

    Mirrors import semantics: the package root is the first ancestor
    directory *without* an ``__init__.py``; the dotted name is the path
    from there to the file, with ``__init__`` naming the package itself.
    """
    resolved = path.resolve()
    package_dir = resolved.parent
    parts: List[str] = []
    while (package_dir / "__init__.py").exists():
        parts.append(package_dir.name)
        package_dir = package_dir.parent
    parts.reverse()
    stem = resolved.stem
    if stem != "__init__":
        parts.append(stem)
    name = ".".join(parts) if parts else stem
    return name, package_dir


def _resolve_module_path(dotted: str, roots: Sequence[Path]) -> Optional[Path]:
    """The file a dotted module name resolves to under ``roots``, if any."""
    rel = Path(*dotted.split("."))
    for root in roots:
        as_module = root / rel.with_suffix(".py")
        if as_module.is_file():
            return as_module
        as_package = root / rel / "__init__.py"
        if as_package.is_file():
            return as_package
    return None


def _absolute_base(importer: str, is_package: bool, level: int) -> Optional[str]:
    """The package a relative import of ``level`` resolves against."""
    parts = importer.split(".")
    if not is_package:
        parts = parts[:-1]
    drop = level - 1
    if drop > len(parts):
        return None
    base = parts[: len(parts) - drop]
    return ".".join(base) if base else None


def collect_imports(
    tree: ast.Module, module_name: str, is_package: bool
) -> List[Tuple[str, ImportBinding]]:
    """All top-level-visible import bindings of one module.

    Walks the whole tree (imports inside functions count: lazy imports are
    still call targets), resolving relative levels against
    ``module_name``.  Returns ``(local name, binding)`` pairs; later
    bindings of the same name win, matching execution order.
    """
    found: List[Tuple[str, ImportBinding]] = []
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.asname is not None:
                    found.append((alias.asname, ImportBinding(alias.name)))
                else:
                    # ``import a.b.c`` binds the root name ``a``; dotted
                    # attribute access is resolved against that root
                    root = alias.name.split(".")[0]
                    found.append((root, ImportBinding(root)))
                    if "." in alias.name:
                        # remember the full chain too, so summary lookup
                        # can resolve ``a.b.c.f()`` without re-deriving it
                        found.append((alias.name, ImportBinding(alias.name)))
        elif isinstance(node, ast.ImportFrom):
            if node.level == 0:
                base = node.module
            else:
                base = _absolute_base(module_name, is_package, node.level)
                if base is None:
                    continue
                if node.module:
                    base = f"{base}.{node.module}" if base else node.module
            if not base:
                continue
            for alias in node.names:
                if alias.name == "*":
                    continue  # star imports stay conservative (unresolved)
                local = alias.asname or alias.name
                found.append((local, ImportBinding(base, alias.name)))
    return found


@dataclass
class Program:
    """The whole-program view: all modules, deps, and an analysis order."""

    #: dotted module name -> node
    modules: Dict[str, ModuleNode] = field(default_factory=dict)
    #: package roots imports were resolved against
    roots: List[Path] = field(default_factory=list)

    @classmethod
    def build(
        cls,
        files: Iterable[Tuple[Path, str, str]],
        extra_roots: Sequence[Path] = (),
        max_modules: int = 4096,
    ) -> "Program":
        """The import closure of ``files``.

        ``files`` yields ``(path, display_path, source)`` for every
        explicitly requested file.  Each file's own package root (plus any
        ``src/`` sibling of it and ``extra_roots``) joins the resolution
        root set, so a program spanning ``src/`` + ``tools/`` + ``tests/``
        resolves across all three.  Unresolvable imports (stdlib, third
        party) are silently treated as unknown — the taint engine stays
        conservative about them.
        """
        program = cls()
        root_set: List[Path] = []

        def add_root(root: Path) -> None:
            if root not in root_set:
                root_set.append(root)

        for root in extra_roots:
            add_root(Path(root).resolve())

        queue: List[Tuple[Path, Optional[str], Optional[str], bool]] = []
        seen_paths: Set[Path] = set()
        for path, display, source in files:
            queue.append((Path(path), display, source, True))

        while queue and len(program.modules) < max_modules:
            path, display, source, requested = queue.pop(0)
            resolved = path.resolve()
            if resolved in seen_paths:
                # a closure-only module later requested explicitly must
                # still be reported
                if requested:
                    for node in program.modules.values():
                        if node.path == resolved:
                            node.requested = True
                            if display is not None:
                                node.display_path = display
                continue
            seen_paths.add(resolved)
            if source is None:
                try:
                    source = resolved.read_text(encoding="utf-8")
                except OSError:
                    continue
            name, package_root = module_identity(resolved)
            add_root(package_root)
            src_sibling = package_root / "src"
            if src_sibling.is_dir():
                add_root(src_sibling)
            try:
                tree = ast.parse(source, filename=str(resolved))
            except SyntaxError:
                # requested files with syntax errors are reported by the
                # per-file lint pass; they contribute nothing to the graph
                continue
            if display is None:
                display = _display_path(resolved)
            node = ModuleNode(
                name=name,
                path=resolved,
                display_path=display,
                source=source,
                tree=tree,
                requested=requested,
            )
            is_package = resolved.name == "__init__.py"
            for local, binding in collect_imports(tree, name, is_package):
                node.bindings[local] = binding
            # keep the first-seen node for a name (requested files win the
            # queue order); duplicate module names from disjoint roots are
            # rare and only cost precision, never correctness
            if name not in program.modules or requested:
                program.modules[name] = node
            # enqueue import targets for the closure
            for binding in node.bindings.values():
                for target in _candidate_modules(binding):
                    if target in program.modules:
                        continue
                    target_path = _resolve_module_path(target, root_set)
                    if target_path is not None and target_path not in seen_paths:
                        queue.append((target_path, None, None, False))
        program.roots = root_set
        program._link_deps()
        return program

    # -- graph structure --------------------------------------------------------

    def _link_deps(self) -> None:
        """Fill each node's ``deps`` with program-internal import edges."""
        for node in self.modules.values():
            node.deps.clear()
            for binding in node.bindings.values():
                for target in _candidate_modules(binding):
                    if target in self.modules and target != node.name:
                        node.deps.add(target)
                        break

    def node_for_path(self, path: Path) -> Optional[ModuleNode]:
        """The module node behind a filesystem path, if analyzed."""
        resolved = Path(path).resolve()
        for node in self.modules.values():
            if node.path == resolved:
                return node
        return None

    def sccs_topological(self) -> List[List[str]]:
        """Strongly connected components, dependencies-first.

        Tarjan's algorithm (iterative — analysis targets can be deep).
        Tarjan emits SCCs in reverse topological order of the condensation
        when edges point at dependencies, which is exactly
        dependencies-first: each SCC appears after everything it depends
        on has already been emitted.
        """
        index: Dict[str, int] = {}
        lowlink: Dict[str, int] = {}
        on_stack: Set[str] = set()
        stack: List[str] = []
        sccs: List[List[str]] = []
        counter = [0]

        for start in sorted(self.modules):
            if start in index:
                continue
            work: List[Tuple[str, int]] = [(start, 0)]
            while work:
                name, edge_i = work[-1]
                if edge_i == 0:
                    index[name] = lowlink[name] = counter[0]
                    counter[0] += 1
                    stack.append(name)
                    on_stack.add(name)
                deps = sorted(self.modules[name].deps)
                advanced = False
                while edge_i < len(deps):
                    dep = deps[edge_i]
                    edge_i += 1
                    if dep not in index:
                        work[-1] = (name, edge_i)
                        work.append((dep, 0))
                        advanced = True
                        break
                    if dep in on_stack:
                        lowlink[name] = min(lowlink[name], index[dep])
                if advanced:
                    continue
                work[-1] = (name, edge_i)
                if edge_i >= len(deps):
                    work.pop()
                    if work:
                        parent = work[-1][0]
                        lowlink[parent] = min(lowlink[parent], lowlink[name])
                    if lowlink[name] == index[name]:
                        scc: List[str] = []
                        while True:
                            member = stack.pop()
                            on_stack.discard(member)
                            scc.append(member)
                            if member == name:
                                break
                        sccs.append(sorted(scc))
        return sccs

    def transitive_deps(self, name: str) -> Set[str]:
        """All modules reachable from ``name`` through import edges."""
        seen: Set[str] = set()
        frontier = [name]
        while frontier:
            current = frontier.pop()
            node = self.modules.get(current)
            if node is None:
                continue
            for dep in node.deps:
                if dep not in seen:
                    seen.add(dep)
                    frontier.append(dep)
        seen.discard(name)
        return seen


def _candidate_modules(binding: ImportBinding) -> Tuple[str, ...]:
    """Module names a binding may refer to, most specific first.

    ``from a import b`` may import submodule ``a.b`` or attribute ``b`` of
    module ``a`` — both are tried during resolution.
    """
    if binding.attr is None:
        return (binding.module,)
    return (f"{binding.module}.{binding.attr}", binding.module)


def _display_path(path: Path) -> str:
    """Report path relative to cwd when possible (matching the CLI)."""
    try:
        return path.relative_to(Path.cwd()).as_posix()
    except ValueError:
        return path.as_posix()
