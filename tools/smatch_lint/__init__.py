"""smatch-lint: crypto-invariant static analysis for the S-MATCH codebase.

The S-MATCH security arguments (PR-KK, PR-OKPA, order-only OPE leakage) are
protocol-level; they survive implementation only if the code respects a small
set of invariants the paper assumes implicitly.  This package enforces them
as AST-based lint rules over ``src/``:

* **SML001** — all randomness flows through the seeded-CSPRNG facade
  (``repro.utils.rand``); no direct ``random`` imports elsewhere.
* **SML002** — secret-typed values (key material, OPRF outputs, MAC tags)
  are never compared with ``==``/``!=``; use
  :func:`repro.utils.ct.constant_time_eq`.
* **SML003** — no ``float`` arithmetic inside the exact-arithmetic trusted
  computing base (``crypto/``, ``gf/``, ``ntheory/``), with an explicit
  allowlist for the OPE hypergeometric sampler.
* **SML004** — import layering: the trusted computing base must not import
  from ``server/``, ``net/``, ``client/``, or ``experiments/``.
* **SML005** — no bare ``except:``, no swallowed exceptions, and no
  ``assert`` as runtime validation; raise typed ``repro.errors`` exceptions.

Run it as ``python -m tools.smatch_lint src/``.  Individual findings can be
suppressed with a trailing ``# smatch-lint: disable=SML00x`` comment; a
``# smatch-lint: disable-file=SML00x`` comment suppresses a rule for the
whole file.  See ``docs/STATIC_ANALYSIS.md`` for the policy.
"""

from __future__ import annotations

from tools.smatch_lint.config import DEFAULT_CONFIG, LintConfig
from tools.smatch_lint.engine import Violation, lint_paths, lint_source
from tools.smatch_lint.rules import RULES

__all__ = [
    "DEFAULT_CONFIG",
    "LintConfig",
    "RULES",
    "Violation",
    "lint_paths",
    "lint_source",
]

__version__ = "1.0.0"
