"""Forward taint propagation over def-use chains (rules SML007–SML009).

The §IV threat model makes the matching server honest-but-curious: any
secret-dependent branch, loop bound, wire field, or response size in the
``net/`` and ``server/`` handlers is an observable side channel.  The
pattern rules SML001–SML006 catch single-expression mistakes; this module
tracks *flows* — a secret parameter copied into a local, returned from a
helper, and finally compared in a branch is still a leak three hops later.

Model
-----

* **Sources** — values that carry secret material:

  - parameters / attribute reads whose names match the SML002/SML006
    secret heuristics (``key``, ``secret``, ``tag``, ...),
  - any assignment on a line annotated ``# smatch-lint: secret``,
  - results of registered secret-bearing APIs (``ProfileKey``, ``hkdf``,
    ``prf``, OPRF ``blind``/``evaluate_blinded``, AEAD ``open``, ...).

* **Sanitizers** — calls whose results are public regardless of input:
  ``constant_time_eq`` (the protocol-mandated accept/reject bit),
  hashing/digest calls, the ``len``/``type``/``bool`` launders, and the
  approved encrypt/blind calls (``seal``/``encrypt``/...) whose outputs
  are ciphertext and may reach the wire.

* **Propagation** — a forward may-analysis over the per-function CFG from
  :mod:`tools.smatch_lint.cfg`: assignments copy taint, joins union it, a
  clean re-assignment on every path kills it.  Calls to functions defined
  in the same module use **summaries** (which parameters flow into the
  return value), computed to fixpoint, so multi-hop flows through local
  helpers are tracked.  When the analysis runs in whole-program mode the
  context carries an import resolver (``ctx.imports``, built by
  :mod:`tools.smatch_lint.summaries`): calls to imported functions —
  through ``from x import y`` aliases, re-export chains, dotted module
  access, and methods on instances of imported classes — consume the
  callee's :class:`FunctionSummary` instead of being treated as unknown.
  Only genuinely unresolvable calls conservatively propagate the union
  of their argument and receiver taints.

* **Sinks** — recorded as :class:`TaintEvent` entries and mapped to rules
  by context: branch/loop/exception control flow (SML007), serialization
  and transport calls plus wire-message constructors (SML008),
  size-producing expressions — ``bytes(n)``, ``range(n)``, sequence
  repetition, ``int.to_bytes`` widths (SML009) — and process-boundary
  serialization (``pickle.dumps``, task-envelope constructors, pool
  ``initargs``) for SML010.

* **Masked values** — a taint may carry ``wire_ok``: the value is still
  secret-derived (so it must not steer timing or sizes) but is blinded or
  sealed in a form the §IV adversary already observes, so it may cross
  the wire and process boundaries.  The OPRF ``evaluate_blinded`` output
  is the canonical case: x^d mod N on a value still masked by the
  client's blinding factor.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Tuple, Union

from tools.smatch_lint.cfg import build_cfg

__all__ = [
    "Taint",
    "TaintEvent",
    "FunctionSummary",
    "ClassSummary",
    "FunctionTaint",
    "ModuleTaint",
    "analyze_module",
]

#: Taint kind for the synthetic per-parameter marker used only to compute
#: function summaries; never reported to users.
_FORMAL = "formal"

_FuncDef = Union[ast.FunctionDef, ast.AsyncFunctionDef]


@dataclass(frozen=True)
class Taint:
    """One provenance record: where a value's secrecy came from.

    ``kind`` is one of ``param`` / ``name`` / ``attribute`` (the name
    heuristics), ``annotation`` (an explicit ``# smatch-lint: secret``
    line), ``call`` (a registered secret-bearing API), or the internal
    ``formal`` marker.  ``via`` records the variable hops for messages and
    ``--taint-debug``.
    """

    source: str
    kind: str
    via: Tuple[str, ...] = ()
    #: the value is secret-derived but blinded/sealed: it may cross wire
    #: and process boundaries, though it must not steer timing or sizes
    wire_ok: bool = False

    def hop(self, name: str) -> "Taint":
        """The same taint, one propagation hop later.

        The hop chain is deduplicated and capped so the set of distinct
        taints per function is finite — otherwise assignments inside a
        loop would grow ``via`` forever and the fixpoint could not
        converge.
        """
        if name == self.source or name in self.via or len(self.via) >= 4:
            return self
        return Taint(self.source, self.kind, self.via + (name,), self.wire_ok)

    def describe(self) -> str:
        """Human-readable provenance for rule messages."""
        origin = {
            "param": f"secret parameter {self.source!r}",
            "name": f"secret-named value {self.source!r}",
            "attribute": f"secret attribute {self.source!r}",
            "annotation": f"value marked '# smatch-lint: secret' ({self.source})",
            "call": f"secret-bearing call {self.source}()",
        }.get(self.kind, f"{self.source!r}")
        if self.via:
            return f"{origin} via {' -> '.join(self.via)}"
        return origin


TaintSet = FrozenSet[Taint]
_EMPTY: TaintSet = frozenset()

#: variable environment: name (or dotted attribute path) -> taints
Env = Dict[str, TaintSet]


@dataclass(frozen=True)
class TaintEvent:
    """A tainted value reaching an observable sink."""

    line: int
    col: int
    #: ``branch`` | ``loop-iter`` | ``wire`` | ``size`` | ``return``
    context: str
    taint: Taint
    #: sink detail (call name, ``if``/``while``, ...) for the message
    detail: str


@dataclass(frozen=True)
class FunctionSummary:
    """Interprocedural summary: how a function's return relates to inputs."""

    params: Tuple[str, ...]
    #: parameter names whose taint reaches the return value
    flows: FrozenSet[str]
    #: True when the return value is tainted independent of the arguments
    returns_secret: bool
    #: True when every secret the function returns is blinded/sealed —
    #: callers inherit a ``wire_ok`` taint instead of a bare secret one
    returns_wire_ok: bool = False

    def merge(self, other: "FunctionSummary") -> "FunctionSummary":
        """Conservative union of two summaries sharing a name."""
        return FunctionSummary(
            params=self.params,
            flows=self.flows | other.flows,
            returns_secret=self.returns_secret or other.returns_secret,
            # a value is only boundary-safe if *every* overload seals it
            returns_wire_ok=self.returns_wire_ok and other.returns_wire_ok,
        )

    def as_dict(self) -> Dict[str, object]:
        """JSON-friendly form for the on-disk summary cache."""
        return {
            "params": list(self.params),
            "flows": sorted(self.flows),
            "returns_secret": self.returns_secret,
            "returns_wire_ok": self.returns_wire_ok,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "FunctionSummary":
        return cls(
            params=tuple(data["params"]),  # type: ignore[arg-type]
            flows=frozenset(data["flows"]),  # type: ignore[arg-type]
            returns_secret=bool(data["returns_secret"]),
            returns_wire_ok=bool(data.get("returns_wire_ok", False)),
        )


@dataclass
class ClassSummary:
    """Summaries for every method of one class (for imported-class calls)."""

    name: str
    methods: Dict[str, FunctionSummary] = field(default_factory=dict)

    def as_dict(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "methods": {m: s.as_dict() for m, s in sorted(self.methods.items())},
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "ClassSummary":
        methods = {
            m: FunctionSummary.from_dict(s)
            for m, s in data["methods"].items()  # type: ignore[union-attr]
        }
        return cls(name=str(data["name"]), methods=methods)


@dataclass
class FunctionTaint:
    """The analysis result for one function."""

    qualname: str
    lineno: int
    events: List[TaintEvent]
    summary: FunctionSummary
    exit_env: Env

    def real_events(self) -> List[TaintEvent]:
        """Events caused by real sources (summary markers filtered out)."""
        return [e for e in self.events if e.taint.kind != _FORMAL]


@dataclass
class ModuleTaint:
    """All per-function results of one module."""

    functions: List[FunctionTaint] = field(default_factory=list)

    def events(self, *contexts: str) -> Iterable[Tuple[FunctionTaint, TaintEvent]]:
        """Real-source events across the module, filtered by context."""
        wanted = set(contexts)
        for fn in self.functions:
            for event in fn.real_events():
                if event.context in wanted:
                    yield fn, event


def _join(a: Env, b: Env) -> Env:
    """Key-wise union of two environments."""
    if not a:
        return dict(b)
    out = dict(a)
    for name, taints in b.items():
        out[name] = out.get(name, _EMPTY) | taints
    return out


def _real(taints: TaintSet) -> List[Taint]:
    return [t for t in taints if t.kind != _FORMAL]


def _at(node: ast.AST) -> Tuple[int, int]:
    return getattr(node, "lineno", 1), getattr(node, "col_offset", 0) + 1


def _name_chain(node: ast.expr) -> Optional[Tuple[str, ...]]:
    """``a.b.c`` as ``("a", "b", "c")``; ``None`` for non-name chains."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return tuple(reversed(parts))
    return None


class _FunctionAnalysis:
    """Fixpoint taint analysis of a single function body."""

    def __init__(
        self,
        func: _FuncDef,
        qualname: str,
        ctx: "object",
        summaries: Dict[str, FunctionSummary],
        classes: Optional[Dict[str, ClassSummary]] = None,
    ) -> None:
        self.func = func
        self.qualname = qualname
        self.ctx = ctx
        self.config = ctx.config  # type: ignore[attr-defined]
        self.secret_lines: FrozenSet[int] = getattr(ctx, "secret_lines", frozenset())
        self.summaries = summaries
        self.classes = classes or {}
        #: cross-module resolver (duck-typed; ``None`` in per-module mode)
        self.imports = getattr(ctx, "imports", None)
        self.events: List[TaintEvent] = []
        self.return_taints: TaintSet = _EMPTY
        self._collecting = False
        self._instance_types = self._infer_instance_types()

    def _infer_instance_types(self) -> Dict[str, ClassSummary]:
        """Flow-insensitive map of local names to known class instances.

        ``obj = ImportedClass(...)`` records ``obj``'s class so a later
        ``obj.method(x)`` can consume the method's summary.  One pre-pass
        over the whole body is enough: re-binding a name to a different
        class is vanishingly rare in this tree and only costs precision.
        """
        found: Dict[str, ClassSummary] = {}
        for node in ast.walk(self.func):
            if not (isinstance(node, ast.Assign) and isinstance(node.value, ast.Call)):
                continue
            cls = self._resolve_class(node.value.func)
            if cls is None:
                continue
            for target in node.targets:
                if isinstance(target, ast.Name):
                    found[target.id] = cls
        return found

    def _resolve_class(self, func: ast.expr) -> Optional[ClassSummary]:
        """The :class:`ClassSummary` a constructor expression names, if any."""
        chain = _name_chain(func)
        if not chain:
            return None
        if len(chain) == 1:
            local = self.classes.get(chain[0])
            if local is not None:
                return local
        if self.imports is not None:
            resolved = self.imports.resolve(chain)
            if isinstance(resolved, ClassSummary):
                return resolved
        return None

    # -- entry ------------------------------------------------------------------

    def run(self) -> FunctionTaint:
        cfg = build_cfg(self.func)
        entry_env = self._initial_env()
        in_envs: Dict[int, Env] = {cfg.ENTRY: entry_env}
        out_envs: Dict[int, Env] = {}
        worklist = [cfg.ENTRY]
        iterations = 0
        limit = 50 * (len(cfg.nodes) + 1)
        while worklist and iterations < limit:
            iterations += 1
            idx = worklist.pop()
            in_env = in_envs.get(idx, {})
            out_env = self._transfer(cfg.statement(idx), in_env)
            if out_envs.get(idx) == out_env:
                continue
            out_envs[idx] = out_env
            for succ, _kind in cfg.succs.get(idx, ()):  # propagate
                merged = _join(in_envs.get(succ, {}), out_env)
                if merged != in_envs.get(succ, {}):
                    in_envs[succ] = merged
                    worklist.append(succ)
        # second pass: stable environments, now record events
        self._collecting = True
        for idx in cfg.indices():
            stmt = cfg.statement(idx)
            if stmt is None:
                continue
            self._transfer(stmt, in_envs.get(idx, {}))
        self._collecting = False
        params = self._param_names()
        flows = frozenset(
            t.source for t in self.return_taints if t.kind == _FORMAL
        )
        real_returns = _real(self.return_taints)
        summary = FunctionSummary(
            params=params,
            flows=flows & frozenset(params),
            returns_secret=bool(real_returns),
            returns_wire_ok=bool(real_returns)
            and all(t.wire_ok for t in real_returns),
        )
        return FunctionTaint(
            qualname=self.qualname,
            lineno=self.func.lineno,
            events=self.events,
            summary=summary,
            exit_env=in_envs.get(cfg.EXIT, {}),
        )

    def _param_names(self) -> Tuple[str, ...]:
        a = self.func.args
        names = [p.arg for p in [*a.posonlyargs, *a.args, *a.kwonlyargs]]
        if a.vararg:
            names.append(a.vararg.arg)
        if a.kwarg:
            names.append(a.kwarg.arg)
        return tuple(names)

    def _initial_env(self) -> Env:
        env: Env = {}
        params = self._param_names()
        skip_self = params[:1] if params[:1] in (("self",), ("cls",)) else ()
        for name in params:
            taints = {Taint(name, _FORMAL)}
            if name not in skip_self and self.config.is_secret_name(name):
                taints.add(Taint(name, "param"))
            env[name] = frozenset(taints)
        return env

    # -- statement transfer -----------------------------------------------------

    def _transfer(self, stmt: Optional[ast.AST], env: Env) -> Env:
        env = dict(env)
        if stmt is None:
            return env
        if isinstance(stmt, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
            self._assign(stmt, env)
        elif isinstance(stmt, (ast.If, ast.While)):
            taints = self._eval(stmt.test, env)
            self._branch_event(stmt.test, taints, "if" if isinstance(stmt, ast.If) else "while")
        elif isinstance(stmt, (ast.For, ast.AsyncFor)):
            taints = self._eval(stmt.iter, env)
            self._emit(stmt.iter, "loop-iter", taints, "for")
            self._bind(stmt.target, taints, env)
        elif isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                taints = self._eval(item.context_expr, env)
                if item.optional_vars is not None:
                    self._bind(item.optional_vars, taints, env)
        elif isinstance(stmt, ast.Return):
            taints = self._eval(stmt.value, env) if stmt.value else _EMPTY
            if self._collecting:
                self.return_taints |= taints
                self._emit(stmt, "return", taints, "return")
        elif isinstance(stmt, ast.Raise):
            if stmt.exc is not None:
                self._eval(stmt.exc, env)
        elif isinstance(stmt, ast.ExceptHandler):
            if stmt.name:
                env[stmt.name] = _EMPTY
        elif isinstance(stmt, ast.Assert):
            taints = self._eval(stmt.test, env)
            self._branch_event(stmt.test, taints, "assert")
        elif isinstance(stmt, ast.Delete):
            for target in stmt.targets:
                if isinstance(target, ast.Name):
                    env.pop(target.id, None)
        elif isinstance(stmt, ast.Expr):
            self._eval(stmt.value, env)
        elif hasattr(ast, "Match") and isinstance(stmt, ast.Match):
            taints = self._eval(stmt.subject, env)  # type: ignore[attr-defined]
            self._branch_event(stmt.subject, taints, "match")  # type: ignore[attr-defined]
        return env

    def _assign(
        self,
        stmt: Union[ast.Assign, ast.AnnAssign, ast.AugAssign],
        env: Env,
    ) -> None:
        value = stmt.value
        taints = self._eval(value, env) if value is not None else _EMPTY
        if stmt.lineno in self.secret_lines or (
            value is not None and value.lineno in self.secret_lines
        ):
            taints = taints | frozenset(
                {Taint(f"line {stmt.lineno}", "annotation")}
            )
        if isinstance(stmt, ast.Assign):
            for target in stmt.targets:
                self._bind(target, taints, env)
        elif isinstance(stmt, ast.AnnAssign):
            if value is not None:
                self._bind(stmt.target, taints, env)
        else:  # AugAssign: x += v keeps any existing taint
            key = self._target_key(stmt.target)
            if key is not None:
                env[key] = env.get(key, _EMPTY) | taints

    def _bind(self, target: ast.expr, taints: TaintSet, env: Env) -> None:
        """Strong update for names/attributes, weak for subscripts."""
        if isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self._bind(element, taints, env)
            return
        if isinstance(target, ast.Starred):
            self._bind(target.value, taints, env)
            return
        if isinstance(target, ast.Subscript):
            base = self._target_key(target.value)
            if base is not None:
                env[base] = env.get(base, _EMPTY) | taints
            return
        key = self._target_key(target)
        if key is None:
            return
        hopped = frozenset(t.hop(key) for t in taints)
        env[key] = hopped  # strong update: clean value kills old taint

    @staticmethod
    def _target_key(node: ast.expr) -> Optional[str]:
        """A stable env key for a name or dotted attribute target."""
        if isinstance(node, ast.Name):
            return node.id
        if isinstance(node, ast.Attribute):
            parts: List[str] = [node.attr]
            value = node.value
            while isinstance(value, ast.Attribute):
                parts.append(value.attr)
                value = value.value
            if isinstance(value, ast.Name):
                parts.append(value.id)
                return ".".join(reversed(parts))
        return None

    # -- expression evaluation --------------------------------------------------

    def _eval(self, node: Optional[ast.expr], env: Env) -> TaintSet:
        """Taint of an expression; emits sink events while collecting."""
        if node is None:
            return _EMPTY
        if isinstance(node, ast.Constant):
            return _EMPTY
        if isinstance(node, ast.Name):
            if node.id in env:
                return env[node.id]
            # SCREAMING_CASE identifiers are constants (message tags,
            # sizes) — public by convention, never runtime secrets
            if not node.id.isupper() and self.config.is_secret_name(node.id):
                return frozenset({Taint(node.id, "name")})
            return _EMPTY
        if isinstance(node, ast.Attribute):
            key = self._target_key(node)
            if key is not None and key in env:
                return env[key]
            if not node.attr.isupper() and self.config.is_secret_name(node.attr):
                return frozenset({Taint(node.attr, "attribute")})
            return self._eval(node.value, env)
        if isinstance(node, ast.Call):
            return self._call(node, env)
        if isinstance(node, ast.BinOp):
            left = self._eval(node.left, env)
            right = self._eval(node.right, env)
            if isinstance(node.op, ast.Mult):
                self._repeat_event(node, left, right)
            return left | right
        if isinstance(node, ast.IfExp):
            test = self._eval(node.test, env)
            self._branch_event(node.test, test, "conditional expression")
            # the selected value depends on the test: implicit flow
            return test | self._eval(node.body, env) | self._eval(node.orelse, env)
        if isinstance(node, (ast.ListComp, ast.SetComp, ast.GeneratorExp, ast.DictComp)):
            return self._comprehension(node, env)
        if isinstance(node, ast.Lambda):
            return _EMPTY  # deferred execution; bodies analyzed when called
        if isinstance(node, ast.NamedExpr):
            taints = self._eval(node.value, env)
            self._bind(node.target, taints, env)
            return taints
        # generic fallback: union over child expressions (BoolOp, Compare,
        # UnaryOp, JoinedStr, Subscript, Tuple, Starred, Await, ...)
        out = _EMPTY
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.expr):
                out |= self._eval(child, env)
        return out

    def _comprehension(
        self,
        node: Union[ast.ListComp, ast.SetComp, ast.GeneratorExp, ast.DictComp],
        env: Env,
    ) -> TaintSet:
        local = dict(env)
        out = _EMPTY
        for gen in node.generators:
            iter_taints = self._eval(gen.iter, local)
            out |= iter_taints
            self._bind(gen.target, iter_taints, local)
            for cond in gen.ifs:
                cond_taints = self._eval(cond, local)
                # a tainted filter shapes the element count: size + timing
                self._branch_event(cond, cond_taints, "comprehension filter")
                out |= cond_taints
        if isinstance(node, ast.DictComp):
            out |= self._eval(node.key, local) | self._eval(node.value, local)
        else:
            out |= self._eval(node.elt, local)
        return out

    # -- calls ------------------------------------------------------------------

    def _call(self, node: ast.Call, env: Env) -> TaintSet:
        func = node.func
        if isinstance(func, ast.Name):
            fname: Optional[str] = func.id
            is_method = False
            recv_taints = _EMPTY
        elif isinstance(func, ast.Attribute):
            fname = func.attr
            is_method = True
            recv_taints = self._eval(func.value, env)
        else:
            fname = None
            is_method = False
            recv_taints = self._eval(func, env)

        arg_exprs: List[ast.expr] = [*node.args, *[k.value for k in node.keywords]]
        arg_taints = [self._eval(arg, env) for arg in arg_exprs]

        config = self.config
        if fname is not None and self._collecting:
            if config.is_wire_sink(fname) or config.is_wire_message_ctor(fname):
                for arg, taints in zip(arg_exprs, arg_taints):
                    self._emit(arg, "wire", taints, fname)
            if config.is_size_sink(fname) and not is_method and arg_taints:
                self._emit(arg_exprs[0], "size", arg_taints[0], f"{fname}()")
            if fname == "to_bytes" and is_method and node.args:
                self._emit(
                    node.args[0], "size", arg_taints[0], "to_bytes() width"
                )
            self._boundary_events(node, fname, arg_exprs, arg_taints)

        if fname is not None:
            if config.is_taint_sanitizer(fname):
                return _EMPTY
            if config.is_taint_source_call(fname, is_method=is_method):
                return frozenset(
                    {Taint(fname, "call", wire_ok=config.is_wire_masked(fname))}
                )
            # summaries are keyed by bare name, so only apply one when the
            # call plausibly targets the same-module definition: a bare
            # ``helper(...)`` or a ``self.method(...)`` — not a method on
            # some other object that merely shares the name
            if not is_method or (
                isinstance(func, ast.Attribute)
                and isinstance(func.value, ast.Name)
                and func.value.id in ("self", "cls")
            ):
                summary = self.summaries.get(fname)
                if summary is not None:
                    return self._apply_summary(
                        summary, fname, node, arg_exprs, arg_taints
                    )
            # whole-program mode: resolve through the import graph —
            # aliases, re-exports, dotted module access, and methods on
            # instances of known classes
            resolved = self._resolve_call(func, fname, is_method)
            if isinstance(resolved, FunctionSummary):
                return self._apply_summary(
                    resolved, fname, node, arg_exprs, arg_taints
                )
            if isinstance(resolved, ClassSummary):
                # constructing a known class: the instance conservatively
                # carries every argument's taint (its attributes hold them)
                out = _EMPTY
                for taints in arg_taints:
                    out |= taints
                return out
        # unknown call: conservatively union receiver and argument taints
        out = recv_taints
        for taints in arg_taints:
            out |= taints
        return out

    def _resolve_call(
        self, func: ast.expr, fname: str, is_method: bool
    ) -> Optional[Union[FunctionSummary, ClassSummary]]:
        """What an unmatched call targets, via imports or instance types."""
        if self.imports is None and not self._instance_types:
            return None
        chain = _name_chain(func)
        if not chain:
            return None
        if (
            is_method
            and len(chain) == 2
            and chain[0] in self._instance_types
        ):
            method = self._instance_types[chain[0]].methods.get(fname)
            if method is not None:
                return method
        if self.imports is not None:
            resolved = self.imports.resolve(chain)
            if isinstance(resolved, (FunctionSummary, ClassSummary)):
                return resolved
        return None

    def _boundary_events(
        self,
        node: ast.Call,
        fname: str,
        arg_exprs: Sequence[ast.expr],
        arg_taints: Sequence[TaintSet],
    ) -> None:
        """Record SML010 events: tainted values crossing a process boundary."""
        config = self.config
        if config.is_boundary_sink(fname):
            for arg, taints in zip(arg_exprs, arg_taints):
                self._emit(arg, "process-boundary", taints, fname)
            return
        # pool constructors are not sinks themselves, but their
        # ``initargs=`` tuple is pickled into every worker process
        for keyword, taints in zip(node.keywords, arg_taints[len(node.args):]):
            if keyword.arg is not None and config.is_boundary_kwarg(keyword.arg):
                self._emit(
                    keyword.value,
                    "process-boundary",
                    taints,
                    f"{fname}({keyword.arg}=...)",
                )

    def _apply_summary(
        self,
        summary: FunctionSummary,
        fname: str,
        node: ast.Call,
        arg_exprs: Sequence[ast.expr],
        arg_taints: Sequence[TaintSet],
    ) -> TaintSet:
        out: TaintSet = _EMPTY
        if summary.returns_secret:
            out |= frozenset(
                {Taint(fname, "call", wire_ok=summary.returns_wire_ok)}
            )
        # positional args map onto the summary's parameter list; a bound
        # method call is matched against the params after an initial self
        params = list(summary.params)
        if params[:1] in (["self"], ["cls"]) and isinstance(node.func, ast.Attribute):
            params = params[1:]
        for position, taints in enumerate(arg_taints[: len(node.args)]):
            if position < len(params) and params[position] in summary.flows:
                out |= taints
        for keyword, taints in zip(node.keywords, arg_taints[len(node.args):]):
            if keyword.arg is not None and keyword.arg in summary.flows:
                out |= taints
        return out

    # -- events -----------------------------------------------------------------

    def _branch_event(self, node: ast.expr, taints: TaintSet, detail: str) -> None:
        self._emit(node, "branch", taints, detail)

    def _repeat_event(self, node: ast.BinOp, left: TaintSet, right: TaintSet) -> None:
        """``b"pad" * n`` / ``[0] * n`` with a tainted count is a size sink."""

        def _is_sequence_display(expr: ast.expr) -> bool:
            if isinstance(expr, ast.Constant):
                return isinstance(expr.value, (bytes, str))
            return isinstance(expr, (ast.List, ast.Tuple))

        if _is_sequence_display(node.left) and right:
            self._emit(node.right, "size", right, "sequence repetition count")
        elif _is_sequence_display(node.right) and left:
            self._emit(node.left, "size", left, "sequence repetition count")

    def _emit(
        self, node: ast.AST, context: str, taints: TaintSet, detail: str
    ) -> None:
        if not self._collecting:
            return
        line, col = _at(node)
        for taint in sorted(taints, key=lambda t: (t.kind, t.source, t.via)):
            self.events.append(
                TaintEvent(line=line, col=col, context=context, taint=taint, detail=detail)
            )


def _collect_functions(tree: ast.AST) -> List[Tuple[str, _FuncDef]]:
    """All function definitions with dotted qualnames, outermost first."""
    found: List[Tuple[str, _FuncDef]] = []

    def visit(node: ast.AST, prefix: str) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qualname = f"{prefix}{child.name}"
                found.append((qualname, child))
                visit(child, f"{qualname}.<locals>.")
            elif isinstance(child, ast.ClassDef):
                visit(child, f"{prefix}{child.name}.")
            else:
                visit(child, prefix)

    visit(tree, "")
    return found


_MAX_SUMMARY_ROUNDS = 4


def analyze_module(tree: ast.AST, ctx: "object") -> ModuleTaint:
    """Analyze every function in a module, iterating summaries to fixpoint.

    Results are memoized on ``ctx.cache`` so SML007/SML008/SML009 share
    one analysis per file.
    """
    cache = getattr(ctx, "cache", None)
    if cache is not None and "taint" in cache:
        cached: ModuleTaint = cache["taint"]
        return cached
    functions = _collect_functions(tree)
    summaries: Dict[str, FunctionSummary] = {}
    classes: Dict[str, ClassSummary] = {}
    results: List[FunctionTaint] = []
    for _round in range(_MAX_SUMMARY_ROUNDS):
        results = []
        next_summaries: Dict[str, FunctionSummary] = {}
        for qualname, func in functions:
            analysis = _FunctionAnalysis(func, qualname, ctx, summaries, classes)
            result = analysis.run()
            results.append(result)
            name = func.name
            if name in next_summaries:
                next_summaries[name] = next_summaries[name].merge(result.summary)
            else:
                next_summaries[name] = result.summary
        next_classes = class_summaries(results)
        if next_summaries == summaries and next_classes == classes:
            break
        summaries = next_summaries
        classes = next_classes
    module = ModuleTaint(functions=results)
    if cache is not None:
        cache["taint"] = module
    return module


def class_summaries(functions: Sequence[FunctionTaint]) -> Dict[str, ClassSummary]:
    """Group method summaries by their defining top-level class.

    Qualnames are dotted (``Cls.method``); nested functions carry a
    ``<locals>`` marker and are skipped — they are not callable from
    outside and would only pollute the class namespace.
    """
    classes: Dict[str, ClassSummary] = {}
    for fn in functions:
        if "<locals>" in fn.qualname:
            continue
        parts = fn.qualname.split(".")
        if len(parts) != 2:
            continue
        cls_name, method = parts
        entry = classes.setdefault(cls_name, ClassSummary(name=cls_name))
        if method in entry.methods:
            entry.methods[method] = entry.methods[method].merge(
                fn.summary
            )
        else:
            entry.methods[method] = fn.summary
    return classes


def module_summaries(
    module: ModuleTaint,
) -> Tuple[Dict[str, FunctionSummary], Dict[str, ClassSummary]]:
    """Top-level function and class summaries of one analyzed module."""
    functions: Dict[str, FunctionSummary] = {}
    for fn in module.functions:
        if "." in fn.qualname:
            continue
        if fn.qualname in functions:
            functions[fn.qualname] = functions[fn.qualname].merge(fn.summary)
        else:
            functions[fn.qualname] = fn.summary
    return functions, class_summaries(module.functions)
