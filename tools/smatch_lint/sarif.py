"""SARIF 2.1.0 rendering of smatch-lint findings.

SARIF (Static Analysis Results Interchange Format) is what GitHub code
scanning ingests: uploading the lint run as a SARIF artifact turns every
finding into an inline PR annotation with the rule's description attached.
The document shape here is the minimal conforming subset — one ``run``
with a ``tool.driver`` carrying the rule inventory and one ``result`` per
violation — deliberately kept parallel to the ``--format json`` payload so
the two stay round-trippable (see ``tests/test_smatch_lint_concurrency``).
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from tools.smatch_lint.engine import Violation
from tools.smatch_lint.rules import RULES

__all__ = ["render_sarif"]

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)

#: SML000 marks directive problems (unknown codes, stale waivers) — linter
#: hygiene rather than a defect in the scanned code
_NOTE_LEVEL_CODES = frozenset({"SML000"})


def _rule_inventory() -> List[Dict[str, object]]:
    rules: List[Dict[str, object]] = [
        {
            "id": "SML000",
            "name": "DirectiveHygiene",
            "shortDescription": {
                "text": "suppression directives must be well-formed and in use"
            },
        }
    ]
    for rule in RULES:
        rules.append(
            {
                "id": rule.code,
                "name": rule.__name__,
                "shortDescription": {"text": rule.summary()},
            }
        )
    return rules


def _rule_index() -> Dict[str, int]:
    return {
        str(entry["id"]): idx for idx, entry in enumerate(_rule_inventory())
    }


def render_sarif(
    violations: Sequence[Violation], files_checked: int
) -> Dict[str, object]:
    """The full SARIF document for one lint run (JSON-serializable)."""
    index = _rule_index()
    results: List[Dict[str, object]] = []
    for violation in violations:
        result: Dict[str, object] = {
            "ruleId": violation.code,
            "level": "note" if violation.code in _NOTE_LEVEL_CODES else "error",
            "message": {"text": violation.message},
            "locations": [
                {
                    "physicalLocation": {
                        "artifactLocation": {
                            "uri": violation.path,
                            "uriBaseId": "%SRCROOT%",
                        },
                        "region": {
                            "startLine": violation.line,
                            "startColumn": violation.col,
                        },
                    }
                }
            ],
        }
        rule_idx = index.get(violation.code)
        if rule_idx is not None:
            result["ruleIndex"] = rule_idx
        results.append(result)
    return {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "smatch-lint",
                        "rules": _rule_inventory(),
                    }
                },
                "properties": {"filesChecked": files_checked},
                "results": results,
            }
        ],
    }
