"""Command-line interface: ``python -m tools.smatch_lint [paths...]``.

Exit codes follow the usual linter convention:

* ``0`` — no violations,
* ``1`` — at least one violation reported,
* ``2`` — usage error (missing path, unknown rule code, unreadable file).
"""

from __future__ import annotations

import argparse
import json
import sys
from collections import Counter
from pathlib import Path
from typing import List, Optional

from tools.smatch_lint.config import DEFAULT_CONFIG
from tools.smatch_lint.engine import lint_paths
from tools.smatch_lint.rules import RULE_CODES, RULES


def _taint_debug(paths: List[Path]) -> int:
    """Dump per-function taint flows for every in-scope file under ``paths``."""
    import ast

    from tools.smatch_lint import taint
    from tools.smatch_lint.engine import _parse_directives, iter_python_files
    from tools.smatch_lint.rules import RuleContext

    cwd = Path.cwd()
    for file_path in iter_python_files(paths):
        try:
            rel = file_path.resolve().relative_to(cwd)
        except ValueError:
            rel = file_path
        posix = rel.as_posix()
        if not DEFAULT_CONFIG.is_taint_scope(posix):
            continue
        source = file_path.read_text(encoding="utf-8")
        try:
            tree = ast.parse(source, filename=posix)
        except SyntaxError as exc:
            print(f"{posix}: syntax error: {exc.msg}")
            continue
        _per_line, _file_wide, secret_lines, _problems = _parse_directives(
            source, posix
        )
        ctx = RuleContext(
            path=posix, config=DEFAULT_CONFIG, secret_lines=frozenset(secret_lines)
        )
        module = taint.analyze_module(tree, ctx)
        print(f"== {posix}")
        for fn in module.functions:
            flows = ", ".join(sorted(fn.summary.flows)) or "-"
            secret = " returns-secret" if fn.summary.returns_secret else ""
            print(f"  {fn.qualname} (line {fn.lineno}) flows[{flows}]{secret}")
            for event in fn.real_events():
                print(
                    f"    {event.context}@{event.line}:{event.col} "
                    f"{event.detail}: {event.taint.describe()}"
                )
    return 0

def _lock_debug(paths: List[Path]) -> int:
    """Dump per-class lockset facts and SML012–SML015 findings."""
    import ast

    from tools.smatch_lint import concurrency
    from tools.smatch_lint.engine import _parse_directives, iter_python_files
    from tools.smatch_lint.rules import RuleContext

    cwd = Path.cwd()
    for file_path in iter_python_files(paths):
        try:
            rel = file_path.resolve().relative_to(cwd)
        except ValueError:
            rel = file_path
        posix = rel.as_posix()
        if not (
            DEFAULT_CONFIG.is_concurrency_scope(posix)
            or DEFAULT_CONFIG.is_parallel_scope(posix)
        ):
            continue
        source = file_path.read_text(encoding="utf-8")
        try:
            tree = ast.parse(source, filename=posix)
        except SyntaxError as exc:
            print(f"{posix}: syntax error: {exc.msg}")
            continue
        _parse_directives(source, posix)
        ctx = RuleContext(path=posix, config=DEFAULT_CONFIG)
        module = concurrency.analyze_module(tree, ctx)
        print(f"== {posix}")
        for name in sorted(module.classes):
            facts = module.classes[name]
            locks = ", ".join(sorted(facts.lock_fields)) or "-"
            guarded = ", ".join(sorted(facts.guarded_fields)) or "-"
            helpers = ", ".join(sorted(facts.locked_helpers)) or "-"
            print(
                f"  class {name}: locks[{locks}] guarded[{guarded}] "
                f"locked-helpers[{helpers}]"
            )
        for found in module.findings:
            print(f"    {found.rule}@{found.line}:{found.col} {found.message}")
    return 0


__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """The argument parser (exposed for ``--help`` doc generation)."""
    parser = argparse.ArgumentParser(
        prog="python -m tools.smatch_lint",
        description="Crypto-invariant static analysis for the S-MATCH repo.",
    )
    parser.add_argument(
        "paths", nargs="*", type=Path, help="files or directories to lint"
    )
    parser.add_argument(
        "--format",
        choices=("text", "json", "sarif"),
        default="text",
        help="report format (default: text); sarif emits SARIF 2.1.0 "
        "for GitHub code scanning",
    )
    parser.add_argument(
        "--select",
        metavar="CODES",
        help="comma-separated rule codes to run (default: all)",
    )
    parser.add_argument(
        "--ignore",
        metavar="CODES",
        help="comma-separated rule codes to skip",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule inventory and exit",
    )
    parser.add_argument(
        "--report-unused-suppressions",
        action="store_true",
        help="also report (as SML000) suppression comments that waive nothing",
    )
    parser.add_argument(
        "--taint-debug",
        action="store_true",
        help="dump the SML007–SML009 taint flows per function and exit",
    )
    parser.add_argument(
        "--lock-debug",
        action="store_true",
        help="dump the SML012–SML015 lockset facts per class and exit",
    )
    parser.add_argument(
        "--cache-dir",
        type=Path,
        default=Path(".smatch_lint_cache"),
        metavar="DIR",
        help="directory for the incremental summary cache "
        "(default: .smatch_lint_cache)",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="disable the on-disk summary cache (full re-analysis)",
    )
    return parser


def _parse_codes(raw: str) -> List[str]:
    codes = [c.strip().upper() for c in raw.split(",") if c.strip()]
    unknown = [c for c in codes if c not in RULE_CODES]
    if unknown:
        raise SystemExit(
            f"error: unknown rule code(s): {', '.join(unknown)} "
            f"(known: {', '.join(RULE_CODES)})"
        )
    return codes


def main(argv: Optional[List[str]] = None) -> int:
    """Run the linter; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule in RULES:
            print(f"{rule.code}  {rule.summary()}")
        return 0

    if not args.paths:
        parser.print_usage(sys.stderr)
        print("error: at least one path is required", file=sys.stderr)
        return 2

    missing = [p for p in args.paths if not p.exists()]
    if missing:
        print(
            f"error: no such file or directory: {', '.join(map(str, missing))}",
            file=sys.stderr,
        )
        return 2

    if args.taint_debug:
        return _taint_debug(args.paths)
    if args.lock_debug:
        return _lock_debug(args.paths)

    try:
        selected = set(_parse_codes(args.select)) if args.select else set(RULE_CODES)
        ignored = set(_parse_codes(args.ignore)) if args.ignore else set()
    except SystemExit as exc:
        print(exc, file=sys.stderr)
        return 2
    active = (selected - ignored) | {"SML000"}  # SML000 findings always surface

    violations, files_checked = lint_paths(
        args.paths,
        DEFAULT_CONFIG,
        report_unused_suppressions=args.report_unused_suppressions,
        cache_dir=None if args.no_cache else args.cache_dir,
    )
    violations = [v for v in violations if v.code in active]
    counts = Counter(v.code for v in violations)

    if args.format == "json":
        print(
            json.dumps(
                {
                    "files_checked": files_checked,
                    "violations": [v.as_dict() for v in violations],
                    "counts": dict(sorted(counts.items())),
                },
                indent=2,
            )
        )
    elif args.format == "sarif":
        from tools.smatch_lint.sarif import render_sarif

        print(json.dumps(render_sarif(violations, files_checked), indent=2))
    else:
        for violation in violations:
            print(violation.render())
        if violations:
            by_code = ", ".join(f"{code}×{n}" for code, n in sorted(counts.items()))
            print(
                f"smatch-lint: {len(violations)} violation(s) in "
                f"{files_checked} file(s) [{by_code}]",
                file=sys.stderr,
            )
        else:
            print(
                f"smatch-lint: {files_checked} file(s) clean", file=sys.stderr
            )
    return 1 if violations else 0
