"""The fifteen smatch-lint rules.

Each rule is a class with a ``code``, a one-line summary (the first docstring
line, shown by ``--list-rules``), and a ``check`` method yielding
``(lineno, col, message)`` triples.  Rules receive the parsed AST plus a
:class:`RuleContext` describing the file being linted; they never read the
filesystem themselves, which keeps them trivially testable on source
snippets.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterator, List, Optional, Tuple, Type

from tools.smatch_lint import concurrency, taint
from tools.smatch_lint.config import LintConfig

__all__ = ["RuleContext", "Rule", "RULES", "RULE_CODES"]

Finding = Tuple[int, int, str]


@dataclass(frozen=True)
class RuleContext:
    """Everything a rule may know about the file under analysis."""

    #: normalized POSIX path (relative to the repo root when possible)
    path: str
    config: LintConfig
    #: lines carrying an explicit ``# smatch-lint: secret`` annotation —
    #: assignments on these lines become taint sources for SML007–SML009
    secret_lines: FrozenSet[int] = frozenset()
    #: per-file scratch space so the taint rules share one dataflow pass
    cache: Dict[str, object] = field(default_factory=dict, compare=False)
    #: whole-program import resolver (``tools.smatch_lint.summaries``);
    #: ``None`` when linting a single source in isolation
    imports: Optional[object] = field(default=None, compare=False)


class Rule:
    """Base class; subclasses define ``code`` and override ``check``."""

    code: str = "SML000"

    def check(self, tree: ast.AST, ctx: RuleContext) -> Iterator[Finding]:
        raise NotImplementedError

    @classmethod
    def summary(cls) -> str:
        """First line of the rule docstring (for ``--list-rules``)."""
        doc = cls.__doc__ or ""
        return doc.strip().splitlines()[0] if doc.strip() else ""


def _at(node: ast.AST) -> Tuple[int, int]:
    return getattr(node, "lineno", 1), getattr(node, "col_offset", 0) + 1


class RandomImportRule(Rule):
    """SML001: randomness must flow through the repro.utils.rand facade.

    ``random.Random`` is a Mersenne Twister — fully predictable from 624
    outputs — so any key material, IV, blinding factor, or OPE coin drawn
    from it is recoverable by the paper's Section IV adversary.  The only
    module allowed to touch :mod:`random` is the facade, which defaults to
    ``random.SystemRandom`` (OS entropy) and labels seeded instances as
    non-cryptographic.
    """

    code = "SML001"

    def check(self, tree: ast.AST, ctx: RuleContext) -> Iterator[Finding]:
        if ctx.config.is_rand_facade(ctx.path):
            return
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    top = alias.name.split(".")[0]
                    if top == "random":
                        line, col = _at(node)
                        yield (
                            line,
                            col,
                            "direct `import random` — draw randomness "
                            "through repro.utils.rand instead",
                        )
            elif (
                isinstance(node, ast.ImportFrom)
                and node.level == 0
                and (node.module or "").split(".")[0] == "random"
            ):
                line, col = _at(node)
                yield (
                    line,
                    col,
                    "`from random import ...` — draw randomness "
                    "through repro.utils.rand instead",
                )


class SecretEqualityRule(Rule):
    """SML002: no `==`/`!=` on secret-typed values; use constant_time_eq.

    Python's ``==`` on bytes/ints short-circuits at the first differing
    byte, so comparing MAC tags, profile keys, or OPRF outputs with it is a
    byte-at-a-time timing oracle (the classic HMAC-forgery attack).  Secrets
    are detected by a name heuristic (``key``, ``tag``, ``digest``,
    ``witness``, ... segments) with a public-name override (``key_index``,
    ``public_key``, ``key_size`` are fine).  Use
    :func:`repro.utils.ct.constant_time_eq`.
    """

    code = "SML002"

    @staticmethod
    def _terminal_name(node: ast.expr) -> Optional[str]:
        """The identifier an operand ultimately names, if any.

        Unwraps subscripts (``keys[i]`` -> ``keys``); calls are opaque
        (``len(key)`` compares a public length, not the key).
        """
        while isinstance(node, ast.Subscript):
            node = node.value
        if isinstance(node, ast.Name):
            return node.id
        if isinstance(node, ast.Attribute):
            return node.attr
        return None

    def check(self, tree: ast.AST, ctx: RuleContext) -> Iterator[Finding]:
        for node in ast.walk(tree):
            if not isinstance(node, ast.Compare):
                continue
            if not any(isinstance(op, (ast.Eq, ast.NotEq)) for op in node.ops):
                continue
            for operand in [node.left, *node.comparators]:
                name = self._terminal_name(operand)
                if name and ctx.config.is_secret_name(name):
                    line, col = _at(node)
                    yield (
                        line,
                        col,
                        f"`==`/`!=` on secret-looking value {name!r} — "
                        "use repro.utils.ct.constant_time_eq",
                    )
                    break


class FloatArithmeticRule(Rule):
    """SML003: no float arithmetic in the exact-arithmetic TCB.

    ``crypto/``, ``gf/``, and ``ntheory/`` operate on exact integers
    (modular arithmetic, GF(2^m), RS syndromes); a stray ``/`` or float
    literal silently rounds and corrupts ciphertexts or key material
    instead of failing loudly.  Only the OPE hypergeometric sampler
    (``crypto/ope.py``) is allowlisted — its float use is inherent to the
    Boldyreva sampling law and re-quantized on output.
    """

    code = "SML003"

    def check(self, tree: ast.AST, ctx: RuleContext) -> Iterator[Finding]:
        if not ctx.config.is_tcb_path(ctx.path):
            return
        if ctx.config.is_float_allowlisted(ctx.path):
            return
        for node in ast.walk(tree):
            if isinstance(node, ast.Constant) and isinstance(node.value, float):
                line, col = _at(node)
                yield (line, col, f"float literal {node.value!r} in exact-arithmetic code")
            elif isinstance(node, (ast.BinOp, ast.AugAssign)) and isinstance(
                node.op, ast.Div
            ):
                line, col = _at(node)
                yield (
                    line,
                    col,
                    "true division `/` yields float — use `//`, "
                    "Fraction, or math.isqrt",
                )
            elif (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id == "float"
            ):
                line, col = _at(node)
                yield (line, col, "float() conversion in exact-arithmetic code")


class ImportLayeringRule(Rule):
    """SML004: the TCB must not import server/net/client/experiments code.

    The security arguments treat ``crypto/``, ``gf/``, and ``ntheory/`` as a
    closed trusted computing base the untrusted server merely *uses*.  An
    import edge from the TCB into ``server/``, ``net/``, ``client/``, or
    ``experiments/`` would let untrusted-side types or IO flow into
    primitive code (and create cycles), dissolving that boundary.
    """

    code = "SML004"

    @staticmethod
    def _package_parts(posix_path: str) -> List[str]:
        """Dotted package parts of the linted module (under ``src/``)."""
        parts = posix_path.split("/")
        if "src" in parts:
            parts = parts[parts.index("src") + 1 :]
        if parts and parts[-1].endswith(".py"):
            # keep __init__ as a pseudo-module so relative-level stripping
            # lands on the package itself, matching import semantics
            parts = parts[:-1] + [parts[-1][:-3]]
        return parts

    def _resolved_target(
        self, node: ast.ImportFrom, ctx: RuleContext
    ) -> Optional[str]:
        """Absolute dotted module an ``ImportFrom`` resolves to."""
        if node.level == 0:
            return node.module
        pkg = self._package_parts(ctx.path)
        # one level strips the module itself, further levels strip packages
        base = pkg[: len(pkg) - node.level] if len(pkg) >= node.level else []
        if node.module:
            base = base + node.module.split(".")
        return ".".join(base) if base else None

    def check(self, tree: ast.AST, ctx: RuleContext) -> Iterator[Finding]:
        if not ctx.config.is_tcb_path(ctx.path):
            return
        forbidden = ctx.config.forbidden_layer_packages
        for node in ast.walk(tree):
            targets: List[str] = []
            if isinstance(node, ast.Import):
                targets = [alias.name for alias in node.names]
            elif isinstance(node, ast.ImportFrom):
                resolved = self._resolved_target(node, ctx)
                if resolved:
                    targets = [resolved]
            for target in targets:
                for pkg in forbidden:
                    if target == pkg or target.startswith(pkg + "."):
                        line, col = _at(node)
                        yield (
                            line,
                            col,
                            f"trusted-computing-base module imports {target!r} "
                            "(untrusted layer) — invert the dependency",
                        )


class ExceptionHygieneRule(Rule):
    """SML005: no bare/swallowing excepts, no assert-as-validation.

    A bare ``except:`` (or ``except Exception: pass``) hides integrity
    failures — a tampered store or forged authenticator must surface as a
    typed ``repro.errors`` exception, not vanish.  ``assert`` is compiled
    out under ``python -O``, so validation guarded by it silently stops
    running in optimized deployments; raise typed errors instead.
    """

    code = "SML005"

    @staticmethod
    def _swallows(handler: ast.ExceptHandler) -> bool:
        broad = handler.type is None or (
            isinstance(handler.type, ast.Name)
            and handler.type.id in ("Exception", "BaseException")
        )
        only_pass = all(isinstance(stmt, ast.Pass) for stmt in handler.body)
        return broad and only_pass

    def check(self, tree: ast.AST, ctx: RuleContext) -> Iterator[Finding]:
        for node in ast.walk(tree):
            if isinstance(node, ast.ExceptHandler):
                if node.type is None:
                    line, col = _at(node)
                    yield (
                        line,
                        col,
                        "bare `except:` — catch a typed repro.errors exception",
                    )
                elif self._swallows(node):
                    line, col = _at(node)
                    yield (
                        line,
                        col,
                        "`except Exception: pass` swallows failures — catch "
                        "a typed repro.errors exception or re-raise",
                    )
            elif isinstance(node, ast.Assert) and not ctx.config.is_assert_exempt(
                ctx.path
            ):
                line, col = _at(node)
                yield (
                    line,
                    col,
                    "`assert` is stripped under python -O — raise a typed "
                    "repro.errors exception for runtime validation",
                )


class SecretLoggingRule(Rule):
    """SML006: no secret material in log or exception messages.

    Telemetry and tracebacks leave the process — they land in files,
    collectors, and bug reports the Section-IV threat model treats as
    adversary-readable.  A key, tag, or OPRF output interpolated into a log
    record or an exception string therefore *is* the information leakage
    the scheme exists to prevent.  The rule flags secret-named identifiers
    (the SML002 heuristics) reaching a logging call (``logger.info(...)``
    and friends, including via f-strings) or a ``raise``'d exception
    constructor.  Lengths and types are public (``len(key)`` is fine);
    log *about* secret material via sizes, hashes of public indexes, or
    the :class:`repro.obs.logs.Redactor` facade.
    """

    code = "SML006"

    #: stdlib-logging emit methods (SML006 flags their arguments).
    _LOG_METHODS = frozenset(
        {"debug", "info", "warning", "error", "critical", "exception", "log"}
    )

    @staticmethod
    def _receiver_name(func: ast.expr) -> Optional[str]:
        """The identifier a method call's receiver ultimately names.

        ``_log.debug`` -> ``_log``; ``self._log.debug`` -> ``_log``.
        """
        if isinstance(func, ast.Attribute):
            obj = func.value
            if isinstance(obj, ast.Attribute):
                return obj.attr
            if isinstance(obj, ast.Name):
                return obj.id
        return None

    def _secret_names_in(
        self, node: ast.expr, ctx: RuleContext
    ) -> Iterator[Tuple[str, ast.expr]]:
        """Secret-named identifiers reachable in a message expression.

        Descends through f-strings, formatting, and ordinary calls; stops
        at value-laundering calls (``len``, ``type``, ...) whose results
        are public regardless of their inputs.
        """
        if isinstance(node, ast.Call):
            if (
                isinstance(node.func, ast.Name)
                and node.func.id in ctx.config.value_laundering_calls
            ):
                return
            # the receiver of a method call may itself be secret
            # (f"{key.hex()}"), so descend into the func too
            for child in [node.func, *node.args, *[k.value for k in node.keywords]]:
                yield from self._secret_names_in(child, ctx)
            return
        if isinstance(node, ast.Name):
            if ctx.config.is_secret_name(node.id):
                yield node.id, node
            return
        if isinstance(node, ast.Attribute):
            if ctx.config.is_secret_name(node.attr):
                yield node.attr, node
            else:
                yield from self._secret_names_in(node.value, ctx)
            return
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.expr):
                yield from self._secret_names_in(child, ctx)

    def _message_args(self, call: ast.Call) -> List[ast.expr]:
        return [*call.args, *[k.value for k in call.keywords]]

    def check(self, tree: ast.AST, ctx: RuleContext) -> Iterator[Finding]:
        for node in ast.walk(tree):
            if isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
                if node.func.attr not in self._LOG_METHODS:
                    continue
                receiver = self._receiver_name(node.func)
                if receiver is None or not ctx.config.is_logger_name(receiver):
                    continue
                for arg in self._message_args(node):
                    for name, at_node in self._secret_names_in(arg, ctx):
                        line, col = _at(at_node)
                        yield (
                            line,
                            col,
                            f"secret-looking value {name!r} reaches a logging "
                            "call — log a length or redacted form instead",
                        )
            elif isinstance(node, ast.Raise):
                exc = node.exc
                if not isinstance(exc, ast.Call):
                    continue
                for arg in self._message_args(exc):
                    for name, at_node in self._secret_names_in(arg, ctx):
                        line, col = _at(at_node)
                        yield (
                            line,
                            col,
                            f"secret-looking value {name!r} interpolated into "
                            "an exception message — exceptions leave the "
                            "process; describe the failure without the value",
                        )


class _TaintRule(Rule):
    """Shared base for the SML007–SML009 secret-flow rules.

    All three run the same forward taint analysis (one shared pass per
    file via ``ctx.cache``) and differ only in which sink contexts they
    report and how they phrase the finding.
    """

    #: taint event contexts this rule reports
    contexts: Tuple[str, ...] = ()

    def describe(self, event: "taint.TaintEvent") -> str:
        raise NotImplementedError

    def in_scope(self, ctx: RuleContext) -> bool:
        """Whether the rule applies to this file (default: taint scope)."""
        return ctx.config.is_taint_scope(ctx.path)

    def wants(self, event: "taint.TaintEvent") -> bool:
        """Per-event filter hook (e.g. skip blinded/sealed values)."""
        return True

    def events(
        self, module: "taint.ModuleTaint"
    ) -> Iterator[Tuple["taint.FunctionTaint", "taint.TaintEvent"]]:
        yield from module.events(*self.contexts)

    def check(self, tree: ast.AST, ctx: RuleContext) -> Iterator[Finding]:
        if not self.in_scope(ctx):
            return
        module = taint.analyze_module(tree, ctx)
        seen = set()
        for _fn, event in self.events(module):
            if not self.wants(event):
                continue
            key = (event.line, event.col, event.taint.source, event.taint.kind)
            if key in seen:
                continue
            seen.add(key)
            yield (event.line, event.col, self.describe(event))


class TaintTimingRule(_TaintRule):
    """SML007: secrets must not steer control flow in net/server handlers.

    The matching server is honest-but-curious (paper §IV): a branch,
    loop bound, early return, or exception path conditioned on secret
    material changes the handler's observable timing, and low-entropy
    attributes mean even a few leaked bits prune the plaintext space
    (the frequency-analysis attacks of arXiv:1207.7199).  Taint flows
    from secret-named parameters/attributes, ``# smatch-lint: secret``
    annotations, and registered secret-bearing APIs; ``constant_time_eq``
    and hashing launder it.  Restructure the handler so control flow
    depends only on public values, or sanitize first.
    """

    code = "SML007"
    contexts = ("branch", "loop-iter")

    def describe(self, event: "taint.TaintEvent") -> str:
        shape = {
            "branch": f"steers a {event.detail} condition",
            "loop-iter": "drives a loop iteration",
        }[event.context]
        return (
            f"{event.taint.describe()} {shape} — secret-dependent "
            "timing in a handler; make control flow public or sanitize "
            "(constant_time_eq, hash) first"
        )


class TaintWireRule(_TaintRule):
    """SML008: secrets must not reach serialization or transport sinks.

    Anything handed to the ``repro.utils.serial`` encoders, a transport
    ``send``, or a wire-message constructor becomes part of a message an
    eavesdropper (or the curious server) stores and analyzes.  Secret
    material may only cross the wire after an approved encrypt/blind
    call (``seal``, ``encrypt``, ``blind``, ...) — ciphertext is fine,
    key material is the key-sharing problem the scheme exists to solve.
    """

    code = "SML008"
    contexts = ("wire",)

    def wants(self, event: "taint.TaintEvent") -> bool:
        # blinded/sealed values (``wire_ok``) are what the adversary is
        # allowed to see — only bare secret material is a wire finding
        return not event.taint.wire_ok

    def describe(self, event: "taint.TaintEvent") -> str:
        return (
            f"{event.taint.describe()} reaches wire sink "
            f"{event.detail!r} — only ciphertext may be serialized; "
            "pass the value through an approved encrypt/blind call"
        )


class TaintSizeRule(_TaintRule):
    """SML009: secrets must not parameterize observable response sizes.

    Message and padding sizes survive encryption: a ``bytes(n)``
    allocation, ``range(n)`` padding loop, or ``b"\\x00" * n`` repetition
    whose count is secret-tainted shows up as a ciphertext length the
    §IV eavesdropper reads directly (the profile-matching risk
    quantification of arXiv:2009.03698 is built on exactly such
    observables).  Pad to a public maximum instead.
    """

    code = "SML009"
    contexts = ("size",)

    def describe(self, event: "taint.TaintEvent") -> str:
        return (
            f"{event.taint.describe()} sets an observable size "
            f"({event.detail}) — response sizes survive encryption; "
            "derive sizes from public parameters or pad to a fixed bound"
        )


class ProcessBoundaryRule(_TaintRule):
    """SML010: secrets must not cross a process boundary unsealed.

    PR 5's multiprocess backend created a new leak surface the wire rules
    never see: a :class:`~repro.parallel.backend.TaskEnvelope` context, a
    pool ``initargs`` tuple, or a ``pickle.dumps`` payload is serialized
    into worker processes — written to pipes the OS may buffer to disk,
    inherited by any forked child, and visible to same-host observers the
    §IV honest-but-curious model does not exclude.  Secret material may
    only make the crossing in an approved sealed or derived form (the
    ``seal``/``encrypt`` family, or blinded OPRF outputs).  The rule also
    audits ``__reduce__``/``__getstate__``/``__reduce_ex__`` return
    values, since those define what pickling will ship implicitly.
    """

    code = "SML010"
    contexts = ("process-boundary",)

    #: pickling protocol methods whose return value IS the serialized form
    _PICKLE_METHODS = ("__reduce__", "__reduce_ex__", "__getstate__")

    def in_scope(self, ctx: RuleContext) -> bool:
        return ctx.config.is_boundary_scope(ctx.path)

    def wants(self, event: "taint.TaintEvent") -> bool:
        return not event.taint.wire_ok

    def events(
        self, module: "taint.ModuleTaint"
    ) -> Iterator[Tuple["taint.FunctionTaint", "taint.TaintEvent"]]:
        yield from module.events(*self.contexts)
        for fn in module.functions:
            if fn.qualname.split(".")[-1] not in self._PICKLE_METHODS:
                continue
            for event in fn.real_events():
                if event.context == "return":
                    yield fn, event

    def describe(self, event: "taint.TaintEvent") -> str:
        if event.detail == "return":
            return (
                f"{event.taint.describe()} is returned from a pickling "
                "protocol method — everything __reduce__/__getstate__ "
                "return is serialized into worker processes; drop or seal "
                "secret fields first"
            )
        return (
            f"{event.taint.describe()} crosses a process boundary via "
            f"{event.detail!r} — task contexts and initializer args are "
            "pickled into workers; ship a sealed or derived form instead"
        )


class ParallelDeterminismRule(Rule):
    """SML011: parallel task units must be deterministic and replayable.

    The execution-policy contract (PR 5) is that serial, thread, and
    process backends produce byte-identical artifacts, so experiments are
    independent of scheduling.  Inside a task unit (``*_chunk`` /
    ``*_task`` / ``*_worker`` functions under ``repro/parallel/``) that
    contract is broken by: iterating an unordered ``set``/``frozenset``
    (or dict views taken of one) to build results, reading the wall clock,
    or drawing unseeded randomness (global RNG, OS entropy, or a seedable
    source constructed without its seed).  Sort the collection, thread a
    timestamp in from the coordinator, or derive randomness from the seed
    carried in the task spec.
    """

    code = "SML011"

    #: dict/set view accessors whose iteration order SML011 distrusts when
    #: taken of an unordered collection built inside the task
    _VIEW_METHODS = frozenset({"keys", "values", "items"})

    @staticmethod
    def _is_unordered(expr: ast.expr) -> bool:
        """True for expressions that produce unordered collections."""
        if isinstance(expr, (ast.Set, ast.SetComp)):
            return True
        if isinstance(expr, ast.Call) and isinstance(expr.func, ast.Name):
            return expr.func.id in ("set", "frozenset")
        return False

    def _iter_findings(
        self, func: ast.AST, ctx: RuleContext
    ) -> Iterator[Finding]:
        config = ctx.config
        # everything lexically inside the task unit executes in the worker,
        # nested helpers included, so the whole subtree is audited
        for node in ast.walk(func):
            iters: List[ast.expr] = []
            if isinstance(node, (ast.For, ast.AsyncFor)):
                iters.append(node.iter)
            elif isinstance(node, (ast.ListComp, ast.SetComp, ast.GeneratorExp, ast.DictComp)):
                iters.extend(gen.iter for gen in node.generators)
            for it in iters:
                target = it
                # ``d.items()`` over an unordered base — unwrap the view
                if (
                    isinstance(target, ast.Call)
                    and isinstance(target.func, ast.Attribute)
                    and target.func.attr in self._VIEW_METHODS
                ):
                    target = target.func.value
                if self._is_unordered(target):
                    line, col = _at(it)
                    yield (
                        line,
                        col,
                        "iteration over an unordered set in a parallel task "
                        "unit — ordering varies across workers and runs; "
                        "wrap in sorted() to keep backends byte-identical",
                    )
            if not isinstance(node, ast.Call):
                continue
            fname: Optional[str] = None
            is_method = False
            if isinstance(node.func, ast.Name):
                fname = node.func.id
            elif isinstance(node.func, ast.Attribute):
                fname = node.func.attr
                is_method = True
            if fname is None:
                continue
            line, col = _at(node)
            if fname in config.nondet_time_calls and (
                is_method or fname not in ("now", "utcnow")
            ):
                yield (
                    line,
                    col,
                    f"wall-clock read {fname}() in a parallel task unit — "
                    "timestamps differ per worker; take time on the "
                    "coordinator and ship it in the task spec",
                )
            elif fname in config.nondet_random_calls:
                yield (
                    line,
                    col,
                    f"unseeded randomness {fname}() in a parallel task "
                    "unit — draws cannot be replayed; derive randomness "
                    "from the seed carried in the task spec",
                )
            elif (
                fname in config.seedable_source_ctors
                and not node.args
                and not node.keywords
            ):
                yield (
                    line,
                    col,
                    f"{fname}() constructed without a seed in a parallel "
                    "task unit — each worker draws distinct OS entropy; "
                    "pass the per-task seed explicitly",
                )

    def check(self, tree: ast.AST, ctx: RuleContext) -> Iterator[Finding]:
        if not ctx.config.is_parallel_scope(ctx.path):
            return
        for node in ast.walk(tree):
            if isinstance(
                node, (ast.FunctionDef, ast.AsyncFunctionDef)
            ) and ctx.config.is_parallel_task_name(node.name):
                yield from self._iter_findings(node, ctx)


class _ConcurrencyRule(Rule):
    """Base for SML012–SML015: one shared lockset pass, filtered per rule.

    Mirrors :class:`_TaintRule` — :func:`concurrency.analyze_module` runs
    once per file (memoized through ``ctx.cache``) and each rule picks the
    findings tagged with its code.
    """

    def in_scope(self, ctx: RuleContext) -> bool:
        return ctx.config.is_concurrency_scope(ctx.path)

    def check(self, tree: ast.AST, ctx: RuleContext) -> Iterator[Finding]:
        if not self.in_scope(ctx):
            return
        for found in concurrency.analyze_module(tree, ctx).findings:
            if found.rule == self.code:
                yield (found.line, found.col, found.message)


class LockDisciplineRule(_ConcurrencyRule):
    """SML012: lock-guarded fields accessed without holding the lock."""

    code = "SML012"


class TaskEscapeRule(_ConcurrencyRule):
    """SML013: module-level mutable state mutated unguarded in the parallel layer."""

    code = "SML013"

    def in_scope(self, ctx: RuleContext) -> bool:
        return ctx.config.is_parallel_scope(ctx.path)


class ForkHazardRule(_ConcurrencyRule):
    """SML014: unforkable captures into pool initargs and blocking calls under a lock."""

    code = "SML014"


class ShmLifecycleRule(_ConcurrencyRule):
    """SML015: shared-memory segments must close() on all paths; attachers never unlink."""

    code = "SML015"


RULES: Tuple[Type[Rule], ...] = (
    RandomImportRule,
    SecretEqualityRule,
    FloatArithmeticRule,
    ImportLayeringRule,
    ExceptionHygieneRule,
    SecretLoggingRule,
    TaintTimingRule,
    TaintWireRule,
    TaintSizeRule,
    ProcessBoundaryRule,
    ParallelDeterminismRule,
    LockDisciplineRule,
    TaskEscapeRule,
    ForkHazardRule,
    ShmLifecycleRule,
)

RULE_CODES: Tuple[str, ...] = tuple(rule.code for rule in RULES)
