"""On-disk summary/violation cache with transitive invalidation.

Whole-program analysis makes a lint of ``src/`` a function of *every*
module in the import closure, so the cache key for one module must change
whenever anything it (transitively) imports changes.  That is exactly the
**transitive fingerprint**: walking the SCC condensation dependencies-first,
each SCC's fingerprint hashes its members' content hashes together with the
fingerprints of every dependency SCC; a member's fingerprint additionally
mixes in its own content hash so members of one cycle stay distinct.  Edit
one file and the fingerprints of that file, its SCC, and every transitive
importer all change — nothing else does.

Entries are namespaced by an *analysis fingerprint* (engine version, the
:class:`~tools.smatch_lint.config.LintConfig` in effect, the rule
inventory, and the unused-suppression reporting flag), so a rule change or
config edit invalidates everything at once without any version bookkeeping
in the entries themselves.

Two storage tiers share one format:

* a process-wide in-memory store (always on) — repeated ``lint_paths``
  calls in one process (the test suite, editor integrations) re-analyze
  only what changed on disk between calls;
* an optional JSON file (the CLI default, ``--no-cache`` to skip) — CI and
  pre-commit get warm runs across processes.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from tools.smatch_lint.config import LintConfig
from tools.smatch_lint.modgraph import Program

__all__ = [
    "ENGINE_VERSION",
    "SummaryStore",
    "analysis_fingerprint",
    "content_hash",
    "transitive_fingerprints",
]

#: bump on any change to taint semantics, summaries, or rule behavior —
#: stale cached results must never survive an engine upgrade
ENGINE_VERSION = "smatch-lint-7"


def content_hash(display_path: str, source: str) -> str:
    """Hash of one module's identity and contents.

    The display path participates because rule behavior is path-scoped
    (TCB membership, taint scope, per-path ignores): the same bytes at a
    different path are a different analysis.
    """
    digest = hashlib.sha256()
    digest.update(display_path.encode("utf-8"))
    digest.update(b"\x00")
    digest.update(source.encode("utf-8"))
    return digest.hexdigest()


def analysis_fingerprint(
    config: LintConfig,
    rule_codes: Tuple[str, ...],
    report_unused_suppressions: bool,
) -> str:
    """Namespace key: everything besides file contents that shapes output."""
    digest = hashlib.sha256()
    digest.update(ENGINE_VERSION.encode("utf-8"))
    digest.update(repr(config).encode("utf-8"))
    digest.update(",".join(rule_codes).encode("utf-8"))
    digest.update(b"unused" if report_unused_suppressions else b"-")
    return digest.hexdigest()


def transitive_fingerprints(
    program: Program, hashes: Dict[str, str]
) -> Dict[str, str]:
    """Per-module fingerprints covering the whole transitive import cone.

    ``hashes`` maps module names to :func:`content_hash` values.  Walks
    SCCs dependencies-first so every dependency fingerprint exists by the
    time an SCC needs it.
    """
    fingerprints: Dict[str, str] = {}
    scc_fp: Dict[str, str] = {}
    for scc in program.sccs_topological():
        digest = hashlib.sha256()
        for member in scc:
            digest.update(hashes.get(member, "?").encode("utf-8"))
        member_set = set(scc)
        dep_fps = sorted(
            {
                scc_fp[dep]
                for member in scc
                for dep in program.modules[member].deps
                if dep not in member_set and dep in scc_fp
            }
        )
        for dep in dep_fps:
            digest.update(dep.encode("utf-8"))
        base = digest.hexdigest()
        for member in scc:
            scc_fp[member] = base
            fingerprints[member] = hashlib.sha256(
                (base + hashes.get(member, "?")).encode("utf-8")
            ).hexdigest()
    return fingerprints


#: process-wide store: analysis fingerprint -> module name -> entry
_MEMORY: Dict[str, Dict[str, Dict[str, object]]] = {}


class SummaryStore:
    """One namespace of cached per-module results.

    An entry holds the module's transitive fingerprint, its serialized
    :class:`~tools.smatch_lint.summaries.ModuleSummary`, and — for modules
    that were explicitly requested — the serialized violation list.
    """

    def __init__(
        self, fingerprint: str, disk_path: Optional[Path] = None
    ) -> None:
        self.fingerprint = fingerprint
        self.disk_path = disk_path
        self._entries = _MEMORY.setdefault(fingerprint, {})
        self._dirty = False
        if disk_path is not None:
            self._load_disk(disk_path)

    def _load_disk(self, path: Path) -> None:
        try:
            raw = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            return
        if raw.get("fingerprint") != self.fingerprint:
            return  # engine/config changed: the file is one big stale entry
        stored = raw.get("modules")
        if not isinstance(stored, dict):
            return
        for name, entry in stored.items():
            # in-memory entries are at least as fresh as the disk's
            self._entries.setdefault(name, entry)

    # -- lookups ---------------------------------------------------------------

    def summary(self, name: str, tfp: str) -> Optional[Dict[str, object]]:
        """The stored serialized summary, if still valid for ``tfp``."""
        entry = self._entries.get(name)
        if entry is None or entry.get("tfp") != tfp:
            return None
        summary = entry.get("summary")
        return summary if isinstance(summary, dict) else None

    def violations(self, name: str, tfp: str) -> Optional[List[Dict[str, object]]]:
        """The stored violation list, if still valid for ``tfp``."""
        entry = self._entries.get(name)
        if entry is None or entry.get("tfp") != tfp:
            return None
        violations = entry.get("violations")
        return violations if isinstance(violations, list) else None

    # -- updates ---------------------------------------------------------------

    def store(
        self,
        name: str,
        tfp: str,
        summary: Dict[str, object],
        violations: Optional[List[Dict[str, object]]],
    ) -> None:
        entry: Dict[str, object] = {"tfp": tfp, "summary": summary}
        previous = self._entries.get(name)
        if violations is not None:
            entry["violations"] = violations
        elif previous is not None and previous.get("tfp") == tfp:
            # keep a previously stored violation list for this same state
            kept = previous.get("violations")
            if isinstance(kept, list):
                entry["violations"] = kept
        if previous != entry:
            self._entries[name] = entry
            self._dirty = True

    def save(self) -> None:
        """Persist to disk (no-op for memory-only stores or clean runs)."""
        if self.disk_path is None:
            return
        if not self._dirty and self.disk_path.exists():
            return
        payload = {
            "fingerprint": self.fingerprint,
            "modules": self._entries,
        }
        try:
            self.disk_path.parent.mkdir(parents=True, exist_ok=True)
            tmp = self.disk_path.with_suffix(".tmp")
            tmp.write_text(json.dumps(payload), encoding="utf-8")
            tmp.replace(self.disk_path)
        except OSError:
            # a read-only checkout degrades to memory-only caching
            return
