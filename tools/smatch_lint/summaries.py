"""Whole-program taint summaries over the module dependency graph.

:mod:`tools.smatch_lint.taint` analyzes one module at a time; this module
lifts it to the program level.  Given a :class:`~tools.smatch_lint.modgraph.
Program`, it computes a :class:`ModuleSummary` for every module — the
top-level function and class summaries plus re-export bindings — in
dependency-first SCC order, so by the time a server handler is analyzed the
summaries of every helper it imports are already final.  Import cycles are
handled by iterating each multi-module SCC to a bounded fixpoint.

The per-module :class:`ImportEnv` is what the taint engine sees as
``ctx.imports``: it resolves a call-site name chain (``helper``,
``mod.helper``, ``pkg.mod.Class``) through the module's import bindings and
re-export chains to the callee's summary.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Optional, Union

from tools.smatch_lint.config import LintConfig
from tools.smatch_lint.modgraph import ImportBinding, ModuleNode, Program
from tools.smatch_lint import concurrency as concurrency_mod
from tools.smatch_lint import taint
from tools.smatch_lint.concurrency import ClassConcurrency
from tools.smatch_lint.taint import ClassSummary, FunctionSummary, ModuleTaint

__all__ = [
    "ModuleSummary",
    "ImportEnv",
    "ProgramAnalysis",
    "analyze_program",
]

#: rounds of re-analysis for a cyclic SCC before accepting the fixpoint
_MAX_SCC_ROUNDS = 3

#: re-export chains longer than this are abandoned (cycle guard)
_MAX_REEXPORT_DEPTH = 8

Resolved = Union[FunctionSummary, ClassSummary]


@dataclass
class ModuleSummary:
    """Everything other modules may consume from one module."""

    functions: Dict[str, FunctionSummary] = field(default_factory=dict)
    classes: Dict[str, ClassSummary] = field(default_factory=dict)
    #: import bindings double as re-exports: ``from .keygen import
    #: ProfileKey`` in a package ``__init__`` makes ``pkg.ProfileKey``
    #: resolve through here
    reexports: Dict[str, ImportBinding] = field(default_factory=dict)
    #: per-class lockset facts (SML012 cross-module application)
    concurrency: Dict[str, ClassConcurrency] = field(default_factory=dict)

    def as_dict(self) -> Dict[str, object]:
        """JSON-friendly form for the on-disk summary cache."""
        return {
            "functions": {
                n: s.as_dict() for n, s in sorted(self.functions.items())
            },
            "classes": {n: c.as_dict() for n, c in sorted(self.classes.items())},
            "reexports": {
                n: [b.module, b.attr] for n, b in sorted(self.reexports.items())
            },
            "concurrency": {
                n: c.as_dict() for n, c in sorted(self.concurrency.items())
            },
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "ModuleSummary":
        return cls(
            functions={
                n: FunctionSummary.from_dict(s)
                for n, s in data["functions"].items()  # type: ignore[union-attr]
            },
            classes={
                n: ClassSummary.from_dict(c)
                for n, c in data["classes"].items()  # type: ignore[union-attr]
            },
            reexports={
                n: ImportBinding(module=m, attr=a)
                for n, (m, a) in data["reexports"].items()  # type: ignore[union-attr]
            },
            concurrency={
                n: ClassConcurrency.from_dict(n, c)
                # tolerate summaries written before the lockset pass
                for n, c in data.get("concurrency", {}).items()  # type: ignore[union-attr]
            },
        )


class ImportEnv:
    """Resolves one module's call-site name chains to callee summaries."""

    def __init__(
        self,
        node: ModuleNode,
        program: Program,
        summaries: Dict[str, ModuleSummary],
    ) -> None:
        self._bindings = node.bindings
        self._program = program
        self._summaries = summaries

    def resolve_class_facts(self, chain: tuple) -> Optional[ClassConcurrency]:
        """The lockset facts of the class a name chain targets, if any.

        The concurrency pass duck-types this through ``ctx.imports`` (no
        import cycle: this module imports concurrency, not vice versa).
        """
        for split in range(len(chain) - 1 if len(chain) > 1 else 1, 0, -1):
            key = ".".join(chain[:split])
            binding = self._bindings.get(key)
            if binding is None:
                continue
            attrs = tuple(chain[split:])
            if binding.attr is not None:
                attrs = (binding.attr,) + attrs
            facts = self._lookup_facts(binding.module, attrs, 0)
            if facts is not None:
                return facts
        return None

    def _lookup_facts(
        self, module: str, attrs: tuple, depth: int
    ) -> Optional[ClassConcurrency]:
        """Class-facts twin of :meth:`_lookup` (same re-export chasing)."""
        if not attrs or depth > _MAX_REEXPORT_DEPTH:
            return None
        submodule = f"{module}.{attrs[0]}"
        if submodule in self._program.modules and len(attrs) > 1:
            facts = self._lookup_facts(submodule, attrs[1:], depth + 1)
            if facts is not None:
                return facts
        summary = self._summaries.get(module)
        if summary is None:
            return None
        name = attrs[0]
        if len(attrs) == 1 and name in summary.concurrency:
            return summary.concurrency[name]
        reexport = summary.reexports.get(name)
        if reexport is not None:
            chased = attrs[1:]
            if reexport.attr is not None:
                chased = (reexport.attr,) + chased
                return self._lookup_facts(reexport.module, chased, depth + 1)
            if chased:
                return self._lookup_facts(reexport.module, chased, depth + 1)
        return None

    def resolve(self, chain: tuple) -> Optional[Resolved]:
        """The summary a dotted name chain targets, or ``None``.

        Tries the longest binding prefix first, so ``pkg.mod.f`` prefers
        the explicit ``import pkg.mod`` binding over the bare ``pkg`` one.
        """
        for split in range(len(chain) - 1 if len(chain) > 1 else 1, 0, -1):
            key = ".".join(chain[:split])
            binding = self._bindings.get(key)
            if binding is None:
                continue
            attrs = tuple(chain[split:])
            if binding.attr is not None:
                attrs = (binding.attr,) + attrs
            resolved = self._lookup(binding.module, attrs, 0)
            if resolved is not None:
                return resolved
        return None

    def _lookup(
        self, module: str, attrs: tuple, depth: int
    ) -> Optional[Resolved]:
        """Walk ``attrs`` down from ``module``, chasing re-exports."""
        if not attrs or depth > _MAX_REEXPORT_DEPTH:
            return None
        # the leading attr may name a submodule rather than a definition
        submodule = f"{module}.{attrs[0]}"
        if submodule in self._program.modules and len(attrs) > 1:
            resolved = self._lookup(submodule, attrs[1:], depth + 1)
            if resolved is not None:
                return resolved
        summary = self._summaries.get(module)
        if summary is None:
            return None
        name = attrs[0]
        if len(attrs) == 1:
            if name in summary.functions:
                return summary.functions[name]
            if name in summary.classes:
                return summary.classes[name]
        elif len(attrs) == 2 and name in summary.classes:
            return summary.classes[name].methods.get(attrs[1])
        reexport = summary.reexports.get(name)
        if reexport is not None:
            chased = attrs[1:]
            if reexport.attr is not None:
                chased = (reexport.attr,) + chased
                return self._lookup(reexport.module, chased, depth + 1)
            if chased:
                return self._lookup(reexport.module, chased, depth + 1)
        return None


@dataclass
class ProgramAnalysis:
    """The output of :func:`analyze_program`."""

    summaries: Dict[str, ModuleSummary] = field(default_factory=dict)
    #: per-module taint results for modules analyzed live this run;
    #: cache-hit modules are absent (their summaries were loaded instead)
    taints: Dict[str, ModuleTaint] = field(default_factory=dict)


class _SummaryContext:
    """The minimal ``ctx`` surface :func:`taint.analyze_module` needs."""

    def __init__(
        self,
        path: str,
        config: LintConfig,
        secret_lines: FrozenSet[int],
        imports: ImportEnv,
    ) -> None:
        self.path = path
        self.config = config
        self.secret_lines = secret_lines
        self.imports = imports
        self.cache: Dict[str, object] = {}


def _summarize(
    node: ModuleNode, module_taint: ModuleTaint, config: LintConfig
) -> ModuleSummary:
    functions, classes = taint.module_summaries(module_taint)
    return ModuleSummary(
        functions=functions,
        classes=classes,
        reexports=dict(node.bindings),
        concurrency=concurrency_mod.collect_class_facts(node.tree, config),
    )


def analyze_program(
    program: Program,
    config: LintConfig,
    secret_lines: Dict[str, FrozenSet[int]],
    preloaded: Optional[Dict[str, ModuleSummary]] = None,
) -> ProgramAnalysis:
    """Compute every module's summary in dependency-first order.

    ``secret_lines`` maps module names to their ``# smatch-lint: secret``
    annotation lines.  ``preloaded`` supplies cache-restored summaries for
    modules that need no re-analysis (the caller decides validity); those
    modules are skipped entirely and contribute their stored summaries.
    """
    result = ProgramAnalysis()
    if preloaded:
        result.summaries.update(preloaded)

    def analyze(node: ModuleNode) -> ModuleTaint:
        env = ImportEnv(node, program, result.summaries)
        ctx = _SummaryContext(
            path=node.display_path,
            config=config,
            secret_lines=secret_lines.get(node.name, frozenset()),
            imports=env,
        )
        return taint.analyze_module(node.tree, ctx)

    for scc in program.sccs_topological():
        members = [
            name
            for name in scc
            if name in program.modules and name not in result.summaries
        ]
        if not members:
            continue
        if len(members) == 1 and members[0] not in program.modules[members[0]].deps:
            # acyclic module: every dependency summary is already final
            node = program.modules[members[0]]
            module_taint = analyze(node)
            result.taints[node.name] = module_taint
            result.summaries[node.name] = _summarize(node, module_taint, config)
            continue
        # cyclic SCC: iterate until the member summaries stop changing
        for name in members:
            result.summaries[name] = ModuleSummary(
                reexports=dict(program.modules[name].bindings)
            )
        for _round in range(_MAX_SCC_ROUNDS):
            changed = False
            for name in members:
                node = program.modules[name]
                module_taint = analyze(node)
                summary = _summarize(node, module_taint, config)
                if summary != result.summaries.get(name):
                    changed = True
                result.taints[name] = module_taint
                result.summaries[name] = summary
            if not changed:
                break
        else:
            # one final pass so every member saw the last round's summaries
            for name in members:
                node = program.modules[name]
                module_taint = analyze(node)
                result.taints[name] = module_taint
                result.summaries[name] = _summarize(node, module_taint, config)
    return result


def parse_tree(source: str, path: str) -> Optional[ast.Module]:
    """Parse helper shared by the engine (``None`` on syntax errors)."""
    try:
        return ast.parse(source, filename=path)
    except SyntaxError:
        return None
