"""Per-function control-flow graphs over stdlib ``ast``.

The taint analysis in :mod:`tools.smatch_lint.taint` needs to know, for
every statement, which statements may execute before it — so that a value
tainted on one path is still considered tainted at a later join point, and
a clean re-assignment on *every* path kills the taint.  That is a classic
forward may-analysis over a CFG; this module builds the graph.

Shape of the graph:

* one node per **statement** (plus two pseudo nodes, ``ENTRY`` and
  ``EXIT``); compound statements (``if``/``while``/``for``/``with``/
  ``try``) contribute a *header* node evaluating their test / iterable /
  context expression, with their bodies nested as ordinary nodes;
* edges are labelled with a kind: ``next`` (fallthrough), ``true`` /
  ``false`` (branch), ``loop`` / ``exhausted`` / ``back`` (loop entry /
  exit / back edge), ``except`` (any statement in a ``try`` body may
  transfer to each of its handlers), ``return`` / ``raise`` (to ``EXIT``),
  ``break`` / ``continue``;
* nested function and class definitions are opaque single nodes — each
  function gets its own graph via :func:`build_cfg`.

The construction is deliberately conservative: extra edges (a ``raise``
that also targets ``EXIT`` although a handler exists, a ``while True``
with a ``false`` exit edge) only make the downstream may-analysis *more*
pessimistic, never unsound.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

__all__ = ["Edge", "ControlFlowGraph", "build_cfg"]

#: A dangling edge waiting to be attached to the next node: (source, kind).
_Frontier = List[Tuple[int, str]]


@dataclass(frozen=True)
class Edge:
    """One directed control-flow edge between node indices."""

    src: int
    dst: int
    kind: str


@dataclass
class ControlFlowGraph:
    """Statement-level CFG of one function body.

    ``nodes[0]`` is the ``ENTRY`` pseudo node and ``nodes[1]`` the ``EXIT``
    pseudo node (both hold ``None``); every other entry holds the
    ``ast`` statement (or ``ast.ExceptHandler``) it represents.
    """

    ENTRY: int = 0
    EXIT: int = 1

    nodes: List[Optional[ast.AST]] = field(default_factory=lambda: [None, None])
    edges: List[Edge] = field(default_factory=list)
    #: node index -> outgoing (dst, kind) pairs
    succs: Dict[int, List[Tuple[int, str]]] = field(default_factory=dict)
    #: node index -> incoming (src, kind) pairs
    preds: Dict[int, List[Tuple[int, str]]] = field(default_factory=dict)
    #: identity map from statement object to its node index
    index_of: Dict[int, int] = field(default_factory=dict)

    def add_node(self, stmt: Optional[ast.AST]) -> int:
        """Append a node; returns its index."""
        self.nodes.append(stmt)
        idx = len(self.nodes) - 1
        if stmt is not None:
            self.index_of[id(stmt)] = idx
        return idx

    def add_edge(self, src: int, dst: int, kind: str) -> None:
        """Record one edge (idempotent per (src, dst, kind))."""
        edge = Edge(src, dst, kind)
        if edge in self.succs.get(src, ()):  # pragma: no cover - tiny lists
            return
        self.edges.append(edge)
        self.succs.setdefault(src, []).append((dst, kind))
        self.preds.setdefault(dst, []).append((src, kind))

    def statement(self, idx: int) -> Optional[ast.AST]:
        """The AST node behind a graph node (None for ENTRY/EXIT)."""
        return self.nodes[idx]

    def indices(self) -> Iterator[int]:
        """All node indices, ENTRY and EXIT included."""
        return iter(range(len(self.nodes)))

    def render(self) -> str:
        """Human-readable dump (used by ``--taint-debug``)."""
        names = {self.ENTRY: "<entry>", self.EXIT: "<exit>"}
        lines = []
        for idx in self.indices():
            stmt = self.nodes[idx]
            label = names.get(
                idx,
                f"{type(stmt).__name__}@{getattr(stmt, 'lineno', '?')}",
            )
            outs = ", ".join(
                f"{names.get(dst, dst)}:{kind}"
                for dst, kind in self.succs.get(idx, [])
            )
            lines.append(f"  [{idx}] {label} -> {outs or '-'}")
        return "\n".join(lines)


class _Builder:
    """Threads a frontier of dangling edges through a statement list."""

    def __init__(self) -> None:
        self.graph = ControlFlowGraph()
        #: per enclosing loop: (header index, list collecting break edges)
        self._loops: List[Tuple[int, _Frontier]] = []
        #: per enclosing try: node indices of its handler heads
        self._handlers: List[List[int]] = []

    # -- plumbing ---------------------------------------------------------------

    def _attach(self, frontier: _Frontier, dst: int) -> None:
        for src, kind in frontier:
            self.graph.add_edge(src, dst, kind)

    def _node(self, stmt: ast.AST, frontier: _Frontier) -> int:
        """Materialize a node and wire the pending frontier into it."""
        idx = self.graph.add_node(stmt)
        self._attach(frontier, idx)
        # any statement inside a try body may raise into each live handler
        for handler_group in self._handlers:
            for handler_idx in handler_group:
                self.graph.add_edge(idx, handler_idx, "except")
        return idx

    # -- statement dispatch -----------------------------------------------------

    def body(self, stmts: Sequence[ast.stmt], frontier: _Frontier) -> _Frontier:
        """Thread a statement sequence; returns the outgoing frontier."""
        for stmt in stmts:
            if not frontier:
                # unreachable code after return/raise/break: still build
                # nodes so rules can see them, with no incoming edges
                pass
            frontier = self._statement(stmt, frontier)
        return frontier

    def _statement(self, stmt: ast.stmt, frontier: _Frontier) -> _Frontier:
        if isinstance(stmt, ast.If):
            return self._if(stmt, frontier)
        if isinstance(stmt, (ast.While,)):
            return self._while(stmt, frontier)
        if isinstance(stmt, (ast.For, ast.AsyncFor)):
            return self._for(stmt, frontier)
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            idx = self._node(stmt, frontier)
            return self.body(stmt.body, [(idx, "next")])
        if isinstance(stmt, ast.Try):
            return self._try(stmt, frontier)
        if hasattr(ast, "Match") and isinstance(stmt, ast.Match):
            return self._match(stmt, frontier)
        if isinstance(stmt, (ast.Return, ast.Raise)):
            idx = self._node(stmt, frontier)
            kind = "return" if isinstance(stmt, ast.Return) else "raise"
            self.graph.add_edge(idx, self.graph.EXIT, kind)
            return []
        if isinstance(stmt, ast.Break):
            idx = self._node(stmt, frontier)
            if self._loops:
                self._loops[-1][1].append((idx, "break"))
            return []
        if isinstance(stmt, ast.Continue):
            idx = self._node(stmt, frontier)
            if self._loops:
                self.graph.add_edge(idx, self._loops[-1][0], "continue")
            return []
        # simple statements and opaque nested definitions
        idx = self._node(stmt, frontier)
        return [(idx, "next")]

    def _if(self, stmt: ast.If, frontier: _Frontier) -> _Frontier:
        header = self._node(stmt, frontier)
        out = self.body(stmt.body, [(header, "true")])
        if stmt.orelse:
            out += self.body(stmt.orelse, [(header, "false")])
        else:
            out += [(header, "false")]
        return out

    def _while(self, stmt: ast.While, frontier: _Frontier) -> _Frontier:
        header = self._node(stmt, frontier)
        breaks: _Frontier = []
        self._loops.append((header, breaks))
        body_out = self.body(stmt.body, [(header, "loop")])
        self._loops.pop()
        for src, _ in body_out:
            self.graph.add_edge(src, header, "back")
        out: _Frontier = [(header, "false")] + breaks
        if stmt.orelse:
            out = self.body(stmt.orelse, [(header, "false")]) + breaks
        return out

    def _for(self, stmt: "ast.For | ast.AsyncFor", frontier: _Frontier) -> _Frontier:
        header = self._node(stmt, frontier)
        breaks: _Frontier = []
        self._loops.append((header, breaks))
        body_out = self.body(stmt.body, [(header, "loop")])
        self._loops.pop()
        for src, _ in body_out:
            self.graph.add_edge(src, header, "back")
        out: _Frontier = [(header, "exhausted")] + breaks
        if stmt.orelse:
            out = self.body(stmt.orelse, [(header, "exhausted")]) + breaks
        return out

    def _try(self, stmt: ast.Try, frontier: _Frontier) -> _Frontier:
        # handler heads first, so body statements can raise into them
        handler_heads: List[int] = []
        for handler in stmt.handlers:
            handler_heads.append(self.graph.add_node(handler))
        self._handlers.append(handler_heads)
        body_out = self.body(stmt.body, frontier)
        self._handlers.pop()
        out = list(body_out)
        if stmt.orelse:
            out = self.body(stmt.orelse, body_out)
        for handler, head in zip(stmt.handlers, handler_heads):
            out += self.body(handler.body, [(head, "next")])
        if stmt.finalbody:
            out = self.body(stmt.finalbody, out)
        return out

    def _match(self, stmt: ast.AST, frontier: _Frontier) -> _Frontier:
        header = self._node(stmt, frontier)
        out: _Frontier = [(header, "false")]  # no case matched
        for case in stmt.cases:  # type: ignore[attr-defined]
            out += self.body(case.body, [(header, "case")])
        return out


def build_cfg(func: "ast.FunctionDef | ast.AsyncFunctionDef") -> ControlFlowGraph:
    """Build the statement-level CFG of one function definition."""
    builder = _Builder()
    out = builder.body(func.body, [(builder.graph.ENTRY, "next")])
    builder._attach(out, builder.graph.EXIT)
    return builder.graph
