"""Client-side key generation against the *networked* key service.

:class:`repro.core.keygen.ProfileKeygen` evaluates the OPRF against an
in-process server object; this module runs the same derivation over a
:class:`~repro.net.channel.SecureChannel` to a
:class:`~repro.server.keyservice.KeyGenService` — the deployment shape the
paper describes ("a round of secure communication with the random number
generator").  The blinding guarantees the wire carries nothing the service
(or a wiretap inside the secure channel's endpoints) can link to the
profile.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.core.keygen import ProfileKey
from repro.core.profile import Profile
from repro.crypto.kdf import sha256
from repro.crypto.oprf import RsaOprfClient
from repro.crypto.rsa import RSAPublicKey
from repro.errors import ProtocolError
from repro.net.channel import SecureChannel
from repro.net.oprf_messages import (
    BatchedBlindEvalRequest,
    BatchedBlindEvalResponse,
    OprfKeyInfo,
    OprfKeyInfoRequest,
    OprfRequest,
    OprfResponse,
)
from repro.rs.fuzzy import FuzzyExtractor, FuzzyParams
from repro.utils.rand import SystemRandomSource

__all__ = ["RemoteKeygenClient"]


class RemoteKeygenClient:
    """Derives profile keys through the key service's wire protocol."""

    def __init__(
        self,
        fuzzy_params: FuzzyParams,
        channel: SecureChannel,
        rng: Optional[SystemRandomSource] = None,
    ) -> None:
        self.extractor = FuzzyExtractor(fuzzy_params)
        self._channel = channel
        self._rng = rng or SystemRandomSource()
        self._public_key: Optional[RSAPublicKey] = None
        self._request_counter = 0

    def _next_id(self) -> int:
        self._request_counter += 1
        return self._request_counter

    # -- protocol steps ------------------------------------------------------------

    def request_public_key(self) -> int:
        """Send the key-info request; returns the request id."""
        request_id = self._next_id()
        self._channel.send(OprfKeyInfoRequest(request_id=request_id))
        return request_id

    def receive_public_key(self, expected_id: int) -> RSAPublicKey:
        """Consume the key-info response and cache the public key."""
        message = self._channel.recv()
        if not isinstance(message, OprfKeyInfo):
            raise ProtocolError(
                f"expected OprfKeyInfo, got {type(message).__name__}"
            )
        if message.request_id != expected_id:
            raise ProtocolError("key-info response id mismatch")
        self._public_key = RSAPublicKey(
            n=message.modulus, e=message.exponent
        )
        return self._public_key

    @property
    def public_key(self) -> RSAPublicKey:
        """The key service's RSA public parameters."""
        if self._public_key is None:
            raise ProtocolError(
                "public key not fetched yet; run the key-info round first"
            )
        return self._public_key

    def begin_derivation(
        self, profile: Profile, erasures: Optional[Sequence[int]] = None
    ):
        """Blind the profile's key material and send the OPRF request.

        Returns opaque state to pass to :meth:`finish_derivation`.
        """
        k_prime = self.extractor.key_material(
            profile.values, erasures=erasures
        )
        oprf_client = RsaOprfClient(self.public_key, rng=self._rng)
        blinding = oprf_client.blind(k_prime)
        request_id = self._next_id()
        self._channel.send(
            OprfRequest(request_id=request_id, blinded=blinding.blinded)
        )
        return request_id, oprf_client, blinding

    def finish_derivation(self, state) -> ProfileKey:
        """Receive the evaluation, unblind, and assemble the profile key."""
        request_id, oprf_client, blinding = state
        message = self._channel.recv()
        if not isinstance(message, OprfResponse):
            raise ProtocolError(
                f"expected OprfResponse, got {type(message).__name__}"
            )
        if message.request_id != request_id:
            raise ProtocolError("OPRF response id mismatch")
        key = oprf_client.finalize(blinding, message.evaluated)
        return ProfileKey(
            key=key, index=sha256(b"smatch-key-index", key)
        )

    # -- batched round -------------------------------------------------------------

    def begin_batch_derivation(self, profiles: Sequence[Profile]):
        """Blind every profile's key material; one wire round for the batch.

        Sends a single :class:`BatchedBlindEvalRequest` carrying all blinded
        values (amortizing per-message framing and channel overhead across
        the batch) and returns opaque state for
        :meth:`finish_batch_derivation`.
        """
        if not profiles:
            raise ProtocolError("batch derivation needs at least one profile")
        oprf_client = RsaOprfClient(self.public_key, rng=self._rng)
        # key_material is a pure hash (no randomness), so hoisting it out
        # of the blinding loop preserves the client's RNG draw sequence
        blindings = oprf_client.blind_batch(
            [self.extractor.key_material(p.values) for p in profiles]
        )
        request_id = self._next_id()
        self._channel.send(
            BatchedBlindEvalRequest(
                request_id=request_id,
                blinded=tuple(b.blinded for b in blindings),
            )
        )
        return request_id, oprf_client, blindings

    def finish_batch_derivation(self, state) -> List[ProfileKey]:
        """Receive the batched evaluations; keys come back in batch order."""
        request_id, oprf_client, blindings = state
        message = self._channel.recv()
        if not isinstance(message, BatchedBlindEvalResponse):
            raise ProtocolError(
                f"expected BatchedBlindEvalResponse, got "
                f"{type(message).__name__}"
            )
        if message.request_id != request_id:
            raise ProtocolError("batched OPRF response id mismatch")
        if len(message.evaluated) != len(blindings):
            raise ProtocolError(
                "batched OPRF response count disagrees with the request"
            )
        keys = []
        for blinding, evaluated in zip(blindings, message.evaluated):
            key = oprf_client.finalize(blinding, evaluated)
            keys.append(
                ProfileKey(key=key, index=sha256(b"smatch-key-index", key))
            )
        return keys
