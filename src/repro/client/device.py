"""Device cost models.

The paper's testbed pairs an HTC Nexus One (1 GHz QSD8250, the client) with
a dual-core 3.10 GHz Core i5-2400 PC (the server).  We cannot run on that
hardware, so the cost experiments support two modes:

* **wall-clock** — time our pure-Python primitives directly.  Relative
  shapes (symmetric vs homomorphic, growth in the plaintext size) carry
  over because they come from operation counts and asymptotics, not
  constant factors.
* **testbed-calibrated** — convert an :class:`~repro.utils.instrument.OpCounter`
  into milliseconds using per-operation constants for a named device.  The
  constants below are order-of-magnitude figures for the 2010-era hardware
  class the paper used (a 1 GHz ARMv7 phone and a 3 GHz desktop), chosen so
  the *ratios* between primitive families match published microbenchmarks:
  a modular exponentiation with a 1024-bit modulus costs milliseconds, a
  hash or AES block costs microseconds.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from repro.errors import ParameterError
from repro.utils.instrument import OpCounter

__all__ = ["DeviceProfile", "NEXUS_ONE", "PC_SERVER"]


@dataclass(frozen=True)
class DeviceProfile:
    """Per-operation costs (milliseconds) of one device.

    ``modexp_ms_1024`` is the cost of one modular exponentiation with a
    1024-bit modulus and full-size exponent; other modulus sizes scale
    cubically (schoolbook multiplication with a linear number of squarings).
    """

    name: str
    modexp_ms_1024: float
    hash_ms: float
    aes_block_ms: float
    ope_level_ms: float
    rank_column_ms_per_user: float = 0.001

    def __post_init__(self) -> None:
        for field_name in (
            "modexp_ms_1024",
            "hash_ms",
            "aes_block_ms",
            "ope_level_ms",
            "rank_column_ms_per_user",
        ):
            if getattr(self, field_name) <= 0:
                raise ParameterError(f"{field_name} must be positive")

    def modexp_ms(self, modulus_bits: int) -> float:
        """Cubic scaling of modular exponentiation with modulus size."""
        if modulus_bits < 1:
            raise ParameterError("modulus_bits must be positive")
        return self.modexp_ms_1024 * (modulus_bits / 1024.0) ** 3

    def estimate_ms(
        self,
        counter: OpCounter,
        modexp_bits: int = 1024,
        group_size: int = 1,
    ) -> float:
        """Convert an operation tally into estimated milliseconds.

        Args:
            counter: tallies recorded under :func:`repro.utils.instrument.counting`.
            modexp_bits: modulus size to charge each ``modexp`` at.
            group_size: user count, for the per-user server operations.
        """
        counts: Mapping[str, int] = counter.as_dict()
        total = 0.0
        total += counts.get("modexp", 0) * self.modexp_ms(modexp_bits)
        total += counts.get("hash", 0) * self.hash_ms
        total += counts.get("aes_block", 0) * self.aes_block_ms
        total += counts.get("ope_level", 0) * self.ope_level_ms
        # Paillier composite ops decompose into modexps at 2x modulus bits.
        paillier_ops = counts.get("paillier_encrypt", 0) + counts.get(
            "paillier_decrypt", 0
        )
        total += paillier_ops * self.modexp_ms(2 * modexp_bits)
        total += counts.get("paillier_mulmod", 0) * self.modexp_ms(
            2 * modexp_bits
        ) * 0.001  # one modular multiplication ~ 1/1000 of a modexp
        total += (
            counts.get("server_rank_column", 0)
            * group_size
            * self.rank_column_ms_per_user
        )
        return total


#: The paper's client device: 1 GHz single-core phone.
NEXUS_ONE = DeviceProfile(
    name="HTC Nexus One (1 GHz QSD8250)",
    modexp_ms_1024=18.0,
    hash_ms=0.012,
    aes_block_ms=0.004,
    ope_level_ms=0.030,
)

#: The paper's server: 3.10 GHz Core i5-2400 PC.
PC_SERVER = DeviceProfile(
    name="PC (Intel Core i5-2400, 3.10 GHz)",
    modexp_ms_1024=1.4,
    hash_ms=0.001,
    aes_block_ms=0.0004,
    ope_level_ms=0.0025,
    rank_column_ms_per_user=0.0002,
)
