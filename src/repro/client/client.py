"""The mobile client's end-to-end workflow (paper Figure 2).

Step 1: generate the profile key, increase entropy, chain, encrypt, build
authentication information, and upload.  Step 2/4: submit query requests and
receive results.  Step 5: verify every claimed match with Vf, accepting only
entries whose authenticator opens under the client's own profile key and
passes the commitment check.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.core.keygen import ProfileKey
from repro.core.profile import Profile
from repro.core.scheme import EncryptedProfile, SMatch
from repro.errors import ProtocolError, SchemeError
from repro.net.channel import SecureChannel
from repro.net.messages import QueryRequest, QueryResult, UploadMessage

__all__ = ["MobileClient", "VerifiedMatches"]


@dataclass(frozen=True)
class VerifiedMatches:
    """Outcome of one query after client-side verification.

    Attributes:
        accepted: user IDs whose authenticators passed Vf (trustworthy
            matches with theta-close profiles).
        rejected: user IDs whose authenticators failed Vf — either honest
            noise (a match at the fringe of the key group) or evidence of a
            misbehaving server.
    """

    query_id: int
    accepted: Tuple[int, ...]
    rejected: Tuple[int, ...]

    @property
    def forgery_detected(self) -> bool:
        """True when any returned entry failed verification."""
        return bool(self.rejected)


class MobileClient:
    """One user's device running the S-MATCH client."""

    def __init__(
        self,
        profile: Profile,
        scheme: SMatch,
        channel: Optional[SecureChannel] = None,
    ) -> None:
        self.profile = profile
        self.scheme = scheme
        self.channel = channel
        self._key: Optional[ProfileKey] = None
        self._payload: Optional[EncryptedProfile] = None
        self._query_counter = 0

    # -- step 1: bootstrap -----------------------------------------------------

    @property
    def key(self) -> ProfileKey:
        """The client's (lazily generated) profile key."""
        if self._key is None:
            self._key = self.scheme.keygen(self.profile)
        return self._key

    def build_upload(self) -> EncryptedProfile:
        """Run Keygen + InitData + Enc + Auth locally."""
        payload, key = self.scheme.enroll(self.profile)
        self._key = key
        self._payload = payload
        return payload

    def upload(self) -> int:
        """Build and send the upload message; returns wire bytes."""
        self._require_channel()
        payload = self.build_upload()
        return self.channel.send(UploadMessage(payload=payload))

    # -- steps 2-5: query and verify ----------------------------------------------

    def query(
        self, timestamp: int, max_distance: Optional[int] = None
    ) -> QueryRequest:
        """Build the next query request ``<q, t, ID_v>``.

        ``max_distance`` switches the server from kNN to MAX-distance
        matching (all group members within the score radius).
        """
        self._query_counter += 1
        return QueryRequest(
            query_id=self._query_counter,
            timestamp=timestamp,
            user_id=self.profile.user_id,
            max_distance=max_distance,
        )

    def send_query(
        self, timestamp: int, max_distance: Optional[int] = None
    ) -> int:
        """Send a query request over the channel; returns wire bytes."""
        self._require_channel()
        return self.channel.send(self.query(timestamp, max_distance))

    def receive_results(self) -> VerifiedMatches:
        """Receive a query result and verify every entry."""
        self._require_channel()
        message = self.channel.recv()
        if not isinstance(message, QueryResult):
            raise ProtocolError(
                f"expected QueryResult, got {type(message).__name__}"
            )
        return self.verify_results(message)

    def verify_results(self, result: QueryResult) -> VerifiedMatches:
        """Step 5: run Vf on every claimed match."""
        if self._key is None:
            raise SchemeError("client has not generated its profile key yet")
        accepted: List[int] = []
        rejected: List[int] = []
        for entry in result.entries:
            if entry.auth.user_id != entry.user_id:
                rejected.append(entry.user_id)
                continue
            if self.scheme.verify(entry.auth, self._key):
                accepted.append(entry.user_id)
            else:
                rejected.append(entry.user_id)
        return VerifiedMatches(
            query_id=result.query_id,
            accepted=tuple(accepted),
            rejected=tuple(rejected),
        )

    def _require_channel(self) -> None:
        if self.channel is None:
            raise ProtocolError("client has no channel attached")
