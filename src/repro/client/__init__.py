"""Mobile-client substrate: device cost models and the client workflow."""

from repro.client.device import DeviceProfile, NEXUS_ONE, PC_SERVER
from repro.client.client import MobileClient, VerifiedMatches

__all__ = [
    "DeviceProfile",
    "NEXUS_ONE",
    "PC_SERVER",
    "MobileClient",
    "VerifiedMatches",
]
