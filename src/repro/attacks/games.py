"""The paper's security games as executable definitions (Section VII-B).

* **PR-OKPA** (Definition 6): plaintext recovery under ordered known
  plaintext attack.  The adversary holds plaintext/ciphertext pairs, leads
  ordered searches (i.e. exploits the OPE order relation over the stored
  ciphertexts), and outputs a plaintext guess for a challenge ciphertext.
  Theorem 1 bounds the advantage by
  ``(ln(2^e - 2) + 0.577) / (2^(e-1) (2^e - 1))`` for plaintext entropy
  ``e`` — below ``2^-kappa`` once the entropy is configured to the security
  level (the paper: entropy 64 bits for security level 80).
* **PR-KK** (Definition 7): plaintext recovery under known key attack.  A
  user shares their profile key with the adversary, who recovers every
  same-key ciphertext group.  Theorem 2 puts the advantage at ``m / N``
  (colluder's group size over the population).

The games run against *real* scheme objects, so the theorems' premises
(what the adversary sees) are enforced by construction rather than assumed.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Mapping, Optional, Sequence

from repro.attacks.collusion import CollusionOutcome, collusion_attack
from repro.attacks.okpa import okpa_search_space
from repro.core.keygen import ProfileKey
from repro.core.scheme import EncryptedProfile
from repro.errors import ParameterError
from repro.utils.rand import SystemRandomSource

__all__ = [
    "theorem1_advantage",
    "theorem1_security_level",
    "required_entropy_bits",
    "PrOkpaGame",
    "PrOkpaOutcome",
    "PrKkGame",
]

_EULER_MASCHERONI = 0.577


def _log2_theorem1_advantage(entropy_bits: float) -> float:
    """log2 of Theorem 1's advantage (always representable)."""
    if entropy_bits <= 1:
        raise ParameterError("entropy must exceed 1 bit")
    ln2 = math.log(2.0)
    if entropy_bits < 50:
        numerator = math.log(2.0**entropy_bits - 2) + _EULER_MASCHERONI
        denominator_log2 = (entropy_bits - 1) + math.log2(
            2.0**entropy_bits - 1
        )
        return math.log2(numerator) - denominator_log2
    # ln(2^e - 2) ~= e*ln2 and log2(2^e - 1) ~= e for large e
    log2_num = math.log2(entropy_bits * ln2 + _EULER_MASCHERONI)
    return log2_num - ((entropy_bits - 1) + entropy_bits)


def theorem1_advantage(entropy_bits: float) -> float:
    """Theorem 1's PR-OKPA advantage for plaintext entropy ``e`` (bits).

    ``Adv = (ln(2^e - 2) + 0.577) / (2^(e-1) * (2^e - 1))``.  Underflows to
    0.0 for very large entropies; use :func:`theorem1_security_level` for a
    representation that never underflows.
    """
    return 2.0 ** _log2_theorem1_advantage(entropy_bits)


def theorem1_security_level(entropy_bits: float) -> float:
    """The security level kappa achieved: ``Adv <= 2^-kappa``."""
    return -_log2_theorem1_advantage(entropy_bits)


def required_entropy_bits(kappa: int) -> int:
    """Smallest integer entropy whose Theorem-1 advantage is <= 2^-kappa.

    Reproduces the paper's sizing rule ("to achieve the security level of
    80, the entropy can be configured to 64 bits" — in fact 64 bits gives
    far more than 80 by the formula; this returns the tight value).
    """
    if kappa < 1:
        raise ParameterError("kappa must be >= 1")
    e = 2
    while theorem1_security_level(e) < kappa:
        e += 1
        if e > 8192:
            raise ParameterError("no entropy satisfies this kappa")
    return e


@dataclass(frozen=True)
class PrOkpaOutcome:
    """Empirical result of a PR-OKPA game series."""

    rounds: int
    successes: int
    mean_search_space: float

    @property
    def empirical_advantage(self) -> float:
        """Empirical success rate over the played rounds."""
        return self.successes / self.rounds if self.rounds else 0.0


class PrOkpaGame:
    """Definition 6 against a deterministic order-revealing encryptor.

    Args:
        encrypt: the challenge encryption function (one key, Definition 6
            step 1).
        population: the plaintexts whose ciphertexts the server stores.
        known_fraction: fraction of the population revealed as
            plaintext/ciphertext pairs (Definition 6 step 2).
    """

    def __init__(
        self,
        encrypt: Callable[[int], int],
        population: Sequence[int],
        known_fraction: float = 0.2,
        rng: Optional[SystemRandomSource] = None,
    ) -> None:
        if not population:
            raise ParameterError("population must be non-empty")
        if not 0 <= known_fraction < 1:
            raise ParameterError("known_fraction must be in [0, 1)")
        self._encrypt = encrypt
        self._population = sorted(set(population))
        self._known_fraction = known_fraction
        self._rng = rng or SystemRandomSource()

    def play(self, rounds: int = 50) -> PrOkpaOutcome:
        """Run repeated rounds; the adversary guesses uniformly among the
        order-pruned candidates (the optimal generic strategy given only
        order leakage)."""
        if rounds < 1:
            raise ParameterError("rounds must be >= 1")
        store = {p: self._encrypt(p) for p in self._population}
        ciphertexts = sorted(store.values())
        successes = 0
        spaces = []
        n_known = max(1, int(len(self._population) * self._known_fraction))
        for _ in range(rounds):
            known_plains = self._rng.sample(self._population, n_known)
            remaining = [
                p for p in self._population if p not in known_plains
            ]
            if not remaining:
                continue
            target = self._rng.choice(remaining)
            pairs = [(p, store[p]) for p in known_plains]
            candidates = okpa_search_space(pairs, ciphertexts, target)
            spaces.append(len(candidates))
            if candidates:
                guess_ct = candidates[
                    self._rng.randrange(0, len(candidates))
                ]
                if guess_ct == store[target]:
                    successes += 1
        return PrOkpaOutcome(
            rounds=rounds,
            successes=successes,
            mean_search_space=(
                sum(spaces) / len(spaces) if spaces else 0.0
            ),
        )


class PrKkGame:
    """Definition 7: collusion with a key-holding user.

    Wraps :func:`repro.attacks.collusion.collusion_attack` as the game and
    checks the outcome against Theorem 2's m/N formula.
    """

    def __init__(
        self,
        uploads: Mapping[int, EncryptedProfile],
        keys: Mapping[int, ProfileKey],
    ) -> None:
        if set(uploads) != set(keys):
            raise ParameterError("uploads and keys must cover the same users")
        self._uploads = dict(uploads)
        self._keys = dict(keys)

    def play(self, colluder: int) -> CollusionOutcome:
        """Run the game once for this colluder."""
        return collusion_attack(
            self._uploads, colluder, self._keys[colluder]
        )

    def theorem2_advantage(self, colluder: int) -> float:
        """The m/N bound for this colluder (m = their key-group size)."""
        index = self._uploads[colluder].key_index
        m = sum(
            1 for p in self._uploads.values() if p.key_index == index
        )
        return m / len(self._uploads)

    def verify_theorem2(self, colluder: int) -> bool:
        """The game's empirical advantage equals the theorem's formula."""
        return math.isclose(
            self.play(colluder).advantage,
            self.theorem2_advantage(colluder),
        )
