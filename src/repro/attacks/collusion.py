"""Plaintext recovery under known key attack (PR-KK, Definition 7).

A user colludes with the untrusted server and hands over their profile key.
The adversary hashes the key as an index, extracts the matching ciphertext
group from the server, and decrypts it.

* Against the **naive shared-key scheme** every user is in the one group, so
  the adversary recovers the whole population: advantage 1.
* Against **S-MATCH** only the colluder's own similarity cluster shares the
  key: advantage ``m / N`` where ``m`` is the colluder's group size
  (Theorem 2) — and the recovered "plaintexts" are the entropy-increased
  mapped values of theta-close profiles, not raw attributes of strangers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence, Tuple

from repro.core.keygen import ProfileKey
from repro.core.scheme import EncryptedProfile
from repro.errors import ParameterError

__all__ = ["CollusionOutcome", "collusion_attack", "shared_key_exposure"]


@dataclass(frozen=True)
class CollusionOutcome:
    """What one colluding user exposes."""

    colluder: int
    exposed_users: Tuple[int, ...]
    population: int

    @property
    def advantage(self) -> float:
        """The PR-KK advantage m/N of Theorem 2."""
        if self.population == 0:
            return 0.0
        return len(self.exposed_users) / self.population


def collusion_attack(
    uploads: Mapping[int, EncryptedProfile],
    colluder: int,
    colluder_key: ProfileKey,
) -> CollusionOutcome:
    """Run the PR-KK game: find every user whose data the shared key opens.

    The adversary matches the hashed key index against the stored key
    indexes — exactly the lookup the server performs — and claims every user
    in the colluder's group (their OPE ciphertexts are now decryptable and
    their authenticators forgeable).
    """
    if colluder not in uploads:
        raise ParameterError(f"colluder {colluder} has no upload")
    if uploads[colluder].key_index != colluder_key.index:
        raise ParameterError("colluder key does not match their upload")
    exposed = tuple(
        sorted(
            uid
            for uid, payload in uploads.items()
            if payload.key_index == colluder_key.index
        )
    )
    return CollusionOutcome(
        colluder=colluder,
        exposed_users=exposed,
        population=len(uploads),
    )


def shared_key_exposure(user_ids: Sequence[int], colluder: int) -> CollusionOutcome:
    """The same game against a single-shared-key scheme: everyone is exposed."""
    if colluder not in user_ids:
        raise ParameterError("colluder must be a user")
    return CollusionOutcome(
        colluder=colluder,
        exposed_users=tuple(sorted(user_ids)),
        population=len(user_ids),
    )


def worst_case_advantage(
    uploads: Mapping[int, EncryptedProfile], keys: Mapping[int, ProfileKey]
) -> float:
    """Max PR-KK advantage over all possible colluders (largest group / N)."""
    if not uploads:
        raise ParameterError("empty population")
    best = 0.0
    for uid, key in keys.items():
        outcome = collusion_attack(uploads, uid, key)
        best = max(best, outcome.advantage)
    return best
