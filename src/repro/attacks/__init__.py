"""Attack models quantifying the Section-IV leakage problems.

* :mod:`repro.attacks.okpa` — plaintext recovery under ordered known
  plaintext attack (PR-OKPA, Definition 6 / Figure 1): order-based search
  space pruning;
* :mod:`repro.attacks.frequency` — ciphertext frequency analysis against
  landmark attribute values (Definition 2);
* :mod:`repro.attacks.collusion` — plaintext recovery under known key attack
  (PR-KK, Definition 7): a user colludes with the server and shares a key.
"""

from repro.attacks.okpa import OkpaAdversary, okpa_search_space
from repro.attacks.frequency import FrequencyAnalysis
from repro.attacks.collusion import CollusionOutcome, collusion_attack

__all__ = [
    "OkpaAdversary",
    "okpa_search_space",
    "FrequencyAnalysis",
    "CollusionOutcome",
    "collusion_attack",
]
