"""Plaintext recovery under ordered known plaintext attack (PR-OKPA).

Figure 1 of the paper: an untrusted server holding known
(plaintext, ciphertext) pairs and a store of OPE ciphertexts wants the
ciphertext of a target plaintext (equivalently, the plaintext of a target
ciphertext).  Because OPE leaks order, the server can *prune* the candidate
set to the stored ciphertexts lying strictly between the ciphertexts of the
known plaintexts that bracket the target.

The size of the surviving candidate set is the security margin:

* a dense, high-entropy store leaves a large search space (Fig. 1(b), N=39);
* a sparse, low-entropy store collapses it (Fig. 1(a), N=3).

:class:`OkpaAdversary` implements the full Definition-6 game against any
encrypt function, measuring the adversary's success probability when it
guesses uniformly among surviving candidates — the quantity Theorem 1 bounds.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Tuple

from repro.errors import ParameterError
from repro.utils.rand import SystemRandomSource

__all__ = ["okpa_search_space", "OkpaAdversary", "OkpaResult"]


def okpa_search_space(
    known_pairs: Sequence[Tuple[int, int]],
    ciphertext_store: Sequence[int],
    target_plaintext: int,
) -> List[int]:
    """Candidate ciphertexts for a target plaintext after order pruning.

    Args:
        known_pairs: (plaintext, ciphertext) pairs the adversary knows.
        ciphertext_store: all ciphertexts the server stores (one key).
        target_plaintext: the plaintext whose ciphertext is sought.

    Returns:
        The stored ciphertexts that remain possible given the order
        constraints — Figure 1's "search space".
    """
    if not known_pairs:
        return sorted(set(ciphertext_store))
    pairs = sorted(known_pairs)
    plains = [p for p, _ in pairs]
    for p, c in zip(pairs, pairs[1:]):
        if p[0] == c[0]:
            raise ParameterError("duplicate plaintext in known pairs")
    store = sorted(set(ciphertext_store))

    # Exact hit: the pair gives the answer outright.
    for p, c in pairs:
        if p == target_plaintext:
            return [c]

    # Bracket the target between known plaintexts.
    idx = bisect_left(plains, target_plaintext)
    lo_cipher = pairs[idx - 1][1] if idx > 0 else None
    hi_cipher = pairs[idx][1] if idx < len(pairs) else None

    lo_pos = bisect_right(store, lo_cipher) if lo_cipher is not None else 0
    hi_pos = bisect_left(store, hi_cipher) if hi_cipher is not None else len(store)
    return store[lo_pos:hi_pos]


@dataclass(frozen=True)
class OkpaResult:
    """Outcome of one PR-OKPA game."""

    search_space_size: int
    success: bool

    @property
    def guess_probability(self) -> float:
        """Probability a uniform guess over the search space succeeds."""
        return 1.0 / self.search_space_size if self.search_space_size else 0.0


class OkpaAdversary:
    """Runs the Definition-6 game against an OPE-style encryptor."""

    def __init__(self, rng: Optional[SystemRandomSource] = None) -> None:
        self._rng = rng or SystemRandomSource()

    def play(
        self,
        encrypt: Callable[[int], int],
        population_plaintexts: Sequence[int],
        known_plaintexts: Sequence[int],
        target_plaintext: int,
    ) -> OkpaResult:
        """One round: prune, then guess uniformly among the candidates.

        ``population_plaintexts`` is what the user community actually
        uploaded (the server's store is their encryptions); ``known_plaintexts``
        are the values whose ciphertexts leaked to the adversary.
        """
        if target_plaintext not in population_plaintexts:
            raise ParameterError("target must be present in the store")
        store = [encrypt(p) for p in set(population_plaintexts)]
        known_pairs = [(p, encrypt(p)) for p in set(known_plaintexts)]
        truth = encrypt(target_plaintext)
        candidates = okpa_search_space(known_pairs, store, target_plaintext)
        if not candidates:
            return OkpaResult(search_space_size=0, success=False)
        guess = candidates[self._rng.randrange(0, len(candidates))]
        return OkpaResult(
            search_space_size=len(candidates), success=guess == truth
        )

    def average_search_space(
        self,
        encrypt: Callable[[int], int],
        population_plaintexts: Sequence[int],
        known_plaintexts: Sequence[int],
        targets: Sequence[int],
    ) -> float:
        """Mean pruned-search-space size over many targets."""
        if not targets:
            raise ParameterError("need at least one target")
        sizes = [
            self.play(
                encrypt, population_plaintexts, known_plaintexts, t
            ).search_space_size
            for t in targets
        ]
        return sum(sizes) / len(sizes)
