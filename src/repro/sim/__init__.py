"""Time-stepped mobile-social-service simulation.

The paper's system model has users "update [their] encrypted social profile
on the untrusted server periodically" while querying at other times.  This
package simulates that lifecycle: profiles drift (interests shift, locations
move), devices re-enroll on their upload period, queries interleave, and the
simulation records how the fuzzy key groups evolve — the operational
questions (group churn, match stability, verification failure rate) that a
deployment would monitor.
"""

from repro.sim.simulation import MobileServiceSimulation, SimConfig, StepMetrics

__all__ = ["MobileServiceSimulation", "SimConfig", "StepMetrics"]
