"""The mobile-social-service lifecycle simulator.

Each step:

1. **drift** — every user's attribute values take a bounded random-walk
   step (interests shift gradually; the Gaussian scale is configurable);
2. **periodic upload** — users whose upload period elapsed re-run the full
   client pipeline (Keygen + InitData + Enc + Auth) on their current
   profile and re-upload; the server moves them between key groups when
   their fuzzy key changed;
3. **queries** — a random subset of users query; each verifies the results
   with Vf and the simulator scores the outcome against ground truth
   (Definition-3 distance on the *current* plaintext profiles).

Metrics per step capture the deployment-facing behaviour of the fuzzy
key-group construction under churn: group counts and sizes, re-uploads that
changed groups, match precision among verified results, and verification
failures (which, against this honest server, measure honest key drift
rather than forgery).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.core.profile import Profile, profile_distance
from repro.core.scheme import SMatch
from repro.datasets.schema import DatasetSpec
from repro.datasets.synthetic import ClusteredPopulation
from repro.errors import ParameterError
from repro.experiments.common import build_scheme
from repro.net.messages import QueryRequest, UploadMessage
from repro.obs import pipeline_span
from repro.obs.trace import span
from repro.server.service import SMatchServer
from repro.utils.rand import SystemRandomSource

__all__ = ["SimConfig", "StepMetrics", "MobileServiceSimulation"]


@dataclass(frozen=True)
class SimConfig:
    """Simulation parameters."""

    num_users: int = 40
    steps: int = 20
    upload_period: int = 5
    query_probability: float = 0.2
    drift_sigma: float = 0.6
    theta: int = 8
    plaintext_bits: int = 64
    query_k: int = 5
    seed: int = 1

    def __post_init__(self) -> None:
        if self.num_users < 2:
            raise ParameterError("need at least 2 users")
        if self.steps < 1:
            raise ParameterError("steps must be >= 1")
        if self.upload_period < 1:
            raise ParameterError("upload_period must be >= 1")
        if not 0 <= self.query_probability <= 1:
            raise ParameterError("query_probability must be in [0, 1]")
        if self.drift_sigma < 0:
            raise ParameterError("drift_sigma must be >= 0")


@dataclass
class StepMetrics:
    """Everything recorded for one simulation step."""

    step: int
    uploads: int = 0
    group_changes: int = 0
    queries: int = 0
    results_returned: int = 0
    results_verified: int = 0
    verified_true_matches: int = 0
    num_groups: int = 0
    largest_group: int = 0

    @property
    def match_precision(self) -> float:
        """Fraction of verified results that are genuinely theta-close."""
        if self.results_verified == 0:
            return float("nan")
        return self.verified_true_matches / self.results_verified


class MobileServiceSimulation:
    """Drives a population of drifting users against an honest server."""

    def __init__(
        self,
        spec: DatasetSpec,
        config: Optional[SimConfig] = None,
        scheme: Optional[SMatch] = None,
    ) -> None:
        self.config = config = config if config is not None else SimConfig()
        self._rng = SystemRandomSource(seed=config.seed)
        self.population = ClusteredPopulation(
            spec, theta=config.theta, rng=self._rng
        )
        generated = self.population.generate(config.num_users)
        self.profiles: Dict[int, Profile] = {
            u.profile.user_id: u.profile for u in generated
        }
        self.scheme = scheme or build_scheme(
            spec,
            theta=config.theta,
            plaintext_bits=config.plaintext_bits,
            seed=config.seed,
            schema=self.population.schema,
            query_k=config.query_k,
        )
        self.server = SMatchServer(query_k=config.query_k)
        self._keys: Dict[int, object] = {}
        self._upload_offset: Dict[int, int] = {
            uid: self._rng.randrange(0, config.upload_period)
            for uid in self.profiles
        }
        self.history: List[StepMetrics] = []
        self._clock = 0
        # initial enrollment for everyone
        for uid in list(self.profiles):
            self._enroll(uid)

    # -- internals -----------------------------------------------------------------

    def _enroll(self, uid: int) -> bool:
        """(Re-)enroll a user; returns True when their key group changed."""
        with span("sim.enroll", user=uid):
            profile = self.profiles[uid]
            previous = (
                self.server.store.get(uid).key_index
                if self.server.store.contains(uid)
                else None
            )
            payload, key = self.scheme.enroll(profile)
            self._keys[uid] = key
            self.server.handle_upload(UploadMessage(payload=payload))
            return previous is not None and previous != payload.key_index

    def _drift(self, uid: int) -> None:
        profile = self.profiles[uid]
        values = []
        for value, spec in zip(profile.values, profile.schema.attributes):
            step = round(self._rng.gauss(0.0, self.config.drift_sigma))
            values.append(max(0, min(spec.cardinality - 1, value + step)))
        self.profiles[uid] = profile.with_values(tuple(values))

    # -- public API ------------------------------------------------------------------

    def step(self) -> StepMetrics:
        """Advance the simulation one step."""
        with span("sim.step", step=self._clock):
            return self._step()

    def _step(self) -> StepMetrics:
        config = self.config
        metrics = StepMetrics(step=self._clock)

        for uid in self.profiles:
            self._drift(uid)

        for uid in self.profiles:
            if self._clock % config.upload_period == self._upload_offset[uid]:
                changed = self._enroll(uid)
                metrics.uploads += 1
                metrics.group_changes += int(changed)

        for uid, profile in self.profiles.items():
            if self._rng.random() >= config.query_probability:
                continue
            metrics.queries += 1
            result = self.server.handle_query(
                QueryRequest(
                    query_id=self._clock, timestamp=self._clock, user_id=uid
                )
            )
            metrics.results_returned += len(result.entries)
            for entry in result.entries:
                if not self.scheme.verify(entry.auth, self._keys[uid]):
                    continue
                metrics.results_verified += 1
                other = self.profiles[entry.user_id]
                # ground truth on the *current* plaintexts; drift since the
                # last upload relaxes the bound by the drift amplitude
                slack = config.upload_period * max(
                    1, round(3 * config.drift_sigma)
                )
                if profile_distance(profile, other) <= config.theta + slack:
                    metrics.verified_true_matches += 1

        sizes = self.server.store.group_sizes()
        metrics.num_groups = len(sizes)
        metrics.largest_group = sizes[0] if sizes else 0
        self.history.append(metrics)
        self._clock += 1
        return metrics

    def run(self) -> List[StepMetrics]:
        """Run the configured number of steps; returns the full history."""
        with pipeline_span(
            "sim.run",
            users=self.config.num_users,
            steps=self.config.steps,
        ):
            for _ in range(self.config.steps):
                self.step()
        return self.history

    # -- summaries ------------------------------------------------------------------

    def summary(self) -> Dict[str, float]:
        """Aggregate statistics across the whole run."""
        if not self.history:
            raise ParameterError("run the simulation first")
        total_uploads = sum(m.uploads for m in self.history)
        total_changes = sum(m.group_changes for m in self.history)
        total_verified = sum(m.results_verified for m in self.history)
        total_true = sum(m.verified_true_matches for m in self.history)
        return {
            "steps": len(self.history),
            "uploads": total_uploads,
            "group_change_rate": (
                total_changes / total_uploads if total_uploads else 0.0
            ),
            "queries": sum(m.queries for m in self.history),
            "verified_results": total_verified,
            "match_precision": (
                total_true / total_verified if total_verified else float("nan")
            ),
            "final_groups": self.history[-1].num_groups,
            "final_largest_group": self.history[-1].largest_group,
        }
