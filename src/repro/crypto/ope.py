"""Order-preserving encryption (OPE).

A deterministic, stateless OPE in the style of Boldyreva et al. (EUROCRYPT
2009) as used by CryptDB, which the paper's implementation is based on: the
ciphertext of ``m`` is found by a binary descent over the plaintext domain,
where at every node a pseudorandom split point divides the remaining
ciphertext range between the two halves of the remaining plaintext domain.
All pseudorandomness is derived from the key via HMAC-SHA256 (see
:class:`repro.utils.rand.DeterministicStream`), so ``Enc`` is a pure function
of ``(key, m)`` and strictly monotone in ``m``.

Split-point distributions:

* ``"uniform"`` (default): the split is uniform over its feasible interval.
  This yields a pseudorandom order-preserving function with the same leakage
  profile (order and nothing else, modulo distributional distance) at any
  domain size, in O(k) PRF calls per operation even for 2048-bit plaintexts.
* ``"hypergeometric"``: the split follows the exact law of a random
  order-preserving function (the negative hypergeometric recursion of
  Boldyreva et al.), sampled by inverse CDF.  Exact-reference mode for
  moderate domains; the ablation benchmark compares the two.

When the ciphertext range equals the plaintext range (the paper's
"ciphertext range in OPE is set as the same as the plaintext range",
``expansion_bits = 0``) the only order-preserving injection is the identity
and both modes degenerate to it; the default adds 16 bits of expansion.
"""

from __future__ import annotations

import math
import sys
from dataclasses import dataclass
from typing import Optional, Tuple

from repro.crypto.ope_cache import OpeNodeCache
from repro.errors import CiphertextError, KeyError_, ParameterError
from repro.obs.instrument import count_op
from repro.obs.trace import span
from repro.utils.rand import DeterministicStream

__all__ = ["OpeParams", "OPE", "AdaptiveOPE"]

_SPLITS = ("uniform", "hypergeometric")


@dataclass(frozen=True)
class OpeParams:
    """OPE domain/range parameters.

    Attributes:
        plaintext_bits: domain is ``[0, 2**plaintext_bits)``.
        expansion_bits: the range has this many extra bits.
        split: ``"uniform"`` or ``"hypergeometric"`` (see module docstring).
    """

    plaintext_bits: int
    expansion_bits: int = 16
    split: str = "uniform"

    def __post_init__(self) -> None:
        if self.plaintext_bits < 1:
            raise ParameterError("plaintext_bits must be >= 1")
        if self.expansion_bits < 0:
            raise ParameterError("expansion_bits must be >= 0")
        if self.split not in _SPLITS:
            raise ParameterError(f"split must be one of {_SPLITS}")
        if self.split == "hypergeometric" and self.plaintext_bits > 24:
            raise ParameterError(
                "hypergeometric reference mode supports at most 24-bit "
                "domains; use the uniform split for larger plaintexts"
            )

    @property
    def ciphertext_bits(self) -> int:
        """Ciphertext size in bits."""
        return self.plaintext_bits + self.expansion_bits

    @property
    def domain_size(self) -> int:
        """Number of plaintext values in the domain."""
        return 1 << self.plaintext_bits

    @property
    def range_size(self) -> int:
        """Number of ciphertext values in the range."""
        return 1 << self.ciphertext_bits


def _hypergeometric_logpmf(k: int, total: int, good: int, draws: int) -> float:
    """Log-PMF of Hypergeometric(total, good, draws) via log-gamma."""
    return (
        math.lgamma(good + 1)
        - math.lgamma(k + 1)
        - math.lgamma(good - k + 1)
        + math.lgamma(total - good + 1)
        - math.lgamma(draws - k + 1)
        - math.lgamma(total - good - draws + k + 1)
        - (
            math.lgamma(total + 1)
            - math.lgamma(draws + 1)
            - math.lgamma(total - draws + 1)
        )
    )


def _hypergeometric_ppf(u: float, total: int, good: int, draws: int) -> int:
    """Inverse CDF of Hypergeometric(total, good, draws) at ``u``.

    A linear CDF walk from the lower support end, with the PMF advanced by
    the one-multiply/one-divide ratio recurrence

        P(k+1) = P(k) * (good - k)(draws - k)
                      / ((k + 1)(total - good - draws + k + 1))

    instead of six log-gamma evaluations per step.  Only the first term (and
    terms in the far tail below the normal float range, where the unimodal
    PMF climbs back toward representability) pays the log-gamma price, so
    the walk costs O(range) cheap float ops — the walk length itself is
    bounded by the reference-mode domain cap on ``OpeParams``.
    """
    lo = max(0, draws - (total - good))
    hi = min(draws, good)
    term = math.exp(_hypergeometric_logpmf(lo, total, good, draws))
    acc = term
    if u <= acc:
        return lo
    for k in range(lo, hi):
        if term < sys.float_info.min:
            # far-tail underflow: a zero or subnormal term carries almost no
            # significant bits, and the recurrence would drag that error
            # through the rest of the walk — re-anchor from the exact
            # log-PMF until the mass is back in the normal float range
            term = math.exp(_hypergeometric_logpmf(k + 1, total, good, draws))
        else:
            term *= (good - k) * (draws - k)
            term /= (k + 1) * (total - good - draws + k + 1)
        acc += term
        if u <= acc:
            return k + 1
    return hi


class OPE:
    """Deterministic order-preserving encryption under a symmetric key.

    ``cache`` optionally memoizes node-split and leaf-draw results in an
    :class:`~repro.crypto.ope_cache.OpeNodeCache`.  Because both draws are
    pure functions of ``(key, params, bounds)``, cached output is
    bit-for-bit identical to the uncached derivation; the cache may be
    shared across OPE instances (entries are namespaced by a one-way
    digest of key and parameters, so distinct key groups never mix).
    """

    KEY_SIZE = 32

    def __init__(
        self,
        key: bytes,
        params: OpeParams,
        cache: Optional[OpeNodeCache] = None,
    ) -> None:
        if len(key) < 16:
            raise KeyError_("OPE key must be at least 16 bytes")
        self._key = bytes(key)
        self.params = params
        self._cache = cache
        if cache is not None:
            # one-way, parameter-bound namespace: shared caches never leak
            # entries across key groups or across parameterizations, and
            # never hold raw key material
            label = (
                f"smatch-ope-cache-ns|{params.split}"
                f"|{params.plaintext_bits}|{params.expansion_bits}"
            ).encode()
            self._cache_ns = DeterministicStream(self._key, label).read(16)
        else:
            self._cache_ns = b""

    # -- internal: pseudorandom choices ---------------------------------------

    def _node_stream(self, tag: bytes, bounds: Tuple[int, int, int, int]) -> DeterministicStream:
        label = tag + b"|" + b"|".join(
            v.to_bytes((v.bit_length() + 7) // 8 or 1, "big") for v in bounds
        )
        return DeterministicStream(self._key, label)

    def _split_point(
        self, dlo: int, dhi: int, rlo: int, rhi: int
    ) -> int:
        """The last range value allocated to the left half of the domain.

        Feasibility: the left half ``[dlo, dmid]`` needs at least
        ``dmid - dlo + 1`` range values, the right half at least
        ``dhi - dmid``.
        """
        dmid = (dlo + dhi) // 2
        left_need = dmid - dlo + 1
        right_need = dhi - dmid
        lo = rlo + left_need - 1
        hi = rhi - right_need
        if lo == hi:
            return lo
        cache = self._cache
        if cache is not None:
            token = (self._cache_ns, 0, dlo, dhi, rlo, rhi)
            hit = cache.get(token)
            if hit is not None:
                return hit
        rmid = self._derive_split(dlo, dhi, rlo, rhi, lo, hi)
        if cache is not None:
            cache.put(token, rmid)
        return rmid

    def _derive_split(
        self, dlo: int, dhi: int, rlo: int, rhi: int, lo: int, hi: int
    ) -> int:
        """The HMAC derivation of a node split (the uncached ground truth)."""
        stream = self._node_stream(b"node", (dlo, dhi, rlo, rhi))
        if self.params.split == "uniform":
            return stream.randint(lo, hi)
        # Hypergeometric: of the (rhi-rlo+1) range values, the left domain
        # half receives `left_extra` of the slack positions according to the
        # random-OPF law.
        left_need = (dlo + dhi) // 2 - dlo + 1
        total = rhi - rlo + 1
        draws = left_need  # domain points on the left
        domain = (dhi - dlo + 1)
        u = stream.getrandbits(53) / float(1 << 53)
        # Sample how many range values go left: law of the draws-th order
        # statistic; the classic Boldyreva recursion samples
        # x ~ HG(range+domain-ish). We sample the count of range slots on the
        # left as `left_need + HG(slack split proportional to domain split)`.
        slack = total - domain
        left_slack = _hypergeometric_ppf(u, slack + domain, slack, left_need)
        return min(hi, max(lo, rlo + left_need - 1 + left_slack))

    def _leaf_value(self, m: int, rlo: int, rhi: int) -> int:
        if rlo == rhi:
            return rlo
        cache = self._cache
        if cache is not None:
            token = (self._cache_ns, 1, m, 0, rlo, rhi)
            hit = cache.get(token)
            if hit is not None:
                return hit
        stream = self._node_stream(b"leaf", (m, m, rlo, rhi))
        value = stream.randint(rlo, rhi)
        if cache is not None:
            cache.put(token, value)
        return value

    # -- public API --------------------------------------------------------------

    def encrypt(self, m: int) -> int:
        """Encrypt ``m``; strictly monotone in ``m`` for a fixed key."""
        p = self.params
        if not 0 <= m < p.domain_size:
            raise ParameterError(
                f"plaintext {m} outside [0, 2^{p.plaintext_bits})"
            )
        with span("ope.encrypt", bits=p.plaintext_bits):
            dlo, dhi = 0, p.domain_size - 1
            rlo, rhi = 0, p.range_size - 1
            while dlo < dhi:
                count_op("ope_level")
                dmid = (dlo + dhi) // 2
                rmid = self._split_point(dlo, dhi, rlo, rhi)
                if m <= dmid:
                    dhi, rhi = dmid, rmid
                else:
                    dlo, rlo = dmid + 1, rmid + 1
            return self._leaf_value(dlo, rlo, rhi)

    def decrypt(self, c: int) -> int:
        """Invert :meth:`encrypt`; raises on values not in the image."""
        p = self.params
        if not 0 <= c < p.range_size:
            raise CiphertextError(
                f"ciphertext {c} outside [0, 2^{p.ciphertext_bits})"
            )
        with span("ope.decrypt", bits=p.plaintext_bits):
            dlo, dhi = 0, p.domain_size - 1
            rlo, rhi = 0, p.range_size - 1
            while dlo < dhi:
                count_op("ope_level")
                dmid = (dlo + dhi) // 2
                rmid = self._split_point(dlo, dhi, rlo, rhi)
                if c <= rmid:
                    dhi, rhi = dmid, rmid
                else:
                    dlo, rlo = dmid + 1, rmid + 1
            if self._leaf_value(dlo, rlo, rhi) != c:
                raise CiphertextError(f"{c} is not a valid ciphertext")
            return dlo


class AdaptiveOPE(OPE):
    """OPE whose range width adapts to the measured attribute entropy.

    The paper's future work proposes an OPE "able to choose the length of
    keys adaptively based on the entropy of social attributes".  This variant
    picks the ciphertext expansion so the *range* provides at least
    ``security_margin`` bits of slack beyond the measured entropy of the
    plaintext distribution, instead of a fixed expansion: low-entropy
    attributes get proportionally more range slack (more hiding of gaps),
    high-entropy attributes get less (smaller ciphertexts).
    """

    @classmethod
    def for_entropy(
        cls,
        key: bytes,
        plaintext_bits: int,
        measured_entropy: float,
        security_margin: int = 16,
        split: str = "uniform",
        cache: Optional[OpeNodeCache] = None,
    ) -> "AdaptiveOPE":
        """Build an OPE whose range adapts to the measured entropy."""
        if measured_entropy < 0:
            raise ParameterError("entropy must be non-negative")
        if measured_entropy > plaintext_bits:
            raise ParameterError("entropy cannot exceed the plaintext size")
        deficit = plaintext_bits - measured_entropy
        expansion = security_margin + math.ceil(deficit / 2)
        params = OpeParams(
            plaintext_bits=plaintext_bits,
            expansion_bits=expansion,
            split=split,
        )
        return cls(key, params, cache=cache)
