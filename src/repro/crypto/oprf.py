"""RSA-OPRF: the oblivious pseudo-random function of paper Section III.

The protocol, exactly as the paper describes it:

* Key generation produces RSA parameters ``((N, e), (N, d))``; the random
  number generator (the OPRF server) holds ``d`` and publishes ``(N, e)``.
* The user hashes the input ``m`` and blinds it: ``x = h(m) * s^e mod N``
  for a random ``s``.
* The server returns ``y = x^d mod N``.
* The user unblinds and outputs ``r = h'(y * s^{-1} mod N)``.

Because ``x`` is uniformly random given ``s``, the server learns nothing
about ``m`` or ``r`` (blindness); because producing ``h(m)^d`` requires the
server's key, an attacker who steals a user's fuzzy vector cannot brute-force
profile keys offline (the property S-MATCH key generation relies on).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.crypto.kdf import hash_to_range, sha256
from repro.crypto.rsa import RSAKeyPair, RSAPublicKey
from repro.errors import CryptoError, ParameterError
from repro.ntheory.modular import modexp, modinv, modinv_batch
from repro.obs.trace import span
from repro.utils.ct import constant_time_eq
from repro.utils.rand import SystemRandomSource

__all__ = ["RsaOprfServer", "RsaOprfClient", "BlindingState"]


@dataclass(frozen=True)
class BlindingState:
    """Client-side state held between blind and finalize."""

    blinded: int
    unblinder: int  # s^{-1} mod N


class RsaOprfServer:
    """The random-number-generator side: evaluates blinded inputs."""

    def __init__(
        self,
        keypair: Optional[RSAKeyPair] = None,
        bits: int = 1024,
        rng: Optional[SystemRandomSource] = None,
    ) -> None:
        self._keypair = keypair or RSAKeyPair.generate(bits=bits, rng=rng)

    @property
    def public_key(self) -> RSAPublicKey:
        """The key service's RSA public parameters."""
        return self._keypair.public

    def evaluate_blinded(self, x: int) -> int:
        """``y = x^d mod N``; sees only the blinded value."""
        if not 0 <= x < self._keypair.public.n:
            raise ParameterError("blinded value out of range")
        with span("oprf.evaluate", bits=self._keypair.public.modulus_bits):
            return self._keypair.raw_decrypt(x)

    def unblinded_evaluate(self, message: bytes) -> bytes:
        """Direct evaluation ``F(sk, m)``; reference for correctness tests."""
        n = self._keypair.public.n
        hm = hash_to_range(b"oprf-input" + message, n)
        y = self._keypair.raw_decrypt(hm)
        width = (n.bit_length() + 7) // 8
        return sha256(b"oprf-output", y.to_bytes(width, "big"))


class RsaOprfClient:
    """The user side: blind, send, unblind, hash."""

    def __init__(
        self,
        public_key: RSAPublicKey,
        rng: Optional[SystemRandomSource] = None,
    ) -> None:
        self.public_key = public_key
        self._rng = rng or SystemRandomSource()

    def blind(self, message: bytes) -> BlindingState:
        """``x = h(m) * s^e mod N`` for fresh random ``s``."""
        with span("oprf.blind"):
            n = self.public_key.n
            hm = hash_to_range(b"oprf-input" + message, n)
            while True:
                s = self._rng.randrange(2, n - 1)
                if math.gcd(s, n) == 1:
                    break
            blinded = hm * modexp(s, self.public_key.e, n) % n
            return BlindingState(blinded=blinded, unblinder=modinv(s, n))

    def blind_batch(self, messages: Sequence[bytes]) -> List[BlindingState]:
        """Blind a whole batch, amortizing the unblinder inversions.

        Produces exactly the states ``[blind(m) for m in messages]`` would —
        the blinding factors are drawn in the same order, so a seeded client
        is batch-size-invariant — but computes every ``s^{-1}`` with one
        Montgomery batch inversion (:func:`~repro.ntheory.modular.
        modinv_batch`): a single extended GCD plus three multiplications per
        message, instead of one extended GCD each.
        """
        with span("oprf.blind_batch", count=len(messages)):
            n = self.public_key.n
            factors: List[int] = []
            hashed: List[int] = []
            for message in messages:
                hashed.append(hash_to_range(b"oprf-input" + message, n))
                while True:
                    s = self._rng.randrange(2, n - 1)
                    if math.gcd(s, n) == 1:
                        break
                factors.append(s)
            unblinders = modinv_batch(factors, n)
            e = self.public_key.e
            return [
                BlindingState(
                    blinded=hm * modexp(s, e, n) % n, unblinder=unblinder
                )
                for hm, s, unblinder in zip(hashed, factors, unblinders)
            ]

    def finalize(self, state: BlindingState, response: int) -> bytes:
        """``r = h'(y * s^{-1} mod N)``, with a consistency check.

        The check ``r^e == h(m)... `` cannot be done here without the
        original message, so we verify the weaker algebraic relation
        ``response^e == blinded (mod N)`` — this catches a misbehaving or
        corrupted OPRF server before the result is used as key material.
        """
        with span("oprf.finalize"):
            n = self.public_key.n
            if not 0 <= response < n:
                raise ParameterError("OPRF response out of range")
            if not constant_time_eq(
                modexp(response, self.public_key.e, n), state.blinded % n
            ):
                raise CryptoError("OPRF server response failed verification")
            unblinded = response * state.unblinder % n
            width = (n.bit_length() + 7) // 8
            return sha256(b"oprf-output", unblinded.to_bytes(width, "big"))

    def evaluate(self, message: bytes, server: RsaOprfServer) -> bytes:
        """Run the full one-round protocol against an in-process server."""
        state = self.blind(message)
        response = server.evaluate_blinded(state.blinded)
        return self.finalize(state, response)


def run_oprf(
    message: bytes,
    server: RsaOprfServer,
    rng: Optional[SystemRandomSource] = None,
) -> Tuple[bytes, BlindingState]:
    """Convenience: run the protocol and return (output, blinding state)."""
    client = RsaOprfClient(server.public_key, rng=rng)
    state = client.blind(message)
    response = server.evaluate_blinded(state.blinded)
    return client.finalize(state, response), state
