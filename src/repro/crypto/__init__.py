"""Cryptographic substrate, implemented from scratch.

Everything S-MATCH and its homomorphic baseline need: AES (with CTR mode and
encrypt-then-MAC), SHA-2-based KDF/PRF helpers, RSA and the RSA-OPRF blind
evaluation protocol, the Paillier cryptosystem, order-preserving encryption,
and distance-preserving encryption.
"""

from repro.crypto.aes import AES
from repro.crypto.modes import AeadCiphertext, EtMCipher, ctr_keystream
from repro.crypto.kdf import hkdf, hash_to_int, prf, sha256
from repro.crypto.rsa import RSAKeyPair, RSAPublicKey
from repro.crypto.oprf import RsaOprfClient, RsaOprfServer
from repro.crypto.paillier import PaillierKeyPair, PaillierPublicKey
from repro.crypto.ope import OPE, AdaptiveOPE, OpeParams
from repro.crypto.dpe import DPE

__all__ = [
    "AES",
    "AeadCiphertext",
    "EtMCipher",
    "ctr_keystream",
    "hkdf",
    "hash_to_int",
    "prf",
    "sha256",
    "RSAKeyPair",
    "RSAPublicKey",
    "RsaOprfClient",
    "RsaOprfServer",
    "PaillierKeyPair",
    "PaillierPublicKey",
    "OPE",
    "AdaptiveOPE",
    "OpeParams",
    "DPE",
]
