"""AES block cipher (FIPS-197), pure Python.

Supports 128/192/256-bit keys.  The verification protocol uses AES-256 in CTR
mode (paper Section VIII: "AES in CTR mode with random IV was utilized"), and
the secure channel uses AES-CTR inside encrypt-then-MAC.

The implementation is the classic table-free byte-oriented one: S-box lookups
plus xtime for MixColumns.  It is deliberately straightforward — correctness
(checked against the FIPS-197 known-answer vectors in the tests) matters more
here than raw speed, and the cost experiments only rely on the *relative*
cost of symmetric vs. homomorphic primitives, which pure Python preserves.
"""

from __future__ import annotations

from typing import List

from repro.errors import KeyError_, ParameterError
from repro.obs.instrument import count_op
from repro.obs.trace import span

__all__ = ["AES"]


def _build_sbox() -> bytes:
    """Construct the AES S-box from the field inverse + affine map."""
    # multiplicative inverse table in GF(2^8) via log/antilog with generator 3
    exp = [0] * 510
    log = [0] * 256
    x = 1
    for i in range(255):
        exp[i] = x
        log[x] = i
        # multiply by 3 = x * 2 ^ x
        x ^= (x << 1) ^ (0x11B if x & 0x80 else 0)
        x &= 0xFF
    for i in range(255, 510):
        exp[i] = exp[i - 255]

    sbox = bytearray(256)
    for value in range(256):
        inv = 0 if value == 0 else exp[255 - log[value]]
        b = inv
        res = 0
        for _ in range(5):
            res ^= b
            b = ((b << 1) | (b >> 7)) & 0xFF
        sbox[value] = res ^ 0x63
    return bytes(sbox)


def _invert_sbox(sbox: bytes) -> bytes:
    inverse = bytearray(256)
    for index, value in enumerate(sbox):
        inverse[value] = index
    return bytes(inverse)


_SBOX = _build_sbox()
_INV_SBOX = _invert_sbox(_SBOX)

_RCON = [0x01, 0x02, 0x04, 0x08, 0x10, 0x20, 0x40, 0x80, 0x1B, 0x36, 0x6C, 0xD8, 0xAB, 0x4D]


def _xtime(b: int) -> int:
    b <<= 1
    if b & 0x100:
        b ^= 0x11B
    return b & 0xFF


def _gmul(a: int, b: int) -> int:
    """GF(2^8) multiply (used by InvMixColumns)."""
    res = 0
    while b:
        if b & 1:
            res ^= a
        a = _xtime(a)
        b >>= 1
    return res


class AES:
    """The AES block cipher with a fixed expanded key.

    Use :meth:`encrypt_block` / :meth:`decrypt_block` on 16-byte blocks; for
    bulk data use the modes in :mod:`repro.crypto.modes`.
    """

    BLOCK_SIZE = 16

    def __init__(self, key: bytes) -> None:
        if len(key) not in (16, 24, 32):
            raise KeyError_(
                f"AES key must be 16/24/32 bytes, got {len(key)}"
            )
        self.key_size = len(key)
        self.rounds = {16: 10, 24: 12, 32: 14}[len(key)]
        with span("aes.key_schedule", key_bits=8 * len(key)):
            count_op("aes_key_schedule")
            self._round_keys = self._expand_key(key)

    def _expand_key(self, key: bytes) -> List[List[int]]:
        nk = len(key) // 4
        nr = self.rounds
        words = [list(key[4 * i : 4 * i + 4]) for i in range(nk)]
        for i in range(nk, 4 * (nr + 1)):
            temp = list(words[i - 1])
            if i % nk == 0:
                temp = temp[1:] + temp[:1]  # RotWord
                temp = [_SBOX[b] for b in temp]  # SubWord
                temp[0] ^= _RCON[i // nk - 1]
            elif nk > 6 and i % nk == 4:
                temp = [_SBOX[b] for b in temp]
            words.append([a ^ b for a, b in zip(words[i - nk], temp)])
        # group into 16-byte round keys
        return [
            [b for w in words[4 * r : 4 * r + 4] for b in w]
            for r in range(nr + 1)
        ]

    # -- round transforms (state is a flat 16-byte column-major list) --------

    @staticmethod
    def _sub_bytes(state: List[int]) -> None:
        for i in range(16):
            state[i] = _SBOX[state[i]]

    @staticmethod
    def _inv_sub_bytes(state: List[int]) -> None:
        for i in range(16):
            state[i] = _INV_SBOX[state[i]]

    @staticmethod
    def _shift_rows(state: List[int]) -> List[int]:
        # state[c*4 + r]; row r rotated left by r
        return [
            state[(0) * 4 + 0], state[(1) * 4 + 1], state[(2) * 4 + 2], state[(3) * 4 + 3],
            state[(1) * 4 + 0], state[(2) * 4 + 1], state[(3) * 4 + 2], state[(0) * 4 + 3],
            state[(2) * 4 + 0], state[(3) * 4 + 1], state[(0) * 4 + 2], state[(1) * 4 + 3],
            state[(3) * 4 + 0], state[(0) * 4 + 1], state[(1) * 4 + 2], state[(2) * 4 + 3],
        ]

    @staticmethod
    def _inv_shift_rows(state: List[int]) -> List[int]:
        return [
            state[(0) * 4 + 0], state[(3) * 4 + 1], state[(2) * 4 + 2], state[(1) * 4 + 3],
            state[(1) * 4 + 0], state[(0) * 4 + 1], state[(3) * 4 + 2], state[(2) * 4 + 3],
            state[(2) * 4 + 0], state[(1) * 4 + 1], state[(0) * 4 + 2], state[(3) * 4 + 3],
            state[(3) * 4 + 0], state[(2) * 4 + 1], state[(1) * 4 + 2], state[(0) * 4 + 3],
        ]

    @staticmethod
    def _mix_columns(state: List[int]) -> None:
        for c in range(4):
            a0, a1, a2, a3 = state[4 * c : 4 * c + 4]
            state[4 * c + 0] = _xtime(a0) ^ (_xtime(a1) ^ a1) ^ a2 ^ a3
            state[4 * c + 1] = a0 ^ _xtime(a1) ^ (_xtime(a2) ^ a2) ^ a3
            state[4 * c + 2] = a0 ^ a1 ^ _xtime(a2) ^ (_xtime(a3) ^ a3)
            state[4 * c + 3] = (_xtime(a0) ^ a0) ^ a1 ^ a2 ^ _xtime(a3)

    @staticmethod
    def _inv_mix_columns(state: List[int]) -> None:
        for c in range(4):
            a0, a1, a2, a3 = state[4 * c : 4 * c + 4]
            state[4 * c + 0] = _gmul(a0, 14) ^ _gmul(a1, 11) ^ _gmul(a2, 13) ^ _gmul(a3, 9)
            state[4 * c + 1] = _gmul(a0, 9) ^ _gmul(a1, 14) ^ _gmul(a2, 11) ^ _gmul(a3, 13)
            state[4 * c + 2] = _gmul(a0, 13) ^ _gmul(a1, 9) ^ _gmul(a2, 14) ^ _gmul(a3, 11)
            state[4 * c + 3] = _gmul(a0, 11) ^ _gmul(a1, 13) ^ _gmul(a2, 9) ^ _gmul(a3, 14)

    @staticmethod
    def _add_round_key(state: List[int], rk: List[int]) -> None:
        for i in range(16):
            state[i] ^= rk[i]

    # -- public block API --------------------------------------------------------

    def encrypt_block(self, block: bytes) -> bytes:
        """Encrypt one 16-byte block."""
        if len(block) != self.BLOCK_SIZE:
            raise ParameterError("AES block must be 16 bytes")
        count_op("aes_block")
        state = list(block)
        self._add_round_key(state, self._round_keys[0])
        for rnd in range(1, self.rounds):
            self._sub_bytes(state)
            state = self._shift_rows(state)
            self._mix_columns(state)
            self._add_round_key(state, self._round_keys[rnd])
        self._sub_bytes(state)
        state = self._shift_rows(state)
        self._add_round_key(state, self._round_keys[self.rounds])
        return bytes(state)

    def decrypt_block(self, block: bytes) -> bytes:
        """Decrypt one 16-byte block."""
        if len(block) != self.BLOCK_SIZE:
            raise ParameterError("AES block must be 16 bytes")
        count_op("aes_block")
        state = list(block)
        self._add_round_key(state, self._round_keys[self.rounds])
        for rnd in range(self.rounds - 1, 0, -1):
            state = self._inv_shift_rows(state)
            self._inv_sub_bytes(state)
            self._add_round_key(state, self._round_keys[rnd])
            self._inv_mix_columns(state)
        state = self._inv_shift_rows(state)
        self._inv_sub_bytes(state)
        self._add_round_key(state, self._round_keys[0])
        return bytes(state)
