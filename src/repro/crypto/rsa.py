"""Textbook RSA key generation and raw operations.

RSA here is *only* the substrate of the RSA-OPRF protocol
(:mod:`repro.crypto.oprf`), where blinding provides the semantic protection;
no padding scheme is needed (and none is provided, to make the narrow purpose
explicit).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.errors import CiphertextError, ParameterError
from repro.ntheory.modular import modexp, modinv
from repro.ntheory.primes import generate_prime
from repro.obs.trace import span
from repro.utils.ct import constant_time_eq
from repro.utils.rand import SystemRandomSource

__all__ = ["RSAPublicKey", "RSAKeyPair"]


@dataclass(frozen=True)
class RSAPublicKey:
    """An RSA public key ``(N, e)``."""

    n: int
    e: int

    def __post_init__(self) -> None:
        if self.n < 15 or self.n % 2 == 0:
            raise ParameterError("invalid RSA modulus")
        if self.e < 3 or self.e % 2 == 0:
            raise ParameterError("invalid RSA public exponent")

    def raw_encrypt(self, m: int) -> int:
        """``m^e mod N`` — raw, unpadded."""
        if not 0 <= m < self.n:
            raise CiphertextError("plaintext out of range")
        return modexp(m, self.e, self.n)

    @property
    def modulus_bits(self) -> int:
        """Modulus size in bits."""
        return self.n.bit_length()


@dataclass(frozen=True)
class RSAKeyPair:
    """An RSA key pair; carries CRT parameters for fast private ops.

    The CRT constants ``dp = d mod (p-1)``, ``dq = d mod (q-1)`` and
    ``qinv = q^-1 mod p`` are precomputed once at construction — the
    ``modinv`` in particular is pure per-call waste on the OPRF hot path,
    where one key pair serves every blinded evaluation.
    """

    public: RSAPublicKey
    d: int
    p: int
    q: int
    dp: int = 0
    dq: int = 0
    qinv: int = 0

    def __post_init__(self) -> None:
        # derived, never trusted from the caller: recompute unconditionally
        object.__setattr__(self, "dp", self.d % (self.p - 1))
        object.__setattr__(self, "dq", self.d % (self.q - 1))
        object.__setattr__(self, "qinv", modinv(self.q, self.p))

    @classmethod
    def generate(
        cls,
        bits: int = 1024,
        e: int = 65537,
        rng: Optional[SystemRandomSource] = None,
    ) -> "RSAKeyPair":
        """Generate a ``bits``-bit modulus with public exponent ``e``."""
        if bits < 64:
            raise ParameterError(f"RSA modulus too small: {bits} bits")
        rng = rng or SystemRandomSource()
        with span("rsa.generate", bits=bits):
            return cls._generate(bits, e, rng)

    @classmethod
    def _generate(
        cls, bits: int, e: int, rng: SystemRandomSource
    ) -> "RSAKeyPair":
        while True:
            p = generate_prime(bits // 2, rng)
            q = generate_prime(bits - bits // 2, rng)
            if constant_time_eq(p, q):
                continue
            phi = (p - 1) * (q - 1)
            try:
                d = modinv(e, phi)
            except ParameterError:
                continue  # e not coprime with phi; resample primes
            n = p * q
            if n.bit_length() != bits:
                continue
            return cls(public=RSAPublicKey(n=n, e=e), d=d, p=p, q=q)

    @classmethod
    def from_primes(
        cls, p: int, q: int, e: int = 65537
    ) -> "RSAKeyPair":
        """Build a key pair from two known primes (fixture/bench support)."""
        if constant_time_eq(p, q):
            raise ParameterError("RSA primes must differ")
        d = modinv(e, (p - 1) * (q - 1))
        return cls(public=RSAPublicKey(n=p * q, e=e), d=d, p=p, q=q)

    def raw_decrypt(self, c: int) -> int:
        """``c^d mod N`` using the CRT speedup."""
        if not 0 <= c < self.public.n:
            raise CiphertextError("ciphertext out of range")
        with span("rsa.raw_decrypt", bits=self.public.modulus_bits):
            mp = modexp(c % self.p, self.dp, self.p)
            mq = modexp(c % self.q, self.dq, self.q)
            h = (mp - mq) * self.qinv % self.p
            return mq + h * self.q

    def sign_raw(self, m: int) -> int:
        """Raw private-key operation (same as raw decryption)."""
        return self.raw_decrypt(m)
