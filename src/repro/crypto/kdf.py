"""Hashing, key derivation, and PRF helpers.

SHA-256 itself comes from :mod:`hashlib` (part of the Python standard
library, not a third-party dependency); this module builds the constructions
the scheme needs on top of it: HKDF (RFC 5869), a keyed PRF, and
hash-to-integer/range helpers used by the OPRF and the verification protocol.
Hash invocations are instrumented so the cost experiments can check the
paper's "d + 2 hash operations" accounting.
"""

from __future__ import annotations

import hashlib
import hmac

from repro.errors import ParameterError
from repro.utils.instrument import count_op

__all__ = ["sha256", "hkdf", "prf", "hash_to_int", "hash_to_range"]


def sha256(*parts: bytes) -> bytes:
    """SHA-256 over the concatenation of ``parts`` (instrumented)."""
    count_op("hash")
    h = hashlib.sha256()
    for part in parts:
        h.update(part)
    return h.digest()


def hkdf(
    key_material: bytes,
    info: bytes = b"",
    salt: bytes = b"",
    length: int = 32,
) -> bytes:
    """HKDF-SHA256 extract-and-expand (RFC 5869)."""
    if length < 1 or length > 255 * 32:
        raise ParameterError(f"invalid HKDF output length {length}")
    count_op("hash")
    prk = hmac.new(salt or b"\x00" * 32, key_material, hashlib.sha256).digest()
    okm = b""
    block = b""
    counter = 1
    while len(okm) < length:
        block = hmac.new(
            prk, block + info + bytes([counter]), hashlib.sha256
        ).digest()
        okm += block
        counter += 1
    return okm[:length]


def prf(key: bytes, *parts: bytes) -> bytes:
    """HMAC-SHA256 as a PRF (instrumented as a hash operation)."""
    count_op("hash")
    mac = hmac.new(key, digestmod=hashlib.sha256)
    for part in parts:
        mac.update(part)
    return mac.digest()


def hash_to_int(data: bytes, bits: int = 256) -> int:
    """Hash ``data`` to an integer with at most ``bits`` bits.

    For more than 256 bits, output blocks are chained with a counter
    (SHA-256 in counter mode) before truncation.
    """
    if bits < 1:
        raise ParameterError("bits must be positive")
    nblocks = (bits + 255) // 256
    digest = b"".join(
        sha256(i.to_bytes(4, "big"), data) for i in range(nblocks)
    )
    return int.from_bytes(digest, "big") >> (nblocks * 256 - bits)


def hash_to_range(data: bytes, modulus: int) -> int:
    """Hash ``data`` to ``[0, modulus)`` with negligible bias.

    Uses 128 extra bits before reduction so the modular bias is < 2^-128.
    """
    if modulus < 1:
        raise ParameterError("modulus must be positive")
    bits = modulus.bit_length() + 128
    return hash_to_int(data, bits) % modulus
