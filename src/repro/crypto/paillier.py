"""The Paillier cryptosystem (additively homomorphic).

This is the substrate of the homoPM baseline (Zhang et al., INFOCOM 2012),
which the paper benchmarks S-MATCH against.  We implement the standard
scheme with ``g = n + 1`` (so encryption is one modexp for the randomizer
plus cheap multiplication) and CRT-accelerated decryption.

Homomorphic operations:

* ``add`` — ciphertext multiplication encrypts the plaintext sum,
* ``add_plain`` — multiply by ``g^k`` to add a constant,
* ``mul_plain`` — ciphertext exponentiation encrypts a plaintext-scalar
  product (the "modular multiplication on the ciphertexts" the paper's
  server-side homoPM cost comes from).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

from repro.errors import CiphertextError, ParameterError
from repro.ntheory.modular import lcm, modexp, modinv
from repro.ntheory.primes import generate_prime
from repro.utils.instrument import count_op
from repro.utils.rand import SystemRandomSource

__all__ = ["PaillierPublicKey", "PaillierKeyPair", "PaillierCiphertext"]


@dataclass(frozen=True)
class PaillierCiphertext:
    """A Paillier ciphertext bound to its public key."""

    value: int
    public_key: "PaillierPublicKey"

    def __mul__(self, other: "PaillierCiphertext") -> "PaillierCiphertext":
        return self.public_key.add(self, other)

    @property
    def wire_bits(self) -> int:
        """Size on the wire: an element of Z_{n^2}."""
        return 2 * self.public_key.n.bit_length()


@dataclass(frozen=True)
class PaillierPublicKey:
    """Public key ``n`` (with ``g = n + 1``)."""

    n: int

    def __post_init__(self) -> None:
        if self.n < 15 or self.n % 2 == 0:
            raise ParameterError("invalid Paillier modulus")

    @property
    def n_squared(self) -> int:
        """The ciphertext modulus n^2."""
        return self.n * self.n

    @property
    def g(self) -> int:
        """The Paillier generator (n + 1)."""
        return self.n + 1

    def _check_plaintext(self, m: int) -> int:
        m %= self.n
        return m

    def encrypt(
        self, m: int, rng: Optional[SystemRandomSource] = None
    ) -> PaillierCiphertext:
        """``c = g^m * r^n mod n^2`` with fresh randomness ``r``."""
        rng = rng or SystemRandomSource()
        m = self._check_plaintext(m)
        n, n2 = self.n, self.n_squared
        while True:
            r = rng.randrange(1, n)
            if math.gcd(r, n) == 1:
                break
        # g^m = (1 + n)^m = 1 + m*n mod n^2 — one multiplication, no modexp
        gm = (1 + m * n) % n2
        c = gm * modexp(r, n, n2) % n2
        count_op("paillier_encrypt")
        return PaillierCiphertext(value=c, public_key=self)

    def _check_cipher(self, c: PaillierCiphertext) -> int:
        if c.public_key != self:
            raise CiphertextError("ciphertext from a different key")
        if not 0 < c.value < self.n_squared:
            raise CiphertextError("ciphertext out of range")
        return c.value

    def add(
        self, a: PaillierCiphertext, b: PaillierCiphertext
    ) -> PaillierCiphertext:
        """Homomorphic addition: Enc(m1) * Enc(m2) = Enc(m1 + m2)."""
        count_op("paillier_mulmod")
        value = self._check_cipher(a) * self._check_cipher(b) % self.n_squared
        return PaillierCiphertext(value=value, public_key=self)

    def add_plain(self, a: PaillierCiphertext, k: int) -> PaillierCiphertext:
        """Enc(m) -> Enc(m + k) for a public constant ``k``."""
        count_op("paillier_mulmod")
        k = self._check_plaintext(k)
        gk = (1 + k * self.n) % self.n_squared
        value = self._check_cipher(a) * gk % self.n_squared
        return PaillierCiphertext(value=value, public_key=self)

    def mul_plain(self, a: PaillierCiphertext, k: int) -> PaillierCiphertext:
        """Enc(m) -> Enc(m * k) via ciphertext exponentiation."""
        value = modexp(self._check_cipher(a), self._check_plaintext(k), self.n_squared)
        return PaillierCiphertext(value=value, public_key=self)

    def rerandomize(
        self, a: PaillierCiphertext, rng: Optional[SystemRandomSource] = None
    ) -> PaillierCiphertext:
        """Refresh the randomizer without changing the plaintext."""
        rng = rng or SystemRandomSource()
        n, n2 = self.n, self.n_squared
        while True:
            r = rng.randrange(1, n)
            if math.gcd(r, n) == 1:
                break
        value = self._check_cipher(a) * modexp(r, n, n2) % n2
        return PaillierCiphertext(value=value, public_key=self)


@dataclass(frozen=True)
class PaillierKeyPair:
    """Key pair with the standard ``lambda/mu`` decryption parameters."""

    public: PaillierPublicKey
    lam: int
    mu: int

    @classmethod
    def generate(
        cls, bits: int = 1024, rng: Optional[SystemRandomSource] = None
    ) -> "PaillierKeyPair":
        """Generate a key with a ``bits``-bit modulus ``n = p * q``."""
        if bits < 64:
            raise ParameterError(f"Paillier modulus too small: {bits} bits")
        rng = rng or SystemRandomSource()
        while True:
            p = generate_prime(bits // 2, rng)
            q = generate_prime(bits - bits // 2, rng)
            if p == q:
                continue
            n = p * q
            if n.bit_length() != bits or math.gcd(n, (p - 1) * (q - 1)) != 1:
                continue
            lam = lcm(p - 1, q - 1)
            # mu = (L(g^lam mod n^2))^-1 mod n, where L(x) = (x-1)/n
            glam = modexp(n + 1, lam, n * n)
            l_value = (glam - 1) // n
            mu = modinv(l_value, n)
            return cls(public=PaillierPublicKey(n=n), lam=lam, mu=mu)

    @classmethod
    def from_primes(cls, p: int, q: int) -> "PaillierKeyPair":
        """Build a key pair from two known primes (fixture/bench support)."""
        if p == q:
            raise ParameterError("Paillier primes must differ")
        n = p * q
        if math.gcd(n, (p - 1) * (q - 1)) != 1:
            raise ParameterError("invalid prime pair for Paillier")
        lam = lcm(p - 1, q - 1)
        glam = modexp(n + 1, lam, n * n)
        mu = modinv((glam - 1) // n, n)
        return cls(public=PaillierPublicKey(n=n), lam=lam, mu=mu)

    def decrypt(self, c: PaillierCiphertext) -> int:
        """Recover the plaintext in ``[0, n)``."""
        pk = self.public
        value = pk._check_cipher(c)
        count_op("paillier_decrypt")
        x = modexp(value, self.lam, pk.n_squared)
        l_value = (x - 1) // pk.n
        return l_value * self.mu % pk.n

    def decrypt_signed(self, c: PaillierCiphertext) -> int:
        """Decrypt, mapping the upper half of Z_n to negative integers."""
        m = self.decrypt(c)
        if m > self.public.n // 2:
            m -= self.public.n
        return m
