"""Block-cipher modes: CTR keystream and encrypt-then-MAC AEAD.

The paper's implementation section specifies "AES in CTR mode with random IV"
for the verification ciphertexts and packages "sent with the mode
Encrypt-then-MAC" over the SSL channel.  :class:`EtMCipher` composes AES-CTR
with HMAC-SHA256 in the standard EtM arrangement (separate encryption and MAC
keys derived from one master key).
"""

from __future__ import annotations

import hashlib
import hmac
from dataclasses import dataclass

from repro.crypto.aes import AES
from repro.crypto.kdf import hkdf
from repro.errors import IntegrityError, ParameterError
from repro.utils.bits import xor_bytes
from repro.utils.ct import constant_time_eq
from repro.utils.rand import SystemRandomSource

__all__ = ["ctr_keystream", "ctr_xcrypt", "AeadCiphertext", "EtMCipher"]


def ctr_keystream(cipher: AES, nonce: bytes, length: int) -> bytes:
    """Generate ``length`` keystream bytes for a 16-byte initial counter."""
    if len(nonce) != AES.BLOCK_SIZE:
        raise ParameterError("CTR nonce must be a full 16-byte block")
    counter = int.from_bytes(nonce, "big")
    blocks = []
    for i in range((length + 15) // 16):
        block = ((counter + i) % (1 << 128)).to_bytes(16, "big")
        blocks.append(cipher.encrypt_block(block))
    return b"".join(blocks)[:length]


def ctr_xcrypt(cipher: AES, nonce: bytes, data: bytes) -> bytes:
    """CTR encryption == decryption: XOR with the keystream."""
    return xor_bytes(data, ctr_keystream(cipher, nonce, len(data)))


@dataclass(frozen=True)
class AeadCiphertext:
    """A sealed message: IV, ciphertext body, and MAC tag."""

    iv: bytes
    body: bytes
    tag: bytes

    def encode(self) -> bytes:
        """Serialize to tagged, length-prefixed wire bytes."""
        return self.iv + self.tag + self.body

    @classmethod
    def decode(cls, raw: bytes) -> "AeadCiphertext":
        """Parse iv || tag || body wire bytes."""
        if len(raw) < 16 + 32:
            raise ParameterError("AEAD ciphertext too short")
        return cls(iv=raw[:16], tag=raw[16:48], body=raw[48:])

    @property
    def wire_size(self) -> int:
        """Total sealed size in bytes (IV + tag + body)."""
        return 16 + 32 + len(self.body)


class EtMCipher:
    """AES-CTR + HMAC-SHA256 in encrypt-then-MAC composition.

    The master key is split into independent encryption and MAC keys with
    HKDF; the MAC covers IV, associated data, and ciphertext body.
    """

    def __init__(self, master_key: bytes, key_size: int = 32) -> None:
        if key_size not in (16, 24, 32):
            raise ParameterError("key_size must be an AES key size")
        enc_key = hkdf(master_key, info=b"etm-enc", length=key_size)
        self._mac_key = hkdf(master_key, info=b"etm-mac", length=32)
        self._aes = AES(enc_key)

    def _tag(self, iv: bytes, aad: bytes, body: bytes) -> bytes:
        mac = hmac.new(self._mac_key, digestmod=hashlib.sha256)
        mac.update(len(aad).to_bytes(8, "big"))
        mac.update(aad)
        mac.update(iv)
        mac.update(body)
        return mac.digest()

    def seal(
        self,
        plaintext: bytes,
        aad: bytes = b"",
        rng: SystemRandomSource | None = None,
    ) -> AeadCiphertext:
        """Encrypt and authenticate ``plaintext`` with a fresh random IV."""
        rng = rng or SystemRandomSource()
        iv = rng.randbytes(16)
        body = ctr_xcrypt(self._aes, iv, plaintext)
        return AeadCiphertext(iv=iv, body=body, tag=self._tag(iv, aad, body))

    def open(self, ciphertext: AeadCiphertext, aad: bytes = b"") -> bytes:
        """Verify the tag then decrypt; raises :class:`IntegrityError`."""
        expected_tag = self._tag(ciphertext.iv, aad, ciphertext.body)
        if not constant_time_eq(expected_tag, ciphertext.tag):
            raise IntegrityError("MAC verification failed")
        return ctr_xcrypt(self._aes, ciphertext.iv, ciphertext.body)
