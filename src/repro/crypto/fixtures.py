"""Cached fixed-parameter key constructors for tests and benchmarks.

Pure-Python prime generation at 4000+ bits takes minutes, so the parameter
sweeps (Fig. 4(c)-(e), Fig. 5(a)-(c)) would spend almost all their time in
one-off key generation — cost the paper's evaluation treats as offline setup.
These helpers return key pairs built from the precomputed primes in
:mod:`repro.crypto.fixed_params` when the requested size is available, and
fall back to fresh generation otherwise.
"""

from __future__ import annotations

from functools import lru_cache

from repro.crypto import fixed_params
from repro.crypto.paillier import PaillierKeyPair
from repro.crypto.rsa import RSAKeyPair
from repro.utils.rand import SystemRandomSource

__all__ = ["fixed_paillier_keypair", "fixed_rsa_keypair"]


@lru_cache(maxsize=None)
def fixed_paillier_keypair(bits: int) -> PaillierKeyPair:
    """A Paillier key pair with a ``bits``-bit modulus (cached)."""
    primes = fixed_params.PAILLIER_PRIMES.get(bits)
    if primes is not None:
        return PaillierKeyPair.from_primes(*primes)
    return PaillierKeyPair.generate(bits=bits, rng=SystemRandomSource(seed=bits))


@lru_cache(maxsize=None)
def fixed_rsa_keypair(bits: int) -> RSAKeyPair:
    """An RSA key pair with a ``bits``-bit modulus (cached)."""
    primes = fixed_params.RSA_PRIMES.get(bits)
    if primes is not None:
        return RSAKeyPair.from_primes(*primes)
    return RSAKeyPair.generate(bits=bits, rng=SystemRandomSource(seed=bits))
