"""Memoization of OPE descent nodes (the hot-path cache of docs/PERFORMANCE.md).

Every OPE operation — client-side ``encrypt`` during enrollment, server-side
``decrypt`` in the naive baseline, ``score_table`` rebuilds in the ablations —
walks the same binary descent over the plaintext domain, and at every node the
pseudorandom split point is a **pure function** of ``(key, dlo, dhi, rlo,
rhi)``.  S-MATCH makes this worth caching twice over:

* a whole similarity cluster shares one profile key, hence one OPE subkey, so
  *every member's* descents traverse the same top levels of the tree;
* a single profile encrypts ``d`` attribute values under that one subkey, so
  even one enrollment revisits the upper nodes ``d`` times.

:class:`OpeNodeCache` is a bounded, thread-safe LRU over node-split and
leaf-draw results.  One cache instance can back any number of :class:`OPE`
instances — including instances under *different* keys: entries are
namespaced by a one-way digest of ``(key, params)``, so results under one key
group can never be served to another, and the cache itself never stores raw
key material.

Correctness contract: a cache hit returns exactly the integer the uncached
HMAC derivation would produce (the value *is* that derivation's output,
stored), so cached and uncached OPE are bit-for-bit identical in both the
``uniform`` and ``hypergeometric`` split modes.  Tests enforce this
property; see ``tests/test_ope_cache.py``.

Metrics (flushed lazily so the per-node hot path never takes the registry
lock): ``smatch_ope_cache_hits_total``, ``smatch_ope_cache_misses_total``,
``smatch_ope_cache_evictions_total``, and the ``smatch_ope_cache_entries``
gauge.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Optional, Tuple

from repro.errors import ParameterError
from repro.obs.metrics import (
    M_OPE_CACHE_ENTRIES,
    M_OPE_CACHE_EVICTIONS,
    M_OPE_CACHE_HITS,
    M_OPE_CACHE_MISSES,
    metric_inc,
    metric_set,
)

__all__ = ["OpeNodeCache", "DEFAULT_CACHE_CAPACITY"]

#: Default number of memoized nodes.  A 64-bit descent touches 64 nodes per
#: ciphertext; 2**16 entries hold the full working set of hundreds of
#: same-cluster enrollments at a few tens of MB.
DEFAULT_CACHE_CAPACITY = 1 << 16

#: Flush accumulated hit/miss/eviction deltas to the metrics registry every
#: this many cache operations (keeps the hot path free of registry locks).
_FLUSH_INTERVAL = 4096

CacheToken = Tuple[bytes, int, int, int, int, int]


class OpeNodeCache:
    """Bounded LRU over OPE node-split and leaf-draw results.

    ``capacity`` bounds the number of stored entries; ``capacity=0`` is a
    legal "always miss" cache (useful to keep one code path in callers).
    All methods are safe to call from multiple enrollment workers at once.
    """

    def __init__(self, capacity: int = DEFAULT_CACHE_CAPACITY) -> None:
        if capacity < 0:
            raise ParameterError("cache capacity must be >= 0")
        self.capacity = capacity
        self._entries: "OrderedDict[CacheToken, int]" = OrderedDict()
        self._lock = threading.Lock()
        # lifetime tallies (ints only; flushed to the metrics registry)
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self._unflushed = 0
        self._flushed_hits = 0
        self._flushed_misses = 0
        self._flushed_evictions = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    # -- hot path ----------------------------------------------------------------

    def get(self, token: CacheToken) -> Optional[int]:
        """The memoized value for ``token``, or ``None`` on a miss."""
        with self._lock:
            value = self._entries.get(token)
            if value is None:
                self.misses += 1
            else:
                self._entries.move_to_end(token)
                self.hits += 1
            self._unflushed += 1
            if self._unflushed >= _FLUSH_INTERVAL:
                self._flush_locked()
        return value

    def put(self, token: CacheToken, value: int) -> None:
        """Memoize ``value`` under ``token``, evicting the LRU entry if full."""
        if self.capacity == 0:
            return
        with self._lock:
            self._entries[token] = value
            self._entries.move_to_end(token)
            if len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self.evictions += 1

    # -- maintenance -------------------------------------------------------------

    def clear(self) -> None:
        """Drop every entry (tallies are kept; they are lifetime counts)."""
        with self._lock:
            self._entries.clear()

    def flush_metrics(self) -> None:
        """Push accumulated tallies into the active metrics registry."""
        with self._lock:
            self._flush_locked()

    def _flush_locked(self) -> None:
        metric_inc(M_OPE_CACHE_HITS, self.hits - self._flushed_hits)
        metric_inc(M_OPE_CACHE_MISSES, self.misses - self._flushed_misses)
        metric_inc(
            M_OPE_CACHE_EVICTIONS,
            self.evictions - self._flushed_evictions,
        )
        metric_set(M_OPE_CACHE_ENTRIES, len(self._entries))
        self._flushed_hits = self.hits
        self._flushed_misses = self.misses
        self._flushed_evictions = self.evictions
        self._unflushed = 0

    def stats(self) -> Tuple[int, int, int]:
        """``(hits, misses, evictions)`` lifetime tallies."""
        with self._lock:
            return self.hits, self.misses, self.evictions
