"""Distance-preserving encryption (DPE).

The second PPE example in paper Section III (Ozsoyoglu et al.): for any three
values ``|m_i - m_j| >= |m_j - m_k|  =>  |c_i - c_j| >= |c_j - c_k|``.

The classical construction is the affine map ``c = a * m + b`` with secret
``a > 0`` and ``b``: it preserves distance *comparisons* exactly (distances
scale by ``a``).  We implement that construction; it is included for
completeness of the PPE framework (Definition 1 with k = 3) and is exercised
by the PPE property tests and the leakage analysis, which shows DPE leaks
strictly more than OPE (relative distances, not just order).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.crypto.kdf import hkdf
from repro.errors import CiphertextError, KeyError_, ParameterError
from repro.utils.ct import constant_time_eq

__all__ = ["DPE", "DpeParams"]


@dataclass(frozen=True)
class DpeParams:
    """Domain size and the bit widths of the secret affine coefficients."""

    plaintext_bits: int
    scale_bits: int = 32
    offset_bits: int = 64

    def __post_init__(self) -> None:
        if self.plaintext_bits < 1:
            raise ParameterError("plaintext_bits must be >= 1")
        if self.scale_bits < 1 or self.offset_bits < 0:
            raise ParameterError("invalid coefficient widths")

    @property
    def domain_size(self) -> int:
        """Number of plaintext values in the domain."""
        return 1 << self.plaintext_bits


class DPE:
    """Affine distance-preserving encryption ``c = a * m + b``."""

    def __init__(self, key: bytes, params: DpeParams) -> None:
        if len(key) < 16:
            raise KeyError_("DPE key must be at least 16 bytes")
        self.params = params
        # Derive a > 0 and b deterministically from the key.
        a_bytes = hkdf(key, info=b"dpe-scale", length=(params.scale_bits + 7) // 8)
        b_bytes = hkdf(key, info=b"dpe-offset", length=(params.offset_bits + 7) // 8 or 1)
        self._a = (int.from_bytes(a_bytes, "big") | 1) % (1 << params.scale_bits)
        if constant_time_eq(self._a, 0):  # defensive; `| 1` keeps a odd
            self._a = 1
        self._b = int.from_bytes(b_bytes, "big") % (1 << max(1, params.offset_bits))

    @property
    def scale(self) -> int:
        """The secret scale factor (exposed for the leakage analysis)."""
        return self._a

    def encrypt(self, m: int) -> int:
        """Encrypt: c = a * m + b."""
        if not 0 <= m < self.params.domain_size:
            raise ParameterError(f"plaintext {m} out of domain")
        return self._a * m + self._b

    def decrypt(self, c: int) -> int:
        """Invert the affine map; rejects off-lattice values."""
        if c < self._b or (c - self._b) % self._a != 0:
            raise CiphertextError(f"{c} is not a valid DPE ciphertext")
        m = (c - self._b) // self._a
        if m >= self.params.domain_size:
            raise CiphertextError(f"{c} decodes outside the domain")
        return m

    @staticmethod
    def test_property(c1: int, c2: int, c3: int) -> bool:
        """The public Test algorithm of Definition 1 for the DPE property.

        Returns ``|c1 - c2| >= |c2 - c3|``, which equals the same comparison
        on the underlying plaintexts.
        """
        return abs(c1 - c2) >= abs(c2 - c3)
