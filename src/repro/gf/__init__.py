"""Galois field substrate: GF(2^m) arithmetic and polynomials over it."""

from repro.gf.field import GF2m, GF1024
from repro.gf.poly import Poly

__all__ = ["GF2m", "GF1024", "Poly"]
