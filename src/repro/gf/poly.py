"""Polynomials over GF(2^m).

Coefficients are stored lowest-degree first (``coeffs[i]`` is the coefficient
of x^i), trailing zeros trimmed, with the zero polynomial represented by an
empty coefficient list.  These are the workhorse of the Reed-Solomon encoder
and the Berlekamp-Massey / Chien / Forney decoder.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence, Tuple

from repro.errors import ParameterError
from repro.gf.field import GF2m

__all__ = ["Poly"]


class Poly:
    """An immutable polynomial over a given GF(2^m)."""

    __slots__ = ("field", "coeffs")

    def __init__(self, field: GF2m, coeffs: Iterable[int]) -> None:
        self.field = field
        trimmed: List[int] = list(coeffs)
        for c in trimmed:
            if not 0 <= c < field.size:
                raise ParameterError(f"coefficient {c} not in GF(2^{field.m})")
        while trimmed and trimmed[-1] == 0:
            trimmed.pop()
        self.coeffs = tuple(trimmed)

    # -- constructors ------------------------------------------------------

    @classmethod
    def zero(cls, field: GF2m) -> "Poly":
        """The zero polynomial over the field."""
        return cls(field, [])

    @classmethod
    def one(cls, field: GF2m) -> "Poly":
        """The constant-one polynomial over the field."""
        return cls(field, [1])

    @classmethod
    def monomial(cls, field: GF2m, degree: int, coeff: int = 1) -> "Poly":
        """The monomial coeff * x^degree."""
        if degree < 0:
            raise ParameterError("degree must be non-negative")
        return cls(field, [0] * degree + [coeff])

    # -- structure ---------------------------------------------------------

    @property
    def degree(self) -> int:
        """Degree; the zero polynomial has degree -1 by convention."""
        return len(self.coeffs) - 1

    def is_zero(self) -> bool:
        """True for the zero polynomial."""
        return not self.coeffs

    def coeff(self, i: int) -> int:
        """Coefficient of x^i (zero beyond the stored degree)."""
        if i < 0:
            raise ParameterError("negative coefficient index")
        return self.coeffs[i] if i < len(self.coeffs) else 0

    def _require_same_field(self, other: "Poly") -> None:
        if self.field != other.field:
            raise ParameterError("polynomials over different fields")

    # -- arithmetic ---------------------------------------------------------

    def __add__(self, other: "Poly") -> "Poly":
        self._require_same_field(other)
        n = max(len(self.coeffs), len(other.coeffs))
        return Poly(
            self.field,
            [self.coeff(i) ^ other.coeff(i) for i in range(n)],
        )

    __sub__ = __add__  # characteristic 2

    def __mul__(self, other: "Poly") -> "Poly":
        self._require_same_field(other)
        if self.is_zero() or other.is_zero():
            return Poly.zero(self.field)
        out = [0] * (len(self.coeffs) + len(other.coeffs) - 1)
        mul = self.field.mul
        for i, a in enumerate(self.coeffs):
            if a == 0:
                continue
            for j, b in enumerate(other.coeffs):
                if b:
                    out[i + j] ^= mul(a, b)
        return Poly(self.field, out)

    def scale(self, k: int) -> "Poly":
        """Multiply every coefficient by the scalar ``k``."""
        mul = self.field.mul
        return Poly(self.field, [mul(c, k) for c in self.coeffs])

    def shift(self, n: int) -> "Poly":
        """Multiply by x^n."""
        if n < 0:
            raise ParameterError("shift must be non-negative")
        if self.is_zero():
            return self
        return Poly(self.field, (0,) * n + self.coeffs)

    def divmod(self, divisor: "Poly") -> Tuple["Poly", "Poly"]:
        """Polynomial division with remainder."""
        self._require_same_field(divisor)
        if divisor.is_zero():
            raise ZeroDivisionError("polynomial division by zero")
        field = self.field
        rem = list(self.coeffs)
        dq = divisor.degree
        lead_inv = field.inv(divisor.coeffs[-1])
        quot = [0] * max(0, len(rem) - dq)
        for i in range(len(rem) - 1, dq - 1, -1):
            c = rem[i]
            if c == 0:
                continue
            factor = field.mul(c, lead_inv)
            quot[i - dq] = factor
            for j, dcoef in enumerate(divisor.coeffs):
                rem[i - dq + j] ^= field.mul(factor, dcoef)
        return Poly(field, quot), Poly(field, rem[:dq])

    def __mod__(self, divisor: "Poly") -> "Poly":
        return self.divmod(divisor)[1]

    def __floordiv__(self, divisor: "Poly") -> "Poly":
        return self.divmod(divisor)[0]

    # -- evaluation ---------------------------------------------------------

    def eval(self, x: int) -> int:
        """Evaluate at ``x`` by Horner's rule."""
        field = self.field
        acc = 0
        for c in reversed(self.coeffs):
            acc = field.mul(acc, x) ^ c
        return acc

    def eval_many(self, xs: Sequence[int]) -> List[int]:
        """Evaluate at several points."""
        return [self.eval(x) for x in xs]

    def derivative(self) -> "Poly":
        """Formal derivative; in characteristic 2, even-power terms vanish."""
        out = [0] * max(0, len(self.coeffs) - 1)
        for i in range(1, len(self.coeffs)):
            if i % 2 == 1:  # i * c = c when i odd, 0 when i even (char 2)
                out[i - 1] = self.coeffs[i]
        return Poly(self.field, out)

    # -- dunder housekeeping --------------------------------------------------

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Poly)
            and other.field == self.field
            and other.coeffs == self.coeffs
        )

    def __hash__(self) -> int:
        return hash((self.field, self.coeffs))

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        if self.is_zero():
            return "Poly(0)"
        terms = [
            f"{c}*x^{i}" if i else str(c)
            for i, c in enumerate(self.coeffs)
            if c
        ]
        return "Poly(" + " + ".join(terms) + ")"
