"""Result post-processing: growth-law fitting and crossover detection."""

from repro.analysis.fit import crossover_point, loglog_slope, scaling_factor

__all__ = ["crossover_point", "loglog_slope", "scaling_factor"]
