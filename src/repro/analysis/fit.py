"""Quantitative checks on measured curves.

The reproduction criteria are statements about curve *shapes*: "homoPM
grows ~cubically with the plaintext size", "PM and homoPM cross near k*",
"cost is linear in N".  These helpers turn such statements into numbers the
benchmarks can assert:

* :func:`loglog_slope` — least-squares slope of log(y) against log(x): the
  growth exponent of a power law (1 = linear, 2 = quadratic, ...);
* :func:`crossover_point` — the x at which one measured series overtakes
  another, log-interpolated between samples;
* :func:`scaling_factor` — the mean ratio between two series (the "who wins
  by what factor" number).
"""

from __future__ import annotations

import math
from typing import Optional, Sequence

from repro.errors import ParameterError

__all__ = ["loglog_slope", "crossover_point", "scaling_factor"]


def _check_series(xs: Sequence[float], ys: Sequence[float]) -> None:
    if len(xs) != len(ys):
        raise ParameterError("series lengths differ")
    if len(xs) < 2:
        raise ParameterError("need at least two points")
    if any(x <= 0 for x in xs) or any(y <= 0 for y in ys):
        raise ParameterError("log-scale fits need positive values")


def loglog_slope(xs: Sequence[float], ys: Sequence[float]) -> float:
    """Least-squares growth exponent of ``y ~ x^slope``."""
    _check_series(xs, ys)
    lx = [math.log(x) for x in xs]
    ly = [math.log(y) for y in ys]
    n = len(lx)
    mean_x = sum(lx) / n
    mean_y = sum(ly) / n
    sxx = sum((x - mean_x) ** 2 for x in lx)
    if sxx == 0:
        raise ParameterError("x values must not be constant")
    sxy = sum((x - mean_x) * (y - mean_y) for x, y in zip(lx, ly))
    return sxy / sxx


def crossover_point(
    xs: Sequence[float],
    ys_a: Sequence[float],
    ys_b: Sequence[float],
) -> Optional[float]:
    """The x where series B overtakes series A (B grows past A).

    Returns the log-interpolated crossing x, or ``None`` when one series
    dominates over the whole range.  With multiple crossings the first is
    returned.
    """
    _check_series(xs, ys_a)
    _check_series(xs, ys_b)
    diffs = [
        math.log(b) - math.log(a) for a, b in zip(ys_a, ys_b)
    ]
    for i in range(1, len(xs)):
        if diffs[i - 1] <= 0 < diffs[i] or diffs[i - 1] < 0 <= diffs[i]:
            # linear interpolation in (log x, diff) space
            lx0, lx1 = math.log(xs[i - 1]), math.log(xs[i])
            d0, d1 = diffs[i - 1], diffs[i]
            t = -d0 / (d1 - d0)
            return math.exp(lx0 + t * (lx1 - lx0))
    if diffs[0] > 0 and all(d > 0 for d in diffs):
        return None  # B always above A
    if diffs[0] < 0 and all(d < 0 for d in diffs):
        return None  # A always above B
    if any(d == 0 for d in diffs):
        idx = diffs.index(0)
        return float(xs[idx])
    return None


def scaling_factor(
    ys_a: Sequence[float], ys_b: Sequence[float]
) -> float:
    """Geometric-mean ratio B/A across the series."""
    if len(ys_a) != len(ys_b) or not ys_a:
        raise ParameterError("series must be non-empty and equal length")
    if any(y <= 0 for y in ys_a) or any(y <= 0 for y in ys_b):
        raise ParameterError("ratios need positive values")
    log_ratios = [
        math.log(b) - math.log(a) for a, b in zip(ys_a, ys_b)
    ]
    return math.exp(sum(log_ratios) / len(log_ratios))
