"""Number-theory substrate: primality, modular arithmetic, cyclic groups."""

from repro.ntheory.modular import crt_pair, egcd, lcm, modinv
from repro.ntheory.primes import (
    generate_prime,
    generate_safe_prime,
    is_probable_prime,
    next_prime,
)
from repro.ntheory.groups import SchnorrGroup

__all__ = [
    "crt_pair",
    "egcd",
    "lcm",
    "modinv",
    "generate_prime",
    "generate_safe_prime",
    "is_probable_prime",
    "next_prime",
    "SchnorrGroup",
]
