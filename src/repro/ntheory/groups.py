"""Cyclic groups for the verification protocol.

The paper's profile-verification scheme (Section VI) computes
``ciph_v = E_Kvp(p^{s_v} || h(p^{s_v * ID_v}))`` where ``p`` generates a
cyclic group G in which the computational Diffie-Hellman problem is hard —
"e.g., the subgroup of quadratic residues" (Section VII-B).  We implement
exactly that: the order-q subgroup of Z_p^* for a safe prime p = 2q + 1.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.errors import ParameterError
from repro.ntheory.modular import modexp, modinv
from repro.ntheory.primes import generate_safe_prime, is_probable_prime
from repro.utils.rand import SystemRandomSource

__all__ = ["SchnorrGroup"]

# A fixed 512-bit safe prime (p = 2q+1, q prime) used as the library default
# so tests and examples do not pay safe-prime generation on every run.  It was
# generated once with generate_safe_prime(512) and verified below on import.
_DEFAULT_P = int(
    "92560734779096688489344372028967439030340250327550828799176658862443"
    "99529166056456643493737138893018581641938205298284854450517489568703"
    "466894784450627299"
)


@dataclass(frozen=True)
class SchnorrGroup:
    """The quadratic-residue subgroup of Z_p^* for a safe prime p.

    Elements are integers in ``[1, p)`` that are quadratic residues; the
    subgroup has prime order ``q = (p - 1) / 2`` so every non-identity
    element generates it.
    """

    p: int
    g: int

    @property
    def q(self) -> int:
        """Prime order of the subgroup."""
        return (self.p - 1) // 2

    def __post_init__(self) -> None:
        if self.p < 7 or self.p % 2 == 0:
            raise ParameterError("p must be an odd prime >= 7")
        if not is_probable_prime(self.p) or not is_probable_prime(self.q):
            raise ParameterError("p must be a safe prime (p and (p-1)/2 prime)")
        if not 1 < self.g < self.p:
            raise ParameterError("generator out of range")
        if pow(self.g, self.q, self.p) != 1:
            raise ParameterError("g is not in the quadratic-residue subgroup")

    @classmethod
    def default(cls) -> "SchnorrGroup":
        """The library-default 512-bit group (fixed parameters)."""
        return cls(p=_DEFAULT_P, g=4)  # 4 = 2^2 is always a QR

    @classmethod
    def generate(
        cls, bits: int = 512, rng: Optional[SystemRandomSource] = None
    ) -> "SchnorrGroup":
        """Generate fresh group parameters with a ``bits``-bit safe prime."""
        rng = rng or SystemRandomSource()
        p = generate_safe_prime(bits, rng)
        while True:
            h = rng.randrange(2, p - 1)
            g = pow(h, 2, p)  # square into the QR subgroup
            if g not in (1, p - 1):
                return cls(p=p, g=g)

    def exp(self, base: int, exponent: int) -> int:
        """``base**exponent mod p`` (instrumented as a modexp)."""
        return modexp(base, exponent % self.q, self.p)

    def power_of_g(self, exponent: int) -> int:
        """``g**exponent mod p``."""
        return self.exp(self.g, exponent)

    def mul(self, a: int, b: int) -> int:
        """Group multiplication modulo p."""
        return a * b % self.p

    def inv(self, a: int) -> int:
        """Multiplicative inverse modulo p."""
        return modinv(a, self.p)

    def random_exponent(self, rng: Optional[SystemRandomSource] = None) -> int:
        """A uniform secret exponent in ``[1, q)``."""
        rng = rng or SystemRandomSource()
        return rng.randrange(1, self.q)

    def element_bytes(self, a: int) -> bytes:
        """Fixed-width big-endian encoding of a group element."""
        width = (self.p.bit_length() + 7) // 8
        if not 0 <= a < self.p:
            raise ParameterError("element out of range")
        return a.to_bytes(width, "big")

    @property
    def element_size(self) -> int:
        """Encoded element size in bytes."""
        return (self.p.bit_length() + 7) // 8
