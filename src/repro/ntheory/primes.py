"""Primality testing and prime generation.

RSA (for the OPRF), Paillier (for the homoPM baseline), and the Schnorr group
(for the verification protocol) all need primes of 512-3072 bits.  We use
trial division by small primes followed by Miller-Rabin with enough rounds
for a 2^-128 error bound, plus the deterministic witness set for 64-bit
inputs.
"""

from __future__ import annotations

import math
from typing import Optional

from repro.errors import ParameterError
from repro.utils.rand import SystemRandomSource

__all__ = [
    "is_probable_prime",
    "generate_prime",
    "generate_safe_prime",
    "next_prime",
    "SMALL_PRIMES",
]


def _sieve(limit: int) -> list:
    flags = bytearray([1]) * (limit + 1)
    flags[0] = flags[1] = 0
    for i in range(2, math.isqrt(limit) + 1):
        if flags[i]:
            flags[i * i :: i] = bytearray(len(flags[i * i :: i]))
    return [i for i, f in enumerate(flags) if f]


SMALL_PRIMES = _sieve(2000)

# Deterministic Miller-Rabin witnesses for n < 3,317,044,064,679,887,385,961,981
_DETERMINISTIC_WITNESSES = (2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37)
_DETERMINISTIC_BOUND = 3317044064679887385961981


def _miller_rabin_round(n: int, a: int, d: int, r: int) -> bool:
    """One MR round; returns True when ``a`` is consistent with ``n`` prime."""
    x = pow(a, d, n)
    if x == 1 or x == n - 1:
        return True
    for _ in range(r - 1):
        x = x * x % n
        if x == n - 1:
            return True
    return False


def is_probable_prime(
    n: int, rounds: int = 64, rng: Optional[SystemRandomSource] = None
) -> bool:
    """Miller-Rabin primality test.

    Deterministic (exact) for ``n`` below ~3.3e24 via the fixed witness set;
    probabilistic with ``rounds`` random witnesses above that, giving an error
    probability of at most ``4**-rounds``.
    """
    if n < 2:
        return False
    for p in SMALL_PRIMES:
        if n == p:
            return True
        if n % p == 0:
            return False
    d, r = n - 1, 0
    while d % 2 == 0:
        d //= 2
        r += 1
    if n < _DETERMINISTIC_BOUND:
        witnesses = [a for a in _DETERMINISTIC_WITNESSES if a < n]
    else:
        rng = rng or SystemRandomSource()
        witnesses = [rng.randrange(2, n - 1) for _ in range(rounds)]
    return all(_miller_rabin_round(n, a, d, r) for a in witnesses)


def generate_prime(
    bits: int, rng: Optional[SystemRandomSource] = None
) -> int:
    """Generate a random prime with exactly ``bits`` bits (top bit set)."""
    if bits < 3:
        raise ParameterError(f"prime size too small: {bits} bits")
    rng = rng or SystemRandomSource()
    while True:
        candidate = rng.getrandbits(bits)
        candidate |= (1 << (bits - 1)) | 1  # exact bit length, odd
        if is_probable_prime(candidate, rng=rng):
            return candidate


def generate_safe_prime(
    bits: int, rng: Optional[SystemRandomSource] = None
) -> int:
    """Generate a safe prime ``p = 2q + 1`` with ``p`` of ``bits`` bits.

    The verification protocol works in the quadratic-residue subgroup of
    ``Z_p^*`` for a safe prime ``p``, the "proper group" the paper's security
    analysis mentions for the CDH assumption.
    """
    if bits < 4:
        raise ParameterError(f"safe prime size too small: {bits} bits")
    rng = rng or SystemRandomSource()
    while True:
        q = generate_prime(bits - 1, rng)
        p = 2 * q + 1
        if p.bit_length() == bits and is_probable_prime(p, rng=rng):
            return p


def next_prime(n: int) -> int:
    """The smallest prime strictly greater than ``n``."""
    candidate = max(2, n + 1)
    if candidate > 2 and candidate % 2 == 0:
        candidate += 1
    while not is_probable_prime(candidate):
        candidate += 1 if candidate == 2 else 2
    return candidate
