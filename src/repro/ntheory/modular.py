"""Modular arithmetic helpers: extended GCD, inverses, CRT, LCM."""

from __future__ import annotations

import math
from typing import List, Sequence, Tuple

from repro.errors import ParameterError
from repro.obs.instrument import count_op

__all__ = ["egcd", "modinv", "modinv_batch", "crt_pair", "lcm", "modexp"]


def egcd(a: int, b: int) -> Tuple[int, int, int]:
    """Extended Euclid: returns ``(g, x, y)`` with ``a*x + b*y == g``."""
    old_r, r = a, b
    old_s, s = 1, 0
    old_t, t = 0, 1
    while r != 0:
        q = old_r // r
        old_r, r = r, old_r - q * r
        old_s, s = s, old_s - q * s
        old_t, t = t, old_t - q * t
    return old_r, old_s, old_t


def modinv(a: int, m: int) -> int:
    """The inverse of ``a`` modulo ``m``; raises if not invertible."""
    if m <= 0:
        raise ParameterError(f"modulus must be positive, got {m}")
    g, x, _ = egcd(a % m, m)
    if g != 1:
        raise ParameterError(f"{a} is not invertible modulo {m} (gcd={g})")
    return x % m


def modinv_batch(values: Sequence[int], m: int) -> List[int]:
    """Inverses of every value modulo ``m`` via Montgomery's batch trick.

    One prefix-product pass, a single :func:`modinv` of the running
    product, and a back-substitution pass: ``3(k-1)`` multiplications plus
    one extended GCD for ``k`` values, versus ``k`` extended GCDs for
    repeated :func:`modinv` calls.  Raises naming the offending position if
    any value is not invertible (checked up front so the failure does not
    depend on the fold order).
    """
    if m <= 0:
        raise ParameterError(f"modulus must be positive, got {m}")
    reduced = [value % m for value in values]
    for position, value in enumerate(reduced):
        if math.gcd(value, m) != 1:
            raise ParameterError(
                f"value at position {position} is not invertible "
                f"modulo the given modulus"
            )
    if not reduced:
        return []
    prefix = [reduced[0]]
    for value in reduced[1:]:
        prefix.append(prefix[-1] * value % m)
    inverse = modinv(prefix[-1], m)
    out = [0] * len(reduced)
    for position in range(len(reduced) - 1, 0, -1):
        out[position] = inverse * prefix[position - 1] % m
        inverse = inverse * reduced[position] % m
    out[0] = inverse
    return out


def crt_pair(r1: int, m1: int, r2: int, m2: int) -> int:
    """Solve ``x = r1 mod m1``, ``x = r2 mod m2`` for coprime moduli."""
    g = math.gcd(m1, m2)
    if g != 1:
        raise ParameterError(f"CRT moduli must be coprime, gcd={g}")
    return (r1 + m1 * ((r2 - r1) * modinv(m1, m2) % m2)) % (m1 * m2)


def lcm(a: int, b: int) -> int:
    """Least common multiple."""
    if a == 0 or b == 0:
        return 0
    return abs(a // math.gcd(a, b) * b)


def modexp(base: int, exponent: int, modulus: int) -> int:
    """Modular exponentiation, instrumented for the cost experiments.

    A thin wrapper over :func:`pow` that records one ``modexp`` operation in
    the active :class:`repro.obs.instrument.OpCounter`.  All primitives that
    the paper's Section VII-C counts as "modular exponentiations" route
    through here.
    """
    if modulus <= 0:
        raise ParameterError(f"modulus must be positive, got {modulus}")
    count_op("modexp")
    return pow(base, exponent, modulus)
