"""Bit- and byte-level helpers used throughout the library.

All multi-byte encodings are big-endian, matching the network byte order used
by the wire protocol in :mod:`repro.net.messages`.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.errors import ParameterError

__all__ = [
    "bit_length_ceil",
    "bytes_to_int",
    "int_to_bytes",
    "pack_blocks",
    "unpack_blocks",
    "rotl32",
    "xor_bytes",
]


def bit_length_ceil(n: int) -> int:
    """Return the number of bits needed to represent ``n`` values (ceil log2).

    ``bit_length_ceil(1)`` is 0 (a single value needs no bits),
    ``bit_length_ceil(2)`` is 1, ``bit_length_ceil(5)`` is 3.
    """
    if n < 1:
        raise ParameterError(f"need a positive count, got {n}")
    return (n - 1).bit_length()


def bytes_to_int(data: bytes) -> int:
    """Interpret ``data`` as a big-endian unsigned integer."""
    return int.from_bytes(data, "big")


def int_to_bytes(value: int, length: int | None = None) -> bytes:
    """Encode a non-negative integer big-endian.

    When ``length`` is omitted the minimal number of bytes is used (at least
    one, so zero encodes to ``b"\\x00"``).
    """
    if value < 0:
        raise ParameterError(f"cannot encode negative integer {value}")
    if length is None:
        length = max(1, (value.bit_length() + 7) // 8)
    if value.bit_length() > length * 8:
        raise ParameterError(
            f"{value.bit_length()}-bit value does not fit in {length} bytes"
        )
    return value.to_bytes(length, "big")


def pack_blocks(blocks: Sequence[int], block_bits: int) -> int:
    """Concatenate fixed-width integer blocks into one big integer.

    ``blocks[0]`` becomes the most-significant block, mirroring the
    left-to-right chaining of attribute values in the paper's Eq. (3).
    """
    if block_bits < 1:
        raise ParameterError(f"block_bits must be positive, got {block_bits}")
    acc = 0
    for block in blocks:
        if block < 0 or block.bit_length() > block_bits:
            raise ParameterError(
                f"block {block} does not fit in {block_bits} bits"
            )
        acc = (acc << block_bits) | block
    return acc


def unpack_blocks(value: int, block_bits: int, count: int) -> List[int]:
    """Split a packed integer back into ``count`` fixed-width blocks."""
    if value < 0:
        raise ParameterError("packed value must be non-negative")
    if value.bit_length() > block_bits * count:
        raise ParameterError(
            f"{value.bit_length()}-bit value too large for "
            f"{count} x {block_bits}-bit blocks"
        )
    mask = (1 << block_bits) - 1
    blocks = [0] * count
    for i in range(count - 1, -1, -1):
        blocks[i] = value & mask
        value >>= block_bits
    return blocks


def rotl32(value: int, shift: int) -> int:
    """Rotate a 32-bit word left by ``shift`` bits."""
    value &= 0xFFFFFFFF
    return ((value << shift) | (value >> (32 - shift))) & 0xFFFFFFFF


def xor_bytes(a: bytes, b: bytes) -> bytes:
    """XOR two equal-length byte strings."""
    if len(a) != len(b):
        raise ParameterError(f"length mismatch: {len(a)} vs {len(b)}")
    return bytes(x ^ y for x, y in zip(a, b))
