"""Randomness sources.

Two kinds of randomness appear in the library:

* **Deterministic streams** derived from a key and a label via HMAC-SHA256 in
  counter mode.  These make encryption primitives (notably the OPE in
  :mod:`repro.crypto.ope`) pure functions of their key, which both matches the
  pseudorandom-function formulation in the paper and keeps every experiment
  reproducible.
* **System randomness** for key generation, wrapped in a small class so tests
  can substitute a seeded source.
"""

from __future__ import annotations

import hashlib
import hmac
import random
from typing import Optional, Sequence, TypeVar

_T = TypeVar("_T")

from repro.errors import ParameterError

__all__ = ["DeterministicStream", "SystemRandomSource"]


class DeterministicStream:
    """An HMAC-SHA256-based deterministic random stream.

    The stream is parameterized by a byte-string ``key`` and a ``label``; two
    streams with the same (key, label) produce identical output.  It exposes
    the handful of sampling operations the library needs, all implemented by
    rejection sampling over the raw HMAC output so the distributions are exact.
    """

    _BLOCK = 32  # SHA-256 output size

    def __init__(self, key: bytes, label: bytes = b"") -> None:
        if not isinstance(key, (bytes, bytearray)):
            raise ParameterError("key must be bytes")
        self._key = bytes(key)
        self._label = bytes(label)
        self._counter = 0
        self._buffer = b""

    def _refill(self) -> None:
        block = hmac.new(
            self._key,
            self._label + self._counter.to_bytes(8, "big"),
            hashlib.sha256,
        ).digest()
        self._counter += 1
        self._buffer += block

    def read(self, n: int) -> bytes:
        """Return the next ``n`` bytes of the stream."""
        if n < 0:
            raise ParameterError("cannot read a negative byte count")
        while len(self._buffer) < n:
            self._refill()
        out, self._buffer = self._buffer[:n], self._buffer[n:]
        return out

    def getrandbits(self, bits: int) -> int:
        """Return a uniform integer in ``[0, 2**bits)``."""
        if bits < 0:
            raise ParameterError("bits must be non-negative")
        if bits == 0:
            return 0
        nbytes = (bits + 7) // 8
        value = int.from_bytes(self.read(nbytes), "big")
        return value >> (nbytes * 8 - bits)

    def randrange(self, lo: int, hi: int) -> int:
        """Return a uniform integer in ``[lo, hi)`` via rejection sampling."""
        if hi <= lo:
            raise ParameterError(f"empty range [{lo}, {hi})")
        span = hi - lo
        bits = span.bit_length()
        while True:
            candidate = self.getrandbits(bits)
            if candidate < span:
                return lo + candidate

    def randint(self, lo: int, hi: int) -> int:
        """Return a uniform integer in the inclusive range ``[lo, hi]``."""
        return self.randrange(lo, hi + 1)

    def shuffle(self, items: list) -> None:
        """Fisher–Yates shuffle driven by the stream (in place)."""
        for i in range(len(items) - 1, 0, -1):
            j = self.randrange(0, i + 1)
            items[i], items[j] = items[j], items[i]

    def permutation(self, n: int) -> list:
        """Return a pseudorandom permutation of ``range(n)``."""
        perm = list(range(n))
        self.shuffle(perm)
        return perm


class SystemRandomSource:
    """Randomness source for key material.

    Defaults to :class:`random.SystemRandom` (OS entropy).  Constructing with
    a ``seed`` switches to a seeded Mersenne Twister, which tests and the
    benchmark harness use for reproducibility; seeded mode is clearly not
    cryptographic and is labelled as such by :attr:`is_seeded`.
    """

    def __init__(self, seed: Optional[int] = None) -> None:
        self.is_seeded = seed is not None
        self._rng: random.Random
        if seed is None:
            self._rng = random.SystemRandom()
        else:
            self._rng = random.Random(seed)

    def getrandbits(self, bits: int) -> int:
        """Uniform integer in [0, 2**bits)."""
        if bits <= 0:
            raise ParameterError("bits must be positive")
        return self._rng.getrandbits(bits)

    def randbytes(self, n: int) -> bytes:
        """n uniformly random bytes."""
        if n < 0:
            raise ParameterError("cannot draw a negative byte count")
        if n == 0:
            return b""
        return self.getrandbits(n * 8).to_bytes(n, "big")

    def randrange(self, lo: int, hi: int) -> int:
        """Uniform integer in [lo, hi)."""
        if hi <= lo:
            raise ParameterError(f"empty range [{lo}, {hi})")
        return self._rng.randrange(lo, hi)

    def randint(self, lo: int, hi: int) -> int:
        """Uniform integer in the inclusive range [lo, hi]."""
        return self._rng.randint(lo, hi)

    def random(self) -> float:
        """Uniform float in [0, 1)."""
        return self._rng.random()

    def choice(self, seq: Sequence[_T]) -> _T:
        """Uniformly chosen element of a non-empty sequence."""
        if not seq:
            raise ParameterError("cannot choose from an empty sequence")
        return self._rng.choice(seq)

    def shuffle(self, items: list) -> None:
        """Shuffle a list in place."""
        self._rng.shuffle(items)

    def sample(self, population: Sequence[_T], k: int) -> list[_T]:
        """k distinct elements sampled without replacement."""
        return self._rng.sample(population, k)

    def gauss(self, mu: float, sigma: float) -> float:
        """Gaussian variate with the given mean and sigma."""
        return self._rng.gauss(mu, sigma)
