"""Constant-time comparisons for secret values.

Python's ``==`` on ``bytes``/``int`` short-circuits at the first differing
byte or limb, so comparing MAC tags, profile keys, witnesses, or OPRF
outputs with it leaks how much of the secret an attacker has guessed — the
classic byte-at-a-time forgery oracle.  Every equality check on
secret-typed values in this codebase goes through
:func:`constant_time_eq`; the ``smatch-lint`` rule SML002 enforces it.

Integer key material (RSA primes, group exponents, blinded values) is
compared by encoding both operands big-endian at one shared fixed width, so
the underlying ``hmac.compare_digest`` sees equal-length buffers and its
constant-time guarantee applies.
"""

from __future__ import annotations

from hmac import compare_digest
from typing import Union

from repro.errors import ParameterError

__all__ = ["constant_time_eq"]

_BytesLike = (bytes, bytearray, memoryview)

Comparable = Union[bytes, bytearray, memoryview, int, str]


def _int_width(value: int) -> int:
    """Byte width needed to hold ``value`` (at least one byte)."""
    return max(1, (value.bit_length() + 7) // 8)


def constant_time_eq(a: Comparable, b: Comparable) -> bool:
    """Compare two secrets without leaking where they differ.

    Supported operand kinds (both sides must be the same kind):

    * bytes-like (``bytes``/``bytearray``/``memoryview``) — compared
      directly with :func:`hmac.compare_digest`;
    * ``int`` — non-negative only; both operands are encoded big-endian at
      the wider operand's width before comparison (the width depends only
      on magnitudes the caller already holds, not on the comparison
      outcome);
    * ``str`` — UTF-8 encoded, then compared as bytes.

    Mixing kinds raises :class:`~repro.errors.ParameterError`: a
    bytes-vs-int comparison in crypto code is a bug, not a falsy answer.
    """
    if isinstance(a, bool) or isinstance(b, bool):
        raise ParameterError("constant_time_eq compares secrets, not booleans")
    if isinstance(a, _BytesLike) and isinstance(b, _BytesLike):
        return compare_digest(bytes(a), bytes(b))
    if isinstance(a, int) and isinstance(b, int):
        if a < 0 or b < 0:
            raise ParameterError(
                "constant_time_eq only compares non-negative integers"
            )
        width = max(_int_width(a), _int_width(b))
        return compare_digest(
            a.to_bytes(width, "big"), b.to_bytes(width, "big")
        )
    if isinstance(a, str) and isinstance(b, str):
        return compare_digest(a.encode("utf-8"), b.encode("utf-8"))
    raise ParameterError(
        "constant_time_eq operands must both be bytes-like, both int, or "
        f"both str; got {type(a).__name__} and {type(b).__name__}"
    )
