"""Entropy and landmark statistics over attribute-value populations.

These implement the two diagnostic quantities from Section IV of the paper:

* Eq. (1): the Shannon entropy of a social attribute,
  ``H(A) = -sum_i (T_i/U) log2 (T_i/U)``, where ``T_i`` counts users holding
  value ``i`` and ``U`` is the total user count.
* Definition 2: a *landmark attribute value* is a value whose probability
  ``T_i/U`` exceeds a threshold ``tau``.
"""

from __future__ import annotations

import math
from collections import Counter
from typing import Dict, Hashable, Iterable, List, Mapping, Sequence, Tuple

from repro.errors import ParameterError

__all__ = [
    "empirical_entropy",
    "entropy_from_counts",
    "entropy_from_probs",
    "landmark_values",
    "perfect_entropy",
    "value_frequencies",
]


def value_frequencies(values: Iterable[Hashable]) -> Dict[Hashable, int]:
    """Count occurrences of each attribute value."""
    return dict(Counter(values))


def entropy_from_counts(counts: Mapping[Hashable, int]) -> float:
    """Shannon entropy in bits from a value -> count mapping (paper Eq. 1)."""
    total = sum(counts.values())
    if total <= 0:
        raise ParameterError("entropy needs a non-empty population")
    entropy = 0.0
    for count in counts.values():
        if count < 0:
            raise ParameterError("counts must be non-negative")
        if count == 0:
            continue
        p = count / total
        entropy -= p * math.log2(p)
    return entropy


def entropy_from_probs(probs: Sequence[float]) -> float:
    """Shannon entropy in bits of an explicit probability vector."""
    total = sum(probs)
    if not math.isclose(total, 1.0, rel_tol=0, abs_tol=1e-6):
        raise ParameterError(f"probabilities must sum to 1, got {total}")
    entropy = 0.0
    for p in probs:
        if p < 0:
            raise ParameterError("probabilities must be non-negative")
        if p > 0:
            entropy -= p * math.log2(p)
    return entropy


def empirical_entropy(values: Iterable[Hashable]) -> float:
    """Shannon entropy in bits of a sample of attribute values."""
    return entropy_from_counts(value_frequencies(values))


def perfect_entropy(bits: int) -> float:
    """The theoretical entropy limit of a ``bits``-bit message space.

    This is the "perfect entropy" line of Fig. 4(a): a uniform distribution
    over ``2**bits`` values has exactly ``bits`` bits of entropy.
    """
    if bits < 0:
        raise ParameterError("bits must be non-negative")
    return float(bits)


def landmark_values(
    counts: Mapping[Hashable, int], tau: float
) -> List[Tuple[Hashable, float]]:
    """Return the landmark values of an attribute (paper Definition 2).

    A value is a landmark when its empirical probability ``T_i/U`` is larger
    than ``tau``.  Returns ``(value, probability)`` pairs sorted by
    descending probability.
    """
    if not 0 < tau < 1:
        raise ParameterError(f"tau must be in (0, 1), got {tau}")
    total = sum(counts.values())
    if total <= 0:
        raise ParameterError("landmark detection needs a non-empty population")
    landmarks = [
        (value, count / total)
        for value, count in counts.items()
        if count / total > tau
    ]
    landmarks.sort(key=lambda pair: pair[1], reverse=True)
    return landmarks
