"""Backwards-compatible re-export of :mod:`repro.obs.instrument`.

The op-counting layer moved into the :mod:`repro.obs` telemetry package
(where spans attribute per-phase counter deltas); this module keeps the
historical import path working.  New code should import from
``repro.obs`` directly.
"""

from repro.obs.instrument import (
    OpCounter,
    Stopwatch,
    count_op,
    counting,
    current_counter,
)

__all__ = ["OpCounter", "count_op", "counting", "current_counter", "Stopwatch"]
