"""Length-prefixed binary serialization for wire messages.

The protocol messages in :mod:`repro.net.messages` are encoded as sequences
of length-prefixed fields.  Keeping the codec here, independent of any
message type, lets the communication-cost experiments (Fig. 5(d)-(f)) count
exact bits on the wire.
"""

from __future__ import annotations

import struct
from typing import List

from repro.errors import ProtocolError

__all__ = ["FieldWriter", "FieldReader", "LENGTH_PREFIX"]

_LEN = struct.Struct(">I")

#: The length-prefix layout every field shares.  Exported for codecs that
#: hand-pack a hot-path layout (e.g. ``EncryptedProfile.to_wire_bytes``,
#: which the shared-memory result arena encodes once per record); such
#: codecs stay byte-identical to the :class:`FieldWriter` path by pinning
#: equality in tests.
LENGTH_PREFIX = _LEN


class FieldWriter:
    """Accumulates length-prefixed fields into a byte string.

    This codec sits on the hot path of the shared-memory result arena
    (every record is wire-encoded exactly once, in the worker), so the
    write methods fuse the prefix and payload into a single list append
    and track the accumulated size incrementally instead of re-summing.
    The byte layout is unchanged.
    """

    def __init__(self) -> None:
        self._parts: List[bytes] = []
        self._size = 0

    def write_bytes(self, data: bytes) -> "FieldWriter":
        """Append one length-prefixed byte field."""
        if type(data) is not bytes:
            data = bytes(data)
        length = len(data)
        if length > 0xFFFFFFFF:
            raise ProtocolError("field too large")
        self._parts.append(_LEN.pack(length) + data)
        self._size += _LEN.size + length
        return self

    def write_int(self, value: int) -> "FieldWriter":
        """Append an unsigned integer field (minimal big-endian)."""
        if value < 0:
            raise ProtocolError("wire integers are unsigned")
        length = (value.bit_length() + 7) // 8 or 1
        self._parts.append(_LEN.pack(length) + value.to_bytes(length, "big"))
        self._size += _LEN.size + length
        return self

    def write_str(self, text: str) -> "FieldWriter":
        """Append a UTF-8 string field."""
        return self.write_bytes(text.encode("utf-8"))

    def write_raw_fields(self, data: bytes) -> "FieldWriter":
        """Splice an already field-encoded byte sequence in verbatim.

        ``data`` must itself be a field sequence produced by another
        writer — it is appended without a length prefix of its own.  This
        is the serialize-once path for values whose wire encoding is
        already in hand (e.g. an undecoded shared-memory arena record).
        """
        if type(data) is not bytes:
            data = bytes(data)
        self._parts.append(data)
        self._size += len(data)
        return self

    def getvalue(self) -> bytes:
        """The accumulated wire bytes."""
        return b"".join(self._parts)

    def __len__(self) -> int:
        return self._size


class FieldReader:
    """Reads length-prefixed fields written by :class:`FieldWriter`."""

    def __init__(self, data: bytes) -> None:
        self._data = bytes(data)
        self._pos = 0

    def read_bytes(self) -> bytes:
        """Read the next length-prefixed byte field."""
        if self._pos + _LEN.size > len(self._data):
            raise ProtocolError("truncated field header")
        (length,) = _LEN.unpack_from(self._data, self._pos)
        self._pos += _LEN.size
        if self._pos + length > len(self._data):
            raise ProtocolError("truncated field body")
        out = self._data[self._pos : self._pos + length]
        self._pos += length
        return out

    def read_int(self) -> int:
        """Read the next field as an unsigned integer."""
        return int.from_bytes(self.read_bytes(), "big")

    def read_str(self) -> str:
        """Read the next field as UTF-8 text."""
        try:
            return self.read_bytes().decode("utf-8")
        except UnicodeDecodeError as exc:
            raise ProtocolError("invalid UTF-8 in string field") from exc

    def at_end(self) -> bool:
        """True when every field has been consumed."""
        return self._pos == len(self._data)

    def expect_end(self) -> None:
        """Raise unless the whole message was consumed."""
        if not self.at_end():
            raise ProtocolError(
                f"{len(self._data) - self._pos} trailing bytes after message"
            )
