"""Shared utilities: bit packing, deterministic randomness, constant-time
comparison, statistics, wire serialization, and operation-count
instrumentation."""

from repro.utils.bits import (
    bit_length_ceil,
    bytes_to_int,
    int_to_bytes,
    pack_blocks,
    unpack_blocks,
)
from repro.utils.ct import constant_time_eq
from repro.utils.rand import DeterministicStream, SystemRandomSource
from repro.utils.stats import (
    empirical_entropy,
    entropy_from_counts,
    landmark_values,
    perfect_entropy,
)

__all__ = [
    "bit_length_ceil",
    "bytes_to_int",
    "int_to_bytes",
    "pack_blocks",
    "unpack_blocks",
    "constant_time_eq",
    "DeterministicStream",
    "SystemRandomSource",
    "empirical_entropy",
    "entropy_from_counts",
    "landmark_values",
    "perfect_entropy",
]
