"""Picklable task envelopes for the S-MATCH hot paths.

Every task here is a module-level function of ``(context, chunk)`` so the
:class:`~repro.parallel.backend.ProcessBackend` can pickle it by reference,
plus a plain-data context object that crosses the process boundary once per
worker (warm start) and is then reused for every chunk.

Three hot paths are covered:

* :class:`EnrollSpec` / :func:`enroll_chunk` — full seeded enrollment.  The
  live :class:`~repro.core.scheme.SMatch` instance is *not* picklable (its
  OPE node cache holds a lock), so the spec carries only the plain-data
  ingredients (params, OPRF key material, mapper, Schnorr group) and each
  worker process materializes its own scheme once, with its own cache.
  Determinism is carried entirely by the per-profile integer seeds inside
  the chunk items (:func:`repro.core.scheme.profile_enroll_seed`), so the
  output bytes do not depend on which process enrolls which chunk.
* :func:`evaluate_blinded_chunk` — server-side batched blind OPRF
  evaluation; the context is the :class:`~repro.crypto.oprf.RsaOprfServer`
  itself (plain RSA key material, picklable).
* :class:`BulkMatchContext` / :func:`bulk_match_chunk` — many-requester
  kNN fan-out over frozen per-group score orders exported by the server
  matcher.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.core.entropy import BigJumpMapper
from repro.core.keygen import ProfileKey
from repro.core.profile import Profile
from repro.core.scheme import EncryptedProfile, SMatch, SMatchParams
from repro.crypto.oprf import RsaOprfServer
from repro.ntheory.groups import SchnorrGroup
from repro.parallel.arena import ArenaWriter, register_wire_codec
from repro.utils.rand import SystemRandomSource

__all__ = [
    "BulkMatchContext",
    "EnrollSpec",
    "bulk_match_chunk",
    "enroll_chunk",
    "evaluate_blinded_chunk",
]

#: Arena codec tag for :class:`EncryptedProfile` records.  Registered at
#: import time in both the parent and every worker (workers import this
#: module when the task function is unpickled by reference), so the two
#: sides always agree on the tag table.  The byte layout is the same
#: length-prefixed field sequence the wire protocol uses
#: (:meth:`EncryptedProfile.encode_fields`).
_TAG_ENCRYPTED_PROFILE = 1

register_wire_codec(
    EncryptedProfile,
    _TAG_ENCRYPTED_PROFILE,
    EncryptedProfile.to_wire_bytes,
    EncryptedProfile.from_wire_bytes,
)


@dataclass
class EnrollSpec:
    """The picklable ingredients of an :class:`SMatch` instance.

    ``materialize()`` builds (and memoizes) a scheme per process; the memo
    is dropped on pickling so worker copies always build their own scheme
    with a fresh OPE cache.  The materialized scheme's instance RNG is an
    inert seeded source — enrollment tasks must pass explicit per-profile
    RNGs, never consume scheme-instance randomness.
    """

    params: SMatchParams
    oprf_server: RsaOprfServer
    mapper: BigJumpMapper
    group: SchnorrGroup
    _scheme: Optional[SMatch] = field(default=None, repr=False, compare=False)

    @classmethod
    def of(cls, scheme: SMatch) -> "EnrollSpec":
        """A spec capturing ``scheme``, memoized so the in-process backends
        (serial/thread) reuse the live instance and its warm OPE cache."""
        spec = cls(
            params=scheme.params,
            oprf_server=scheme.oprf_server,
            mapper=scheme.mapper,
            group=scheme.verifier.group,
        )
        spec._scheme = scheme
        return spec

    def __getstate__(self) -> Dict[str, Any]:
        state = self.__dict__.copy()
        state["_scheme"] = None  # workers build their own (cache has a lock)
        return state

    def __setstate__(self, state: Dict[str, Any]) -> None:
        self.__dict__.update(state)

    def materialize(self) -> SMatch:
        """The scheme for this process, built once and reused per chunk."""
        if self._scheme is None:
            self._scheme = SMatch(
                self.params,
                oprf_server=self.oprf_server,
                mapper=self.mapper,
                group=self.group,
                rng=SystemRandomSource(0),
            )
        return self._scheme


def enroll_chunk(
    spec: EnrollSpec,
    chunk: Sequence[Tuple[Profile, int]],
    arena: Optional[ArenaWriter] = None,
) -> List[Tuple[int, Any, ProfileKey]]:
    """Enroll ``(profile, seed)`` pairs against the warm per-process scheme.

    Each profile is enrolled under its own seeded randomness source, so the
    result bytes depend only on the ``(profile, seed)`` pair — not on
    chunking, worker count, or which process runs the chunk.

    With an ``arena`` writer (process backend, shm transport on), each
    payload is wire-encoded once into shared memory and only its record
    reference rides the pickle path; the parent rebuilds lazy views that
    decode to byte-identical profiles.  Without one (serial/thread), the
    payload objects are returned directly.
    """
    scheme = spec.materialize()
    out: List[Tuple[int, Any, ProfileKey]] = []
    for profile, seed in chunk:
        payload, key = scheme.enroll(profile, rng=SystemRandomSource(seed))
        if arena is not None:
            payload = arena.put_record(payload)
        out.append((profile.user_id, payload, key))
    if scheme.ope_cache is not None:
        # flush cache counter deltas to whichever registry is active here —
        # the worker-local one under process fan-out, the shared one
        # otherwise — so merged totals match the serial run exactly
        # (cache entries are namespaced per profile key, making hit/miss
        # counts chunk-local and backend-invariant)
        scheme.ope_cache.flush_metrics()
    return out


def evaluate_blinded_chunk(
    oprf: RsaOprfServer, chunk: Sequence[int]
) -> List[int]:
    """Blind-evaluate a chunk of already-range-checked blinded elements."""
    return [oprf.evaluate_blinded(blinded) for blinded in chunk]


@dataclass(frozen=True)
class BulkMatchContext:
    """Frozen matcher state for query fan-out: per-user score orders.

    ``orders`` maps a group handle to that group's settled ``(score, uid)``
    order; ``memberships`` maps each query user to their group handle and
    score.  Everything is tuples/dicts of ints, so the context ships to
    worker processes unchanged.
    """

    orders: Dict[int, Tuple[Tuple[int, int], ...]]
    memberships: Dict[int, Tuple[int, int]]  # user -> (group handle, score)
    k: int


def bulk_match_chunk(
    context: BulkMatchContext, chunk: Sequence[int]
) -> List[List[int]]:
    """kNN-match each query user against its frozen group order."""
    from repro.core.matching import position_window

    results: List[List[int]] = []
    for query_user in chunk:
        handle, score = context.memberships[query_user]
        results.append(
            position_window(
                context.orders[handle], score, query_user, context.k
            )
        )
    return results
