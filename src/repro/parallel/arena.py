"""Zero-copy shared-memory result transport for the process backend.

PR 5 measured that pickling ``EncryptedProfile`` results dominates
process-backend enrollment at small chunk sizes: every hot-path result pays
``pickle.dumps`` in the worker, a pipe copy, and ``pickle.loads`` plus
object reconstruction in the parent.  This module replaces that tax with a
``multiprocessing.shared_memory`` **result arena**:

* The parent creates one segment per batch, divided into a ring of
  fixed-size slots — one slot per in-flight chunk (the backend's bounded
  submission window guarantees a slot is collected before its ring position
  is reused, so writers never race).
* Workers append **tagged, length-prefixed records** in the registered wire
  codec (:func:`register_wire_codec`; enrollment registers the
  ``EncryptedProfile`` layout shared with :mod:`repro.net.messages`) and
  return cheap integer :class:`ArenaRef` placeholders through the normal
  future path.
* Each slot carries a header with a **generation counter** and **commit
  counters** (record count, used bytes) written *last* (:meth:`ArenaWriter.
  seal`), so a half-written slot from a crashed worker is detectable: the
  parent surfaces the existing typed
  :class:`~repro.errors.WorkerCrashError` instead of decoding garbage or
  deadlocking, and the batch's ``finally`` unlinks the segment either way.
* The parent swaps each :class:`ArenaRef` for a :class:`LazyWireRecord`
  view over a one-shot snapshot of the slot — the record is decoded on
  first attribute access, never re-encoded, and compares equal to the
  eagerly-built object (dataclass equality reflects through the proxy), so
  the byte-identical-output contract of seeded enrollment is preserved.

Values with no registered codec — or records that would overflow their slot
— **fall back to pickle transparently**: ``put_record`` simply returns the
original object (which then rides the ordinary future-result pickle) and
counts the event via ``smatch_parallel_shm_fallbacks_total``.

:class:`ContextSegment` is the companion for the *inbound* direction: it
ships one frozen task context (e.g. the matcher's ``BulkMatchContext``) as
a single shared segment that each worker decodes once at pool warm-start,
instead of the parent re-serializing it into every worker pipe.
"""

from __future__ import annotations

import os
import pickle
import struct
import threading
from multiprocessing import shared_memory
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.errors import ParallelError, ParameterError, WorkerCrashError
from repro.obs.metrics import (
    M_PARALLEL_SHM_BYTES,
    M_PARALLEL_SHM_FALLBACKS,
    M_PARALLEL_SHM_OCCUPANCY,
    metric_inc,
    metric_set,
)
from repro.obs.trace import _local as _trace_state  # fast hot-path span guard
from repro.obs.trace import span

__all__ = [
    "ArenaRef",
    "ArenaWriter",
    "ContextHandle",
    "ContextSegment",
    "LazyWireRecord",
    "ResultArena",
    "ShmContext",
    "SlotDescriptor",
    "register_wire_codec",
    "wire_codec_for",
]

#: Slot header: generation (8 bytes), committed record count (4), used
#: payload bytes (4).  Written once, by :meth:`ArenaWriter.seal`, after all
#: record bytes — the commit point of the slot.
_HEADER = struct.Struct(">QLL")

#: Record header inside a slot: codec tag (1 byte) + payload length (4).
_RECORD = struct.Struct(">BL")

#: Default slot capacity.  Enrollment records are a few hundred bytes, so
#: one slot holds thousands of profiles per chunk; oversize records fall
#: back to pickle rather than failing.
DEFAULT_SLOT_BYTES = 1 << 20

#: Reserved tag for pickle payloads in :class:`ContextSegment` (result
#: records never use it — a fallback result simply bypasses the arena).
_PICKLE_TAG_ID = 0


# -- the wire-codec registry -----------------------------------------------------

_ENCODERS: Dict[type, Tuple[int, Callable[[Any], bytes]]] = {}
_DECODERS: Dict[int, Callable[[bytes], Any]] = {}
#: guards the codec tables: registration happens at import time in the
#: common case, but thread backends may trigger lazy registering imports
#: from pool threads, and the check-then-insert below must be atomic
_codec_lock = threading.Lock()


def register_wire_codec(
    cls: type,
    tag_id: int,
    encode: Callable[[Any], bytes],
    decode: Callable[[bytes], Any],
) -> None:
    """Register the arena codec for ``cls`` under a one-byte ``tag_id``.

    Registration is idempotent for an identical ``(cls, tag_id)`` pairing
    and rejects conflicting re-use of either, so parent and worker
    processes (which each import the registering module independently)
    always agree on the tag table.

    ``encode`` must produce the type's net-layer field-sequence encoding
    (its ``to_wire_bytes``): :meth:`LazyWireRecord.encode_fields` splices
    the stored bytes verbatim into outgoing messages, so the arena bytes
    and the wire bytes have to be the same layout.
    """
    if not 1 <= tag_id <= 0xFF:
        raise ParameterError("codec tag must be in 1..255 (0 is pickle)")
    with _codec_lock:
        registered = _ENCODERS.get(cls)
        if registered is not None and registered[0] != tag_id:
            raise ParameterError(
                f"{cls.__name__} already registered under tag {registered[0]}"
            )
        if tag_id in _DECODERS and registered is None:
            raise ParameterError(f"codec tag {tag_id} already taken")
        _ENCODERS[cls] = (tag_id, encode)
        _DECODERS[tag_id] = decode


def wire_codec_for(value: Any) -> Optional[Tuple[int, Callable[[Any], bytes]]]:
    """The ``(tag, encode)`` pair for ``value``'s exact type, if registered."""
    return _ENCODERS.get(type(value))


# -- shared-memory attachment ----------------------------------------------------


def _attach(name: str) -> shared_memory.SharedMemory:
    """Attach to an existing segment without adopting ownership.

    On Python 3.13+ ``track=False`` keeps the attach out of the resource
    tracker entirely.  Before that, attaching re-registers the name — but
    pool workers share the parent's tracker process, so the re-register is
    a set-add no-op and the parent's ``unlink`` still balances the books;
    never *unregister* here, as that would clobber the parent's entry and
    leak the segment on a parent crash.
    """
    try:
        return shared_memory.SharedMemory(name=name, track=False)
    except TypeError:  # pragma: no cover - Python < 3.13
        return shared_memory.SharedMemory(name=name)


#: Worker-side attachment cache: one arena serves a whole batch, so a
#: single-entry cache keyed by segment name covers every chunk the worker
#: runs without re-mmapping, and frees the previous batch's mapping.
_ATTACH_CACHE: List[Tuple[str, shared_memory.SharedMemory]] = []
#: guards the attach cache: process-pool workers are single-threaded, but
#: the thread backend shares this module across its pool threads, and an
#: unguarded pop/close would hand one thread a mapping another just freed
_attach_lock = threading.Lock()


def _attach_cached(name: str) -> shared_memory.SharedMemory:
    with _attach_lock:
        if _ATTACH_CACHE and _ATTACH_CACHE[0][0] == name:
            return _ATTACH_CACHE[0][1]
        # the span wraps only a real mmap attach (once per batch per
        # worker), not the cache hit every chunk takes
        with span("arena.attach", segment=name):
            shm = _attach(name)
        if _ATTACH_CACHE:
            _ATTACH_CACHE.pop()[1].close()
        _ATTACH_CACHE.append((name, shm))
        return shm


# -- records and views -----------------------------------------------------------


class ArenaRef:
    """Placeholder for one arena record: the record's index in its slot.

    Instances ride the ordinary (tiny) future-result pickle back to the
    parent, which swaps them for :class:`LazyWireRecord` views.
    """

    __slots__ = ("index",)

    def __init__(self, index: int) -> None:
        self.index = index

    def __reduce__(self) -> Tuple[Any, Tuple[int]]:
        return (ArenaRef, (self.index,))

    def __repr__(self) -> str:
        return f"ArenaRef({self.index})"


_UNSET = object()


class LazyWireRecord:
    """A decode-on-first-access view of one committed arena record.

    Holds the record's bytes (a snapshot taken before the slot is reused)
    and materializes the value through the registered decoder the first
    time an attribute is touched.  Equality, hashing, and attribute access
    all forward to the materialized value — dataclass ``__eq__`` returns
    ``NotImplemented`` against the proxy, so Python reflects the comparison
    here and ``proxy == real`` holds exactly when the decoded bytes match.
    """

    __slots__ = ("_raw", "_decode", "_value")

    def __init__(self, raw: bytes, decode: Callable[[bytes], Any]) -> None:
        # plain slot assignment: only __getattr__ (missing-attribute
        # lookup) is overridden, so normal access never recurses
        self._raw = raw
        self._decode = decode
        self._value = _UNSET

    def materialize(self) -> Any:
        """The decoded value (decoded once, then cached)."""
        value = self._value
        if value is _UNSET:
            value = self._decode(self._raw)
            self._value = value
        return value

    def __getattr__(self, name: str) -> Any:
        return getattr(self.materialize(), name)

    def encode_fields(self, writer: Any) -> None:
        """Re-emit the record's wire bytes without decoding them.

        Arena codecs encode with the type's own net-layer field sequence
        (``to_wire_bytes``), so an undecoded record splices verbatim into
        an outgoing message — the serialize-once half of the zero-copy
        contract: a result is wire-encoded exactly once, in the worker,
        no matter how many times the parent forwards it.
        """
        writer.write_raw_fields(self._raw)

    def __eq__(self, other: Any) -> bool:
        if isinstance(other, LazyWireRecord):
            other = other.materialize()
        return bool(self.materialize() == other)

    def __ne__(self, other: Any) -> bool:
        return not self.__eq__(other)

    def __hash__(self) -> int:
        return hash(self.materialize())

    def __reduce__(self) -> Tuple[Any, Tuple[Any]]:
        # a re-pickled view ships the materialized value, not the proxy
        return (_identity, (self.materialize(),))

    def __repr__(self) -> str:
        # never decodes (and never reprs potential key material)
        state = "decoded" if self._value is not _UNSET else "pending"
        return f"<LazyWireRecord {state}, {len(self._raw)} bytes>"


def _identity(value: Any) -> Any:
    return value


class SlotDescriptor:
    """Everything a worker needs to write one chunk's records: segment
    name, ring slot, expected generation, and the slot geometry."""

    __slots__ = ("name", "slot", "generation", "slot_bytes", "slots")

    def __init__(
        self, name: str, slot: int, generation: int, slot_bytes: int, slots: int
    ) -> None:
        self.name = name
        self.slot = slot
        self.generation = generation
        self.slot_bytes = slot_bytes
        self.slots = slots

    def __reduce__(self) -> Tuple[Any, Tuple[str, int, int, int, int]]:
        return (
            SlotDescriptor,
            (self.name, self.slot, self.generation, self.slot_bytes, self.slots),
        )


# -- worker side -----------------------------------------------------------------


class ArenaWriter:
    """Worker-side append cursor over one slot of the result arena.

    Records are committed all-at-once by :meth:`seal`: the payload bytes
    land first, the header (generation + counts) last, so a crash mid-chunk
    leaves the slot's previous generation visible and the parent detects
    the missing commit instead of reading a torn record.
    """

    def __init__(self, desc: SlotDescriptor) -> None:
        shm = _attach_cached(desc.name)
        self._desc = desc
        self._buf = shm.buf
        self._base = _HEADER.size * desc.slots + desc.slot_bytes * desc.slot
        self._cursor = 0
        self._records = 0
        self._sealed = False

    def put_record(self, value: Any) -> Any:
        """Write ``value`` into the slot; returns an :class:`ArenaRef`.

        Falls back to returning ``value`` unchanged — so it rides the
        ordinary pickle path — when its type has no registered wire codec
        or the encoded record would overflow the slot; both fallbacks are
        counted via ``smatch_parallel_shm_fallbacks_total``.
        """
        codec = wire_codec_for(value)
        if codec is None:
            metric_inc(M_PARALLEL_SHM_FALLBACKS)
            return value
        tag, encode = codec
        if getattr(_trace_state, "tracer", None) is None:
            # skip span setup on the per-record path while tracing is off
            blob = encode(value)
        else:
            with span("arena.encode", tag=tag):
                blob = encode(value)
        record_len = _RECORD.size + len(blob)
        if self._cursor + record_len > self._desc.slot_bytes:
            metric_inc(M_PARALLEL_SHM_FALLBACKS)
            return value
        start = self._base + self._cursor
        _RECORD.pack_into(self._buf, start, tag, len(blob))
        self._buf[start + _RECORD.size : start + record_len] = blob
        self._cursor += record_len
        self._records += 1
        return ArenaRef(self._records - 1)

    def seal(self) -> None:
        """Commit the slot: header written last, exactly once.

        Also flushes the chunk's byte tally to
        ``smatch_parallel_shm_bytes_total`` in one increment — per-record
        counting costs a registry lookup on every hot-path write.
        """
        if self._sealed:
            return
        self._sealed = True
        if self._cursor:
            metric_inc(M_PARALLEL_SHM_BYTES, self._cursor)
        _HEADER.pack_into(
            self._buf,
            _HEADER.size * self._desc.slot,
            self._desc.generation,
            self._records,
            self._cursor,
        )


def _substitute(node: Any, records: List[Tuple[int, bytes]]) -> Any:
    """Swap every :class:`ArenaRef` in ``node`` for a lazy record view.

    Walks the containers task functions actually return (lists, tuples,
    dicts); anything else — including records a chunk fell back on —
    passes through untouched.
    """
    # exact-type checks first: chunk results are plain lists of plain
    # tuples, and the walk runs once per record on the parent's critical
    # path.  Subclasses (and dicts) take the isinstance fallbacks below.
    cls = node.__class__
    if cls is ArenaRef:
        tag_id, payload = records[node.index]
        return LazyWireRecord(payload, _DECODERS[tag_id])
    if cls is list:
        return [_substitute(item, records) for item in node]
    if cls is tuple:
        return tuple([_substitute(item, records) for item in node])
    if cls is dict:
        return {key: _substitute(item, records) for key, item in node.items()}
    if isinstance(node, ArenaRef):
        tag_id, payload = records[node.index]
        return LazyWireRecord(payload, _DECODERS[tag_id])
    if isinstance(node, list):
        return [_substitute(item, records) for item in node]
    if isinstance(node, tuple):
        return tuple(_substitute(item, records) for item in node)
    if isinstance(node, dict):
        return {key: _substitute(item, records) for key, item in node.items()}
    return node


# -- parent side -----------------------------------------------------------------


class ResultArena:
    """Parent-side owner of one batch's shared-memory result segment.

    Layout: ``slots`` headers (:data:`_HEADER` each) followed by ``slots``
    fixed-size payload regions.  Chunk ``i`` writes slot ``i % slots`` with
    generation ``i // slots + 1``; the backend's bounded in-flight window
    (``slots >= max_inflight``) plus ordered collection guarantee the
    previous tenant of a ring position was collected before reuse.
    """

    def __init__(
        self, slots: int, slot_bytes: int = DEFAULT_SLOT_BYTES
    ) -> None:
        if slots < 1:
            raise ParameterError("arena needs at least one slot")
        if slot_bytes < _RECORD.size + 1:
            raise ParameterError("slot_bytes too small for any record")
        self.slots = slots
        self.slot_bytes = slot_bytes
        size = _HEADER.size * slots + slot_bytes * slots
        self._shm = shared_memory.SharedMemory(
            create=True, size=size, name=f"smarena_{os.urandom(8).hex()}"
        )
        # zero every header so generation 0 means "never committed"
        self._shm.buf[: _HEADER.size * slots] = bytes(_HEADER.size * slots)
        # SharedMemory.buf is a property; cache the memoryview (same
        # object, no extra export) so per-chunk collection skips it
        self._buf = self._shm.buf
        self._high_water = 0
        self._closed = False

    @property
    def name(self) -> str:
        """The segment name workers attach by."""
        return self._shm.name

    def slot_descriptor(self, chunk_index: int) -> SlotDescriptor:
        """The write target for submission ``chunk_index``."""
        return SlotDescriptor(
            name=self.name,
            slot=chunk_index % self.slots,
            generation=chunk_index // self.slots + 1,
            slot_bytes=self.slot_bytes,
            slots=self.slots,
        )

    def _collect(self, desc: SlotDescriptor, label: str) -> List[Tuple[int, bytes]]:
        """Snapshot one committed slot as ``(tag, payload)`` records.

        Raises :class:`~repro.errors.WorkerCrashError` when the slot header
        does not carry the expected generation (the worker never reached
        its commit point) or the committed counts are inconsistent with the
        slot geometry (a torn or corrupt commit).
        """
        generation, count, used = _HEADER.unpack_from(
            self._buf, _HEADER.size * desc.slot
        )
        if generation != desc.generation:
            raise WorkerCrashError(
                f"shared-memory slot {desc.slot} for {label!r} holds "
                f"generation {generation}, expected {desc.generation}: "
                f"worker never committed its records"
            )
        if used > desc.slot_bytes:
            raise WorkerCrashError(
                f"shared-memory slot {desc.slot} for {label!r} claims "
                f"{used} bytes of {desc.slot_bytes}: torn commit"
            )
        base = _HEADER.size * self.slots + self.slot_bytes * desc.slot
        # records are copied out one by one (`bytes` below), so the views
        # outlive the ring position without a whole-slot snapshot
        buf = self._buf
        records: List[Tuple[int, bytes]] = []
        offset = 0
        record_size = _RECORD.size
        unpack_record = _RECORD.unpack_from
        for _ in range(count):
            if offset + record_size > used:
                raise WorkerCrashError(
                    f"shared-memory slot {desc.slot} for {label!r}: record "
                    f"header past committed bytes (torn commit)"
                )
            tag, length = unpack_record(buf, base + offset)
            offset += record_size
            if tag not in _DECODERS or offset + length > used:
                raise WorkerCrashError(
                    f"shared-memory slot {desc.slot} for {label!r}: "
                    f"record {len(records)} is corrupt (torn commit)"
                )
            start = base + offset
            records.append((tag, bytes(buf[start : start + length])))
            offset += length
        if used > self._high_water:
            self._high_water = used
            metric_set(M_PARALLEL_SHM_OCCUPANCY, used)
        return records

    def resolve(self, value: Any, desc: SlotDescriptor, label: str) -> Any:
        """Swap every :class:`ArenaRef` in ``value`` for a lazy view.

        Walks the containers task functions actually return (lists, tuples,
        dicts); records the chunk fell back on pass through untouched.
        """
        if getattr(_trace_state, "tracer", None) is None:
            # skip span setup on the per-chunk path while tracing is off
            records = self._collect(desc, label)
        else:
            with span("arena.collect", slot=desc.slot):
                records = self._collect(desc, label)
        return _substitute(value, records)

    def close(self) -> None:
        """Release and unlink the segment (idempotent)."""
        if self._closed:
            return
        self._closed = True
        self._shm.close()
        try:
            self._shm.unlink()
        except FileNotFoundError:  # pragma: no cover - double unlink race
            pass

    def __enter__(self) -> "ResultArena":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


# -- warm-start context shipping -------------------------------------------------


class ShmContext:
    """Marks an envelope context for shared-segment shipping.

    Call sites wrap the frozen context (``TaskEnvelope(context=
    ShmContext(ctx))``) when the chosen backend advertises ``shm_enabled``;
    the :class:`~repro.parallel.backend.ProcessBackend` then owns the
    segment — created at pool construction, unlinked when the pool is
    discarded — so late-starting pool workers always find it.  Backends
    without shared-memory support receive the wrapped value unchanged.
    """

    __slots__ = ("value",)

    def __init__(self, value: Any) -> None:
        self.value = value

    def __reduce__(self) -> Tuple[Any, Tuple[Any]]:
        return (ShmContext, (self.value,))


class ContextHandle:
    """The picklable stand-in for a shared-segment task context.

    The backend's worker initializer calls :meth:`load` exactly once per
    worker at pool warm-start; the decoded context then serves every chunk.
    """

    __slots__ = ("name", "size")

    def __init__(self, name: str, size: int) -> None:
        self.name = name
        self.size = size

    def __reduce__(self) -> Tuple[Any, Tuple[str, int]]:
        return (ContextHandle, (self.name, self.size))

    def load(self) -> Any:
        """Attach, decode the single record, detach."""
        with span("arena.attach", context=True):
            try:
                shm = _attach(self.name)
            except FileNotFoundError as exc:
                raise ParallelError(
                    "shared context segment vanished before worker start"
                ) from exc
        try:
            tag_id, length = _RECORD.unpack_from(shm.buf, 0)
            if _RECORD.size + length > self.size:
                raise ParallelError("shared context segment is truncated")
            blob = bytes(shm.buf[_RECORD.size : _RECORD.size + length])
        finally:
            shm.close()
        if tag_id == _PICKLE_TAG_ID:
            return pickle.loads(blob)
        decoder = _DECODERS.get(tag_id)
        if decoder is None:
            raise ParallelError(
                f"no codec registered for context tag {tag_id}"
            )
        return decoder(blob)


class ContextSegment:
    """One frozen task context in shared memory, decoded once per worker.

    Uses the registered wire codec when the context type has one, else a
    tagged pickle payload — still written once and read from shared pages
    by every worker, instead of the parent pickling into ``workers`` pipes.
    The pickle fallback is counted like any other
    (``smatch_parallel_shm_fallbacks_total``).
    """

    def __init__(self, shm: shared_memory.SharedMemory) -> None:
        self._shm = shm
        self._closed = False

    @classmethod
    def create(cls, context: Any) -> "ContextSegment":
        """Encode ``context`` into a fresh shared segment."""
        codec = wire_codec_for(context)
        if codec is None:
            tag = _PICKLE_TAG_ID
            blob = pickle.dumps(context, protocol=pickle.HIGHEST_PROTOCOL)
            metric_inc(M_PARALLEL_SHM_FALLBACKS)
        else:
            tag, encode = codec
            blob = encode(context)
        size = _RECORD.size + len(blob)
        shm = shared_memory.SharedMemory(
            create=True, size=size, name=f"smarena_{os.urandom(8).hex()}"
        )
        _RECORD.pack_into(shm.buf, 0, tag, len(blob))
        shm.buf[_RECORD.size : size] = blob
        metric_inc(M_PARALLEL_SHM_BYTES, size)
        return cls(shm)

    def handle(self) -> ContextHandle:
        """The picklable handle workers resolve at warm start."""
        return ContextHandle(self._shm.name, self._shm.size)

    def close(self) -> None:
        """Release and unlink the segment (idempotent)."""
        if self._closed:
            return
        self._closed = True
        self._shm.close()
        try:
            self._shm.unlink()
        except FileNotFoundError:  # pragma: no cover - double unlink race
            pass

    def __enter__(self) -> "ContextSegment":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
